"""The fault-injection subsystem: schedules, wrappers, engine guards."""

import math

import pytest

from repro.converter.buck_boost import BuckBoostConverter
from repro.core.system import SampleHoldMPPT
from repro.env.profiles import ConstantProfile
from repro.errors import FaultConfigError, NumericalGuardError
from repro.faults import (
    ConverterBrownoutFault,
    FaultSchedule,
    FaultWindow,
    FlickerBurstFault,
    HoldLeakageFault,
    IrradianceRampFault,
    IrradianceStepFault,
    LightDropoutFault,
    SetpointDriftFault,
    StorageFault,
)
from repro.pv.cells import am_1815
from repro.sim.quasistatic import Observation, QuasiStaticSimulator
from repro.storage.supercap import Supercapacitor


class TestFaultSchedule:
    def test_windows_sorted_and_merged(self):
        s = FaultSchedule.from_windows([(50, 70), (10, 20), (15, 30)])
        assert [(w.start, w.end) for w in s.windows] == [(10, 30), (50, 70)]

    def test_active_boundaries(self):
        s = FaultSchedule.from_windows([(10.0, 20.0)])
        assert not s.active(9.999)
        assert s.active(10.0)  # inclusive start
        assert s.active(19.999)
        assert not s.active(20.0)  # exclusive end

    def test_empty_schedule_never_active(self):
        s = FaultSchedule()
        assert not s and not s.active(0.0) and s.total_active_time == 0.0

    def test_periodic(self):
        s = FaultSchedule.periodic(first=100.0, period=1000.0, width=50.0, count=3)
        assert len(s) == 3
        assert s.active(1120.0) and not s.active(1160.0)

    def test_bursts_deterministic_in_seed(self):
        a = FaultSchedule.bursts(86400.0, rate_per_hour=2.0, mean_width=120.0, seed=42)
        b = FaultSchedule.bursts(86400.0, rate_per_hour=2.0, mean_width=120.0, seed=42)
        c = FaultSchedule.bursts(86400.0, rate_per_hour=2.0, mean_width=120.0, seed=43)
        assert [(w.start, w.end) for w in a.windows] == [(w.start, w.end) for w in b.windows]
        assert [(w.start, w.end) for w in a.windows] != [(w.start, w.end) for w in c.windows]

    def test_bursts_respect_horizon(self):
        s = FaultSchedule.bursts(3600.0, rate_per_hour=20.0, mean_width=60.0, seed=0)
        assert all(0.0 <= w.start < w.end <= 3600.0 for w in s.windows)

    def test_invalid_configs_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultWindow(5.0, 5.0)
        with pytest.raises(FaultConfigError):
            FaultSchedule.periodic(first=0.0, period=10.0, width=10.0, count=1)
        with pytest.raises(FaultConfigError):
            FaultSchedule.bursts(0.0, rate_per_hour=1.0, mean_width=1.0)


class TestLightFaults:
    def test_dropout(self):
        p = LightDropoutFault(ConstantProfile(500.0), FaultSchedule.from_windows([(10, 20)]))
        assert p(5.0) == 500.0 and p(15.0) == 0.0 and p(25.0) == 500.0

    def test_dropout_residual(self):
        p = LightDropoutFault(
            ConstantProfile(500.0), FaultSchedule.from_windows([(10, 20)]), residual=0.1
        )
        assert p(15.0) == pytest.approx(50.0)

    def test_flicker_chops_inside_windows_only(self):
        p = FlickerBurstFault(
            ConstantProfile(400.0),
            FaultSchedule.from_windows([(100.0, 200.0)]),
            chop_period=2.0,
            depth=0.0,
            duty=0.5,
        )
        assert p(50.0) == 400.0  # outside: untouched
        assert p(100.5) == 400.0  # bright half-cycle (phase from window start)
        assert p(101.5) == 0.0  # dark half-cycle
        assert p(250.0) == 400.0

    def test_step_and_ramp(self):
        step = IrradianceStepFault(ConstantProfile(1000.0), at=100.0, factor=0.5)
        assert step(99.0) == 1000.0 and step(100.0) == 500.0
        ramp = IrradianceRampFault(ConstantProfile(1000.0), start=0.0, end=100.0, factor=0.2)
        assert ramp(0.0) == 1000.0
        assert ramp(50.0) == pytest.approx(600.0)
        assert ramp(100.0) == pytest.approx(200.0)
        assert ramp(1000.0) == pytest.approx(200.0)


def _observation(model, t=0.0, dt=1.0):
    return Observation(
        time=t, dt=dt, cell_model=model, lux=500.0, storage_voltage=3.0, supply_voltage=3.0
    )


class TestComponentFaults:
    def test_setpoint_drift_offsets_inside_windows(self):
        cell = am_1815()
        model = cell.model_at(500.0)
        base = SampleHoldMPPT(assume_started=True)
        faulty = SetpointDriftFault(
            base, FaultSchedule.from_windows([(100.0, 200.0)]), offset_volts=0.2
        )
        clean = SampleHoldMPPT(assume_started=True)
        v_clean = clean.decide(_observation(model, t=150.0)).operating_voltage
        v_fault = faulty.decide(_observation(model, t=150.0)).operating_voltage
        assert v_fault == pytest.approx(v_clean + 0.2)

    def test_hold_leakage_droops_extra(self):
        cell = am_1815()
        model = cell.model_at(500.0)
        schedule = FaultSchedule.from_windows([(0.0, 1e6)])
        clean = SampleHoldMPPT(assume_started=True)
        faulty = HoldLeakageFault(
            SampleHoldMPPT(assume_started=True), schedule, droop_multiplier=50.0
        )
        # First step samples; subsequent steps droop the held value.
        for t in range(0, 120, 10):
            clean.decide(_observation(model, t=float(t), dt=10.0))
            faulty.decide(_observation(model, t=float(t), dt=10.0))
        assert faulty.base.held_sample < clean.held_sample

    def test_hold_leakage_requires_sample_hold(self):
        with pytest.raises(FaultConfigError):
            HoldLeakageFault(object(), FaultSchedule(), droop_multiplier=10.0)

    def test_converter_brownout_gates_transfer(self):
        conv = ConverterBrownoutFault(
            BuckBoostConverter(), FaultSchedule.from_windows([(10.0, 20.0)])
        )
        conv.tick(5.0, 1.0)
        healthy = conv.output_power(1e-3, 2.0, 3.0)
        assert healthy > 0.0 and not conv.browned_out
        conv.tick(15.0, 1.0)
        assert conv.browned_out
        assert conv.output_power(1e-3, 2.0, 3.0) == 0.0
        assert conv.efficiency(1e-3, 2.0) == 0.0

    def test_storage_open_blocks_exchange(self):
        store = StorageFault(
            Supercapacitor(capacitance=1.0, voltage=2.0),
            FaultSchedule.from_windows([(10.0, 20.0)]),
            mode="open",
        )
        store.tick(15.0, 1.0)
        assert store.exchange(1.0, 1.0) == 0.0
        assert store.voltage == pytest.approx(2.0)
        store.tick(25.0, 1.0)
        assert store.exchange(1.0, 1.0) > 0.0

    def test_storage_short_bleeds(self):
        store = StorageFault(
            Supercapacitor(capacitance=1.0, voltage=3.0, leakage_current=0.0),
            FaultSchedule.from_windows([(0.0, 100.0)]),
            mode="short",
            short_resistance=10.0,
        )
        v0 = store.voltage
        store.tick(1.0, 1.0)
        assert store.voltage < v0

    def test_engine_ticks_wrappers(self):
        cell = am_1815()
        schedule = FaultSchedule.from_windows([(0.0, 1e6)])
        conv = ConverterBrownoutFault(BuckBoostConverter(), schedule)
        sim = QuasiStaticSimulator(
            cell,
            SampleHoldMPPT(assume_started=True),
            ConstantProfile(500.0),
            converter=conv,
            storage=Supercapacitor(capacitance=1.0, voltage=2.7),
            record=False,
        )
        summary = sim.run(120.0, dt=10.0)
        assert conv.browned_out
        assert summary.energy_delivered == 0.0


class TestNumericalGuards:
    def test_nan_lux_surfaces(self):
        cell = am_1815()
        sim = QuasiStaticSimulator(
            cell,
            SampleHoldMPPT(assume_started=True),
            lambda t: float("nan"),
            record=False,
        )
        with pytest.raises(NumericalGuardError):
            sim.step(1.0)

    def test_transient_guard_rejects_nonfinite_signal(self):
        from repro.sim.transient import TransientSimulator

        class Exploding:
            def __init__(self):
                self.v = 1.0

            def advance(self, t, dt):
                self.v = math.inf

            def signals(self):
                return {"v": self.v}

        sim = TransientSimulator(Exploding(), dt=1e-3)
        with pytest.raises(NumericalGuardError) as err:
            sim.run(0.01)
        assert err.value.signal == "v"
