"""Unit tests for the cold-start chain and the ACTIVE monitor."""

import pytest

from repro.core.coldstart import ActiveMonitor, ColdStartCircuit
from repro.errors import ModelParameterError
from repro.pv.cells import am_1815


class TestColdStartCircuit:
    def test_charges_and_powers_up_at_200_lux(self):
        cs = ColdStartCircuit()
        model = am_1815().model_at(200.0)
        t = 0.0
        while not cs.powered and t < 60.0:
            cs.charge_step(model, dt=0.01)
            t += 0.01
        assert cs.powered
        assert t < 5.0  # 10 uF at ~45 uA charges in well under a second
        assert cs.voltage >= cs.turn_on_voltage * 0.99

    def test_estimated_time_agrees_with_stepped_charge(self):
        cs = ColdStartCircuit()
        model = am_1815().model_at(200.0)
        estimate = cs.estimated_cold_start_time(model)
        t = 0.0
        while not cs.powered and t < 60.0:
            cs.charge_step(model, dt=0.001)
            t += 0.001
        assert t == pytest.approx(estimate, rel=0.15)

    def test_cannot_start_in_darkness(self):
        cs = ColdStartCircuit()
        model = am_1815().model_at(1.0)  # ~1 lux: Voc below threshold+drop
        assert cs.estimated_cold_start_time(model) == float("inf")

    def test_hysteresis_brownout(self):
        cs = ColdStartCircuit()
        cs.voltage = cs.turn_on_voltage
        model = am_1815().model_at(200.0)
        cs.charge_step(model, dt=1e-6)
        assert cs.powered
        # Now a heavy metrology load in darkness drains C1.
        dark = am_1815().model_at(0.5)
        for _ in range(10000):
            cs.charge_step(dark, dt=0.1, metrology_current=50e-6)
            if not cs.powered:
                break
        assert not cs.powered
        assert cs.voltage <= cs.turn_off_voltage + 0.01

    def test_powered_state_survives_small_dips(self):
        cs = ColdStartCircuit()
        cs.voltage = cs.turn_on_voltage + 0.1
        model = am_1815().model_at(200.0)
        cs.charge_step(model, dt=1e-3)
        assert cs.powered
        cs.voltage = (cs.turn_on_voltage + cs.turn_off_voltage) / 2.0
        cs.charge_step(model, dt=1e-3)
        assert cs.powered  # between thresholds: stays up (hysteresis)

    def test_reset(self):
        cs = ColdStartCircuit()
        cs.voltage = 3.0
        cs._powered = True
        cs.reset()
        assert cs.voltage == 0.0
        assert not cs.powered

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ModelParameterError):
            ColdStartCircuit(turn_on_voltage=1.0, turn_off_voltage=2.0)

    def test_rejects_negative_dt(self):
        cs = ColdStartCircuit()
        with pytest.raises(ModelParameterError):
            cs.charge_step(am_1815().model_at(200.0), dt=-1.0)


class TestActiveMonitor:
    def test_active_high_for_valid_sample(self):
        monitor = ActiveMonitor()
        assert monitor.active(1.5)

    def test_active_low_for_discharged_hold(self):
        monitor = ActiveMonitor()
        assert not monitor.active(0.0)
        assert not monitor.active(monitor.threshold * 0.5)

    def test_m8_inhibits_during_pulse(self):
        monitor = ActiveMonitor()
        assert monitor.converter_enabled(1.5, pulse_high=False)
        assert not monitor.converter_enabled(1.5, pulse_high=True)

    def test_threshold_is_fraction_of_supply(self):
        monitor = ActiveMonitor(threshold_fraction=0.25, supply=3.3)
        assert monitor.threshold == pytest.approx(0.825)

    def test_supply_current_small(self):
        monitor = ActiveMonitor()
        assert monitor.supply_current() < 1e-6

    def test_rejects_bad_fraction(self):
        with pytest.raises(ModelParameterError):
            ActiveMonitor(threshold_fraction=1.5)
