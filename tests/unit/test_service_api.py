"""Unit tests for the service admission boundary (repro.service.api)."""

import pytest

from repro.errors import ConfigError
from repro.service.api import (
    CHECKPOINTABLE,
    FIELDS,
    KINDS,
    JobSpec,
    build_spec,
    supports_checkpoint,
)


class TestBuildSpec:
    def test_minimal_spec_fills_defaults(self):
        spec = build_spec({"kind": "endurance"})
        assert spec.kind == "endurance"
        assert spec.params == {"days": 7, "dt": 20.0, "seed": 4}

    def test_every_kind_accepts_its_defaults(self):
        for kind in KINDS:
            spec = build_spec({"kind": kind, "params": {}})
            assert set(spec.params) == set(FIELDS[kind])

    def test_params_key_optional_and_nullable(self):
        assert build_spec({"kind": "montecarlo"}).params["boards"] == 500
        assert build_spec({"kind": "montecarlo", "params": None}).params["boards"] == 500

    def test_values_are_canonicalized(self):
        # int hours -> float; equal specs in different orders fingerprint equal
        a = build_spec({"kind": "comparison", "params": {"hours": 1, "dt": 10}})
        b = build_spec({"kind": "comparison", "params": {"dt": 10.0, "hours": 1.0}})
        assert isinstance(a.params["hours"], float)
        assert a.fingerprint == b.fingerprint

    def test_default_and_explicit_default_fingerprint_equal(self):
        a = build_spec({"kind": "endurance"})
        b = build_spec({"kind": "endurance", "params": {"days": 7}})
        assert a.fingerprint == b.fingerprint

    def test_different_specs_fingerprint_differently(self):
        a = build_spec({"kind": "endurance", "params": {"days": 1}})
        b = build_spec({"kind": "endurance", "params": {"days": 2}})
        assert a.fingerprint != b.fingerprint


class TestBuildSpecRejections:
    """Every rejection is a ConfigError naming the offending field."""

    @pytest.mark.parametrize(
        "payload, field",
        [
            (None, "body"),
            ([1, 2], "body"),
            ("endurance", "body"),
            ({"kind": "nope"}, "kind"),
            ({}, "kind"),
            ({"kind": "endurance", "spec": {}}, "spec"),
            ({"kind": "endurance", "params": [1]}, "params"),
            ({"kind": "endurance", "params": {"weeks": 2}}, "weeks"),
            ({"kind": "endurance", "params": {"days": 0}}, "days"),
            ({"kind": "endurance", "params": {"days": 2.5}}, "days"),
            ({"kind": "endurance", "params": {"days": True}}, "days"),
            ({"kind": "comparison", "params": {"hours": -1}}, "hours"),
            ({"kind": "comparison", "params": {"hours": "24"}}, "hours"),
            ({"kind": "comparison", "params": {"hours": float("nan")}}, "hours"),
            ({"kind": "comparison", "params": {"engine": "warp"}}, "engine"),
            ({"kind": "comparison", "params": {"techniques": []}}, "techniques"),
            ({"kind": "comparison", "params": {"techniques": ["bogus"]}}, "techniques"),
            ({"kind": "comparison", "params": {"shading": 3}}, "shading"),
            ({"kind": "comparison", "params": {"shading": "not-a-map"}}, "shading"),
            ({"kind": "resilience", "params": {"include_recovery": 1}}, "include_recovery"),
            ({"kind": "resilience", "params": {"campaigns": ["nope"]}}, "campaigns"),
            ({"kind": "montecarlo", "params": {"boards": 10**9}}, "boards"),
            ({"kind": "montecarlo", "params": {"seed": -1}}, "seed"),
        ],
    )
    def test_rejects_with_field(self, payload, field):
        with pytest.raises(ConfigError) as excinfo:
            build_spec(payload)
        assert excinfo.value.field == field

    def test_horizon_is_bounded(self):
        # Admission control: no spec can request unbounded work.
        with pytest.raises(ConfigError):
            build_spec({"kind": "comparison", "params": {"hours": 1e9}})
        with pytest.raises(ConfigError):
            build_spec({"kind": "endurance", "params": {"days": 10**6}})


class TestCheckpointable:
    def test_checkpointable_kinds(self):
        assert set(CHECKPOINTABLE) == {"resilience", "montecarlo", "endurance"}
        for kind in KINDS:
            assert supports_checkpoint(kind) == (kind in CHECKPOINTABLE)

    def test_jobspec_roundtrip(self):
        spec = build_spec({"kind": "strings", "params": {"hours": 2}})
        again = JobSpec(**spec.to_dict())
        assert again.fingerprint == spec.fingerprint
