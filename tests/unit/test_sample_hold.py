"""Unit tests for the sample-and-hold chain."""

import pytest

from repro.analog.components import CERAMIC_X7R, Capacitor, ResistiveDivider
from repro.core.sample_hold import SampleHoldCircuit
from repro.errors import ModelParameterError
from repro.pv.cells import am_1815


@pytest.fixture
def sh():
    return SampleHoldCircuit()


@pytest.fixture
def model():
    return am_1815().model_at(1000.0)


class TestSampling:
    def test_sample_lands_near_design_ratio(self, sh, model):
        result = sh.sample(model, pulse_width=39e-3)
        assert result.effective_ratio == pytest.approx(sh.nominal_ratio, rel=0.01)

    def test_held_sample_tracks_table1_values(self, sh):
        # Table I at 1000 lux: HELD = 1.624 V for Voc = 5.44 V.
        model = am_1815().model_at(1000.0)
        result = sh.sample(model, pulse_width=39e-3)
        assert result.held_voltage == pytest.approx(1.624, abs=0.02)

    def test_loading_pulls_pv_below_voc(self, sh, model):
        result = sh.sample(model, pulse_width=39e-3)
        assert result.loaded_pv_voltage < result.true_voc
        assert result.true_voc - result.loaded_pv_voltage < 0.05

    def test_settle_fraction_near_one_for_39ms(self, sh, model):
        result = sh.sample(model, pulse_width=39e-3)
        assert result.settle_fraction > 0.999

    def test_short_pulse_undersamples(self, model):
        sh = SampleHoldCircuit()
        result = sh.sample(model, pulse_width=0.5e-3)
        assert result.settle_fraction < 0.5
        assert result.held_voltage < 0.9 * sh.nominal_ratio * result.true_voc

    def test_successive_samples_converge(self, model):
        sh = SampleHoldCircuit()
        sh.sample(model, 2e-3)
        first = sh.held_voltage
        for _ in range(10):
            sh.sample(model, 2e-3)
        assert sh.held_voltage > first
        assert sh.held_voltage == pytest.approx(
            sh.nominal_ratio * model.voc(), rel=0.02
        )

    def test_rejects_nonpositive_pulse(self, sh, model):
        with pytest.raises(ModelParameterError):
            sh.sample(model, 0.0)

    def test_sample_tracks_light_change(self, sh):
        lo = am_1815().model_at(200.0)
        hi = am_1815().model_at(5000.0)
        sh.sample(lo, 39e-3)
        held_lo = sh.held_voltage
        sh.sample(hi, 39e-3)
        held_hi = sh.held_voltage
        assert held_hi > held_lo
        assert held_hi / hi.voc() == pytest.approx(held_lo / lo.voc(), rel=0.02)


class TestHold:
    def test_droop_is_slow_over_hold_period(self, sh, model):
        sh.sample(model, 39e-3)
        before = sh.held_voltage
        sh.droop(69.0)
        after = sh.held_voltage
        assert after < before
        # Polyester + pA bias: well under 1 % per hold period.
        assert (before - after) / before < 0.01

    def test_leaky_dielectric_droops_faster(self, model):
        good = SampleHoldCircuit()
        bad = SampleHoldCircuit(hold_capacitor=Capacitor(1e-6, dielectric=CERAMIC_X7R))
        good.sample(model, 39e-3)
        bad.sample(model, 39e-3)
        good.droop(69.0)
        bad.droop(69.0)
        assert bad.held_voltage < good.held_voltage

    def test_droop_rate_positive_when_held(self, sh, model):
        sh.sample(model, 39e-3)
        assert sh.droop_rate() > 0.0

    def test_reset_discharges(self, sh, model):
        sh.sample(model, 39e-3)
        sh.reset()
        assert sh.held_voltage == 0.0
        assert sh.held_sample == pytest.approx(0.0, abs=2e-3)


class TestBudgetAndGeometry:
    def test_quiescent_current_is_buffers_plus_switch(self, sh):
        expected = (
            sh.input_buffer.supply_current()
            + sh.output_buffer.supply_current()
            + sh.switch.supply_current()
        )
        assert sh.quiescent_current() == pytest.approx(expected, rel=1e-12)

    def test_sampling_extra_current_is_divider(self, sh):
        assert sh.sampling_extra_current(5.0) == pytest.approx(5.0 / 10e6, rel=1e-9)

    def test_settle_time_constant(self, sh):
        tau = sh.settle_time_constant()
        source = sh.input_buffer.spec.output_resistance + sh.switch.spec.on_resistance
        assert tau == pytest.approx(source * sh.hold_capacitor.farads, rel=1e-12)
        # 5 tau must fit the 39 ms pulse with margin — the design rule.
        assert 5.0 * tau < 39e-3

    def test_custom_divider_ratio_respected(self, model):
        sh = SampleHoldCircuit(divider=ResistiveDivider.from_ratio(0.39, 10e6))
        result = sh.sample(model, 39e-3)
        assert result.effective_ratio == pytest.approx(0.39, rel=0.01)

    def test_rejects_bad_ripple_filter(self):
        with pytest.raises(ModelParameterError):
            SampleHoldCircuit(ripple_filter_r=0.0)

    def test_held_sample_clamps_to_supply(self, sh):
        sh._held = 10.0
        assert sh.held_sample <= sh.supply
