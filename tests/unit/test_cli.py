"""Unit tests for the CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name] if name not in ("fig4", "coldstart") else [name])
            assert args.command == name

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available artefacts" in capsys.readouterr().out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFastCommands:
    def test_budget(self, capsys):
        assert main(["budget"]) == 0
        out = capsys.readouterr().out
        assert "7.6" in out

    def test_design(self, capsys):
        assert main(["design"]) == 0
        out = capsys.readouterr().out
        assert "Synthesised design" in out
        assert "PASS" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "5000" in out

    def test_montecarlo_with_boards(self, capsys):
        assert main(["montecarlo", "--boards", "50"]) == 0
        assert "mean k" in capsys.readouterr().out

    def test_spectra(self, capsys):
        assert main(["spectra"]) == 0
        assert "outdoor-sun" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "MPP" in capsys.readouterr().out

    def test_teg(self, capsys):
        assert main(["teg"]) == 0
        assert "TEG" in capsys.readouterr().out

    def test_fig4_with_lux(self, capsys):
        assert main(["fig4", "--lux", "500"]) == 0
        assert "PULSE width" in capsys.readouterr().out
