"""Unit tests for the junction diode model and VocLog CSV round-trips."""

import numpy as np
import pytest

from repro.analog.diode import SCHOTTKY_SMALL_SIGNAL, SILICON_SMALL_SIGNAL, Diode, DiodeSpec
from repro.analog.mna import Circuit
from repro.errors import ModelParameterError
from repro.experiments import fig2


class TestDiode:
    def test_negligible_reverse_current(self):
        d = Diode()
        assert abs(d.current(-1.0)) < 1e-8

    def test_forward_knee_location(self):
        silicon = Diode(SILICON_SMALL_SIGNAL)
        schottky = Diode(SCHOTTKY_SMALL_SIGNAL)
        # Classic figures: silicon conducts 1 mA around 0.6-0.8 V,
        # a Schottky around 0.25-0.45 V.
        assert 0.55 < silicon.forward_drop(1e-3) < 0.85
        assert 0.2 < schottky.forward_drop(1e-3) < 0.5

    def test_current_voltage_roundtrip(self):
        d = Diode()
        for i in (1e-6, 1e-4, 1e-2):
            v = d.forward_drop(i)
            assert d.current(v) == pytest.approx(i, rel=1e-6)

    def test_current_monotone(self):
        d = Diode()
        voltages = np.linspace(0.0, 1.0, 30)
        currents = [d.current(v) for v in voltages]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_conductance_positive_forward(self):
        d = Diode()
        assert d.conductance(0.6) > 0.0

    def test_series_resistance_limits_slope(self):
        low_rs = Diode(DiodeSpec(name="x", series_resistance=0.1))
        high_rs = Diode(DiodeSpec(name="y", series_resistance=100.0))
        assert low_rs.current(1.0) > high_rs.current(1.0)

    def test_in_mna_circuit(self):
        # 5 V through 1 kOhm into a silicon diode: ~4.3 mA, ~0.7 V.
        c = Circuit()
        c.add_voltage_source("in", "0", 5.0)
        c.add_resistor("in", "d", 1000.0)
        Diode().add_to_circuit(c, "d", "0")
        sol = c.solve_dc()
        assert 0.55 < sol["d"] < 0.85
        i_resistor = (5.0 - sol["d"]) / 1000.0
        assert i_resistor == pytest.approx(Diode().current(sol["d"]), rel=1e-4)

    def test_forward_drop_rejects_nonpositive(self):
        with pytest.raises(ModelParameterError):
            Diode().forward_drop(0.0)

    def test_spec_validation(self):
        with pytest.raises(ModelParameterError):
            DiodeSpec(name="bad", saturation_current=0.0)


class TestVocLogCsv:
    def test_roundtrip(self, tmp_path):
        log = fig2.run_log("desk", dt=600.0)
        path = tmp_path / "log.csv"
        log.to_csv(path)
        loaded = fig2.VocLog.from_csv(path)
        assert loaded.name == "desk"
        assert loaded.dt == pytest.approx(600.0)
        assert np.allclose(loaded.voc, log.voc, rtol=1e-4)
        assert np.allclose(loaded.lux, log.lux, rtol=1e-4)

    def test_imported_log_feeds_eq2(self, tmp_path):
        from repro.experiments import sec2b

        log = fig2.run_log("desk", dt=60.0)
        path = tmp_path / "log.csv"
        log.to_csv(path)
        loaded = fig2.VocLog.from_csv(path)
        direct = sec2b.analyse_log(log, 300.0)
        via_csv = sec2b.analyse_log(loaded, 300.0)
        assert via_csv.mean_error_v == pytest.approx(direct.mean_error_v, rel=1e-3)

    def test_name_override(self, tmp_path):
        log = fig2.run_log("desk", dt=600.0)
        path = tmp_path / "log.csv"
        log.to_csv(path)
        loaded = fig2.VocLog.from_csv(path, name="my-site")
        assert loaded.name == "my-site"

    def test_nonuniform_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,lux,voc\n0,1,1\n1,1,1\n5,1,1\n")
        with pytest.raises(ValueError):
            fig2.VocLog.from_csv(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time,lux,voc\n0,1,1\n")
        with pytest.raises(ValueError):
            fig2.VocLog.from_csv(path)
