"""Unit tests for checkpoint envelopes and the state protocol helpers."""

import json

import numpy as np
import pytest

from repro.ckpt import (
    CHECKPOINT_SCHEMA,
    check_spec_match,
    load_checkpoint,
    save_checkpoint,
)
from repro.ckpt.state import (
    capture_fields,
    child_state,
    load_child_state,
    load_rng_state,
    restore_fields,
    rng_state_dict,
)
from repro.errors import CheckpointError, StateFormatError


class TestEnvelope:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(
            path,
            kind="endurance",
            state={"step": 42},
            spec={"dt": 10.0, "seed": 4},
            meta={"sim_time": 420.0},
        )
        envelope = load_checkpoint(path, kind="endurance")
        assert envelope["schema"] == CHECKPOINT_SCHEMA
        assert envelope["state"] == {"step": 42}
        assert envelope["spec"] == {"dt": 10.0, "seed": 4}
        assert envelope["meta"] == {"sim_time": 420.0}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt.json")

    def test_torn_json_raises(self, tmp_path):
        path = tmp_path / "torn.ckpt.json"
        path.write_text('{"schema": 1, "kind": "endu')
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "old.ckpt.json"
        path.write_text(json.dumps(
            {"schema": 99, "kind": "x", "spec": {}, "state": {}, "meta": {}}
        ))
        with pytest.raises(CheckpointError, match="schema 99"):
            load_checkpoint(path)

    def test_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, kind="montecarlo", state={})
        with pytest.raises(CheckpointError, match="kind 'montecarlo'"):
            load_checkpoint(path, kind="endurance")

    def test_missing_tree_raises(self, tmp_path):
        path = tmp_path / "bad.ckpt.json"
        path.write_text(json.dumps({"schema": CHECKPOINT_SCHEMA, "kind": "x"}))
        with pytest.raises(CheckpointError, match="missing"):
            load_checkpoint(path)

    def test_spec_match_accepts_equal(self):
        envelope = {"spec": {"dt": 10.0, "seed": 4}}
        check_spec_match(envelope, {"dt": 10.0, "seed": 4})

    def test_spec_mismatch_names_fields(self, tmp_path):
        envelope = {"spec": {"dt": 10.0, "seed": 4}}
        with pytest.raises(CheckpointError, match="seed"):
            check_spec_match(envelope, {"dt": 10.0, "seed": 5}, "run.ckpt.json")

    def test_spec_mismatch_on_extra_field(self):
        with pytest.raises(CheckpointError, match="days"):
            check_spec_match({"spec": {}}, {"days": 7})


class _Thing:
    def __init__(self):
        self.a = 1.5
        self.b = "x"


class _StatefulThing(_Thing):
    def state_dict(self):
        return capture_fields(self, ("a", "b"))

    def load_state(self, state):
        restore_fields(self, state, ("a", "b"))


class TestStateHelpers:
    def test_capture_restore_round_trip(self):
        src, dst = _Thing(), _Thing()
        src.a, src.b = 2.25, "y"
        restore_fields(dst, capture_fields(src, ("a", "b")), ("a", "b"))
        assert (dst.a, dst.b) == (2.25, "y")

    def test_restore_missing_key_raises(self):
        with pytest.raises(StateFormatError, match="missing key 'b'"):
            restore_fields(_Thing(), {"a": 1}, ("a", "b"))

    def test_child_state_none_for_stateless(self):
        assert child_state(None) is None
        assert child_state(lambda t: 0.0) is None
        assert child_state(_Thing()) is None

    def test_child_state_captures_stateful(self):
        assert child_state(_StatefulThing()) == {"a": 1.5, "b": "x"}

    def test_load_child_state_round_trip(self):
        obj = _StatefulThing()
        load_child_state(obj, {"a": 9.0, "b": "z"}, "thing")
        assert (obj.a, obj.b) == (9.0, "z")

    def test_load_child_state_none_for_stateless_ok(self):
        load_child_state(lambda t: 0.0, None, "load")  # no-op

    def test_asymmetry_state_for_stateless_raises(self):
        with pytest.raises(StateFormatError, match="cannot load"):
            load_child_state(lambda t: 0.0, {"a": 1}, "load")

    def test_asymmetry_no_state_for_stateful_raises(self):
        with pytest.raises(StateFormatError, match="no state"):
            load_child_state(_StatefulThing(), None, "thing")


class TestRngRoundTrip:
    def test_stream_continues_bitwise(self):
        rng = np.random.default_rng(1234)
        rng.standard_normal(17)  # advance mid-stream
        snap = rng_state_dict(rng)
        ahead = rng.standard_normal(100)

        fresh = np.random.default_rng(1234)
        load_rng_state(fresh, snap)
        assert np.array_equal(fresh.standard_normal(100), ahead)

    def test_snapshot_survives_json(self):
        rng = np.random.default_rng(7)
        snap = json.loads(json.dumps(rng_state_dict(rng)))
        ahead = rng.integers(0, 2**63, 50)
        fresh = np.random.default_rng(0)
        load_rng_state(fresh, snap)
        assert np.array_equal(fresh.integers(0, 2**63, 50), ahead)

    def test_wrong_bit_generator_raises(self):
        rng = np.random.default_rng(7)
        snap = rng_state_dict(rng)
        snap["bit_generator"] = "MT19937"
        with pytest.raises(StateFormatError, match="MT19937"):
            load_rng_state(np.random.default_rng(7), snap)
