"""Progress/ETA estimation over journal events.

The estimator is replay-deterministic: all rates come from the
wall-clock stamps *inside* the events, so feeding a journal file back
through :func:`repro.obs.progress.replay_journal` reconstructs exactly
what a live subscriber saw.  The kill-and-resume contract — cumulative
progress never below the pre-kill value, exactly one run-end — is
asserted here on synthetic journals (and end-to-end, with a real
SIGKILL, in ``tests/integration/test_journal_resume.py``).
"""

import io

import pytest

from repro.obs import journal
from repro.obs.progress import (
    ProgressEstimator,
    ProgressTicker,
    _format_duration,
    replay_journal,
)


def _ev(name, t, **payload):
    return {"event": name, "t": t, **payload}


class TestEstimatorMath:
    def test_fraction_and_eta_from_embedded_timestamps(self):
        est = ProgressEstimator(alpha=1.0)  # no smoothing: exact rates
        est.observe(_ev(journal.RUN_START, 100.0, kind="demo", total_steps=100))
        est.observe(_ev(journal.PROGRESS, 101.0, kind="demo", steps_done=10))
        est.observe(_ev(journal.PROGRESS, 102.0, kind="demo", steps_done=30))

        assert est.fraction == pytest.approx(0.30)
        assert est.steps_per_s == pytest.approx(20.0)
        assert est.eta_s == pytest.approx(70.0 / 20.0)
        assert est.elapsed_s == pytest.approx(2.0)
        assert not est.finished

    def test_ewma_smooths_rates(self):
        est = ProgressEstimator(alpha=0.5)
        est.observe(_ev(journal.RUN_START, 0.0, kind="d", total_steps=100))
        est.observe(_ev(journal.PROGRESS, 1.0, kind="d", steps_done=10))   # seed
        est.observe(_ev(journal.PROGRESS, 2.0, kind="d", steps_done=20))   # 10/s
        est.observe(_ev(journal.PROGRESS, 3.0, kind="d", steps_done=50))   # 30/s
        assert est.steps_per_s == pytest.approx(0.5 * 30.0 + 0.5 * 10.0)

    def test_per_phase_rates(self):
        est = ProgressEstimator(alpha=1.0)
        est.observe(_ev(journal.RUN_START, 0.0, kind="d", total_steps=40))
        est.observe(_ev(journal.PHASE_START, 0.0, kind="d", phase="a"))
        est.observe(_ev(journal.PROGRESS, 1.0, kind="d", steps_done=10, phase="a"))
        est.observe(_ev(journal.PROGRESS, 2.0, kind="d", steps_done=20, phase="a"))
        est.observe(_ev(journal.PHASE_END, 2.0, kind="d", phase="a"))
        est.observe(_ev(journal.PHASE_START, 2.0, kind="d", phase="b"))
        est.observe(_ev(journal.PROGRESS, 3.0, kind="d", steps_done=25, phase="b"))
        assert est.phase_rates["a"] == pytest.approx(10.0)
        assert est.phase_rates["b"] == pytest.approx(5.0)

    def test_monotonic_counter_ignores_regressions(self):
        est = ProgressEstimator()
        est.observe(_ev(journal.RUN_START, 0.0, kind="d", total_steps=10))
        est.observe(_ev(journal.PROGRESS, 1.0, kind="d", steps_done=8))
        est.observe(_ev(journal.PROGRESS, 2.0, kind="d", steps_done=3))
        assert est.steps_done == 8

    def test_event_tallies(self):
        est = ProgressEstimator()
        for name in (
            journal.WORKER_RETRY, journal.WORKER_RETRY,
            journal.WORKER_QUARANTINE, journal.WORKER_STALL,
            journal.CHECKPOINT_SAVE, journal.CHECKPOINT_RESTORE,
            journal.GUARD_ERROR,
        ):
            est.observe(_ev(name, 1.0))
        assert est.worker_retries == 2
        assert est.worker_quarantines == 1
        assert est.worker_stalls == 1
        assert est.checkpoint_saves == 1
        assert est.checkpoint_restores == 1
        assert est.guard_errors == 1

    def test_render_and_to_dict(self):
        est = ProgressEstimator(alpha=1.0)
        est.observe(_ev(journal.RUN_START, 0.0, kind="endurance", total_steps=100))
        est.observe(_ev(journal.PROGRESS, 1.0, kind="endurance", steps_done=25))
        est.observe(_ev(journal.PROGRESS, 2.0, kind="endurance", steps_done=50))
        line = est.render()
        assert "endurance" in line and "50.0 %" in line and "ETA" in line
        snap = est.to_dict()
        assert snap["fraction"] == pytest.approx(0.5)
        assert snap["kind"] == "endurance"

    def test_format_duration(self):
        assert _format_duration(75) == "0:01:15"
        assert _format_duration(3 * 86400 + 3661) == "3 d 1:01:01"


class TestResumeContract:
    def test_kill_and_resume_is_cumulative(self):
        """A killed run (no run-end) then a resumed one: progress never
        drops below the pre-kill value, exactly one run-end."""
        est = ProgressEstimator()
        # Attempt 1 — killed after 60/100 (no run-end event).
        est.observe(_ev(journal.RUN_START, 0.0, kind="endurance",
                        total_steps=100, resumed_steps=0))
        est.observe(_ev(journal.PROGRESS, 5.0, kind="endurance", steps_done=60))
        pre_kill = est.steps_done
        # Attempt 2 — resumed from the last checkpoint (50).
        est.observe(_ev(journal.RUN_START, 60.0, kind="endurance",
                        total_steps=100, resumed_steps=50))
        assert est.steps_done >= pre_kill  # monotonic across the resume
        est.observe(_ev(journal.PROGRESS, 61.0, kind="endurance", steps_done=80))
        est.observe(_ev(journal.PROGRESS, 62.0, kind="endurance", steps_done=100))
        est.observe(_ev(journal.RUN_END, 62.0, kind="endurance",
                        steps_done=100, total_steps=100))
        assert est.steps_done == 100
        assert est.run_start_count == 2
        assert est.run_end_count == 1
        assert est.finished

    def test_resume_does_not_rate_against_dead_clock(self):
        """The first progress after a resume must not produce a bogus
        rate spanning the crash gap."""
        est = ProgressEstimator(alpha=1.0)
        est.observe(_ev(journal.RUN_START, 0.0, kind="d", total_steps=100))
        est.observe(_ev(journal.PROGRESS, 1.0, kind="d", steps_done=10))
        est.observe(_ev(journal.PROGRESS, 2.0, kind="d", steps_done=20))
        # Crash; resume 1000 s later.
        est.observe(_ev(journal.RUN_START, 1000.0, kind="d",
                        total_steps=100, resumed_steps=20))
        rate_before = est.steps_per_s
        est.observe(_ev(journal.PROGRESS, 1001.0, kind="d", steps_done=30))
        assert est.steps_per_s == rate_before  # seed only, no 980 s sample
        est.observe(_ev(journal.PROGRESS, 1002.0, kind="d", steps_done=40))
        assert est.steps_per_s == pytest.approx(10.0)

    def test_sequential_runs_reset_after_run_end(self):
        """A run-start after a *completed* run is a new run, not a
        resume — counters restart from its own baseline."""
        est = ProgressEstimator()
        est.observe(_ev(journal.RUN_START, 0.0, kind="a", total_steps=100))
        est.observe(_ev(journal.PROGRESS, 1.0, kind="a", steps_done=100))
        est.observe(_ev(journal.RUN_END, 1.0, kind="a", steps_done=100))
        est.observe(_ev(journal.RUN_START, 2.0, kind="b", total_steps=10))
        assert est.steps_done == 0
        assert est.kind == "b"
        est.observe(_ev(journal.PROGRESS, 3.0, kind="b", steps_done=4))
        assert est.fraction == pytest.approx(0.4)

    def test_nested_kind_progress_is_ignored(self):
        est = ProgressEstimator()
        est.observe(_ev(journal.RUN_START, 0.0, kind="strings"))
        est.observe(_ev(journal.PROGRESS, 1.0, kind="comparison",
                        steps_done=500, total_steps=500))
        assert est.steps_done == 0
        assert est.total_steps is None


class TestReplayJournal:
    def test_replay_matches_live_subscription(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.enable_journal(path)
        live = ProgressEstimator()
        journal.JOURNAL.subscribe(live.observe)
        try:
            with journal.run_scope("demo", total_steps=6) as scope:
                for _ in range(3):
                    scope.advance(2)
        finally:
            journal.disable_journal()
        replayed = replay_journal(path)
        assert replayed.to_dict() == live.to_dict()
        assert replayed.finished and replayed.steps_done == 6


class TestTicker:
    def test_ticker_paints_and_closes(self):
        out = io.StringIO()
        ticker = ProgressTicker(stream=out, min_interval_s=0.0)
        ticker.on_event(_ev(journal.RUN_START, 0.0, kind="demo", total_steps=4))
        ticker.on_event(_ev(journal.PROGRESS, 1.0, kind="demo", steps_done=2))
        ticker.on_event(_ev(journal.RUN_END, 2.0, kind="demo", steps_done=4))
        ticker.close()
        text = out.getvalue()
        assert "\r" in text
        assert "done" in text
        assert text.endswith("\n")

    def test_ticker_throttles_repaints(self):
        out = io.StringIO()
        ticker = ProgressTicker(stream=out, min_interval_s=3600.0)
        ticker.on_event(_ev(journal.RUN_START, 0.0, kind="demo", total_steps=100))
        first = out.getvalue()
        for i in range(20):
            ticker.on_event(_ev(journal.PROGRESS, float(i), kind="demo",
                                steps_done=i))
        assert out.getvalue() == first  # throttled: nothing repainted
        ticker.on_event(_ev(journal.RUN_END, 30.0, kind="demo", steps_done=100))
        assert "done" in out.getvalue()  # final events always paint

    def test_ticker_survives_closed_stream(self):
        out = io.StringIO()
        ticker = ProgressTicker(stream=out, min_interval_s=0.0)
        ticker.on_event(_ev(journal.RUN_START, 0.0, kind="demo", total_steps=2))
        out.close()
        ticker.on_event(_ev(journal.PROGRESS, 1.0, kind="demo", steps_done=1))
        ticker.close()  # no raise
