"""Unit tests for E-series standard values."""

import pytest

from repro.analog.eseries import (
    E12,
    E24,
    E96,
    best_ratio_pair,
    nearest_value,
    round_to_series,
    rounding_error,
    series_values,
)
from repro.errors import ModelParameterError


class TestSeries:
    def test_series_lengths(self):
        assert len(E12) == 12
        assert len(E24) == 24
        assert len(E96) == 96

    def test_series_sorted_within_decade(self):
        for series in (E12, E24, E96):
            assert list(series) == sorted(series)
            assert series[0] == 1.0
            assert series[-1] < 10.0

    def test_lookup_by_name(self):
        assert series_values("E24") is E24

    def test_unknown_series_rejected(self):
        with pytest.raises(ModelParameterError):
            series_values("E13")


class TestNearestValue:
    def test_exact_values_stay(self):
        assert nearest_value(4.7e3, "E24") == pytest.approx(4.7e3)
        assert nearest_value(82.0, "E12") == pytest.approx(82.0)

    def test_rounds_to_neighbours(self):
        assert nearest_value(4.8e3, "E24") == pytest.approx(4.7e3)
        assert nearest_value(5.0e3, "E24") == pytest.approx(5.1e3)

    def test_crosses_decade_boundaries(self):
        assert nearest_value(9.8, "E24") == pytest.approx(10.0)
        assert nearest_value(1.02, "E24") == pytest.approx(1.0)

    def test_any_magnitude(self):
        assert nearest_value(3.3e-6, "E24") == pytest.approx(3.3e-6)
        assert nearest_value(2.35e8, "E24") == pytest.approx(2.4e8)

    def test_e96_is_finer(self):
        target = 5.32e3
        assert abs(rounding_error(target, "E96")) <= abs(rounding_error(target, "E24"))

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelParameterError):
            nearest_value(0.0)

    def test_round_to_series_list(self):
        out = round_to_series([1.05e3, 2.6e3], "E24")
        assert out == [pytest.approx(1.1e3), pytest.approx(2.7e3)]


class TestBestRatioPair:
    def test_achieves_ratio_within_2_percent(self):
        for ratio in (0.298, 0.397, 0.5, 0.75):
            top, bottom = best_ratio_pair(ratio, 10e6, "E24")
            achieved = bottom / (top + bottom)
            assert achieved == pytest.approx(ratio, rel=0.02)

    def test_keeps_impedance_class(self):
        top, bottom = best_ratio_pair(0.3, 10e6, "E24")
        assert 3e6 < top + bottom < 30e6

    def test_e96_beats_e12(self):
        ratio = 0.2978
        t12, b12 = best_ratio_pair(ratio, 10e6, "E12")
        t96, b96 = best_ratio_pair(ratio, 10e6, "E96")
        err12 = abs(b12 / (t12 + b12) - ratio)
        err96 = abs(b96 / (t96 + b96) - ratio)
        assert err96 <= err12

    def test_rejects_bad_ratio(self):
        with pytest.raises(ModelParameterError):
            best_ratio_pair(1.5, 1e6)
