"""The aggregating span tracer: hierarchy, capture, cross-process merge."""

import pytest

from repro.errors import ModelParameterError
from repro.obs.tracing import TraceNode, Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enabled = True
    return t


class TestTraceNode:
    def test_add_aggregates(self):
        node = TraceNode("n")
        node.add(1.0)
        node.add(3.0)
        assert node.count == 2
        assert node.total_s == 4.0
        assert node.min_s == 1.0
        assert node.max_s == 3.0

    def test_self_time_excludes_children(self):
        node = TraceNode("parent")
        node.add(10.0)
        node.child("a").add(3.0)
        node.child("b").add(4.0)
        assert node.self_s == pytest.approx(3.0)

    def test_self_time_floors_at_zero(self):
        # A sampled child can out-total its parent; widths must not go negative.
        node = TraceNode("parent")
        node.add(1.0)
        node.child("a").add(2.0)
        assert node.self_s == 0.0

    def test_dict_roundtrip(self):
        node = TraceNode("root")
        node.add(2.0)
        node.child("leaf").add(0.5)
        rebuilt = TraceNode.from_dict(node.to_dict())
        assert rebuilt.name == "root"
        assert rebuilt.count == 1
        assert rebuilt.children["leaf"].total_s == 0.5
        assert rebuilt.children["leaf"].min_s == 0.5

    def test_merge_folds_subtrees(self):
        a = TraceNode("n")
        a.add(1.0)
        a.child("x").add(1.0)
        b = TraceNode("n")
        b.add(5.0)
        b.child("x").add(2.0)
        b.child("y").add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.total_s == 6.0
        assert a.children["x"].count == 2
        assert a.children["y"].total_s == 3.0


class TestTracer:
    def test_disabled_span_records_nothing(self):
        t = Tracer()
        with t.span("anything"):
            pass
        assert t.root.children == {}

    def test_nested_spans_build_hierarchy(self, tracer):
        with tracer.trace("run"):
            with tracer.span("phase"):
                pass
            with tracer.span("phase"):
                pass
        run = tracer.root.children["run"]
        assert run.count == 1
        assert run.children["phase"].count == 2

    def test_span_timing_is_positive_and_nested_leq_parent(self, tracer):
        with tracer.trace("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.root.children["outer"]
        inner = outer.children["inner"]
        assert 0.0 < inner.total_s <= outer.total_s

    def test_add_records_under_current_span(self, tracer):
        with tracer.trace("run"):
            tracer.add("step", 0.25)
            tracer.add("step", 0.75)
        step = tracer.root.children["run"].children["step"]
        assert step.count == 2
        assert step.total_s == 1.0

    def test_capture_detaches_recording(self, tracer):
        with tracer.trace("ambient"):
            with tracer.capture() as branch:
                with tracer.span("worker-side"):
                    pass
        assert "worker-side" in branch.children
        assert "worker-side" not in tracer.root.children["ambient"].children

    def test_merge_subtree_grafts_under_label(self, tracer):
        with tracer.capture() as branch:
            with tracer.span("spec"):
                pass
        tracer.merge_subtree(branch.to_dict(), under="parallel_map")
        graft = tracer.root.children["parallel_map"]
        assert graft.children["spec"].count == 1

    def test_merge_subtree_without_label_merges_flat(self, tracer):
        with tracer.capture() as branch:
            with tracer.span("spec"):
                pass
        with tracer.trace("join-point"):
            tracer.merge_subtree(branch)
        assert tracer.root.children["join-point"].children["spec"].count == 1

    def test_merge_accumulates_across_workers(self, tracer):
        for _ in range(3):
            with tracer.capture() as branch:
                with tracer.span("spec"):
                    pass
            tracer.merge_subtree(branch, under="pool")
        assert tracer.root.children["pool"].children["spec"].count == 3

    def test_reset_refuses_with_open_span(self, tracer):
        ctx = tracer.span("open")
        ctx.__enter__()
        with pytest.raises(ModelParameterError):
            tracer.reset()
        ctx.__exit__(None, None, None)
        tracer.reset()
        assert tracer.root.children == {}

    def test_snapshot_is_plain_data(self, tracer):
        with tracer.trace("run"):
            pass
        snap = tracer.snapshot()
        assert snap["name"] == "root"
        assert snap["children"][0]["name"] == "run"
