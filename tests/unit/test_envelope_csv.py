"""Unit tests for the operating-envelope experiment and CSV trace export."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.experiments import envelope
from repro.sim.traces import TraceSet


class TestEnvelope:
    @pytest.fixture(scope="class")
    def result(self):
        return envelope.run_envelope(
            lux_levels=(200.0, 1000.0, 10000.0), temperatures_c=(0.0, 25.0, 55.0)
        )

    def test_grid_shape(self, result):
        assert result.efficiency.shape == (3, 3)

    def test_efficiency_bounded(self, result):
        assert np.all(result.efficiency > 0.0)
        assert np.all(result.efficiency <= 1.0)

    def test_no_cliff(self, result):
        assert result.worst > 0.5

    def test_trim_choice_matters(self):
        low = envelope.run_envelope(
            ratio=0.45, lux_levels=(200.0,), temperatures_c=(25.0,)
        )
        good = envelope.run_envelope(
            ratio=0.80, lux_levels=(200.0,), temperatures_c=(25.0,)
        )
        assert good.efficiency[0, 0] > low.efficiency[0, 0]

    def test_render(self, result):
        text = envelope.render(result)
        assert "operating envelope" in text
        assert "trim k" in text


class TestTraceCsv:
    def make_traces(self):
        ts = TraceSet()
        for t in range(4):
            ts.record("a", float(t), t * 2.0)
            ts.record("b", float(t) + 0.5, t * 3.0)
        return ts

    def test_csv_roundtrip(self, tmp_path):
        ts = self.make_traces()
        path = tmp_path / "out.csv"
        ts.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,a,b"
        # Union time base: 4 + 4 distinct times.
        assert len(lines) == 1 + 8

    def test_subset_export(self, tmp_path):
        ts = self.make_traces()
        path = tmp_path / "subset.csv"
        ts.to_csv(path, names=["a"])
        assert path.read_text().splitlines()[0] == "time,a"

    def test_missing_trace_rejected(self, tmp_path):
        ts = self.make_traces()
        with pytest.raises(TraceError):
            ts.to_csv(tmp_path / "x.csv", names=["nope"])

    def test_empty_set_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            TraceSet().to_csv(tmp_path / "x.csv")

    def test_values_interpolated(self, tmp_path):
        ts = self.make_traces()
        path = tmp_path / "interp.csv"
        ts.to_csv(path)
        rows = [line.split(",") for line in path.read_text().strip().splitlines()[1:]]
        by_time = {float(r[0]): (float(r[1]), float(r[2])) for r in rows}
        # At t=0.5, trace 'a' interpolates between 0 and 2.
        assert by_time[0.5][0] == pytest.approx(1.0)
