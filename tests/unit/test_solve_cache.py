"""The condition-keyed solve cache: counters, bounds, and hit rates."""

import pytest

from repro.env.profiles import StepProfile
from repro.errors import ModelParameterError
from repro.pv.cache import CachedPVCell, SolveCache, cached_cell
from repro.pv.cells import am_1815
from repro.sim.quasistatic import QuasiStaticSimulator


class _CountingController:
    name = "counting"

    def decide(self, obs):
        from repro.sim.quasistatic import ControlDecision

        return ControlDecision(operating_voltage=obs.cell_model.voc() * 0.6)


class TestSolveCache:
    def test_counts_hits_and_misses(self):
        cache = SolveCache(max_entries=8)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_size_stays_bounded_and_evictions_count(self):
        cache = SolveCache(max_entries=3)
        for key in "abcd":
            cache.put(key, key.upper())
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        assert "a" not in cache  # oldest entry went first

    def test_eviction_is_least_recently_used(self):
        cache = SolveCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_clear_keeps_counters(self):
        cache = SolveCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_capacity_validated(self):
        with pytest.raises(ModelParameterError):
            SolveCache(max_entries=0)


class TestCachedPVCell:
    def test_repeated_condition_returns_same_model_instance(self):
        cell = CachedPVCell(am_1815())
        first = cell.model_at(500.0)
        second = cell.model_at(500.0)
        assert first is second
        assert cell.stats.misses == 1
        assert cell.stats.hits == 1

    def test_exact_keying_matches_uncached_cell(self):
        plain = am_1815()
        cached = CachedPVCell(am_1815())
        for lux in (200.0, 350.0, 1000.0, 200.0):
            assert cached.voc(lux) == plain.voc(lux)
            assert cached.mpp(lux).power == plain.mpp(lux).power

    def test_quantized_keys_collapse_nearby_conditions(self):
        cached = CachedPVCell(am_1815(), lux_quantum=10.0)
        a = cached.model_at(501.0)
        b = cached.model_at(498.0)  # both snap to 500 lux
        assert a is b
        assert cached.stats.hits == 1

    def test_step_profile_run_exceeds_99_percent_hit_rate(self):
        # An office-style schedule revisits a handful of levels for hours;
        # one simulated hour at dt=10 is 360 lookups over 3 conditions.
        profile = StepProfile([(0.0, 400.0), (1200.0, 800.0), (2400.0, 150.0)])
        sim = QuasiStaticSimulator(
            am_1815(), _CountingController(), profile, record=False, cache=True
        )
        sim.run(3600.0, dt=10.0)
        stats = sim.cell.stats
        assert stats.lookups >= 360
        assert stats.hit_rate > 0.99

    def test_cached_cell_helper_is_idempotent(self):
        cell = cached_cell()
        assert cached_cell(cell) is cell
        assert isinstance(cell, CachedPVCell)

    def test_degraded_returns_fresh_cache(self):
        cached = CachedPVCell(am_1815(), max_entries=128, lux_quantum=5.0)
        cached.model_at(500.0)
        aged = cached.degraded(years=5.0)
        assert isinstance(aged, CachedPVCell)
        assert aged.cache.max_entries == 128
        assert aged.lux_quantum == 5.0
        assert len(aged.cache) == 0
        assert aged.voc(500.0) < cached.voc(500.0)

    def test_negative_quantum_rejected(self):
        with pytest.raises(ModelParameterError):
            CachedPVCell(am_1815(), lux_quantum=-1.0)
