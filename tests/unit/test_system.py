"""Unit tests for the full MPPT platform (config, controller, transient)."""

import pytest

from repro.converter.buck_boost import BuckBoostConverter
from repro.core.config import PlatformConfig
from repro.core.platform_transient import TransientPlatform
from repro.core.system import SampleHoldMPPT
from repro.env.scenarios import constant_bench
from repro.errors import ConfigurationError
from repro.pv.cells import am_1815
from repro.sim.quasistatic import Observation, QuasiStaticSimulator
from repro.sim.transient import TransientSimulator


class TestPlatformConfig:
    def test_paper_prototype_timing(self, prototype_config):
        assert prototype_config.astable.t_on == pytest.approx(39e-3)
        assert prototype_config.astable.t_off == pytest.approx(69.0)

    def test_paper_prototype_k_target(self, prototype_config):
        assert prototype_config.k_target == pytest.approx(0.596, abs=0.002)

    def test_chain_current_is_7_6_uA(self, prototype_config):
        assert prototype_config.sampling_chain_current() == pytest.approx(7.6e-6, rel=0.02)

    def test_metrology_current_about_8_uA(self, prototype_config):
        assert prototype_config.metrology_current() == pytest.approx(8.4e-6, rel=0.05)

    def test_sampling_duty_tiny(self, prototype_config):
        assert prototype_config.sampling_duty() < 1e-3

    def test_operating_point_doubles_held(self, prototype_config):
        assert prototype_config.operating_point_from_held(1.6) == pytest.approx(3.2)

    def test_trimmed_for_cell_matches_cell_k(self):
        cell = am_1815()
        config = PlatformConfig.trimmed_for_cell(cell, lux=1000.0)
        assert config.k_target == pytest.approx(cell.mpp(1000.0).k, rel=1e-6)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(alpha=0.0)


class TestSampleHoldMPPT:
    def test_samples_on_astable_grid(self):
        controller = SampleHoldMPPT(assume_started=True)
        sim = QuasiStaticSimulator(am_1815(), controller, constant_bench(1000.0), record=False)
        sim.run(3.0 * controller.config.astable.period + 2.0, dt=1.0)
        assert controller.sample_count == 4  # t=0 plus three periods

    def test_operating_point_near_design_ratio(self):
        controller = SampleHoldMPPT(assume_started=True)
        sim = QuasiStaticSimulator(am_1815(), controller, constant_bench(1000.0), record=False)
        sim.run(10.0, dt=1.0)
        voc = am_1815().voc(1000.0)
        v_op = controller.config.operating_point_from_held(controller.held_sample)
        assert v_op == pytest.approx(0.5955 * voc, rel=0.01)

    def test_trimmed_config_tracks_near_mpp(self):
        cell = am_1815()
        controller = SampleHoldMPPT(
            config=PlatformConfig.trimmed_for_cell(cell, lux=1000.0), assume_started=True
        )
        sim = QuasiStaticSimulator(cell, controller, constant_bench(1000.0), record=False)
        summary = sim.run(300.0, dt=1.0)
        assert summary.tracking_efficiency > 0.99

    def test_duty_loss_matches_astable(self):
        controller = SampleHoldMPPT(assume_started=True)
        sim = QuasiStaticSimulator(
            am_1815(), controller, constant_bench(1000.0), record=False
        )
        summary = sim.run(controller.config.astable.period * 10.0, dt=1.0)
        # Duty loss is bounded by the astable duty cycle (~0.056 %).
        assert summary.tracking_efficiency > 0.8

    def test_overhead_current_near_8uA(self):
        controller = SampleHoldMPPT(assume_started=True)
        obs_model = am_1815().model_at(1000.0)
        obs = Observation(
            time=100.0, dt=1.0, cell_model=obs_model, lux=1000.0,
            storage_voltage=3.0, supply_voltage=3.3,
        )
        controller._next_pulse = 1e9  # no sample this step
        decision = controller.decide(obs)
        assert decision.overhead_current == pytest.approx(8.4e-6, rel=0.05)

    def test_cold_start_completes_at_200_lux(self):
        controller = SampleHoldMPPT()  # must cold-start
        sim = QuasiStaticSimulator(am_1815(), controller, constant_bench(200.0), record=False)
        sim.run(10.0, dt=0.5)
        assert controller.powered

    def test_no_cold_start_in_darkness(self):
        controller = SampleHoldMPPT()
        sim = QuasiStaticSimulator(am_1815(), controller, constant_bench(0.5), record=False)
        summary = sim.run(30.0, dt=1.0)
        assert not controller.powered
        assert summary.energy_at_cell == 0.0

    def test_active_blocks_harvest_until_valid_sample(self):
        controller = SampleHoldMPPT(assume_started=True)
        model = am_1815().model_at(1000.0)
        controller._next_pulse = 1e9  # never sample -> held stays 0
        obs = Observation(
            time=0.0, dt=1.0, cell_model=model, lux=1000.0,
            storage_voltage=3.0, supply_voltage=3.3,
        )
        decision = controller.decide(obs)
        assert decision.operating_voltage is None
        assert decision.note == "ACTIVE low"

    def test_reset_returns_to_dead(self):
        controller = SampleHoldMPPT()
        sim = QuasiStaticSimulator(am_1815(), controller, constant_bench(500.0), record=False)
        sim.run(5.0, dt=0.5)
        controller.reset()
        assert not controller.powered
        assert controller.sample_count == 0
        assert controller.held_sample == pytest.approx(0.0, abs=2e-3)

    def test_steady_state_helper_is_pure(self):
        controller = SampleHoldMPPT(assume_started=True)
        model = am_1815().model_at(1000.0)
        v1 = controller.steady_state_operating_voltage(model)
        v2 = controller.steady_state_operating_voltage(model)
        assert v1 == pytest.approx(v2)
        assert controller.config.sample_hold.held_voltage == 0.0  # untouched


class TestTransientPlatform:
    def test_warm_start_places_regulation_point(self):
        platform = TransientPlatform(cell=am_1815(), lux=1000.0)
        platform.warm_start(t_to_next_pulse=0.1)
        held = platform.config.sample_hold.held_sample
        assert platform.v_pv == pytest.approx(held / platform.config.alpha, rel=1e-9)

    def test_pulse_fires_on_schedule_after_warm_start(self):
        platform = TransientPlatform(cell=am_1815(), lux=1000.0)
        platform.warm_start(t_to_next_pulse=0.05)
        sim = TransientSimulator(platform, dt=50e-6)
        sim.run(0.2)
        pulse = sim.traces["PULSE"]
        rise = pulse.first_crossing(1.65)
        assert rise == pytest.approx(0.05, abs=0.02)

    def test_sampling_updates_held_to_divided_voc(self):
        platform = TransientPlatform(cell=am_1815(), lux=1000.0)
        platform.warm_start(t_to_next_pulse=0.02)
        sim = TransientSimulator(platform, dt=50e-6)
        sim.run(0.02 + 0.039 + 0.15)
        model = am_1815().model_at(1000.0)
        expected = model.voc() * platform.config.sample_hold.nominal_ratio
        assert sim.traces["HELD_SAMPLE"].final() == pytest.approx(expected, rel=0.01)

    def test_pv_relaxes_toward_voc_during_pulse(self):
        platform = TransientPlatform(cell=am_1815(), lux=1000.0)
        platform.warm_start(t_to_next_pulse=0.02)
        sim = TransientSimulator(platform, dt=50e-6)
        sim.run(0.02 + 0.039 + 0.05)
        model = am_1815().model_at(1000.0)
        assert sim.traces["PV_IN"].maximum() == pytest.approx(model.voc(), rel=0.01)

    def test_self_powered_cold_start(self):
        platform = TransientPlatform(cell=am_1815(), lux=500.0, self_powered=True)
        sim = TransientSimulator(platform, dt=2e-4, record_every=10)
        sim.run(2.0)
        assert platform.config.coldstart.powered
        assert sim.traces["V_C1"].final() > platform.config.coldstart.turn_off_voltage

    def test_signals_exposed(self):
        platform = TransientPlatform(cell=am_1815(), lux=1000.0)
        signals = platform.signals()
        for name in ("PULSE", "PV_IN", "HELD_SAMPLE", "ACTIVE", "V_C1"):
            assert name in signals
