"""Unit tests for trace recording and the event queue."""

import pytest

from repro.errors import SimulationError, TraceError
from repro.sim.events import EventQueue
from repro.sim.traces import Trace, TraceSet


class TestTrace:
    def test_append_and_len(self):
        t = Trace("x")
        t.append(0.0, 1.0)
        t.append(1.0, 2.0)
        assert len(t) == 2

    def test_monotonic_time_enforced(self):
        t = Trace("x")
        t.append(1.0, 0.0)
        with pytest.raises(TraceError):
            t.append(0.5, 0.0)

    def test_equal_times_allowed(self):
        t = Trace("x")
        t.append(1.0, 0.0)
        t.append(1.0, 1.0)  # steps/edges
        assert len(t) == 2

    def test_interpolated_at(self):
        t = Trace("x")
        t.append(0.0, 0.0)
        t.append(2.0, 4.0)
        assert t.at(1.0) == pytest.approx(2.0)

    def test_at_empty_raises(self):
        with pytest.raises(TraceError):
            Trace("x").at(0.0)

    def test_window(self):
        t = Trace("x")
        for i in range(10):
            t.append(float(i), float(i))
        w = t.window(2.5, 6.5)
        assert w.minimum() == 3.0
        assert w.maximum() == 6.0

    def test_window_rejects_reversed(self):
        with pytest.raises(TraceError):
            Trace("x").window(2.0, 1.0)

    def test_mean_is_time_weighted(self):
        t = Trace("x")
        # Value 0 for 9 s then 10 for 1 s: time-weighted mean ~ 1, not 5.
        t.append(0.0, 0.0)
        t.append(9.0, 0.0)
        t.append(9.0, 10.0)
        t.append(10.0, 10.0)
        assert t.mean() == pytest.approx(1.0, abs=0.01)

    def test_first_crossing_rising_interpolates(self):
        t = Trace("x")
        t.append(0.0, 0.0)
        t.append(1.0, 2.0)
        assert t.first_crossing(1.0) == pytest.approx(0.5)

    def test_first_crossing_falling(self):
        t = Trace("x")
        t.append(0.0, 2.0)
        t.append(1.0, 0.0)
        assert t.first_crossing(1.0, rising=False) == pytest.approx(0.5)
        assert t.first_crossing(1.0, rising=True) is None

    def test_final(self):
        t = Trace("x")
        t.append(0.0, 7.0)
        assert t.final() == 7.0


class TestTraceSet:
    def test_record_and_lookup(self):
        ts = TraceSet()
        ts.record("a", 0.0, 1.0)
        assert "a" in ts
        assert ts["a"].final() == 1.0

    def test_missing_trace_error_lists_available(self):
        ts = TraceSet()
        ts.record("a", 0.0, 1.0)
        with pytest.raises(TraceError, match="'a'"):
            ts["b"]

    def test_names_sorted(self):
        ts = TraceSet()
        ts.record("b", 0.0, 0.0)
        ts.record("a", 0.0, 0.0)
        assert ts.names() == ["a", "b"]

    def test_declare_idempotent(self):
        ts = TraceSet()
        first = ts.declare("x", unit="V")
        second = ts.declare("x")
        assert first is second


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda t: fired.append(("b", t)))
        q.schedule(1.0, lambda t: fired.append(("a", t)))
        q.fire_due(3.0)
        assert fired == [("a", 1.0), ("b", 2.0)]

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda t: fired.append("first"))
        q.schedule(1.0, lambda t: fired.append("second"))
        q.fire_due(1.0)
        assert fired == ["first", "second"]

    def test_future_events_stay_queued(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, lambda t: fired.append(t))
        assert q.fire_due(1.0) == 0
        assert len(q) == 1
        assert q.next_time == 5.0

    def test_actions_may_reschedule(self):
        q = EventQueue()
        fired = []

        def action(t):
            fired.append(t)
            if t < 3.0:
                q.schedule(t + 1.0, action)

        q.schedule(1.0, action)
        q.fire_due(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_zero_delay_loop_detected(self):
        q = EventQueue()

        def forever(t):
            q.schedule(t, forever)

        q.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            q.fire_due(0.0)
