"""Compiled-tier equivalence: fused kernels + LUT vs the exact engines.

Contracts covered here:

* every comparison lane run by the compiled tier matches the scalar
  engine within its declared tolerance (hill climbing looser — its
  probes feed back through the table);
* :class:`~repro.sim.compiled.CompiledFleetSimulator` matches
  :class:`~repro.sim.fleet.FleetSimulator` within the LUT budget on
  clean and fully-faulted campaigns;
* the fused kernel (``fused="python"``) is bit-identical to the same
  subclass's NumPy per-step path — the fusion itself changes nothing,
  only the LUT does;
* checkpoint/resume through the fused path is bitwise;
* the LUT validation gate is wired into construction;
* the photodiode calibration valve falls back to the scalar engine;
* engine resolution (``auto`` included) behaves across entry points.
"""

import json

import pytest

from repro.converter.buck_boost import BuckBoostConverter
from repro.core.config import PlatformConfig
from repro.core.system import SampleHoldMPPT
from repro.env.profiles import ConstantProfile
from repro.errors import LUTValidationError, ModelParameterError
from repro.experiments.comparison import default_controllers, run_comparison
from repro.faults.components import (
    ConverterBrownoutFault,
    HoldLeakageFault,
    StorageFault,
)
from repro.faults.schedule import FaultSchedule
from repro.node.scheduler import EnergyAwareScheduler
from repro.node.sensor_node import SensorNode
from repro.pv.cells import am_1815
from repro.pv.thermal import CellThermalModel
from repro.sim.compiled import CompiledFleetSimulator, run_comparison_scenario
from repro.sim.engines import available_engines, fleet_class, resolve_engine
from repro.sim.fleet import FleetMember, FleetSimulator
from repro.sim.precompute import precompute_conditions
from repro.storage.supercap import Supercapacitor

ENERGY_FIELDS = (
    "duration",
    "energy_ideal",
    "energy_at_cell",
    "energy_delivered",
    "energy_overhead",
    "energy_load",
    "final_storage_voltage",
)

DUR = 4 * 3600.0
DT = 60.0

# Declared compiled-tier tolerances (energies relative to the lane's
# ideal harvest; see tests/integration/test_golden_traces.py for the
# 24 h measurement these bounds envelope).
ENERGY_TOL = {"default": 1e-3, "hill-climbing": 2e-2}


@pytest.fixture(scope="module")
def conditions():
    cell = am_1815()
    env = ConstantProfile(500.0)
    thermal = CellThermalModel(area_cm2=cell.parameters.area_cm2)
    pc = precompute_conditions(cell, env, DUR, DT, thermal=thermal)
    return cell, env, pc


def _clean_member(pc):
    ctl = SampleHoldMPPT(config=PlatformConfig.paper_prototype(), assume_started=True)
    return FleetMember(
        controller=ctl,
        precomputed=pc,
        converter=BuckBoostConverter(),
        storage=Supercapacitor(capacitance=25.0, rated_voltage=5.5, voltage=2.7),
        supply_voltage=3.0,
    )


def _faulted_member(pc):
    ctl = SampleHoldMPPT(config=PlatformConfig.paper_prototype(), assume_started=True)
    ctl = HoldLeakageFault(
        ctl,
        FaultSchedule.bursts(duration=DUR, rate_per_hour=1.0, mean_width=900.0, seed=401),
        droop_multiplier=40.0,
    )
    conv = ConverterBrownoutFault(
        BuckBoostConverter(),
        FaultSchedule.periodic(first=3600.0, period=7200.0, width=300.0, count=2),
    )
    store = StorageFault(
        Supercapacitor(capacitance=25.0, rated_voltage=5.5, voltage=2.7),
        FaultSchedule.bursts(duration=DUR, rate_per_hour=0.5, mean_width=300.0, seed=307),
        mode="short",
        short_resistance=200.0,
    )
    node = SensorNode(payload_bytes=16)
    sched = EnergyAwareScheduler(
        node, store.base, v_survival=2.3, v_comfort=4.2, min_period=30, max_period=3600
    )
    return FleetMember(
        controller=ctl, precomputed=pc, converter=conv, storage=store,
        load=sched, supply_voltage=3.0,
    )


def _assert_within_budget(exact, compiled, tol):
    scale = max(abs(exact.energy_ideal), 1e-9)
    assert compiled.duration == exact.duration
    for name in ("energy_at_cell", "energy_delivered", "energy_overhead", "energy_load"):
        err = abs(getattr(compiled, name) - getattr(exact, name)) / scale
        assert err <= tol, f"{name}: {err:.3e} > {tol:.1e}"
    assert abs(compiled.final_storage_voltage - exact.final_storage_voltage) <= 1e-2


class TestComparisonLanes:
    @pytest.fixture(scope="class")
    def both(self):
        kwargs = dict(duration=DUR, dt=30.0, scenarios=["office-desk"])
        scalar = run_comparison(engine="scalar", **kwargs)
        compiled = run_comparison(engine="compiled", **kwargs)
        return scalar, compiled

    def test_every_lane_within_declared_tolerance(self, both):
        scalar, compiled = both
        assert [(c.technique, c.scenario) for c in scalar] == [
            (c.technique, c.scenario) for c in compiled
        ]
        for a, b in zip(scalar, compiled):
            tol = ENERGY_TOL.get(a.technique, ENERGY_TOL["default"])
            _assert_within_budget(a.summary, b.summary, tol)

    def test_ideal_energy_and_duration_replayed_exactly(self, both):
        scalar, compiled = both
        for a, b in zip(scalar, compiled):
            assert b.summary.duration == a.summary.duration
            assert b.summary.energy_ideal == pytest.approx(
                a.summary.energy_ideal, rel=1e-12, abs=1e-18
            )

    def test_photodiode_valve_falls_back_to_scalar(self, conditions):
        # A store that starts below the photodiode tracker's minimum
        # supply forces a bootstrap episode before its one-time
        # calibration; the compiled lane must decline rather than
        # calibrate at the wrong instant.
        cell, env, _ = conditions
        factories = default_controllers(cell)
        lanes = [
            (
                "photodiode-ref",
                factories["photodiode-ref"](),
                BuckBoostConverter(),
                Supercapacitor(capacitance=25.0, rated_voltage=5.5, voltage=1.0),
            )
        ]
        out, pc = run_comparison_scenario(
            cell, "valve-test", lambda: ConstantProfile(500.0), lanes, DUR, DT
        )
        assert out["photodiode-ref"] is None
        assert pc is not None  # handed back for the scalar rerun


class TestCompiledFleet:
    @pytest.mark.parametrize("build", (_clean_member, _faulted_member))
    def test_matches_exact_fleet_within_budget(self, conditions, build):
        _, _, pc = conditions
        exact = FleetSimulator([build(pc)]).run()
        compiled = CompiledFleetSimulator([build(pc)]).run()
        for a, b in zip(exact, compiled):
            _assert_within_budget(a, b, ENERGY_TOL["default"])

    def test_fused_kernel_bitwise_matches_numpy_path(self, conditions):
        # Same subclass, same LUT — the fused loop itself must not move
        # a single bit relative to the per-step NumPy path.
        _, _, pc = conditions
        a = CompiledFleetSimulator([_faulted_member(pc), _clean_member(pc)], fused="python")
        b = CompiledFleetSimulator([_faulted_member(pc), _clean_member(pc)], fused="off")
        for x, y in zip(a.run(), b.run()):
            for name in ENERGY_FIELDS:
                assert getattr(x, name) == getattr(y, name), name
        assert a._reports.tolist() == b._reports.tolist()
        assert a._sample_count.tolist() == b._sample_count.tolist()

    def test_checkpoint_resume_bitwise_through_fused_path(self, conditions):
        _, _, pc = conditions

        def build():
            return CompiledFleetSimulator(
                [_faulted_member(pc), _clean_member(pc)], fused="python"
            )

        full = build().run()
        first = build()
        first.run(steps=100)
        blob = json.loads(json.dumps(first.state_dict()))  # real serialise trip
        second = build()
        second.load_state(blob)
        resumed = second.run()
        for x, y in zip(full, resumed):
            for name in ENERGY_FIELDS:
                assert getattr(x, name) == getattr(y, name), name

    def test_validation_gate_wired_into_construction(self, conditions):
        _, _, pc = conditions
        with pytest.raises(LUTValidationError):
            CompiledFleetSimulator([_clean_member(pc)], grid_points=8)
        # ...and can be explicitly disarmed without dropping the table.
        sim = CompiledFleetSimulator([_clean_member(pc)], grid_points=8, validate_lut=False)
        assert sim.lut_report is None
        assert sim.lut.grid_points == 8

    def test_rejects_unknown_fused_mode(self, conditions):
        _, _, pc = conditions
        with pytest.raises(ModelParameterError):
            CompiledFleetSimulator([_clean_member(pc)], fused="hyperspeed")


class TestEngineRegistry:
    def test_known_engines(self):
        assert available_engines() == ("scalar", "fleet", "compiled")

    def test_resolve_passthrough_and_auto(self):
        assert resolve_engine("scalar") == "scalar"
        assert resolve_engine("fleet") == "fleet"
        assert resolve_engine("compiled") == "compiled"
        assert resolve_engine("auto") == "compiled"
        assert resolve_engine("auto", allowed=("fleet", "scalar")) == "fleet"
        assert resolve_engine("auto", allowed=("scalar",)) == "scalar"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ModelParameterError):
            resolve_engine("quantum")
        with pytest.raises(ModelParameterError):
            resolve_engine("compiled", allowed=("fleet", "scalar"))
        with pytest.raises(ModelParameterError):
            resolve_engine(42)

    def test_fleet_class_mapping(self):
        assert fleet_class("fleet") is FleetSimulator
        assert fleet_class("compiled") is CompiledFleetSimulator
        with pytest.raises(ModelParameterError):
            fleet_class("scalar")

    def test_comparison_rejects_unknown_engine(self):
        with pytest.raises(ModelParameterError):
            run_comparison(duration=600.0, dt=60.0, engine="gpu")
