"""HTTP failure-path tests for the service (repro.service.server).

The satellite contract: malformed/oversize bodies get field-level 400s
(or 413), a full queue returns 429 and never hangs, duplicate specs
coalesce onto the same job id, a poison job is quarantined while its
siblings finish, and a client disconnecting mid-response never takes a
worker or the listener down.
"""

import http.client
import json
import socket
import time

import pytest

from repro.errors import ServiceClientError
from repro.service.client import ServiceClient
from repro.service.server import MAX_BODY_BYTES, run_server

ENDURANCE = {"kind": "endurance", "params": {"days": 1}}


def ok_runner(spec, **kwargs):
    return {"kind": spec.kind, "ok": True}


def slow_runner(spec, **kwargs):
    time.sleep(0.2)
    return {"ok": True}


@pytest.fixture
def make_server(tmp_path):
    servers = []

    def factory(**kwargs):
        kwargs.setdefault("data_dir", tmp_path / "jobs")
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("backoff_base", 0.01)
        kwargs.setdefault("backoff_cap", 0.05)
        kwargs.setdefault("runner", ok_runner)
        server, _thread = run_server(port=0, **kwargs)
        servers.append(server)
        return server, ServiceClient(server.url)

    yield factory
    for server in servers:
        server.close()


def raw_request(server, method, path, body=b"", headers=None):
    """A request below the client abstraction, for malformed payloads."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestBadRequests:
    def test_malformed_json_is_400(self, make_server):
        server, _ = make_server()
        status, _, body = raw_request(server, "POST", "/v1/jobs", b"{nope")
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_non_object_body_is_400_with_field(self, make_server):
        server, _ = make_server()
        status, _, body = raw_request(server, "POST", "/v1/jobs", b"[1, 2]")
        assert status == 400
        assert json.loads(body)["field"] == "body"

    def test_config_error_carries_field_detail(self, make_server):
        _, client = make_server()
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"kind": "endurance", "params": {"days": -3}})
        assert excinfo.value.status == 400
        assert excinfo.value.payload["field"] == "days"
        assert "days" in excinfo.value.payload["error"]

    def test_unknown_parameter_named_in_field(self, make_server):
        _, client = make_server()
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"kind": "endurance", "params": {"weeks": 1}})
        assert excinfo.value.status == 400
        assert excinfo.value.payload["field"] == "weeks"

    def test_oversize_body_is_413(self, make_server):
        server, _ = make_server()
        blob = b'{"kind": "endurance", "pad": "' + b"x" * MAX_BODY_BYTES + b'"}'
        status, _, body = raw_request(server, "POST", "/v1/jobs", blob)
        assert status == 413
        assert "exceeds" in json.loads(body)["error"]

    def test_unknown_routes_are_404(self, make_server):
        server, client = make_server()
        assert raw_request(server, "GET", "/v2/jobs")[0] == 404
        assert raw_request(server, "POST", "/v1/nonsense")[0] == 404
        with pytest.raises(ServiceClientError) as excinfo:
            client.get("ffffffffffff-000404")
        assert excinfo.value.status == 404


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, make_server):
        server, client = make_server(workers=0, queue_depth=1)
        client.submit({"kind": "endurance", "params": {"days": 1}})
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"kind": "endurance", "params": {"days": 2}})
        assert excinfo.value.status == 429
        assert excinfo.value.payload["retry_after_s"] > 0
        status, headers, _ = raw_request(
            server,
            "POST",
            "/v1/jobs",
            json.dumps({"kind": "endurance", "params": {"days": 3}}).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert status == 429
        assert int(headers["Retry-After"]) >= 1

    def test_readyz_reports_queue_full(self, make_server):
        server, client = make_server(workers=0, queue_depth=1)
        assert client.ready()
        client.submit(ENDURANCE)
        status, _, body = raw_request(server, "GET", "/readyz")
        assert status == 503
        assert json.loads(body)["reason"] == "queue-full"
        assert client.healthy()  # liveness unaffected

    def test_draining_server_rejects_with_503(self, make_server):
        server, client = make_server(workers=0)
        server.service.begin_drain()
        status, _, body = raw_request(server, "GET", "/readyz")
        assert status == 503
        assert json.loads(body)["reason"] == "draining"
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(ENDURANCE)
        assert excinfo.value.status == 503


class TestCoalescing:
    def test_duplicate_spec_returns_same_job_id(self, make_server):
        _, client = make_server(workers=0)
        first = client.submit(ENDURANCE)
        second = client.submit(dict(ENDURANCE))
        assert not first["coalesced"]
        assert second["coalesced"]
        assert second["job_id"] == first["job_id"]

    def test_completed_result_coalesces_within_ttl(self, make_server):
        _, client = make_server(result_ttl=60.0)
        job = client.submit(ENDURANCE)
        client.wait(job["job_id"], timeout=10)
        again = client.submit(ENDURANCE)
        assert again["coalesced"] and again["job_id"] == job["job_id"]


class TestLifecycleOverHttp:
    def test_submit_wait_fetch_result(self, make_server):
        _, client = make_server()
        job = client.submit(ENDURANCE)
        done = client.wait(job["job_id"], timeout=10)
        assert done["result"] == {"kind": "endurance", "ok": True}
        listed = client.list_jobs()
        assert [j["job_id"] for j in listed] == [job["job_id"]]
        assert "result" not in listed[0]  # list omits bulky results

    def test_poison_job_quarantined_while_siblings_complete(self, make_server):
        def selective(spec, **kwargs):
            if spec.kind == "montecarlo":
                raise RuntimeError("montecarlo poisoned")
            return {"ok": True}

        _, client = make_server(runner=selective, workers=2, max_attempts=2)
        poison = client.submit({"kind": "montecarlo", "params": {"boards": 10}})
        siblings = [
            client.submit({"kind": "endurance", "params": {"days": d}})
            for d in (1, 2)
        ]
        for job in siblings:
            client.wait(job["job_id"], timeout=10)
        with pytest.raises(ServiceClientError) as excinfo:
            client.wait(poison["job_id"], timeout=10)
        dead = excinfo.value.payload
        assert dead["state"] == "quarantined"
        assert dead["attempts"] == 2
        assert "RuntimeError: montecarlo poisoned" in dead["error"]

    def test_cancel_queued_then_conflict(self, make_server):
        _, client = make_server(workers=0)
        job = client.submit(ENDURANCE)
        cancelled = client.cancel(job["job_id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel(job["job_id"])
        assert excinfo.value.status == 409

    def test_metrics_exposition_includes_service_gauges(self, make_server):
        _, client = make_server(workers=0)
        client.submit(ENDURANCE)
        text = client.metrics_text()
        assert "repro_service_queue_depth 1" in text
        assert 'repro_service_jobs{state="queued"} 1' in text
        assert "repro_service_draining 0" in text


class TestClientDisconnect:
    def test_disconnect_mid_response_leaves_server_healthy(self, make_server):
        server, client = make_server(runner=slow_runner)
        job = client.submit(ENDURANCE)
        # Open a raw socket, fire a request, slam the connection shut
        # before reading the response the handler is writing.
        for _ in range(3):
            sock = socket.create_connection((server.host, server.port), timeout=5)
            sock.sendall(b"GET /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.close()
        # The listener and the worker pool shrug it off: the job still
        # completes and new requests are served.
        done = client.wait(job["job_id"], timeout=10)
        assert done["state"] == "succeeded"
        assert client.healthy()

    def test_disconnect_before_body_is_harmless(self, make_server):
        server, client = make_server()
        sock = socket.create_connection((server.host, server.port), timeout=5)
        sock.sendall(
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\nContent-Length: 500\r\n\r\n"
        )
        sock.close()  # promised 500 bytes, sent none
        assert client.healthy()
