"""Unit tests for the cell thermal model and the TEG extension."""

import pytest

from repro.errors import ModelParameterError
from repro.pv.teg import ThermoelectricGenerator
from repro.pv.thermal import CellThermalModel
from repro.units import ZERO_CELSIUS


class TestThermalModel:
    def test_starts_at_ambient(self):
        model = CellThermalModel(area_cm2=25.0)
        assert model.temperature == pytest.approx(model.ambient_k)

    def test_indoor_light_barely_heats(self):
        model = CellThermalModel(area_cm2=25.0)
        t_ss = model.steady_state_temperature(500.0)
        assert t_ss - model.ambient_k < 0.5

    def test_full_sun_heats_realistically(self):
        model = CellThermalModel(area_cm2=25.0)
        # Full sun: ~105 klux of daylight-efficacy radiation.
        t_ss = model.steady_state_temperature(105000.0, efficacy_lm_per_w=105.0)
        rise = t_ss - model.ambient_k
        assert 15.0 < rise < 45.0

    def test_step_approaches_steady_state(self):
        model = CellThermalModel(area_cm2=25.0)
        target = model.steady_state_temperature(105000.0, efficacy_lm_per_w=105.0)
        for _ in range(100):
            model.step(105000.0, dt=60.0, efficacy_lm_per_w=105.0)
        assert model.temperature == pytest.approx(target, abs=0.1)

    def test_step_is_unconditionally_stable(self):
        model = CellThermalModel(area_cm2=25.0)
        # Gigantic dt must land exactly on the steady state, not blow up.
        model.step(105000.0, dt=1e9, efficacy_lm_per_w=105.0)
        assert model.temperature == pytest.approx(
            model.steady_state_temperature(105000.0, efficacy_lm_per_w=105.0)
        )

    def test_cools_in_darkness(self):
        model = CellThermalModel(area_cm2=25.0, temperature=ZERO_CELSIUS + 60.0)
        model.step(0.0, dt=3600.0)
        assert model.temperature == pytest.approx(model.ambient_k, abs=0.5)

    def test_rejects_negative_dt(self):
        with pytest.raises(ModelParameterError):
            CellThermalModel(area_cm2=25.0).step(100.0, dt=-1.0)

    def test_rejects_bad_area(self):
        with pytest.raises(ModelParameterError):
            CellThermalModel(area_cm2=0.0)


class TestTEG:
    def teg(self):
        return ThermoelectricGenerator(seebeck_v_per_k=0.05, internal_resistance=5.0)

    def test_voc_linear_in_delta_t(self):
        teg = self.teg()
        assert teg.voc(10.0) == pytest.approx(0.5)
        assert teg.voc(20.0) == pytest.approx(1.0)

    def test_no_output_without_gradient(self):
        teg = self.teg()
        assert teg.voc(0.0) == 0.0
        assert teg.mpp(0.0).power == 0.0

    def test_mpp_at_half_voc_exactly(self):
        teg = self.teg()
        mpp = teg.mpp(10.0)
        assert mpp.voltage == pytest.approx(teg.voc(10.0) / 2.0, rel=1e-12)
        # Matched-load maximum: V^2/(4R).
        assert mpp.power == pytest.approx(0.5**2 / (4.0 * 5.0), rel=1e-12)

    def test_k_is_half(self):
        assert self.teg().k == 0.5

    def test_power_unimodal_around_mpp(self):
        teg = self.teg()
        mpp = teg.mpp(10.0)
        for dv in (-0.05, 0.05):
            assert teg.power_at(mpp.voltage + dv, 10.0) < mpp.power

    def test_power_clamped_outside_quadrant(self):
        teg = self.teg()
        assert teg.power_at(-0.1, 10.0) == 0.0
        assert teg.power_at(1.0, 10.0) == 0.0  # above Voc

    def test_current_linear(self):
        teg = self.teg()
        assert teg.current_at(0.0, 10.0) == pytest.approx(0.1)  # Isc = Voc/R
        assert teg.current_at(0.5, 10.0) == pytest.approx(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelParameterError):
            ThermoelectricGenerator(seebeck_v_per_k=0.0, internal_resistance=5.0)
        with pytest.raises(ModelParameterError):
            ThermoelectricGenerator(seebeck_v_per_k=0.05, internal_resistance=0.0)
