"""Unit tests for the astable multivibrator."""

import math

import pytest

from repro.core.astable import AstableMultivibrator
from repro.errors import ModelParameterError


def paper_astable(**kwargs):
    return AstableMultivibrator.from_timing(t_on=39e-3, t_off=69.0, **kwargs)


class TestDesign:
    def test_from_timing_reproduces_requested_periods(self):
        a = paper_astable()
        assert a.t_on == pytest.approx(39e-3, rel=1e-12)
        assert a.t_off == pytest.approx(69.0, rel=1e-12)

    def test_timing_formula(self):
        a = AstableMultivibrator(r_on=10e3, r_off=1e6, capacitance=1e-6, beta=0.5)
        expected_on = 10e3 * 1e-6 * math.log(3.0)
        assert a.t_on == pytest.approx(expected_on, rel=1e-12)
        assert a.t_off == pytest.approx(100.0 * expected_on, rel=1e-12)

    def test_duty_cycle_tiny_for_paper_design(self):
        a = paper_astable()
        assert a.duty_cycle == pytest.approx(39e-3 / 69.039, rel=1e-9)
        assert a.duty_cycle < 1e-3

    def test_rejects_bad_beta(self):
        with pytest.raises(ModelParameterError):
            AstableMultivibrator(r_on=1e3, r_off=1e3, capacitance=1e-6, beta=1.0)

    def test_rejects_bad_timing_request(self):
        with pytest.raises(ModelParameterError):
            AstableMultivibrator.from_timing(t_on=0.0, t_off=1.0)

    def test_thresholds_bracket_half_supply(self):
        a = paper_astable()
        lower, upper = a.thresholds
        assert lower < a.supply / 2.0 < upper
        assert upper - lower == pytest.approx(a.beta * a.supply, rel=1e-12)


class TestPhaseAPI:
    def test_pulse_high_at_cycle_start(self):
        a = paper_astable()
        assert a.is_pulse_high(0.0)
        assert a.is_pulse_high(0.038)
        assert not a.is_pulse_high(0.040)
        assert not a.is_pulse_high(30.0)
        assert a.is_pulse_high(a.period + 0.001)

    def test_pulse_count_in_interval(self):
        a = paper_astable()
        assert a.pulse_count_in(0.0, a.period) == 1
        assert a.pulse_count_in(0.0, 3.0 * a.period) == 3
        assert a.pulse_count_in(1.0, 2.0) == 0
        assert a.pulse_count_in(1.0, a.period + 1.0) == 1

    def test_pulse_count_rejects_reversed_interval(self):
        with pytest.raises(ModelParameterError):
            paper_astable().pulse_count_in(5.0, 1.0)

    def test_next_pulse_start(self):
        a = paper_astable()
        assert a.next_pulse_start(1.0) == pytest.approx(a.period)
        assert a.next_pulse_start(a.period) == pytest.approx(a.period)


class TestCurrentBudget:
    def test_average_current_matches_paper_scale(self):
        a = paper_astable()
        # The astable block alone is well under 1 uA.
        assert 0.5e-6 < a.average_current() < 1.5e-6

    def test_timing_network_current_formula(self):
        a = paper_astable()
        expected = 2.0 * a.capacitance * a.beta * a.supply / a.period
        assert a.timing_network_current() == pytest.approx(expected, rel=1e-12)

    def test_comparator_dominates_budget(self):
        a = paper_astable()
        assert a.comparator.quiescent_current > a.timing_network_current()


class TestTransientAPI:
    def test_oscillates_when_powered(self):
        a = AstableMultivibrator.from_timing(t_on=1e-3, t_off=10e-3)
        dt = 20e-6
        edges = 0
        last = a.advance(dt)
        for _ in range(int(0.1 / dt)):
            now = a.advance(dt)
            if now != last:
                edges += 1
            last = now
        # ~9 periods in 100 ms -> ~18 edges; allow simulation slop.
        assert 12 <= edges <= 24

    def test_measured_pulse_width_matches_design(self):
        a = AstableMultivibrator.from_timing(t_on=5e-3, t_off=50e-3)
        dt = 5e-6
        t = 0.0
        rise = fall = None
        last = a.advance(dt)
        while fall is None and t < 0.2:
            t += dt
            now = a.advance(dt)
            if now and not last and rise is None:
                rise = t
            if last and not now and rise is not None:
                fall = t
            last = now
        assert fall is not None
        assert fall - rise == pytest.approx(5e-3, rel=0.05)

    def test_dead_below_min_supply(self):
        a = paper_astable()
        for _ in range(100):
            assert not a.advance(1e-3, supply=1.0)
        assert a.capacitor_voltage == pytest.approx(0.0, abs=1e-6)

    def test_first_pulse_fires_quickly_on_wake(self):
        # Sec. IV-B: the system "quickly generate[s] a signal on the
        # PULSE line" — the first pulse begins within one on-period.
        a = paper_astable()
        assert a.advance(1e-4, supply=3.3)  # output goes high immediately

    def test_reset_clears_state(self):
        a = paper_astable()
        a.advance(1e-3)
        a.reset()
        assert a.capacitor_voltage == 0.0
        assert not a.output_high

    def test_rejects_negative_dt(self):
        with pytest.raises(ModelParameterError):
            paper_astable().advance(-1.0)
