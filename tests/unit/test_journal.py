"""The run journal: envelope, durability, lifecycle, concurrency.

The contract under test:

- every event is a self-describing JSONL envelope (schema / run_id /
  seq / pid / t / event);
- the reader tolerates a crash-truncated final line (and ``strict``
  raises :class:`~repro.errors.JournalError` instead);
- ``run_scope`` brackets a run with run-start ... run-end, emits
  guard-error / run-error and **no** run-end on exceptions, and costs
  nothing when journaling is off;
- fork-inherited journals give exactly one line per event across
  ``parallel_map`` workers (locked O_APPEND writes).
"""

import json
import multiprocessing
import os

import pytest

from repro.errors import JournalError, NumericalGuardError
from repro.obs import journal
from repro.sim.parallel import parallel_map


@pytest.fixture(autouse=True)
def _clean_journal():
    journal.disable_journal()
    yield
    journal.disable_journal()


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        j = journal.RunJournal(path)
        j.emit(journal.RUN_START, kind="demo", total_steps=10)
        j.emit(journal.PROGRESS, kind="demo", steps_done=4)
        j.emit(journal.RUN_END, kind="demo", steps_done=10)

        events = journal.read_journal(path)
        assert [e["event"] for e in events] == [
            journal.RUN_START, journal.PROGRESS, journal.RUN_END,
        ]
        for e in events:
            assert e["schema"] == journal.JOURNAL_SCHEMA
            assert e["run_id"] == j.run_id
            assert e["pid"] == os.getpid()
            assert isinstance(e["t"], float)
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[1]["steps_done"] == 4

    def test_payload_cannot_shadow_envelope(self, tmp_path):
        path = tmp_path / "run.jsonl"
        j = journal.RunJournal(path, run_id="fixed")
        j.emit("custom", run_id="spoof", seq=999)
        (event,) = journal.read_journal(path)
        assert event["run_id"] == "fixed"
        assert event["seq"] == 0

    def test_non_serializable_payload_goes_through_repr(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.RunJournal(path).emit("custom", payload=object())
        (event,) = journal.read_journal(path)
        assert "object object" in event["payload"]

    def test_spec_fingerprint_stable_and_short(self):
        a = journal.spec_fingerprint({"b": 2, "a": 1})
        b = journal.spec_fingerprint({"a": 1, "b": 2})
        assert a == b and len(a) == 12
        assert journal.spec_fingerprint({"a": 2, "b": 2}) != a


class TestTruncationTolerance:
    def test_reader_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        j = journal.RunJournal(path)
        j.emit(journal.RUN_START, kind="demo")
        j.emit(journal.PROGRESS, kind="demo", steps_done=1)
        # Simulate a SIGKILL mid-append: the last line is torn.
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])

        events = journal.read_journal(path)
        assert [e["event"] for e in events] == [journal.RUN_START]

    def test_reader_skips_non_object_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.RunJournal(path).emit(journal.RUN_START, kind="demo")
        with path.open("a") as fh:
            fh.write('"a bare string"\n')
        journal.RunJournal(path).emit(journal.RUN_END, kind="demo")
        assert len(journal.read_journal(path)) == 2

    def test_strict_mode_raises_with_line_number(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.RunJournal(path).emit(journal.RUN_START, kind="demo")
        with path.open("a") as fh:
            fh.write("{torn")
        with pytest.raises(JournalError) as err:
            journal.read_journal(path, strict=True)
        assert err.value.line_number == 2

    def test_missing_file_reads_empty(self, tmp_path):
        assert journal.read_journal(tmp_path / "absent.jsonl") == []


class TestSubscribers:
    def test_subscribe_and_unsubscribe(self):
        j = journal.RunJournal()  # in-process only
        seen = []
        unsubscribe = j.subscribe(seen.append)
        j.emit(journal.PROGRESS, steps_done=1)
        unsubscribe()
        j.emit(journal.PROGRESS, steps_done=2)
        assert [e["steps_done"] for e in seen] == [1]

    def test_broken_subscriber_never_raises(self):
        j = journal.RunJournal()

        def boom(event):
            raise RuntimeError("observer bug")

        j.subscribe(boom)
        j.emit(journal.PROGRESS, steps_done=1)
        assert j.subscriber_errors == 1


class TestModuleSlot:
    def test_disabled_emit_is_noop(self):
        assert journal.JOURNAL is None
        assert journal.emit(journal.PROGRESS, steps_done=1) is None

    def test_enable_disable(self, tmp_path):
        j = journal.enable_journal(tmp_path / "run.jsonl")
        assert journal.get_journal() is j
        journal.disable_journal()
        assert journal.get_journal() is None

    def test_env_var_activation(self, tmp_path):
        import subprocess
        import sys

        path = tmp_path / "env.jsonl"
        code = (
            "from repro.obs import journal; "
            "journal.emit(journal.PROGRESS, steps_done=3)"
        )
        env = dict(os.environ, REPRO_JOURNAL=str(path))
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in (os.path.join(os.getcwd(), "src"),)]
            + [env.get("PYTHONPATH", "")]
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
        (event,) = journal.read_journal(path)
        assert event["steps_done"] == 3


class TestRunScope:
    def test_disabled_returns_null_scope(self):
        scope = journal.run_scope("demo")
        assert scope is journal.NULL_SCOPE
        with scope as s:
            with s.phase("anything"):
                s.advance(3)
            s.campaign_start("c")
            s.campaign_end("c")

    def test_lifecycle_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.enable_journal(path)
        with journal.run_scope("demo", spec={"x": 1}, total_steps=10) as scope:
            with scope.phase("warm"):
                scope.advance(4)
            scope.advance_to(10)
        events = journal.read_journal(path)
        names = [e["event"] for e in events]
        assert names == [
            journal.RUN_START,
            journal.PHASE_START,
            journal.PROGRESS,
            journal.PHASE_END,
            journal.PROGRESS,
            journal.RUN_END,
        ]
        start, end = events[0], events[-1]
        assert start["fingerprint"] == journal.spec_fingerprint({"x": 1})
        assert start["resumed_steps"] == 0
        assert end["steps_done"] == 10 and end["total_steps"] == 10
        # The progress inside the phase is tagged with it.
        assert events[2]["phase"] == "warm"
        assert events[4]["phase"] is None

    def test_guard_error_suppresses_run_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.enable_journal(path)
        with pytest.raises(NumericalGuardError):
            with journal.run_scope("demo", total_steps=5):
                raise NumericalGuardError("diverged", signal="v", time=1.5)
        names = [e["event"] for e in journal.read_journal(path)]
        assert names == [journal.RUN_START, journal.GUARD_ERROR]

    def test_other_errors_emit_run_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.enable_journal(path)
        with pytest.raises(ValueError):
            with journal.run_scope("demo"):
                raise ValueError("boom")
        names = [e["event"] for e in journal.read_journal(path)]
        assert names == [journal.RUN_START, journal.RUN_ERROR]

    def test_nested_scope_has_no_lifecycle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.enable_journal(path)
        with journal.run_scope("outer", total_steps=2) as outer:
            with journal.run_scope("inner", total_steps=99) as inner:
                inner.advance(1)
            outer.advance(2)
        events = journal.read_journal(path)
        starts = [e for e in events if e["event"] == journal.RUN_START]
        ends = [e for e in events if e["event"] == journal.RUN_END]
        assert len(starts) == 1 and starts[0]["kind"] == "outer"
        assert len(ends) == 1 and ends[0]["kind"] == "outer"
        # Inner progress still flows, tagged with the inner kind.
        kinds = [e["kind"] for e in events if e["event"] == journal.PROGRESS]
        assert kinds == ["inner", "outer"]

    def test_resumed_steps_recorded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.enable_journal(path)
        with journal.run_scope("demo", total_steps=10, resumed_steps=6) as scope:
            scope.advance(4)
        events = journal.read_journal(path)
        assert events[0]["resumed_steps"] == 6
        assert events[-1]["steps_done"] == 10


def _journal_work(x):
    journal.emit("worker-event", index=x)
    return x


class TestConcurrentWriters:
    def test_exactly_once_across_process_workers(self, tmp_path):
        """Fork-inherited journal: one intact line per event, no tears."""
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fork-inherited journal requires the fork start method")
        path = tmp_path / "run.jsonl"
        journal.enable_journal(path)
        n = 24
        results = parallel_map(_journal_work, list(range(n)), mode="process",
                               max_workers=4)
        assert results == list(range(n))
        lines = path.read_text().splitlines()
        assert len(lines) == n
        events = [json.loads(line) for line in lines]  # every line intact
        assert sorted(e["index"] for e in events) == list(range(n))
        assert len({e["pid"] for e in events}) >= 1

    def test_two_journals_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        a = journal.RunJournal(path, run_id="a")
        b = journal.RunJournal(path, run_id="b")
        for i in range(10):
            (a if i % 2 else b).emit("ping", i=i)
        events = journal.read_journal(path)
        assert len(events) == 10
        assert {e["run_id"] for e in events} == {"a", "b"}
