"""Unit tests for the transient and quasi-static engines."""

import math

import pytest

from repro.converter.buck_boost import BuckBoostConverter
from repro.env.scenarios import constant_bench
from repro.errors import ModelParameterError, SimulationError
from repro.pv.cells import am_1815
from repro.sim.quasistatic import ControlDecision, Observation, QuasiStaticSimulator
from repro.sim.transient import TransientSimulator
from repro.storage.supercap import Supercapacitor


class DecayingSystem:
    """A first-order test system: dv/dt = -v."""

    def __init__(self):
        self.v = 1.0

    def advance(self, t, dt):
        self.v *= math.exp(-dt)

    def signals(self):
        return {"v": self.v}


class TestTransientSimulator:
    def test_integrates_and_records(self):
        sim = TransientSimulator(DecayingSystem(), dt=0.01)
        sim.run(1.0)
        trace = sim.traces["v"]
        assert trace.final() == pytest.approx(math.exp(-1.0), rel=1e-6)
        assert len(trace) == 101

    def test_decimation(self):
        sim = TransientSimulator(DecayingSystem(), dt=0.01, record_every=10)
        sim.run(1.0)
        assert len(sim.traces["v"]) == 11

    def test_selected_signals_only(self):
        sim = TransientSimulator(DecayingSystem(), dt=0.1, record=["v"])
        sim.run(0.5)
        assert sim.traces.names() == ["v"]

    def test_unknown_signal_rejected(self):
        sim = TransientSimulator(DecayingSystem(), dt=0.1, record=["nope"])
        with pytest.raises(SimulationError):
            sim.run(0.2)

    def test_run_until_predicate(self):
        sim = TransientSimulator(DecayingSystem(), dt=0.001)
        t = sim.run_until(lambda s: s.v < 0.5, timeout=5.0)
        assert t == pytest.approx(math.log(2.0), rel=0.01)

    def test_run_until_times_out(self):
        sim = TransientSimulator(DecayingSystem(), dt=0.01)
        with pytest.raises(SimulationError):
            sim.run_until(lambda s: s.v > 2.0, timeout=0.5)

    def test_rejects_bad_dt(self):
        with pytest.raises(ModelParameterError):
            TransientSimulator(DecayingSystem(), dt=0.0)


class FixedRatioController:
    """Test controller: operate at a fixed fraction of Voc."""

    name = "fixed-ratio-test"

    def __init__(self, ratio=0.8, overhead=0.0):
        self.ratio = ratio
        self.overhead = overhead

    def decide(self, obs: Observation) -> ControlDecision:
        if obs.lux <= 0.0:
            return ControlDecision(operating_voltage=None, harvest_duty=0.0)
        return ControlDecision(
            operating_voltage=self.ratio * obs.cell_model.voc(),
            overhead_current=self.overhead,
        )


class TestQuasiStaticSimulator:
    def test_energy_accounting_consistent(self):
        sim = QuasiStaticSimulator(
            am_1815(), FixedRatioController(), constant_bench(1000.0)
        )
        summary = sim.run(120.0, dt=1.0)
        assert summary.duration == pytest.approx(120.0)
        assert 0.0 < summary.energy_at_cell <= summary.energy_ideal * 1.001
        assert summary.energy_delivered == pytest.approx(summary.energy_at_cell)

    def test_tracking_efficiency_bounds(self):
        sim = QuasiStaticSimulator(
            am_1815(), FixedRatioController(ratio=0.794), constant_bench(1000.0)
        )
        summary = sim.run(60.0)
        assert 0.98 < summary.tracking_efficiency <= 1.0001

    def test_overhead_accumulates(self):
        sim = QuasiStaticSimulator(
            am_1815(),
            FixedRatioController(overhead=10e-6),
            constant_bench(1000.0),
            supply_voltage=3.3,
        )
        summary = sim.run(100.0)
        assert summary.energy_overhead == pytest.approx(10e-6 * 3.3 * 100.0, rel=1e-6)

    def test_converter_losses_reduce_delivery(self):
        sim = QuasiStaticSimulator(
            am_1815(),
            FixedRatioController(),
            constant_bench(1000.0),
            converter=BuckBoostConverter(),
        )
        summary = sim.run(60.0)
        assert summary.energy_delivered < summary.energy_at_cell
        assert summary.energy_delivered > 0.7 * summary.energy_at_cell

    def test_storage_charges(self):
        storage = Supercapacitor(capacitance=0.1, voltage=2.0)
        sim = QuasiStaticSimulator(
            am_1815(), FixedRatioController(), constant_bench(5000.0), storage=storage
        )
        sim.run(600.0)
        assert storage.voltage > 2.0

    def test_load_drains_storage(self):
        storage = Supercapacitor(capacitance=0.1, voltage=3.0)
        sim = QuasiStaticSimulator(
            am_1815(),
            FixedRatioController(),
            constant_bench(0.0),
            storage=storage,
            load=lambda t: 1e-3,
        )
        sim.run(300.0)
        assert storage.voltage < 3.0

    def test_dark_environment_harvests_nothing(self):
        sim = QuasiStaticSimulator(am_1815(), FixedRatioController(), constant_bench(0.0))
        summary = sim.run(60.0)
        assert summary.energy_at_cell == 0.0
        assert summary.tracking_efficiency == 0.0

    def test_traces_recorded(self):
        sim = QuasiStaticSimulator(am_1815(), FixedRatioController(), constant_bench(500.0))
        sim.run(10.0)
        assert "v_pv" in sim.traces
        assert "p_pv" in sim.traces
        assert len(sim.traces["lux"]) == 10

    def test_thermal_model_heats_cell_and_reduces_power(self):
        from repro.pv.thermal import CellThermalModel

        hot = QuasiStaticSimulator(
            am_1815(),
            FixedRatioController(),
            constant_bench(105000.0),
            thermal=CellThermalModel(area_cm2=25.0, thermal_capacitance=1.0),
        )
        cold = QuasiStaticSimulator(
            am_1815(), FixedRatioController(), constant_bench(105000.0)
        )
        hot_summary = hot.run(600.0, dt=10.0)
        cold_summary = cold.run(600.0, dt=10.0)
        assert hot_summary.energy_ideal < cold_summary.energy_ideal

    def test_rejects_bad_dt(self):
        sim = QuasiStaticSimulator(am_1815(), FixedRatioController(), constant_bench(100.0))
        with pytest.raises(ModelParameterError):
            sim.step(0.0)

    def test_mpp_cache_reused(self):
        sim = QuasiStaticSimulator(am_1815(), FixedRatioController(), constant_bench(1000.0))
        sim.run(30.0)
        assert len(sim._mpp_cache) == 1  # constant light -> one cache entry
