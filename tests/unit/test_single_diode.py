"""Unit tests for the single-diode PV model and its Lambert-W solutions."""

import math

import numpy as np
import pytest

from repro.errors import ModelParameterError, OperatingPointError
from repro.pv.single_diode import MPPResult, SingleDiodeModel, lambertw_of_exp


def simple_model(**overrides):
    """A well-behaved reference model for most tests."""
    params = dict(
        photocurrent=100e-6,
        saturation_current=1e-10,
        ideality=2.0,
        n_series=6,
        series_resistance=500.0,
        shunt_resistance=200e3,
    )
    params.update(overrides)
    return SingleDiodeModel(**params)


class TestLambertWOfExp:
    def test_matches_scipy_for_moderate_arguments(self):
        from scipy.special import lambertw

        for x in (-5.0, 0.0, 1.0, 10.0, 50.0):
            assert lambertw_of_exp(x) == pytest.approx(float(lambertw(math.exp(x)).real), rel=1e-12)

    def test_satisfies_defining_equation_for_huge_arguments(self):
        for x in (200.0, 1000.0, 1e5):
            w = lambertw_of_exp(x)
            assert w + math.log(w) == pytest.approx(x, rel=1e-12)

    def test_vectorised_mixed_range(self):
        x = np.array([1.0, 50.0, 500.0])
        w = lambertw_of_exp(x)
        assert w.shape == (3,)
        for xi, wi in zip(x, w):
            assert wi + math.log(wi) == pytest.approx(xi, rel=1e-10)

    def test_scalar_in_scalar_out(self):
        assert isinstance(lambertw_of_exp(3.0), float)


class TestConstruction:
    def test_rejects_negative_photocurrent(self):
        with pytest.raises(ModelParameterError):
            simple_model(photocurrent=-1e-6)

    def test_rejects_nonpositive_saturation_current(self):
        with pytest.raises(ModelParameterError):
            simple_model(saturation_current=0.0)

    def test_rejects_bad_ideality(self):
        with pytest.raises(ModelParameterError):
            simple_model(ideality=-1.0)

    def test_rejects_zero_junctions(self):
        with pytest.raises(ModelParameterError):
            simple_model(n_series=0)

    def test_rejects_negative_series_resistance(self):
        with pytest.raises(ModelParameterError):
            simple_model(series_resistance=-1.0)

    def test_rejects_nonpositive_shunt(self):
        with pytest.raises(ModelParameterError):
            simple_model(shunt_resistance=0.0)

    def test_rejects_zero_temperature(self):
        with pytest.raises(ModelParameterError):
            simple_model(temperature=0.0)


class TestCurveSolutions:
    def test_current_at_zero_volts_is_isc(self):
        m = simple_model()
        assert float(m.current_at(0.0)) == pytest.approx(m.isc(), rel=1e-9)

    def test_current_at_voc_is_zero(self):
        m = simple_model()
        assert float(m.current_at(m.voc())) == pytest.approx(0.0, abs=1e-12)

    def test_voltage_at_zero_current_is_voc(self):
        m = simple_model()
        assert float(m.voltage_at(0.0)) == pytest.approx(m.voc(), rel=1e-12)

    def test_voltage_current_roundtrip(self):
        m = simple_model()
        for frac in (0.1, 0.5, 0.9, 0.99):
            i = frac * m.isc()
            v = float(m.voltage_at(i))
            assert float(m.current_at(v)) == pytest.approx(i, rel=1e-8)

    def test_current_monotone_decreasing_in_voltage(self):
        m = simple_model()
        v = np.linspace(0.0, m.voc(), 200)
        i = np.asarray(m.current_at(v))
        assert np.all(np.diff(i) < 0.0)

    def test_voltage_above_isc_rejected(self):
        m = simple_model()
        with pytest.raises(OperatingPointError):
            m.voltage_at(m.isc() * 1.5)

    def test_infinite_shunt_branch(self):
        m = simple_model(shunt_resistance=float("inf"))
        assert float(m.current_at(0.0)) == pytest.approx(m.isc(), rel=1e-9)
        assert float(m.current_at(m.voc())) == pytest.approx(0.0, abs=1e-12)

    def test_zero_series_resistance_branch(self):
        m = simple_model(series_resistance=0.0)
        # Isc equals Iph exactly less the shunt term at V=0 (which is 0).
        assert m.isc() == pytest.approx(m.photocurrent, rel=1e-12)
        assert float(m.current_at(m.voc())) == pytest.approx(0.0, abs=1e-12)

    def test_explicit_solution_satisfies_implicit_equation(self):
        m = simple_model()
        a = m.modified_ideality
        for v in (0.5, 2.0, 3.5):
            i = float(m.current_at(v))
            rhs = (
                m.photocurrent
                - m.saturation_current * math.expm1((v + i * m.series_resistance) / a)
                - (v + i * m.series_resistance) / m.shunt_resistance
            )
            assert i == pytest.approx(rhs, abs=1e-12 + 1e-9 * abs(i))

    def test_outdoor_scale_photocurrent_no_overflow(self):
        m = simple_model(photocurrent=0.05)  # ~full-sun scale
        assert m.voc() > 0.0
        assert float(m.current_at(m.voc() / 2.0)) > 0.0


class TestMPP:
    def test_mpp_is_interior_maximum(self):
        m = simple_model()
        mpp = m.mpp()
        assert 0.0 < mpp.voltage < mpp.voc
        for dv in (-0.01, 0.01):
            assert float(m.power_at(mpp.voltage + dv)) <= mpp.power + 1e-15

    def test_mpp_power_consistency(self):
        mpp = simple_model().mpp()
        assert mpp.power == pytest.approx(mpp.voltage * mpp.current, rel=1e-12)

    def test_fill_factor_in_unit_interval(self):
        mpp = simple_model().mpp()
        assert 0.0 < mpp.fill_factor < 1.0

    def test_k_in_plausible_band(self):
        mpp = simple_model().mpp()
        assert 0.3 < mpp.k < 0.95

    def test_dark_cell_mpp_is_zero(self):
        m = simple_model(photocurrent=0.0)
        mpp = m.mpp()
        assert mpp.power == 0.0
        assert mpp.voltage == 0.0

    def test_mpp_scales_with_light(self):
        lo = simple_model(photocurrent=20e-6).mpp()
        hi = simple_model(photocurrent=200e-6).mpp()
        assert hi.power > 5.0 * lo.power  # superlinear-ish in this regime
        assert hi.voc > lo.voc


class TestDerived:
    def test_source_resistance_positive_and_reasonable(self):
        m = simple_model()
        r = m.source_resistance_at_voc()
        assert r > m.series_resistance
        assert r < 1e7

    def test_source_resistance_matches_numerical_derivative(self):
        m = simple_model()
        voc = m.voc()
        di = 1e-9
        dv = float(m.voltage_at(0.0)) - float(m.voltage_at(di))
        assert m.source_resistance_at_voc() == pytest.approx(dv / di, rel=1e-3)

    def test_with_photocurrent_returns_new_instance(self):
        m = simple_model()
        m2 = m.with_photocurrent(50e-6)
        assert m2.photocurrent == 50e-6
        assert m.photocurrent == 100e-6

    def test_iv_curve_shapes(self):
        v, i = simple_model().iv_curve(points=50)
        assert len(v) == 50 and len(i) == 50
        assert v[0] == 0.0

    def test_iv_curve_rejects_single_point(self):
        with pytest.raises(ModelParameterError):
            simple_model().iv_curve(points=1)

    def test_power_at_vectorised(self):
        m = simple_model()
        p = m.power_at(np.array([0.5, 1.0, 2.0]))
        assert p.shape == (3,)
        assert np.all(p > 0.0)


class TestMPPResult:
    def test_fill_factor_nan_for_dark(self):
        r = MPPResult(voltage=0.0, current=0.0, power=0.0, voc=0.0, isc=0.0)
        assert math.isnan(r.fill_factor)
        assert math.isnan(r.k)
