"""Unit tests for the crash-safe job store (repro.service.jobstore)."""

import json

import pytest

from repro.errors import JobNotFoundError
from repro.service.jobstore import (
    QUARANTINED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    JobRecord,
    JobStore,
)


def make_record(job_id="aaaaaaaaaaaa-000001", state=QUEUED, **kw):
    defaults = dict(
        job_id=job_id,
        kind="endurance",
        params={"days": 1, "dt": 20.0, "seed": 4},
        fingerprint="aaaaaaaaaaaa" + "0" * 52,
        state=state,
        submitted_at=100.0,
    )
    defaults.update(kw)
    return JobRecord(**defaults)


class TestJobStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record(attempts=2, error="boom", result={"x": 1})
        store.save(record)
        loaded = store.load(record.job_id)
        assert loaded.to_dict() == record.to_dict()

    def test_envelope_is_versioned(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record()
        path = store.save(record)
        envelope = json.loads(path.read_text())
        assert envelope["schema"] == 1
        assert envelope["job"]["job_id"] == record.job_id

    def test_load_missing_raises_typed(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobNotFoundError):
            store.load("cafecafecafe-000009")

    def test_load_all_skips_corrupt_files(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_record())
        (tmp_path / "torn.job.json").write_text('{"schema": 1, "job": {"jo')
        (tmp_path / "foreign.job.json").write_text('{"schema": 99, "job": {}}')
        records = store.load_all()
        assert [r.job_id for r in records] == ["aaaaaaaaaaaa-000001"]

    def test_ids_are_sequential_and_spec_prefixed(self, tmp_path):
        store = JobStore(tmp_path)
        fp = "deadbeef0123" + "0" * 52
        first = store.new_job_id(fp)
        second = store.new_job_id(fp)
        assert first == "deadbeef0123-000001"
        assert second == "deadbeef0123-000002"

    def test_id_allocator_survives_restart(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record(job_id=store.new_job_id("a" * 64))
        store.save(record)
        fresh = JobStore(tmp_path)
        assert fresh.new_job_id("b" * 64).endswith("-000002")


class TestRecovery:
    def test_running_job_readmitted_as_queued(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_record(state=RUNNING, attempts=1))
        readmitted, finished = store.recover()
        assert len(readmitted) == 1 and not finished
        record = readmitted[0]
        assert record.state == QUEUED
        assert record.recoveries == 1
        # and the flip was persisted
        assert store.load(record.job_id).state == QUEUED

    def test_queued_job_readmitted_without_recovery_count(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_record(state=QUEUED))
        readmitted, _ = store.recover()
        assert readmitted[0].recoveries == 0

    def test_recovery_points_resume_at_existing_checkpoint(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record(state=RUNNING)
        store.save(record)
        ckpt = store.checkpoint_path(record.job_id)
        ckpt.write_text("{}")
        readmitted, _ = store.recover()
        assert readmitted[0].resume_from == str(ckpt)

    def test_no_checkpoint_means_no_resume(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_record(state=RUNNING))
        readmitted, _ = store.recover()
        assert readmitted[0].resume_from is None

    def test_terminal_jobs_come_back_unchanged(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_record(state=SUCCEEDED, result={"ok": 1}))
        store.save(
            make_record(
                job_id="bbbbbbbbbbbb-000002", state=QUARANTINED, error="trace"
            )
        )
        readmitted, finished = store.recover()
        assert not readmitted
        assert {r.state for r in finished} == {SUCCEEDED, QUARANTINED}
