"""Unit tests for the service control plane (repro.service.queue).

The runner is injected everywhere, so these cover the whole failure
machinery — retries, quarantine, backpressure, coalescing, supervision,
drain, crash recovery — in milliseconds, with no HTTP and no real
experiments.
"""

import threading
import time

import pytest

from repro.errors import (
    ConfigError,
    JobNotFoundError,
    QueueFullError,
    ServiceDrainingError,
    ServiceError,
)
from repro.obs import journal
from repro.service.jobstore import (
    CANCELLED,
    QUARANTINED,
    QUEUED,
    SUCCEEDED,
)
from repro.service.queue import JobService, backoff_delay

ENDURANCE = {"kind": "endurance", "params": {"days": 1}}
MONTECARLO = {"kind": "montecarlo", "params": {"boards": 10}}


def ok_runner(spec, **kwargs):
    return {"kind": spec.kind, "ok": True}


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def wait_state(service, job_id, state, timeout=10.0):
    assert wait_for(
        lambda: service.get(job_id).state == state, timeout=timeout
    ), f"job {job_id} stuck in {service.get(job_id).state!r}, wanted {state!r}"
    return service.get(job_id)


@pytest.fixture
def make_service(tmp_path):
    services = []

    def factory(**kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("backoff_base", 0.01)
        kwargs.setdefault("backoff_cap", 0.05)
        kwargs.setdefault("runner", ok_runner)
        service = JobService(tmp_path / "jobs", **kwargs)
        services.append(service)
        service.start()
        return service

    yield factory
    for service in services:
        service.close()


class TestBackoffDelay:
    def test_deterministic(self):
        fp = "deadbeef" + "0" * 56
        assert backoff_delay(fp, 1, 0.1, 5.0) == backoff_delay(fp, 1, 0.1, 5.0)

    def test_exponential_envelope_and_cap(self):
        fp = "deadbeef" + "0" * 56
        delays = [backoff_delay(fp, a, 0.1, 1.0) for a in (1, 2, 3, 4, 5, 6)]
        # un-jittered base doubles until the cap; jitter adds at most 50%
        for attempt, delay in enumerate(delays, start=1):
            base = min(1.0, 0.1 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.5

    def test_jitter_decorrelates_specs(self):
        a = backoff_delay("a" * 64, 1, 0.1, 5.0)
        b = backoff_delay("b" * 64, 1, 0.1, 5.0)
        assert a != b


class TestHappyPath:
    def test_submit_runs_to_success(self, make_service):
        service = make_service()
        record, coalesced = service.submit(ENDURANCE)
        assert not coalesced and record.state == QUEUED
        final = wait_state(service, record.job_id, SUCCEEDED)
        assert final.result == {"kind": "endurance", "ok": True}
        assert final.attempts == 1
        assert final.error is None

    def test_record_is_persisted_across_transitions(self, make_service):
        service = make_service()
        record, _ = service.submit(ENDURANCE)
        wait_state(service, record.job_id, SUCCEEDED)
        stored = service.store.load(record.job_id)
        assert stored.state == SUCCEEDED
        assert stored.result == {"kind": "endurance", "ok": True}

    def test_invalid_spec_rejected_before_admission(self, make_service):
        service = make_service()
        with pytest.raises(ConfigError):
            service.submit({"kind": "endurance", "params": {"days": -2}})
        assert service.depth() == 0

    def test_get_unknown_job_raises(self, make_service):
        service = make_service()
        with pytest.raises(JobNotFoundError):
            service.get("ffffffffffff-000404")


class TestRetryAndQuarantine:
    def test_transient_failure_retries_to_success(self, make_service):
        calls = []

        def flaky(spec, **kwargs):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError(f"transient #{len(calls)}")
            return {"ok": True}

        service = make_service(runner=flaky, max_attempts=3)
        record, _ = service.submit(ENDURANCE)
        final = wait_state(service, record.job_id, SUCCEEDED)
        assert final.attempts == 3
        assert final.error is None
        assert len(calls) == 3

    def test_poison_job_quarantined_with_traceback(self, make_service):
        def poison(spec, **kwargs):
            raise ValueError("poisoned payload: unobtainium")

        service = make_service(runner=poison, max_attempts=2)
        record, _ = service.submit(ENDURANCE)
        final = wait_state(service, record.job_id, QUARANTINED)
        assert final.attempts == 2
        assert "ValueError: poisoned payload: unobtainium" in final.error
        assert "Traceback" in final.error
        # persisted dead letter, traceback included
        assert "unobtainium" in service.store.load(record.job_id).error

    def test_siblings_complete_while_poison_job_quarantines(self, make_service):
        def selective(spec, **kwargs):
            if spec.kind == "montecarlo":
                raise RuntimeError("only montecarlo is poisoned")
            return {"ok": True}

        service = make_service(runner=selective, max_attempts=3, workers=2)
        poison, _ = service.submit(MONTECARLO)
        siblings = [
            service.submit({"kind": "endurance", "params": {"days": d}})[0]
            for d in (1, 2, 3)
        ]
        for record in siblings:
            wait_state(service, record.job_id, SUCCEEDED)
        final = wait_state(service, poison.job_id, QUARANTINED)
        assert final.attempts == 3

    def test_quarantined_spec_can_be_resubmitted(self, make_service):
        def poison(spec, **kwargs):
            raise RuntimeError("nope")

        service = make_service(runner=poison, max_attempts=1)
        record, _ = service.submit(ENDURANCE)
        wait_state(service, record.job_id, QUARANTINED)
        fresh, coalesced = service.submit(ENDURANCE)
        assert not coalesced
        assert fresh.job_id != record.job_id


class TestBackpressure:
    def test_queue_full_raises_429_material(self, make_service):
        service = make_service(workers=0, queue_depth=2)
        service.submit({"kind": "endurance", "params": {"days": 1}})
        service.submit({"kind": "endurance", "params": {"days": 2}})
        with pytest.raises(QueueFullError) as excinfo:
            service.submit({"kind": "endurance", "params": {"days": 3}})
        assert excinfo.value.retry_after > 0
        assert service.depth() == 2

    def test_draining_rejects_submissions(self, make_service):
        service = make_service(workers=0)
        service.begin_drain()
        with pytest.raises(ServiceDrainingError):
            service.submit(ENDURANCE)

    def test_duplicate_spec_coalesces_onto_live_job(self, make_service):
        service = make_service(workers=0, queue_depth=1)
        first, coalesced_a = service.submit(ENDURANCE)
        second, coalesced_b = service.submit(dict(ENDURANCE))
        assert not coalesced_a and coalesced_b
        assert second.job_id == first.job_id
        assert second.coalesced_hits == 1
        # the coalesced duplicate consumed no queue slot
        assert service.depth() == 1

    def test_fresh_result_served_from_ttl_cache(self, make_service):
        service = make_service(result_ttl=60.0)
        record, _ = service.submit(ENDURANCE)
        wait_state(service, record.job_id, SUCCEEDED)
        again, coalesced = service.submit(ENDURANCE)
        assert coalesced and again.job_id == record.job_id

    def test_zero_ttl_disables_result_cache(self, make_service):
        service = make_service(result_ttl=0.0)
        record, _ = service.submit(ENDURANCE)
        wait_state(service, record.job_id, SUCCEEDED)
        again, coalesced = service.submit(ENDURANCE)
        assert not coalesced and again.job_id != record.job_id


class TestCancel:
    def test_cancel_queued_job(self, make_service):
        service = make_service(workers=0)
        record, _ = service.submit(ENDURANCE)
        cancelled = service.cancel(record.job_id)
        assert cancelled.state == CANCELLED
        assert service.store.load(record.job_id).state == CANCELLED
        assert service.depth() == 0

    def test_cancel_terminal_job_conflicts(self, make_service):
        service = make_service()
        record, _ = service.submit(ENDURANCE)
        wait_state(service, record.job_id, SUCCEEDED)
        with pytest.raises(ServiceError):
            service.cancel(record.job_id)

    def test_cancelled_spec_admits_a_fresh_job(self, make_service):
        service = make_service(workers=0)
        record, _ = service.submit(ENDURANCE)
        service.cancel(record.job_id)
        fresh, coalesced = service.submit(ENDURANCE)
        assert not coalesced and fresh.job_id != record.job_id


class TestSupervision:
    def test_stuck_attempt_abandoned_and_retried(self, make_service):
        calls = []

        def stuck_once(spec, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                time.sleep(30.0)  # wedged first attempt (daemon thread)
                return {"ok": False}
            return {"ok": True}

        service = make_service(runner=stuck_once, job_timeout=0.3, max_attempts=2)
        record, _ = service.submit(ENDURANCE)
        final = wait_state(service, record.job_id, SUCCEEDED, timeout=15.0)
        assert final.attempts == 2
        assert final.result == {"ok": True}

    def test_always_stuck_job_quarantined_with_timeout_error(self, make_service):
        def always_stuck(spec, **kwargs):
            time.sleep(30.0)
            return {"ok": False}

        service = make_service(runner=always_stuck, job_timeout=0.2, max_attempts=2)
        record, _ = service.submit(ENDURANCE)
        final = wait_state(service, record.job_id, QUARANTINED, timeout=15.0)
        assert "JobTimeoutError" in final.error
        assert "abandoned" in final.error


class TestJournalIntegration:
    def test_job_lifecycle_events_emitted(self, make_service):
        events = []
        j = journal.enable_journal()  # in-process only
        j.subscribe(events.append)
        try:
            service = make_service()
            record, _ = service.submit(ENDURANCE)
            wait_state(service, record.job_id, SUCCEEDED)
        finally:
            journal.disable_journal()
        names = [e["event"] for e in events]
        assert "job-submit" in names and "job-start" in names
        assert "job-complete" in names

    def test_retry_and_quarantine_events(self, make_service):
        def poison(spec, **kwargs):
            raise RuntimeError("always")

        events = []
        j = journal.enable_journal()
        j.subscribe(events.append)
        try:
            service = make_service(runner=poison, max_attempts=2)
            record, _ = service.submit(ENDURANCE)
            wait_state(service, record.job_id, QUARANTINED)
        finally:
            journal.disable_journal()
        names = [e["event"] for e in events]
        assert names.count("job-retry") == 1
        assert names.count("job-quarantine") == 1

    def test_progress_events_feed_the_record(self, make_service):
        started = threading.Event()
        release = threading.Event()

        def reporter(spec, **kwargs):
            journal.emit(journal.PROGRESS, kind="stub", steps_done=5, total_steps=10)
            started.set()
            release.wait(10.0)
            return {"ok": True}

        j = journal.enable_journal()
        try:
            service = make_service(runner=reporter)
            record, _ = service.submit(ENDURANCE)
            assert started.wait(10.0)
            live = service.get(record.job_id)
            assert live.progress_steps == 5
            assert live.progress_total == 10
            assert live.heartbeat_at is not None
            release.set()
            wait_state(service, record.job_id, SUCCEEDED)
        finally:
            release.set()
            journal.disable_journal()


class TestDrainAndRecovery:
    def test_drain_requeues_running_job(self, make_service):
        started = threading.Event()

        def hang(spec, **kwargs):
            started.set()
            time.sleep(60.0)
            return {"ok": False}

        service = make_service(runner=hang)
        record, _ = service.submit(ENDURANCE)
        assert started.wait(10.0)
        service.drain(timeout=0.3)
        requeued = service.get(record.job_id)
        assert requeued.state == QUEUED
        assert requeued.attempts == 0  # the drain refunded the attempt
        assert service.store.load(record.job_id).state == QUEUED

    def test_restart_recovers_queued_jobs_to_completion(self, tmp_path):
        first = JobService(tmp_path / "jobs", workers=0, runner=ok_runner)
        first.start()
        a, _ = first.submit({"kind": "endurance", "params": {"days": 1}})
        b, _ = first.submit({"kind": "endurance", "params": {"days": 2}})
        first.close()

        second = JobService(tmp_path / "jobs", workers=1, runner=ok_runner)
        try:
            readmitted = second.start()
            assert {r.job_id for r in readmitted} == {a.job_id, b.job_id}
            for job_id in (a.job_id, b.job_id):
                wait_state(second, job_id, SUCCEEDED)
        finally:
            second.close()

    def test_recovered_duplicate_spec_still_coalesces(self, tmp_path):
        first = JobService(tmp_path / "jobs", workers=0, runner=ok_runner)
        first.start()
        record, _ = first.submit(ENDURANCE)
        first.close()

        second = JobService(tmp_path / "jobs", workers=0, runner=ok_runner)
        try:
            second.start()
            dup, coalesced = second.submit(ENDURANCE)
            assert coalesced and dup.job_id == record.job_id
        finally:
            second.close()
