"""Unit tests for the MNA DC solver."""

import pytest

from repro.analog.mna import Circuit
from repro.errors import ConvergenceError, ModelParameterError
from repro.pv.cells import am_1815


class TestLinearCircuits:
    def test_voltage_divider(self):
        c = Circuit()
        c.add_voltage_source("in", "0", 10.0)
        c.add_resistor("in", "mid", 3000.0)
        c.add_resistor("mid", "0", 1000.0)
        sol = c.solve_dc()
        assert sol["mid"] == pytest.approx(2.5)
        assert sol["in"] == pytest.approx(10.0)

    def test_ground_aliases(self):
        c = Circuit()
        c.add_voltage_source("a", "gnd", 5.0)
        c.add_resistor("a", "GND", 1000.0)
        sol = c.solve_dc()
        assert sol["a"] == pytest.approx(5.0)
        assert sol["gnd"] == 0.0

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_current_source("0", "n", 1e-3)
        c.add_resistor("n", "0", 2000.0)
        sol = c.solve_dc()
        assert sol["n"] == pytest.approx(2.0)

    def test_source_current_reported(self):
        c = Circuit()
        c.add_voltage_source("a", "0", 10.0, name="V1")
        c.add_resistor("a", "0", 1000.0)
        sol = c.solve_dc()
        # MNA convention: source current flows from + through the source.
        assert abs(sol.source_current("V1")) == pytest.approx(10e-3)

    def test_kcl_at_internal_node(self):
        c = Circuit()
        c.add_voltage_source("a", "0", 6.0)
        c.add_resistor("a", "n", 1000.0)
        c.add_resistor("n", "0", 1000.0)
        c.add_resistor("n", "0", 2000.0)
        sol = c.solve_dc()
        v = sol["n"]
        into = (6.0 - v) / 1000.0
        out = v / 1000.0 + v / 2000.0
        assert into == pytest.approx(out, rel=1e-12)

    def test_two_voltage_sources(self):
        c = Circuit()
        c.add_voltage_source("a", "0", 5.0)
        c.add_voltage_source("b", "0", 3.0)
        c.add_resistor("a", "b", 1000.0)
        sol = c.solve_dc()
        assert sol["a"] == pytest.approx(5.0)
        assert sol["b"] == pytest.approx(3.0)

    def test_duplicate_source_names_rejected(self):
        c = Circuit()
        c.add_voltage_source("a", "0", 1.0, name="V")
        with pytest.raises(ModelParameterError):
            c.add_voltage_source("b", "0", 2.0, name="V")

    def test_empty_circuit_rejected(self):
        with pytest.raises(ModelParameterError):
            Circuit().solve_dc()

    def test_bad_resistor_rejected(self):
        with pytest.raises(ModelParameterError):
            Circuit().add_resistor("a", "b", 0.0)

    def test_floating_node_is_singular(self):
        c = Circuit()
        c.add_voltage_source("a", "0", 1.0)
        c.add_resistor("b", "c", 1000.0)  # disconnected island
        with pytest.raises(ModelParameterError):
            c.solve_dc()


class TestNonlinear:
    def test_diode_clamp(self):
        # Exponential diode from node to ground behind a resistor: the
        # node should clamp near the diode's knee.
        import math

        i_s, vt = 1e-12, 0.025

        def current(v):
            return i_s * math.expm1(min(v, 1.5) / vt)

        def conductance(v):
            return (i_s / vt) * math.exp(min(v, 1.5) / vt)

        c = Circuit()
        c.add_voltage_source("in", "0", 5.0)
        c.add_resistor("in", "d", 10e3)
        c.add_nonlinear("d", "0", current, conductance)
        sol = c.solve_dc()
        assert 0.45 < sol["d"] < 0.8
        # KCL: resistor current equals diode current.
        assert (5.0 - sol["d"]) / 10e3 == pytest.approx(current(sol["d"]), rel=1e-6)

    def test_pv_cell_open_circuit(self):
        model = am_1815().model_at(500.0)
        c = Circuit()
        c.add_pv_cell("pv", "0", model)
        c.add_resistor("pv", "0", 1e12)  # essentially open
        sol = c.solve_dc(initial_guess={"pv": model.voc()})
        assert sol["pv"] == pytest.approx(model.voc(), rel=1e-4)

    def test_pv_cell_loaded_by_divider_sits_below_voc(self):
        model = am_1815().model_at(200.0)
        c = Circuit()
        c.add_pv_cell("pv", "0", model)
        c.add_resistor("pv", "tap", 7.02e6)
        c.add_resistor("tap", "0", 2.98e6)
        sol = c.solve_dc(initial_guess={"pv": model.voc()})
        voc = model.voc()
        assert sol["pv"] < voc
        assert sol["pv"] > voc - 0.1  # light loading only
        assert sol["tap"] == pytest.approx(sol["pv"] * 0.298, rel=1e-9)

    def test_convergence_failure_reported(self):
        # A pathological non-smooth element that flips sign each call.
        state = {"flip": 1.0}

        def current(v):
            state["flip"] = -state["flip"]
            return state["flip"] * 1e3

        def conductance(v):
            return 1e-12

        c = Circuit()
        c.add_voltage_source("a", "0", 1.0)
        c.add_resistor("a", "n", 1.0)
        c.add_nonlinear("n", "0", current, conductance)
        with pytest.raises(ConvergenceError):
            c.solve_dc(max_iterations=5)

    def test_node_names_listed(self):
        c = Circuit()
        c.add_resistor("x", "y", 1.0)
        assert c.node_names == ("x", "y")
