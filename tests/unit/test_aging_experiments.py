"""Unit tests for cell aging and the experiment drivers not covered elsewhere."""

import pytest

from repro.errors import ModelParameterError
from repro.experiments import ablation, aging
from repro.pv.cells import am_1815


class TestCellAging:
    def test_aged_cell_produces_less(self):
        fresh = am_1815()
        aged = fresh.degraded(10.0)
        assert aged.mpp(500.0).power < fresh.mpp(500.0).power

    def test_zero_years_is_identity(self):
        fresh = am_1815()
        same = fresh.degraded(0.0)
        assert same.mpp(500.0).power == pytest.approx(fresh.mpp(500.0).power, rel=1e-12)

    def test_original_untouched(self):
        fresh = am_1815()
        before = fresh.parameters.iph_per_klux
        fresh.degraded(20.0)
        assert fresh.parameters.iph_per_klux == before

    def test_degradation_compounds(self):
        fresh = am_1815()
        p5 = fresh.degraded(5.0).mpp(500.0).power
        p15 = fresh.degraded(15.0).mpp(500.0).power
        assert p15 < p5

    def test_photocurrent_floor(self):
        # Even absurd ages leave a positive cell.
        ancient = am_1815().degraded(500.0)
        assert ancient.mpp(500.0).power > 0.0

    def test_name_records_age(self):
        assert "aged-10y" in am_1815().degraded(10.0).name

    def test_rejects_negative_years(self):
        with pytest.raises(ModelParameterError):
            am_1815().degraded(-1.0)


class TestAgingExperiment:
    @pytest.fixture(scope="class")
    def points(self):
        return aging.run_aging(lux=5000.0, rs_growth_per_year=0.08)

    def test_available_power_declines(self, points):
        powers = [p.pmpp for p in points]
        assert all(b < a for a, b in zip(powers, powers[1:]))

    def test_focv_at_least_matches_fixed(self, points):
        for p in points:
            assert p.focv_efficiency >= p.fixed_efficiency - 1e-3

    def test_render(self, points):
        text = aging.render(points, lux=5000.0)
        assert "age(yr)" in text
        assert "FOCV eff(%)" in text


class TestAblationDrivers:
    def test_k_trim_sweep_shape(self):
        points = ablation.k_trim_sweep(ratios=(0.5, 0.7, 0.8), lux_levels=(200.0, 5000.0))
        assert len(points) == 3
        for p in points:
            assert set(p.efficiency_by_lux) == {200.0, 5000.0}
            for eff in p.efficiency_by_lux.values():
                assert 0.0 < eff <= 1.0

    def test_k_trim_optimum_moves_with_intensity(self):
        points = ablation.k_trim_sweep(
            ratios=(0.55, 0.60, 0.65, 0.70, 0.75, 0.80), lux_levels=(200.0, 5000.0)
        )
        best_indoor = max(points, key=lambda p: p.efficiency_by_lux[200.0]).ratio
        best_bright = max(points, key=lambda p: p.efficiency_by_lux[5000.0]).ratio
        assert best_indoor > best_bright  # k falls with intensity on this cell

    def test_dielectric_sweep_ordering(self):
        points = ablation.dielectric_sweep()
        droops = [p.droop_v for p in points]
        assert droops == sorted(droops)  # polyester, X7R, electrolytic order

    def test_divider_sweep_tradeoffs(self):
        points = ablation.divider_impedance_sweep(totals=(1e6, 100e6))
        low, high = points
        assert low.loading_error_v > high.loading_error_v
        assert low.duty_weighted_current_a > high.duty_weighted_current_a

    def test_hold_period_tradeoff_uses_log(self):
        from repro.experiments import fig2

        log = fig2.run_log("desk", dt=60.0)
        points = ablation.hold_period_tradeoff(log, periods=(60.0, 600.0))
        assert points[0].voc_error_v <= points[1].voc_error_v
        assert points[0].overhead_energy_per_hour > points[1].overhead_energy_per_hour
