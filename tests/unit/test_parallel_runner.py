"""The parallel experiment runner: determinism, ordering, degradation."""

import pytest

from repro.env.profiles import HOURS
from repro.errors import ModelParameterError
from repro.experiments.comparison import run_comparison
from repro.sim.parallel import default_worker_count, parallel_map, scatter


def _square(x):
    # Module-level so it survives pickling into pool workers.
    return x * x


class TestParallelMap:
    def test_serial_mode_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], mode="serial") == [9, 1, 4]

    def test_process_mode_matches_serial(self):
        items = list(range(12))
        serial = parallel_map(_square, items, mode="serial")
        pooled = parallel_map(_square, items, mode="process", max_workers=2)
        assert pooled == serial

    def test_auto_mode_runs_inline_for_single_worker(self):
        # Closures are unpicklable — this only works if no pool is spawned.
        assert parallel_map(lambda x: x + 1, [1, 2], max_workers=1) == [2, 3]

    def test_auto_mode_runs_inline_for_single_item(self):
        assert parallel_map(lambda x: x + 1, [41], max_workers=4) == [42]

    def test_empty_items(self):
        assert parallel_map(_square, [], mode="serial") == []

    def test_invalid_mode_rejected(self):
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1], mode="threads")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1], max_workers=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestScatter:
    def test_balanced_contiguous_chunks(self):
        chunks = scatter(list(range(7)), 3)
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4], [5, 6]]

    def test_more_parts_than_items(self):
        chunks = scatter([1, 2], 5)
        assert [list(c) for c in chunks] == [[1], [2]]

    def test_empty_items(self):
        assert scatter([], 3) == []

    def test_invalid_parts_rejected(self):
        with pytest.raises(ModelParameterError):
            scatter([1], 0)


class TestParallelComparison:
    def test_parallel_equals_serial(self):
        kwargs = dict(
            duration=0.2 * HOURS,
            dt=30.0,
            scenarios=["office-desk", "outdoor"],
            techniques=["ideal-oracle", "proposed-S&H-FOCV", "no-MPPT-direct"],
        )
        serial = run_comparison(parallel=False, **kwargs)
        pooled = run_comparison(parallel=True, max_workers=2, **kwargs)
        assert len(pooled) == len(serial) == 6
        for s, p in zip(serial, pooled):
            assert (p.technique, p.scenario) == (s.technique, s.scenario)
            assert p.summary.__dict__ == s.summary.__dict__
