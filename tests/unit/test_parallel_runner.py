"""The parallel experiment runner: determinism, ordering, degradation."""

import os
import time

import pytest

from repro.env.profiles import HOURS
from repro.errors import ModelParameterError, WorkerCrashError, WorkerTimeoutError
from repro.experiments.comparison import run_comparison
from repro.sim.parallel import default_worker_count, parallel_map, scatter


def _square(x):
    # Module-level so it survives pickling into pool workers.
    return x * x


def _crash_unless_pid(spec):
    """Kill any process that isn't the one named in the spec.

    ``spec`` is ``(parent_pid, value)``; in a pool worker the pids
    differ and the hard exit breaks the pool, while the serial retry
    (same process) returns normally — letting one spec exercise both
    the crash path and the fallback path.
    """
    parent_pid, value = spec
    if os.getpid() != parent_pid:
        os._exit(1)
    return value


def _sleep_for(seconds):
    time.sleep(seconds)
    return seconds


def _raise_value_error(x):
    raise ValueError(f"deterministic failure on {x}")


class TestParallelMap:
    def test_serial_mode_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], mode="serial") == [9, 1, 4]

    def test_process_mode_matches_serial(self):
        items = list(range(12))
        serial = parallel_map(_square, items, mode="serial")
        pooled = parallel_map(_square, items, mode="process", max_workers=2)
        assert pooled == serial

    def test_auto_mode_runs_inline_for_single_worker(self):
        # Closures are unpicklable — this only works if no pool is spawned.
        assert parallel_map(lambda x: x + 1, [1, 2], max_workers=1) == [2, 3]

    def test_auto_mode_runs_inline_for_single_item(self):
        assert parallel_map(lambda x: x + 1, [41], max_workers=4) == [42]

    def test_empty_items(self):
        assert parallel_map(_square, [], mode="serial") == []

    def test_invalid_mode_rejected(self):
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1], mode="threads")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1], max_workers=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestWorkerRecovery:
    def test_worker_crash_falls_back_to_serial(self):
        specs = [(os.getpid(), k) for k in range(4)]
        # The pool workers all hard-exit; the serial retry completes.
        assert parallel_map(_crash_unless_pid, specs, mode="process", max_workers=2) == [
            0,
            1,
            2,
            3,
        ]

    def test_worker_crash_surfaces_when_fallback_disabled(self):
        specs = [(os.getpid(), k) for k in range(4)]
        with pytest.raises(WorkerCrashError):
            parallel_map(
                _crash_unless_pid,
                specs,
                mode="process",
                max_workers=2,
                fallback_serial=False,
            )

    def test_hung_worker_times_out_with_spec_index(self):
        # The "hung" spec sleeps far longer than the ceiling but briefly
        # enough that the orphaned worker drains before interpreter exit.
        with pytest.raises(WorkerTimeoutError) as err:
            parallel_map(
                _sleep_for,
                [0.0, 6.0],
                mode="process",
                max_workers=2,
                timeout=1.5,
            )
        assert err.value.spec_index == 1
        assert err.value.timeout == 1.5

    def test_timeout_unbreached_returns_results(self):
        out = parallel_map(
            _sleep_for, [0.0, 0.01], mode="process", max_workers=2, timeout=30.0
        )
        assert out == [0.0, 0.01]

    def test_deterministic_exception_propagates_as_itself(self):
        # fn raising is not a crash: no silent serial retry, no wrapping.
        with pytest.raises(ValueError, match="deterministic failure"):
            parallel_map(_raise_value_error, [1, 2], mode="process", max_workers=2)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1, 2], timeout=0.0)


class TestScatter:
    def test_balanced_contiguous_chunks(self):
        chunks = scatter(list(range(7)), 3)
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4], [5, 6]]

    def test_more_parts_than_items(self):
        chunks = scatter([1, 2], 5)
        assert [list(c) for c in chunks] == [[1], [2]]

    def test_empty_items(self):
        assert scatter([], 3) == []

    def test_invalid_parts_rejected(self):
        with pytest.raises(ModelParameterError):
            scatter([1], 0)


class TestParallelComparison:
    def test_parallel_equals_serial(self):
        kwargs = dict(
            duration=0.2 * HOURS,
            dt=30.0,
            scenarios=["office-desk", "outdoor"],
            techniques=["ideal-oracle", "proposed-S&H-FOCV", "no-MPPT-direct"],
        )
        serial = run_comparison(parallel=False, **kwargs)
        pooled = run_comparison(parallel=True, max_workers=2, **kwargs)
        assert len(pooled) == len(serial) == 6
        for s, p in zip(serial, pooled):
            assert (p.technique, p.scenario) == (s.technique, s.scenario)
            assert p.summary.__dict__ == s.summary.__dict__
