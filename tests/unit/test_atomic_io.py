"""Unit tests for the atomic artifact I/O layer (repro.ckpt.atomic)."""

import json
import multiprocessing
import os

import pytest

from repro.ckpt.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    file_lock,
    locked_update_json,
)
from repro.errors import LockTimeoutError


class TestAtomicWrite:
    def test_writes_new_file(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old contents")
        atomic_write_text(target, "new contents")
        assert target.read_text() == "new contents"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "artifact.bin"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "x")
        atomic_write_text(target, "y")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.txt"]

    def test_failure_leaves_old_file_intact(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        # Old artifact untouched, no temp droppings.
        assert json.loads(target.read_text()) == {"ok": True}
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.json"]

    def test_json_is_stable_and_newline_terminated(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"b": 1, "a": 2})
        text = target.read_text()
        assert text.endswith("\n")
        # sort_keys default makes repeated writes byte-identical.
        atomic_write_json(target, {"a": 2, "b": 1})
        assert target.read_text() == text


class TestFileLock:
    def test_lock_creates_sidecar(self, tmp_path):
        target = tmp_path / "ledger.json"
        with file_lock(target) as lock_file:
            assert lock_file.name == "ledger.json.lock"
            assert lock_file.exists()

    def test_lock_times_out_against_held_lock(self, tmp_path):
        target = tmp_path / "ledger.json"
        with file_lock(target):
            with pytest.raises(LockTimeoutError):
                with file_lock(target, timeout=0.1, poll_interval=0.01):
                    pass  # pragma: no cover

    def test_lock_reacquirable_after_release(self, tmp_path):
        target = tmp_path / "ledger.json"
        with file_lock(target, timeout=0.5):
            pass
        with file_lock(target, timeout=0.5):
            pass

    def test_timeout_error_is_typed_and_descriptive(self, tmp_path):
        from repro.errors import ReproError

        target = tmp_path / "ledger.json"
        with file_lock(target):
            with pytest.raises(LockTimeoutError) as excinfo:
                with file_lock(target, timeout=0.05, poll_interval=0.01):
                    pass  # pragma: no cover
        assert isinstance(excinfo.value, ReproError)
        assert "ledger.json" in str(excinfo.value)

    def test_blocking_mode_waits_for_release(self, tmp_path):
        """timeout=None means block (flock semantics), not fail."""
        import threading
        import time

        target = tmp_path / "ledger.json"
        held = threading.Event()
        release = threading.Event()

        def holder():
            with file_lock(target):
                held.set()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert held.wait(5.0)
        releaser = threading.Timer(0.2, release.set)
        releaser.start()
        t0 = time.monotonic()
        with file_lock(target, timeout=None):
            waited = time.monotonic() - t0
        thread.join(5.0)
        releaser.cancel()
        # Blocked until the holder let go — never raised, never spun out.
        assert waited >= 0.15


def _contend(args):
    """Worker: append one entry to the shared ledger under the lock."""
    path, worker_id = args
    for i in range(5):
        locked_update_json(
            path,
            lambda payload: payload["entries"].append([worker_id, i]),
            default=lambda: {"entries": []},
            fsync=False,
        )
    return worker_id


class TestLockedUpdateJson:
    def test_creates_file_from_default(self, tmp_path):
        target = tmp_path / "ledger.json"
        result = locked_update_json(
            target, lambda p: p.update(runs=[]), default=dict
        )
        assert json.loads(target.read_text()) == {"runs": []}
        assert result == {"runs": []}

    def test_update_return_value_replaces_payload(self, tmp_path):
        target = tmp_path / "ledger.json"
        locked_update_json(target, lambda p: {"replaced": True})
        assert json.loads(target.read_text()) == {"replaced": True}

    def test_corrupt_file_replaced_by_default(self, tmp_path):
        target = tmp_path / "ledger.json"
        target.write_text("{ torn json")
        locked_update_json(
            target,
            lambda p: p.update(recovered=True),
            default=lambda: {"recovered": False},
        )
        assert json.loads(target.read_text()) == {"recovered": True}

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        target = tmp_path / "ledger.json"
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(4) as pool:
            pool.map(_contend, [(str(target), w) for w in range(4)])
        entries = json.loads(target.read_text())["entries"]
        # 4 workers x 5 appends, none dropped by a racing read-modify-write.
        assert len(entries) == 20
        assert sorted(map(tuple, entries)) == sorted(
            (w, i) for w in range(4) for i in range(5)
        )
