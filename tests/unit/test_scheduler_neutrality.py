"""Unit tests for the energy-aware scheduler and neutrality analysis."""

import pytest

from repro.analysis.neutrality import assess_neutrality, size_supercapacitor
from repro.env.scenarios import constant_bench, office_desk_24h
from repro.errors import ModelParameterError
from repro.node.scheduler import EnergyAwareScheduler
from repro.node.sensor_node import SensorNode
from repro.pv.cells import am_1815
from repro.storage.supercap import Supercapacitor


class FakeStore:
    def __init__(self, voltage):
        self.voltage = voltage


class TestSchedulerPolicy:
    def make(self, voltage=3.0):
        return EnergyAwareScheduler(
            node=SensorNode(),
            storage=FakeStore(voltage),
            v_survival=2.2,
            v_comfort=4.0,
            min_period=30.0,
            max_period=1800.0,
        )

    def test_hibernates_below_survival(self):
        sched = self.make()
        assert sched.period_for_voltage(2.0) is None

    def test_full_rate_above_comfort(self):
        sched = self.make()
        assert sched.period_for_voltage(4.5) == pytest.approx(30.0)

    def test_period_monotone_in_voltage(self):
        sched = self.make()
        periods = [sched.period_for_voltage(v) for v in (2.3, 2.8, 3.4, 3.9)]
        assert all(b < a for a, b in zip(periods, periods[1:]))

    def test_boundary_values(self):
        sched = self.make()
        assert sched.period_for_voltage(2.2) == pytest.approx(1800.0, rel=0.01)
        assert sched.period_for_voltage(4.0) == pytest.approx(30.0, rel=0.01)

    def test_clamp_absorbs_exp_log_overshoot_at_survival(self):
        # At voltage == v_survival the interpolation fraction is exactly 0
        # and the unclamped period is exp(log(1800.0)) == 1800.0000000000005
        # — ~5e-13 *above* max_period.  The clamp must absorb it: commanded
        # periods never exceed the application ceiling, bitwise.
        import math

        sched = self.make()
        assert math.exp(math.log(sched.max_period)) > sched.max_period  # the hazard
        assert sched.period_for_voltage(2.2) == sched.max_period
        # One ulp above survival must still respect the ceiling exactly.
        eps_up = math.nextafter(2.2, 3.0)
        assert sched.period_for_voltage(eps_up) <= sched.max_period
        # And one ulp below comfort must respect the floor exactly.
        below_comfort = math.nextafter(4.0, 0.0)
        assert sched.min_period <= sched.period_for_voltage(below_comfort) <= sched.max_period

    def test_nan_voltage_raises_guard(self):
        from repro.errors import NumericalGuardError

        sched = self.make()
        with pytest.raises(NumericalGuardError):
            sched.period_for_voltage(float("nan"))

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ModelParameterError):
            EnergyAwareScheduler(
                node=SensorNode(), storage=FakeStore(3.0), v_survival=4.0, v_comfort=3.0
            )

    def test_rejects_bad_periods(self):
        with pytest.raises(ModelParameterError):
            EnergyAwareScheduler(
                node=SensorNode(),
                storage=FakeStore(3.0),
                min_period=100.0,
                max_period=50.0,
            )


class TestSchedulerDynamics:
    def test_reports_accumulate_when_comfortable(self):
        store = FakeStore(4.5)
        sched = EnergyAwareScheduler(
            node=SensorNode(), storage=store, min_period=30.0, max_period=600.0,
            update_interval=10.0,
        )
        t = 0.0
        for _ in range(100):
            sched.power(t)
            t += 10.0
        assert sched.reports_sent >= 30  # ~one per 30 s over 1000 s

    def test_hibernation_stops_reports(self):
        store = FakeStore(1.8)
        sched = EnergyAwareScheduler(node=SensorNode(), storage=store, update_interval=10.0)
        t = 0.0
        for _ in range(50):
            power = sched.power(t)
            t += 10.0
        assert sched.hibernating
        assert sched.reports_sent == 0
        assert power == pytest.approx(SensorNode().sleep_power)

    def test_recovers_from_hibernation(self):
        store = FakeStore(1.8)
        sched = EnergyAwareScheduler(node=SensorNode(), storage=store, update_interval=10.0)
        for i in range(10):
            sched.power(i * 10.0)
        store.voltage = 4.5
        for i in range(10, 400):
            sched.power(i * 10.0)
        assert not sched.hibernating
        assert sched.reports_sent > 0

    def test_average_power_at_matches_period(self):
        sched = EnergyAwareScheduler(node=SensorNode(), storage=FakeStore(3.0))
        avg = sched.average_power_at(4.5)
        node = SensorNode(report_period=30.0)
        assert avg == pytest.approx(
            node.sleep_power + node.energy_per_report() / 30.0, rel=1e-6
        )

    def test_integrates_with_simulator(self):
        from repro.baselines.ideal import IdealMPPT
        from repro.sim.quasistatic import QuasiStaticSimulator

        storage = Supercapacitor(capacitance=1.0, voltage=3.5)
        sched = EnergyAwareScheduler(node=SensorNode(), storage=storage)
        sim = QuasiStaticSimulator(
            am_1815(), IdealMPPT(), constant_bench(1000.0),
            storage=storage, load=sched.power, record=False,
        )
        sim.run(1200.0, dt=10.0)
        assert sched.reports_sent > 0


class TestNeutrality:
    def test_desk_day_with_light_load_is_neutral(self):
        report = assess_neutrality(
            am_1815(), office_desk_24h(), load_power=lambda t: 20e-6
        )
        assert report.is_neutral
        assert report.harvest_energy_per_day > report.load_energy_per_day

    def test_heavy_load_is_not_neutral(self):
        report = assess_neutrality(
            am_1815(), office_desk_24h(), load_power=lambda t: 5e-3
        )
        assert not report.is_neutral

    def test_heavy_mppt_overhead_kills_the_budget(self):
        # The paper's indoor claim, in budget form: a 2 mW tracker eats
        # far more than the desk cell produces.
        report = assess_neutrality(
            am_1815(), office_desk_24h(), load_power=lambda t: 0.0,
            overhead_power=2e-3,
        )
        assert not report.is_neutral

    def test_overnight_gap_detected(self):
        report = assess_neutrality(
            am_1815(), office_desk_24h(), load_power=lambda t: 20e-6
        )
        # The desk is dark roughly 9 pm - 6 am.
        assert 6 * 3600 < report.longest_gap_seconds <= 14 * 3600
        assert report.storage_needed_joules > 0.0

    def test_constant_light_has_no_gap(self):
        report = assess_neutrality(
            am_1815(), constant_bench(500.0), load_power=lambda t: 20e-6
        )
        assert report.longest_gap_seconds == 0.0
        assert report.storage_needed_joules == 0.0

    def test_supercap_sizing(self):
        report = assess_neutrality(
            am_1815(), office_desk_24h(), load_power=lambda t: 20e-6
        )
        farads = size_supercapacitor(report, v_max=5.0, v_min=2.2)
        usable = 0.5 * farads * (5.0**2 - 2.2**2)
        assert usable == pytest.approx(2.0 * report.storage_needed_joules, rel=1e-9)

    def test_sizing_rejects_bad_window(self):
        report = assess_neutrality(
            am_1815(), constant_bench(500.0), load_power=lambda t: 0.0
        )
        with pytest.raises(ModelParameterError):
            size_supercapacitor(report, v_max=2.0, v_min=3.0)

    def test_rejects_bad_efficiencies(self):
        with pytest.raises(ModelParameterError):
            assess_neutrality(
                am_1815(), constant_bench(100.0), load_power=lambda t: 0.0,
                tracking_efficiency=0.0,
            )
