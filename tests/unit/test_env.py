"""Unit tests for light environments."""

import numpy as np
import pytest

from repro.env.indoor import ArtificialLighting, OccupancyLighting, WindowDaylight
from repro.env.outdoor import ClearSkySun, CloudField
from repro.env.profiles import (
    HOURS,
    CompositeProfile,
    ConstantProfile,
    NoisyProfile,
    PiecewiseProfile,
    SampledProfile,
    ScaledProfile,
    StepProfile,
)
from repro.env.scenarios import office_desk_24h, outdoor_day, semi_mobile_24h, step_change
from repro.errors import ModelParameterError


class TestBasicProfiles:
    def test_constant(self):
        p = ConstantProfile(500.0)
        assert p(0.0) == 500.0
        assert p(1e6) == 500.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ModelParameterError):
            ConstantProfile(-1.0)

    def test_piecewise_interpolates(self):
        p = PiecewiseProfile([(0.0, 0.0), (10.0, 100.0)])
        assert p(5.0) == pytest.approx(50.0)
        assert p(-5.0) == 0.0  # holds first level
        assert p(20.0) == 100.0  # holds last level

    def test_piecewise_rejects_unordered(self):
        with pytest.raises(ModelParameterError):
            PiecewiseProfile([(1.0, 0.0), (0.5, 1.0)])

    def test_step_profile_holds_levels(self):
        p = StepProfile([(10.0, 100.0), (20.0, 300.0)], initial=5.0)
        assert p(0.0) == 5.0
        assert p(10.0) == 100.0
        assert p(19.9) == 100.0
        assert p(25.0) == 300.0

    def test_composition_adds(self):
        p = ConstantProfile(100.0) + ConstantProfile(50.0)
        assert p(0.0) == 150.0

    def test_scaling(self):
        p = 0.5 * ConstantProfile(100.0)
        assert isinstance(p, ScaledProfile)
        assert p(0.0) == 50.0

    def test_noise_reproducible(self):
        base = ConstantProfile(1000.0)
        a = NoisyProfile(base, relative_sigma=0.1, seed=7)
        b = NoisyProfile(base, relative_sigma=0.1, seed=7)
        times = np.linspace(0, 1000, 50)
        assert [a(t) for t in times] == [b(t) for t in times]

    def test_noise_different_seeds_differ(self):
        base = ConstantProfile(1000.0)
        a = NoisyProfile(base, relative_sigma=0.1, seed=1)
        b = NoisyProfile(base, relative_sigma=0.1, seed=2)
        assert a(123.0) != b(123.0)

    def test_noise_never_negative(self):
        p = NoisyProfile(ConstantProfile(10.0), relative_sigma=2.0, seed=3)
        assert all(p(t) >= 0.0 for t in np.linspace(0, 5000, 200))

    def test_sampled_profile(self):
        s = SampledProfile(ConstantProfile(42.0), duration=10.0, dt=1.0)
        assert len(s) == 11
        assert np.all(s.values == 42.0)

    def test_sampled_map(self):
        s = SampledProfile(ConstantProfile(2.0), duration=4.0, dt=1.0)
        doubled = s.map(lambda v: 2.0 * v)
        assert np.all(doubled.values == 4.0)
        assert np.all(s.values == 2.0)  # original untouched


class TestIndoorBlocks:
    def test_artificial_schedule(self):
        lights = ArtificialLighting(level=400.0, on_hour=8.0, off_hour=20.0, warmup_seconds=0.0)
        assert lights(7.9 * HOURS) == 0.0
        assert lights(12.0 * HOURS) == 400.0
        assert lights(20.1 * HOURS) == 0.0

    def test_artificial_warmup_ramp(self):
        lights = ArtificialLighting(level=400.0, on_hour=8.0, off_hour=20.0, warmup_seconds=100.0)
        assert lights(8.0 * HOURS + 50.0) == pytest.approx(200.0)

    def test_artificial_wraps_past_midnight(self):
        lights = ArtificialLighting(level=100.0, on_hour=22.0, off_hour=26.0, warmup_seconds=0.0)
        assert lights(23.0 * HOURS) == 100.0
        assert lights(1.0 * HOURS) == 100.0
        assert lights(3.0 * HOURS) == 0.0

    def test_window_daylight_peaks_at_solar_noon(self):
        window = WindowDaylight(peak_lux=1000.0, sunrise_hour=6.0, sunset_hour=18.0, transmission=1.0)
        noon = window(12.0 * HOURS)
        assert noon == pytest.approx(1000.0)
        assert window(5.0 * HOURS) == 0.0
        assert window(9.0 * HOURS) < noon

    def test_occupancy_intervals(self):
        occ = OccupancyLighting([(9.0, 12.0, 300.0), (13.0, 17.0, 350.0)])
        assert occ(10.0 * HOURS) == 300.0
        assert occ(12.5 * HOURS) == 0.0
        assert occ(14.0 * HOURS) == 350.0

    def test_occupancy_rejects_overlap(self):
        with pytest.raises(ModelParameterError):
            OccupancyLighting([(9.0, 12.0, 300.0), (11.0, 14.0, 350.0)])


class TestOutdoorBlocks:
    def test_sun_zero_at_night(self):
        sun = ClearSkySun(sunrise_hour=6.0, sunset_hour=20.0)
        assert sun(3.0 * HOURS) == 0.0
        assert sun(22.0 * HOURS) == 0.0

    def test_sun_peaks_at_noon(self):
        sun = ClearSkySun(sunrise_hour=6.0, sunset_hour=18.0)
        noon = sun(12.0 * HOURS)
        assert noon > sun(8.0 * HOURS)
        assert noon > sun(16.0 * HOURS)
        assert noon > 30000.0  # tens of klux at 55 deg elevation

    def test_clouds_attenuate(self):
        sun = ClearSkySun()
        cloudy = CloudField(sun, cloudy_fraction=1.0, cloud_transmission=0.25, seed=5)
        t = 12.0 * HOURS
        assert cloudy(t) == pytest.approx(0.25 * sun(t), rel=0.05)

    def test_clear_fraction_passes_through(self):
        sun = ClearSkySun()
        clear = CloudField(sun, cloudy_fraction=0.0, seed=5)
        t = 12.0 * HOURS
        assert clear(t) == pytest.approx(sun(t), rel=1e-9)

    def test_cloud_field_reproducible(self):
        sun = ClearSkySun()
        a = CloudField(sun, cloudy_fraction=0.5, seed=9)
        b = CloudField(sun, cloudy_fraction=0.5, seed=9)
        times = np.linspace(8 * HOURS, 16 * HOURS, 100)
        assert [a(t) for t in times] == [b(t) for t in times]


class TestScenarios:
    def test_desk_dark_at_night_lit_by_day(self):
        desk = office_desk_24h()
        assert desk(2.0 * HOURS) == 0.0
        assert desk(12.0 * HOURS) > 200.0

    def test_desk_lights_off_step_exists(self):
        desk = office_desk_24h()
        before = desk(20.9 * HOURS)
        after = desk(21.2 * HOURS)
        assert before > after + 100.0

    def test_semi_mobile_lunch_excursion(self):
        mobile = semi_mobile_24h()
        indoor = mobile(11.0 * HOURS)
        outdoor = mobile(12.5 * HOURS)
        assert outdoor > 5.0 * indoor

    def test_outdoor_day_shape(self):
        day = outdoor_day()
        assert day(1.0 * HOURS) == 0.0
        assert day(12.0 * HOURS) > 1000.0

    def test_step_change_profile(self):
        p = step_change(200.0, 2000.0, step_time=100.0)
        assert p(50.0) == pytest.approx(200.0)
        assert p(200.0) == pytest.approx(2000.0)
