"""Unit tests for single-diode parameter extraction."""

import pytest

from repro.errors import ConvergenceError, ModelParameterError
from repro.pv.cells import am_1815
from repro.pv.fitting import FitTarget, am_1815_targets, fit_cell_parameters


class TestFitTarget:
    def test_valid_kinds(self):
        FitTarget(lux=100.0, kind="voc", value=5.0)
        FitTarget(lux=100.0, kind="isc", value=1e-5)
        FitTarget(lux=100.0, kind="i_at_v", value=1e-5, voltage=3.0)
        FitTarget(lux=100.0, kind="k", value=0.7)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelParameterError):
            FitTarget(lux=100.0, kind="fill_factor", value=0.5)

    def test_i_at_v_needs_voltage(self):
        with pytest.raises(ModelParameterError):
            FitTarget(lux=100.0, kind="i_at_v", value=1e-5)

    def test_rejects_bad_lux(self):
        with pytest.raises(ModelParameterError):
            FitTarget(lux=0.0, kind="voc", value=5.0)


class TestFitCellParameters:
    def test_recovers_am1815_class_model(self):
        # Fit against the library targets and verify the result hits them.
        result = fit_cell_parameters(am_1815_targets(), n_series=6, name="refit-1815")
        assert result.worst_residual < 0.05
        cell = result.cell
        assert cell.voc(200.0) == pytest.approx(4.978, rel=0.01)
        assert cell.isc(200.0) == pytest.approx(50e-6, rel=0.05)
        assert float(cell.model_at(200.0).current_at(3.0)) == pytest.approx(42e-6, rel=0.05)

    def test_refit_agrees_with_library_calibration(self):
        result = fit_cell_parameters(am_1815_targets(), n_series=6)
        library = am_1815()
        for lux in (200.0, 1000.0, 5000.0):
            assert result.cell.voc(lux) == pytest.approx(library.voc(lux), rel=0.02)

    def test_synthetic_roundtrip(self):
        # Generate targets from a known cell, fit, and compare curves.
        truth = am_1815()
        targets = [
            FitTarget(lux=lux, kind="voc", value=truth.voc(lux), weight=4.0)
            for lux in (100.0, 300.0, 1000.0, 3000.0)
        ]
        targets += [
            FitTarget(lux=lux, kind="isc", value=truth.isc(lux), weight=4.0)
            for lux in (100.0, 1000.0)
        ]
        targets.append(
            FitTarget(lux=500.0, kind="i_at_v", value=float(truth.model_at(500.0).current_at(3.5)),
                      voltage=3.5, weight=4.0)
        )
        result = fit_cell_parameters(targets, n_series=6)
        for lux in (150.0, 700.0, 2000.0):
            assert result.cell.mpp(lux).power == pytest.approx(
                truth.mpp(lux).power, rel=0.1
            )

    def test_inconsistent_targets_raise(self):
        # An MPP-at-operating-point set that single-diode physics cannot
        # satisfy (see DESIGN.md section 6).
        targets = [
            FitTarget(lux=200.0, kind="voc", value=4.978, weight=8.0),
            FitTarget(lux=200.0, kind="isc", value=50e-6, weight=8.0),
            FitTarget(lux=200.0, kind="i_at_v", value=42e-6, voltage=3.0, weight=8.0),
            FitTarget(lux=200.0, kind="k", value=0.3, weight=8.0),  # absurd k
        ]
        with pytest.raises(ConvergenceError):
            fit_cell_parameters(targets, n_series=6, max_nfev=150)

    def test_needs_targets(self):
        with pytest.raises(ModelParameterError):
            fit_cell_parameters([], n_series=6)

    def test_initial_guess_honoured(self):
        result = fit_cell_parameters(
            am_1815_targets(),
            n_series=6,
            initial_guess=(2.5e-4, 1.6e-12, 1.9, 1400.0, 19.0),
        )
        assert result.worst_residual < 0.05
