"""Unit tests for comparator, op-amp buffer, MOSFET, and analog switch."""

import pytest

from repro.analog.comparator import LMC7215, Comparator, ComparatorSpec
from repro.analog.mosfet import LOW_THRESHOLD_NFET, MosfetSpec, MosfetSwitch
from repro.analog.opamp import MICROPOWER_BUFFER, OpAmpSpec, UnityGainBuffer
from repro.analog.switch import MICROPOWER_ANALOG_SWITCH, AnalogSwitch
from repro.errors import ModelParameterError


class TestComparator:
    def test_basic_comparison(self):
        c = Comparator(spec=ComparatorSpec(name="ideal", quiescent_current=0.0))
        assert c.evaluate(2.0, 1.0)
        assert not c.evaluate(1.0, 2.0)

    def test_lmc7215_quiescent_current(self):
        c = Comparator(spec=LMC7215)
        assert c.supply_current() == pytest.approx(0.7e-6)

    def test_hysteresis_band(self):
        spec = ComparatorSpec(name="hyst", quiescent_current=0.0, hysteresis=0.2)
        c = Comparator(spec=spec)
        assert not c.evaluate(0.05, 0.0)  # inside band from low state
        assert c.evaluate(0.15, 0.0)  # above band -> high
        assert c.evaluate(-0.05, 0.0)  # inside band holds high
        assert not c.evaluate(-0.15, 0.0)  # below band -> low

    def test_dead_below_min_supply(self):
        c = Comparator(spec=LMC7215, supply=1.0)
        assert not c.evaluate(3.0, 0.0)
        assert c.supply_current() == 0.0

    def test_output_voltage_swings_rail(self):
        c = Comparator(spec=ComparatorSpec(name="x", quiescent_current=0.0), supply=3.3)
        c.evaluate(1.0, 0.0)
        assert c.output_voltage == pytest.approx(3.3)
        c.evaluate(0.0, 1.0)
        assert c.output_voltage == 0.0

    def test_inverting_sense(self):
        c = Comparator(spec=ComparatorSpec(name="x", quiescent_current=0.0), inverting=True)
        assert c.evaluate(0.0, 1.0)

    def test_offset_shifts_threshold(self):
        spec = ComparatorSpec(name="x", quiescent_current=0.0, input_offset=0.05)
        c = Comparator(spec=spec)
        assert c.evaluate(0.0, 0.02)  # offset makes the + input look higher


class TestUnityGainBuffer:
    def test_settle_tracks_input_with_offset(self):
        b = UnityGainBuffer(spec=MICROPOWER_BUFFER)
        out = b.settle(1.5)
        assert out == pytest.approx(1.5 + MICROPOWER_BUFFER.input_offset)

    def test_output_clamps_to_rails(self):
        b = UnityGainBuffer(supply=3.3)
        assert b.settle(5.0) == pytest.approx(3.3)
        assert b.settle(-1.0) == 0.0

    def test_slew_limiting(self):
        spec = OpAmpSpec(name="slow", quiescent_current=1e-6, slew_rate=1.0)
        b = UnityGainBuffer(spec=spec)
        b.step(2.0, dt=0.5)
        assert b.output == pytest.approx(0.5)

    def test_step_reaches_target_when_slow_enough(self):
        b = UnityGainBuffer()
        b.step(1.0, dt=1.0)
        assert b.output == pytest.approx(1.0 + b.spec.input_offset)

    def test_dead_below_min_supply(self):
        b = UnityGainBuffer(supply=1.0)
        assert b.settle(1.0) == 0.0
        assert b.supply_current() == 0.0
        assert b.bias_current() == 0.0

    def test_bias_current_pA_scale(self):
        b = UnityGainBuffer()
        assert 0.0 < b.bias_current() < 1e-10

    def test_rejects_negative_dt(self):
        with pytest.raises(ModelParameterError):
            UnityGainBuffer().step(1.0, dt=-1.0)


class TestMosfetSwitch:
    def test_off_below_threshold(self):
        m = MosfetSwitch()
        assert not m.is_on(0.3)
        assert m.channel_resistance(0.3) == float("inf")

    def test_fully_enhanced_resistance(self):
        m = MosfetSwitch()
        assert m.channel_resistance(3.3) == pytest.approx(m.spec.on_resistance)

    def test_partial_enhancement_interpolates(self):
        m = MosfetSwitch()
        mid = (m.spec.threshold + m.spec.full_enhancement_vgs) / 2.0
        r = m.channel_resistance(mid)
        assert m.spec.on_resistance < r < float("inf")
        assert r == pytest.approx(2.0 * m.spec.on_resistance, rel=0.01)

    def test_pfet_uses_magnitude(self):
        from repro.analog.mosfet import LOW_THRESHOLD_PFET

        m = MosfetSwitch(spec=LOW_THRESHOLD_PFET)
        assert m.is_on(-3.0)

    def test_conduction_loss(self):
        m = MosfetSwitch()
        loss = m.conduction_loss(0.01, 3.3)
        assert loss == pytest.approx(1e-4 * m.spec.on_resistance)

    def test_negligible_loss_claim(self):
        # Paper: one low-Ron MOSFET in the PV line has negligible impact.
        m = MosfetSwitch(spec=LOW_THRESHOLD_NFET)
        cell_current = 250e-6  # 1000 lux AM-1815 scale
        loss = m.conduction_loss(cell_current, 3.3)
        assert loss < 1e-6  # well under a microwatt

    def test_switching_energy(self):
        m = MosfetSwitch()
        assert m.switching_energy(3.3) == pytest.approx(m.spec.gate_charge * 3.3)

    def test_rejects_bad_spec(self):
        with pytest.raises(ModelParameterError):
            MosfetSpec(name="bad", threshold=2.0, on_resistance=1.0, full_enhancement_vgs=1.0)


class TestAnalogSwitch:
    def test_open_by_default(self):
        s = AnalogSwitch()
        assert not s.closed
        assert s.resistance == float("inf")

    def test_close_and_open(self):
        s = AnalogSwitch()
        s.close()
        assert s.resistance == pytest.approx(s.spec.on_resistance)
        kick = s.open(1e-6)
        assert kick == pytest.approx(s.spec.charge_injection / 1e-6)
        assert not s.closed

    def test_open_without_cap_returns_zero(self):
        s = AnalogSwitch()
        s.close()
        assert s.open() == 0.0

    def test_open_when_already_open_no_kick(self):
        s = AnalogSwitch()
        assert s.open(1e-6) == 0.0

    def test_leakage_only_when_open(self):
        s = AnalogSwitch()
        assert s.leakage_current() == pytest.approx(s.spec.off_leakage)
        s.close()
        assert s.leakage_current() == 0.0

    def test_rejects_bad_hold_cap(self):
        s = AnalogSwitch()
        s.close()
        with pytest.raises(ModelParameterError):
            s.open(0.0)

    def test_default_part_is_micropower(self):
        assert MICROPOWER_ANALOG_SWITCH.quiescent_current < 1e-7
