"""Unit tests for design synthesis and the tolerance Monte Carlo."""

import pytest

from repro.analysis.montecarlo import (
    MonteCarloResult,
    ToleranceSpec,
    render_montecarlo,
    run_sample_hold_montecarlo,
)
from repro.core.design import DesignSpec, synthesise_platform
from repro.errors import ModelParameterError
from repro.pv.cells import am_1815, generic_asi, schott_1116929


class TestDesignSynthesis:
    def test_paper_class_spec_passes_all_checks(self):
        report = synthesise_platform(am_1815())
        assert report.all_checks_pass, report.render()

    def test_timing_close_to_spec(self):
        report = synthesise_platform(am_1815(), DesignSpec(hold_period=69.0, pulse_width=39e-3))
        assert report.config.astable.t_off == pytest.approx(69.0, rel=0.15)
        assert report.config.astable.t_on == pytest.approx(39e-3, rel=0.15)

    def test_divider_realises_cell_k(self):
        cell = am_1815()
        report = synthesise_platform(cell)
        k_cell = cell.mpp(1000.0).k
        assert report.config.k_target == pytest.approx(k_cell, rel=0.03)

    def test_explicit_k_target(self):
        report = synthesise_platform(am_1815(), DesignSpec(k_target=0.596))
        assert report.config.k_target == pytest.approx(0.596, rel=0.03)

    def test_other_cells_synthesise(self):
        report = synthesise_platform(schott_1116929())
        assert report.all_checks_pass, report.render()

    def test_small_cell_fails_current_budget_check(self):
        # A 10 cm^2 cell makes only ~15 uA at 200 lux; the 8.4 uA
        # metrology violates the <25 % budget rule — the synthesis must
        # say so rather than emit a non-viable design silently.
        report = synthesise_platform(generic_asi())
        failing = [c for c in report.checks if not c.passed]
        assert any("metrology current" in c.name for c in failing)

    def test_config_is_runnable(self):
        from repro.core.system import SampleHoldMPPT
        from repro.env.scenarios import constant_bench
        from repro.sim.quasistatic import QuasiStaticSimulator

        cell = am_1815()
        report = synthesise_platform(cell)
        controller = SampleHoldMPPT(config=report.config, assume_started=True)
        sim = QuasiStaticSimulator(cell, controller, constant_bench(1000.0), record=False)
        summary = sim.run(200.0, dt=1.0)
        assert summary.tracking_efficiency > 0.97

    def test_tight_droop_budget_selects_bigger_cap(self):
        loose = synthesise_platform(am_1815(), DesignSpec(max_droop_fraction=0.02))
        tight = synthesise_platform(am_1815(), DesignSpec(max_droop_fraction=0.002))
        assert tight.hold_capacitance >= loose.hold_capacitance

    def test_bad_spec_rejected(self):
        with pytest.raises(ModelParameterError):
            DesignSpec(pulse_width=100.0, hold_period=1.0)

    def test_render_contains_bom_and_checks(self):
        text = synthesise_platform(am_1815()).render()
        assert "R2 (divider bottom, trim here)" in text
        assert "PASS" in text


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sample_hold_montecarlo(boards=300, seed=11)

    def test_population_centres_near_trim(self, result):
        assert result.mean_k == pytest.approx(59.6, abs=1.0)

    def test_spread_is_table1_class(self, result):
        assert 0.05 < result.sigma_k < 1.0

    def test_band_ordering(self, result):
        lo68, hi68 = result.k_band(0.68)
        lo99, hi99 = result.k_band(0.99)
        assert lo99 <= lo68 <= hi68 <= hi99

    def test_yield_monotone_in_band_width(self, result):
        narrow = result.yield_within(59.4, 59.8)
        wide = result.yield_within(58.0, 61.0)
        assert wide >= narrow
        assert wide > 0.95

    def test_reproducible(self):
        a = run_sample_hold_montecarlo(boards=50, seed=3)
        b = run_sample_hold_montecarlo(boards=50, seed=3)
        assert list(a.ratios) == list(b.ratios)

    def test_zero_tolerances_collapse_spread(self):
        tight = run_sample_hold_montecarlo(
            boards=50,
            tolerances=ToleranceSpec(
                resistor_tolerance=0.0,
                offset_sigma_v=0.0,
                charge_injection_sigma=0.0,
                capacitor_tolerance=0.0,
            ),
        )
        assert tight.sigma_k < 1e-6

    def test_rejects_bad_board_count(self):
        with pytest.raises(ModelParameterError):
            run_sample_hold_montecarlo(boards=0)

    def test_render(self, result):
        text = render_montecarlo(result)
        assert "mean k" in text
        assert "Table I" in text
