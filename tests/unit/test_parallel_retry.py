"""The hardened parallel runner: retries, quarantine, heartbeat watchdog.

Worker functions live at module level so the process pool can pickle
them.  Failure modes are injected deliberately:

* ``_poison`` — ``os._exit`` kills the worker process (simulates a
  segfault/OOM kill), so the pool breaks and the crash must be
  attributed to the right spec;
* ``_flaky`` — fails a fixed number of times per spec, counted in a
  file, then succeeds (a transient fault the retry budget absorbs);
* ``_self_stop`` — SIGSTOPs its own process: alive but silent, which
  only the heartbeat watchdog can distinguish from "slow".
"""

import os
import signal

import pytest

import repro.obs as obs
from repro.errors import ModelParameterError, WorkerCrashError
from repro.sim.parallel import (
    ParallelReport,
    QuarantineRecord,
    _backoff_delay,
    parallel_map,
)


@pytest.fixture(autouse=True)
def _clean_global_obs():
    yield
    obs.disable()
    obs.REGISTRY.reset()
    obs.TRACER.reset()


def _square(x):
    return x * x


def _poison(spec):
    """Dies hard (no exception, no cleanup) when the spec says so."""
    value, poison = spec
    if value == poison:
        os._exit(17)
    return value * value


def _flaky(spec):
    """Fails ``fail_times`` times for this spec, then succeeds."""
    value, fail_times, counter_dir = spec
    marker = os.path.join(counter_dir, f"fails_{value}")
    try:
        with open(marker, "r", encoding="utf-8") as fh:
            so_far = int(fh.read())
    except OSError:
        so_far = 0
    if so_far < fail_times:
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write(str(so_far + 1))
        raise RuntimeError(f"transient fault #{so_far + 1} on {value}")
    return value * value


def _always_fails(x):
    raise ValueError(f"spec {x} is doomed")


def _self_stop(spec):
    value, stop_value = spec
    if value == stop_value:
        os.kill(os.getpid(), signal.SIGSTOP)
    return value * value


class TestHardenedHappyPath:
    def test_no_failures_matches_serial(self):
        specs = list(range(6))
        out = parallel_map(_square, specs, max_workers=2, retries=2)
        assert out == [x * x for x in specs]

    def test_quarantine_mode_returns_report(self):
        report = parallel_map(_square, [1, 2, 3], max_workers=2, quarantine=True)
        assert isinstance(report, ParallelReport)
        assert report.ok
        assert report.results == [1, 4, 9]
        assert report.retries == 0

    def test_parameter_validation(self):
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1], retries=-1)
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1], retries=1, backoff_base=0.0)
        with pytest.raises(ModelParameterError):
            parallel_map(_square, [1], heartbeat_interval=0.0)


class TestPoisonSpec:
    def test_poison_spec_quarantined_others_survive(self):
        specs = [(x, 3) for x in range(1, 6)]  # spec x==3 kills its worker
        report = parallel_map(
            _poison,
            specs,
            max_workers=2,
            retries=1,
            backoff_base=0.001,
            quarantine=True,
        )
        assert report.results == [1, 4, None, 16, 25]
        assert not report.ok
        assert len(report.quarantined) == 1
        record = report.quarantined[0]
        assert isinstance(record, QuarantineRecord)
        assert record.index == 2
        assert record.attempts == 2  # first try + one retry
        assert "WorkerCrashError" in record.error

    def test_poison_without_quarantine_raises(self):
        specs = [(x, 2) for x in range(1, 5)]
        with pytest.raises(WorkerCrashError):
            parallel_map(_poison, specs, max_workers=2, retries=1, backoff_base=0.001)


class TestTransientFaults:
    def test_flaky_spec_recovers_within_budget(self, tmp_path):
        specs = [(x, 2 if x == 2 else 0, str(tmp_path)) for x in range(1, 5)]
        report = parallel_map(
            _flaky,
            specs,
            max_workers=2,
            retries=3,
            backoff_base=0.001,
            quarantine=True,
        )
        assert report.ok
        assert report.results == [1, 4, 9, 16]
        assert report.retries == 2  # the two injected transient faults

    def test_permanent_failure_raises_original_exception(self):
        with pytest.raises(ValueError, match="doomed"):
            parallel_map(
                _always_fails, [1, 2], max_workers=2, retries=1, backoff_base=0.001
            )

    def test_serial_mode_quarantines_too(self):
        report = parallel_map(
            _always_fails,
            [1, 2, 3],
            mode="serial",
            retries=1,
            backoff_base=0.001,
            quarantine=True,
        )
        assert report.results == [None, None, None]
        assert len(report.quarantined) == 3
        assert all(r.attempts == 2 for r in report.quarantined)
        assert report.retries == 3


class TestHeartbeatWatchdog:
    def test_wedged_worker_killed_and_quarantined(self):
        specs = [(x, 1) for x in range(3)]  # spec x==1 SIGSTOPs itself
        report = parallel_map(
            _self_stop,
            specs,
            max_workers=2,
            heartbeat_interval=0.3,
            quarantine=True,
            backoff_base=0.001,
        )
        assert report.results == [0, None, 4]
        assert len(report.quarantined) == 1
        assert report.quarantined[0].index == 1
        assert "WorkerStallError" in report.quarantined[0].error


class TestDeterministicBackoff:
    def test_exponential_growth_and_cap(self):
        base = _backoff_delay(0, 1, 0.1, 5.0)
        doubled = _backoff_delay(0, 2, 0.1, 5.0)
        assert 0.1 <= base <= 0.15  # base + up to 50% jitter
        assert 0.2 <= doubled <= 0.3
        capped = _backoff_delay(0, 30, 0.1, 5.0)
        assert capped <= 7.5  # cap + max jitter

    def test_jitter_is_reproducible(self):
        assert _backoff_delay(7, 3, 0.1, 5.0) == _backoff_delay(7, 3, 0.1, 5.0)

    def test_jitter_decorrelates_specs(self):
        delays = {_backoff_delay(i, 1, 0.1, 5.0) for i in range(20)}
        assert len(delays) > 10


class TestObsIntegration:
    def test_retry_and_quarantine_counters(self):
        obs.reset()
        obs.enable()
        report = parallel_map(
            _always_fails,
            [1, 2],
            mode="serial",
            retries=1,
            backoff_base=0.001,
            quarantine=True,
        )
        assert not report.ok
        snap = obs.REGISTRY.snapshot()
        assert snap[("parallel.retries", ())]["value"] == 2.0
        assert snap[("parallel.quarantined_specs", ())]["value"] == 2.0


class TestQuarantineAttribution:
    """Regression: retries=0 quarantine must keep the spec's identity.

    The quarantine record used to hold only ``repr(exc)`` — no traceback
    — and a crash's :class:`WorkerCrashError` had no ``spec_index``, so
    a report with several failures couldn't be debugged post-hoc.
    """

    def test_retries_zero_serial_keeps_index_and_traceback(self):
        report = parallel_map(
            _always_fails, [7, 8, 9], mode="serial", quarantine=True
        )
        assert report.results == [None, None, None]
        assert [q.index for q in report.quarantined] == [0, 1, 2]
        assert all(q.attempts == 1 for q in report.quarantined)
        # The error string carries the worker-side frame, not just the message.
        for q in report.quarantined:
            assert "Traceback" in q.error
            assert "_always_fails" in q.error
            assert "is doomed" in q.error

    def test_retries_zero_pool_keeps_index_and_traceback(self):
        report = parallel_map(
            _always_fails,
            [7, 8],
            mode="process",
            max_workers=2,
            quarantine=True,
        )
        assert report.results == [None, None]
        assert [q.index for q in report.quarantined] == [0, 1]
        for q in report.quarantined:
            assert "Traceback" in q.error
            assert "is doomed" in q.error

    def test_crash_error_names_its_spec(self):
        specs = [(x, 2) for x in range(1, 5)]  # spec value 2 (index 1) dies
        with pytest.raises(WorkerCrashError) as excinfo:
            parallel_map(
                _poison, specs, max_workers=2, retries=1, backoff_base=0.001
            )
        assert excinfo.value.spec_index == 1

    def test_crash_quarantine_record_names_its_spec(self):
        specs = [(x, 2) for x in range(1, 5)]
        report = parallel_map(
            _poison, specs, max_workers=2, quarantine=True, backoff_base=0.001
        )
        assert not report.ok
        assert [q.index for q in report.quarantined] == [1]
        assert "spec 1" in report.quarantined[0].error
