"""Exporters: JSON run-report, Prometheus text, collapsed stacks."""

import json

import pytest

from repro.obs import export
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


@pytest.fixture
def registry():
    r = MetricsRegistry()
    r.counter("solver.calls", "calls made").inc(42)
    r.counter("sim.steps", labels={"technique": "focv"}).inc(100)
    r.gauge("cache.size").set(7)
    h = r.histogram("step_seconds", buckets=(1e-3, 1e-2))
    h.observe(5e-4)
    h.observe(5e-3)
    h.observe(5e-1)
    return r


@pytest.fixture
def tracer():
    t = Tracer()
    t.enabled = True
    with t.trace("run"):
        with t.span("phase"):
            pass
        t.add("step", 0.5)
    return t


class TestRunReport:
    def test_contains_all_instruments_and_trace(self, registry, tracer):
        report = export.run_report(registry, tracer, note="unit")
        assert report["schema"] == 1
        assert report["note"] == "unit"
        by_name = {(m["name"], tuple(sorted(m["labels"].items()))): m
                   for m in report["metrics"]}
        assert by_name[("solver.calls", ())]["value"] == 42.0
        assert by_name[("solver.calls", ())]["kind"] == "counter"
        assert by_name[("sim.steps", (("technique", "focv"),))]["value"] == 100.0
        assert by_name[("cache.size", ())]["kind"] == "gauge"
        hist = by_name[("step_seconds", ())]
        assert hist["kind"] == "histogram"
        assert hist["counts"] == [1, 1, 1]
        assert report["trace"]["children"][0]["name"] == "run"

    def test_report_is_json_serialisable(self, registry, tracer):
        json.dumps(export.run_report(registry, tracer))


class TestPrometheusText:
    def test_counter_gets_total_suffix_and_help(self, registry):
        text = export.prometheus_text(registry)
        assert "# HELP repro_solver_calls_total calls made" in text
        assert "# TYPE repro_solver_calls_total counter" in text
        assert "repro_solver_calls_total 42" in text

    def test_labels_rendered(self, registry):
        assert 'repro_sim_steps_total{technique="focv"} 100' in export.prometheus_text(registry)

    def test_histogram_buckets_are_cumulative(self, registry):
        text = export.prometheus_text(registry)
        assert 'repro_step_seconds_bucket{le="0.001"} 1' in text
        # 1 obs <= 1e-3, 2 <= 1e-2, 3 <= +Inf
        lines = [l for l in text.splitlines() if l.startswith("repro_step_seconds_bucket")]
        assert [l.rsplit(" ", 1)[1] for l in lines] == ["1", "2", "3"]
        assert 'le="+Inf"' in lines[-1]
        assert "repro_step_seconds_count 3" in text

    def test_names_sanitised(self):
        r = MetricsRegistry()
        r.counter("weird.name-with/chars").inc()
        assert "repro_weird_name_with_chars_total 1" in export.prometheus_text(r)


class TestCollapsedStacks:
    def test_paths_and_self_time(self, tracer):
        folded = export.collapsed_stacks(tracer)
        lines = dict(l.rsplit(" ", 1) for l in folded.strip().splitlines())
        # step's 0.5 s of self time, in integer microseconds.  (phase's
        # real sub-microsecond duration may round to 0 or 1 µs — the
        # zero-omission rule is asserted deterministically below.)
        assert lines["run;step"] == "500000"

    def test_zero_self_time_nodes_omitted(self):
        t = Tracer()
        t.enabled = True
        with t.trace("all-in-child"):
            t.add("child", 10.0)
        folded = export.collapsed_stacks(t)
        # Parent total < child total -> parent self time floored to 0 -> omitted.
        assert not any(line.startswith("all-in-child ") for line in folded.splitlines())
        assert "all-in-child;child 10000000" in folded


class TestWriteProfileAndCounters:
    def test_write_profile_emits_three_files(self, registry, tracer, tmp_path):
        paths = export.write_profile(tmp_path / "out", "p", registry, tracer, note="n")
        assert sorted(paths) == ["folded", "json", "prom"]
        for p in paths.values():
            assert p.exists()
        data = json.loads(paths["json"].read_text())
        assert data["note"] == "n"

    def test_counters_dict_folds_labels_and_drops_zeros(self, registry):
        registry.counter("idle")  # zero -> omitted
        flat = export.counters_dict(registry)
        assert flat["solver.calls"] == 42.0
        assert flat["sim.steps{technique=focv}"] == 100.0
        assert "idle" not in flat
        assert "cache.size" not in flat  # gauges are not counters
