"""Unit tests for light sources and photocurrent conversion."""

import pytest

from repro.errors import ModelParameterError
from repro.pv.irradiance import (
    DAYLIGHT,
    FLUORESCENT,
    INCANDESCENT,
    WHITE_LED,
    LightSource,
    photocurrent_from_lux,
    source_by_name,
)


class TestLightSource:
    def test_builtin_lookup(self):
        assert source_by_name("fluorescent") is FLUORESCENT
        assert source_by_name("daylight") is DAYLIGHT

    def test_unknown_source_rejected(self):
        with pytest.raises(ModelParameterError):
            source_by_name("moonlight")

    def test_irradiance_from_lux(self):
        assert FLUORESCENT.irradiance_from_lux(340.0) == pytest.approx(1.0)

    def test_negative_lux_rejected(self):
        with pytest.raises(ModelParameterError):
            FLUORESCENT.irradiance_from_lux(-1.0)

    def test_unknown_technology_rejected(self):
        with pytest.raises(ModelParameterError):
            FLUORESCENT.utilisation_for("quantum-dot")

    def test_bad_efficacy_rejected(self):
        with pytest.raises(ModelParameterError):
            LightSource(name="x", efficacy_lm_per_w=0.0)

    def test_bad_utilisation_rejected(self):
        with pytest.raises(ModelParameterError):
            LightSource(name="x", efficacy_lm_per_w=100.0, asi_utilisation=0.0)


class TestPhotocurrent:
    def test_fluorescent_is_the_calibration_identity(self):
        # 1000 lux fluorescent gives exactly iph_per_klux.
        assert photocurrent_from_lux(1000.0, 2.5e-4, FLUORESCENT, "asi") == pytest.approx(2.5e-4)

    def test_linear_in_lux(self):
        one = photocurrent_from_lux(100.0, 1e-4)
        ten = photocurrent_from_lux(1000.0, 1e-4)
        assert ten == pytest.approx(10.0 * one)

    def test_daylight_per_lux_exceeds_fluorescent_for_asi(self):
        fluor = photocurrent_from_lux(500.0, 1e-4, FLUORESCENT, "asi")
        day = photocurrent_from_lux(500.0, 1e-4, DAYLIGHT, "asi")
        assert 1.0 < day / fluor < 2.0

    def test_incandescent_not_a_windfall_for_asi(self):
        # Despite its huge radiant power per lux, a-Si can use little of
        # an incandescent spectrum: per-lux response close to fluorescent.
        fluor = photocurrent_from_lux(500.0, 1e-4, FLUORESCENT, "asi")
        inc = photocurrent_from_lux(500.0, 1e-4, INCANDESCENT, "asi")
        assert 0.4 < inc / fluor < 1.5

    def test_led_similar_to_fluorescent_for_asi(self):
        fluor = photocurrent_from_lux(500.0, 1e-4, FLUORESCENT, "asi")
        led = photocurrent_from_lux(500.0, 1e-4, WHITE_LED, "asi")
        assert led == pytest.approx(fluor, rel=0.3)

    def test_csi_prefers_daylight_strongly(self):
        fluor = photocurrent_from_lux(500.0, 1e-4, FLUORESCENT, "csi")
        day = photocurrent_from_lux(500.0, 1e-4, DAYLIGHT, "csi")
        assert day / fluor > 3.0

    def test_zero_lux_gives_zero(self):
        assert photocurrent_from_lux(0.0, 1e-4) == 0.0

    def test_rejects_bad_calibration(self):
        with pytest.raises(ModelParameterError):
            photocurrent_from_lux(100.0, 0.0)

    def test_rejects_negative_lux(self):
        with pytest.raises(ModelParameterError):
            photocurrent_from_lux(-1.0, 1e-4)
