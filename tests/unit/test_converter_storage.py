"""Unit tests for the buck-boost converter and energy stores."""

import pytest

from repro.converter.buck_boost import BuckBoostConverter
from repro.converter.efficiency import ConverterLossModel
from repro.errors import ModelParameterError
from repro.storage.battery import IdealBattery
from repro.storage.supercap import Supercapacitor


class TestLossModel:
    def test_efficiency_curve_shape(self):
        losses = ConverterLossModel()
        # Rising at low power (fixed losses dominate), high plateau,
        # drooping at very high power (conduction losses dominate).
        low = losses.efficiency(10e-6, 3.0)
        mid = losses.efficiency(0.2e-3, 3.0)
        plateau = losses.efficiency(3e-3, 3.0)
        huge = losses.efficiency(3.0, 3.0)
        assert low < mid < plateau
        assert huge < plateau

    def test_fixed_loss_dominates_microwatts(self):
        losses = ConverterLossModel(fixed_power=2e-6)
        assert losses.efficiency(4e-6, 3.0) < 0.5

    def test_zero_power_zero_loss(self):
        assert ConverterLossModel().loss(0.0, 3.0) == 0.0
        assert ConverterLossModel().efficiency(0.0, 3.0) == 0.0

    def test_rejects_negative_power(self):
        with pytest.raises(ModelParameterError):
            ConverterLossModel().loss(-1.0, 3.0)

    def test_rejects_bad_voltage(self):
        with pytest.raises(ModelParameterError):
            ConverterLossModel().loss(1e-3, 0.0)

    def test_efficiency_clamped(self):
        losses = ConverterLossModel(fixed_power=1.0)
        assert losses.efficiency(0.5, 3.0) == 0.0


class TestBuckBoost:
    def test_output_below_input(self):
        c = BuckBoostConverter()
        p_out = c.output_power(1e-3, 3.0, 3.0)
        assert 0.0 < p_out < 1e-3

    def test_disabled_transfers_nothing(self):
        c = BuckBoostConverter(enabled=False)
        assert c.output_power(1e-3, 3.0, 3.0) == 0.0

    def test_below_min_input_transfers_nothing(self):
        c = BuckBoostConverter(min_input_voltage=1.0)
        assert c.output_power(1e-3, 0.5, 3.0) == 0.0

    def test_input_current_regulation_band(self):
        c = BuckBoostConverter(hysteresis=0.05, max_input_current=2e-3)
        ref = 3.0
        assert c.input_current(ref - 0.05, ref) == 0.0
        assert c.input_current(ref + 0.05, ref) == pytest.approx(2e-3)
        mid = c.input_current(ref, ref)
        assert 0.0 < mid < 2e-3

    def test_input_current_zero_when_disabled(self):
        c = BuckBoostConverter(enabled=False)
        assert c.input_current(5.0, 3.0) == 0.0
        assert not c.running

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelParameterError):
            BuckBoostConverter(min_input_voltage=0.0)
        with pytest.raises(ModelParameterError):
            BuckBoostConverter(max_input_current=0.0)


class TestSupercapacitor:
    def test_charge_raises_voltage(self):
        cap = Supercapacitor(capacitance=1.0, voltage=1.0)
        cap.exchange(1.0, 10.0)  # 10 J at the terminal, less ESR loss
        # 0.5*C*(V^2 - 1) ~ 10 J -> V ~ sqrt(21) = 4.58 before losses.
        assert 3.0 < cap.voltage < 4.7

    def test_discharge_lowers_voltage(self):
        cap = Supercapacitor(capacitance=1.0, voltage=3.0)
        cap.exchange(-0.5, 2.0)
        assert cap.voltage < 3.0

    def test_clamps_at_rated_voltage(self):
        cap = Supercapacitor(capacitance=0.01, rated_voltage=5.0, voltage=4.9)
        accepted = cap.exchange(10.0, 10.0)
        assert cap.voltage == pytest.approx(5.0)
        assert accepted < 10.0

    def test_cannot_go_below_empty(self):
        cap = Supercapacitor(capacitance=0.01, voltage=0.5)
        delivered = cap.exchange(-100.0, 10.0)
        assert cap.voltage == 0.0
        assert delivered > -100.0  # only what it had

    def test_leakage_discharges_over_time(self):
        cap = Supercapacitor(capacitance=0.1, voltage=5.0, leakage_current=1e-4)
        for _ in range(100):
            cap.exchange(0.0, 60.0)
        assert cap.voltage < 5.0

    def test_esr_burns_energy_on_charge(self):
        lossless = Supercapacitor(capacitance=1.0, voltage=2.0, esr=0.0, leakage_current=0.0)
        lossy = Supercapacitor(capacitance=1.0, voltage=2.0, esr=10.0, leakage_current=0.0)
        lossless.exchange(0.01, 100.0)
        lossy.exchange(0.01, 100.0)
        assert lossy.stored_energy < lossless.stored_energy

    def test_time_to_voltage_estimate(self):
        cap = Supercapacitor(capacitance=1.0, voltage=1.0)
        t = cap.time_to_voltage(2.0, power=0.5)
        assert t == pytest.approx(0.5 * (4.0 - 1.0) / 0.5)

    def test_rejects_overfull_initial(self):
        with pytest.raises(ModelParameterError):
            Supercapacitor(capacitance=1.0, rated_voltage=5.0, voltage=6.0)


class TestIdealBattery:
    def test_constant_voltage(self):
        batt = IdealBattery(nominal_voltage=3.0, state_of_charge=0.5)
        assert batt.voltage == 3.0
        batt.exchange(1.0, 10.0)
        assert batt.voltage == 3.0

    def test_charge_efficiency_applied(self):
        batt = IdealBattery(capacity_joules=100.0, charge_efficiency=0.9, state_of_charge=0.0)
        batt.exchange(1.0, 10.0)  # 10 J at the terminal
        assert batt.stored_energy == pytest.approx(9.0)

    def test_clamps_full(self):
        batt = IdealBattery(capacity_joules=10.0, state_of_charge=0.99)
        batt.exchange(100.0, 10.0)
        assert batt.state_of_charge == pytest.approx(1.0)

    def test_empty_battery_reads_zero_volts(self):
        batt = IdealBattery(capacity_joules=1.0, state_of_charge=0.01)
        batt.exchange(-10.0, 10.0)
        assert batt.state_of_charge == pytest.approx(0.0)
        assert batt.voltage == 0.0

    def test_discharge_returns_only_available(self):
        batt = IdealBattery(capacity_joules=10.0, state_of_charge=0.1)
        drawn = batt.exchange(-100.0, 1.0)
        assert drawn == pytest.approx(-1.0)
