"""Ledger path resolution: explicit error instead of a silent CWD fallback."""

import json

import pytest

from repro.errors import TelemetryPathError
from repro.sim import telemetry
from repro.sim.telemetry import PerfSample, bench_path, record_perf


class TestBenchPath:
    def test_resolves_repo_root_in_checkout(self, monkeypatch):
        monkeypatch.delenv(telemetry._ENV_OVERRIDE, raising=False)
        path = bench_path()
        assert path.name == telemetry.BENCH_FILENAME
        assert (path.parent / "pyproject.toml").exists()

    def test_rootless_layout_raises_not_cwd(self, monkeypatch, tmp_path):
        # Pretend the module lives in an installed copy with no
        # pyproject.toml anywhere above it.
        fake = tmp_path / "site-packages" / "repro" / "sim" / "telemetry.py"
        fake.parent.mkdir(parents=True)
        monkeypatch.delenv(telemetry._ENV_OVERRIDE, raising=False)
        monkeypatch.setattr(telemetry, "_MODULE_PATH", fake)
        with pytest.raises(TelemetryPathError) as excinfo:
            bench_path()
        # The message must hand the operator the way out.
        assert telemetry._ENV_OVERRIDE in str(excinfo.value)

    def test_env_override_wins_even_when_rootless(self, monkeypatch, tmp_path):
        fake = tmp_path / "nowhere" / "telemetry.py"
        fake.parent.mkdir(parents=True)
        monkeypatch.setattr(telemetry, "_MODULE_PATH", fake)
        target = tmp_path / "my_ledger.json"
        monkeypatch.setenv(telemetry._ENV_OVERRIDE, str(target))
        assert bench_path() == target


class TestRecordPerfCounters:
    def _sample(self):
        sample = PerfSample(experiment="unit_exp", steps=1000)
        sample.wall_s = 0.5
        return sample

    def test_counters_embedded_sorted(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        entry = record_perf(
            self._sample(),
            note="unit",
            path=ledger,
            counters={"b.second": 2.0, "a.first": 1.0},
        )
        assert list(entry["counters"]) == ["a.first", "b.second"]
        on_disk = json.loads(ledger.read_text())
        assert on_disk["experiments"]["unit_exp"][-1]["counters"]["a.first"] == 1.0

    def test_counters_omitted_when_absent(self, tmp_path):
        entry = record_perf(self._sample(), path=tmp_path / "ledger.json")
        assert "counters" not in entry


class TestHostFingerprint:
    def _sample(self, steps_per_s=2000.0, experiment="gate_exp"):
        sample = telemetry.PerfSample(experiment=experiment, steps=1000)
        sample.wall_s = 1000 / steps_per_s
        return sample

    def test_entries_stamped_with_host(self, tmp_path):
        entry = record_perf(self._sample(), path=tmp_path / "ledger.json")
        assert entry["host"] == telemetry.host_fingerprint()
        assert set(entry["host"]) == {"python", "numpy", "cpu_count"}

    def test_pre_fingerprint_entries_stay_readable(self, tmp_path):
        # A ledger written before host stamping existed: no "host" key.
        ledger = tmp_path / "ledger.json"
        ledger.write_text(json.dumps({
            "schema": 1,
            "experiments": {"gate_exp": [
                {"wall_s": 1.0, "steps": 1000, "steps_per_s": 1000.0,
                 "note": "old", "recorded": "2026-01-01T00:00:00+00:00"},
            ]},
        }))
        assert telemetry.latest("gate_exp", path=ledger)["note"] == "old"
        # ...but it is never *comparable*: unknown machine.
        assert telemetry.latest_comparable("gate_exp", path=ledger) is None
        record_perf(self._sample(), path=ledger)
        history = json.loads(ledger.read_text())["experiments"]["gate_exp"]
        assert len(history) == 2 and "host" not in history[0]

    def test_latest_comparable_skips_other_hosts(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        record_perf(self._sample(steps_per_s=500.0), path=ledger)
        other = dict(telemetry.host_fingerprint(), python="0.0.0")
        assert telemetry.latest_comparable("gate_exp", path=ledger, host=other) is None
        mine = telemetry.latest_comparable("gate_exp", path=ledger)
        assert mine is not None and mine["steps_per_s"] == 500.0


class TestThroughputRegressionGate:
    def _sample(self, steps_per_s, experiment="gate_exp"):
        sample = telemetry.PerfSample(experiment=experiment, steps=1000)
        sample.wall_s = 1000 / steps_per_s
        return sample

    def test_no_baseline_passes(self, tmp_path):
        msg = telemetry.check_throughput_regression(
            self._sample(1.0), path=tmp_path / "ledger.json"
        )
        assert msg is None

    def test_regression_detected_below_floor(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        record_perf(self._sample(1000.0), note="baseline", path=ledger)
        assert telemetry.check_throughput_regression(
            self._sample(600.0), path=ledger
        ) is None
        msg = telemetry.check_throughput_regression(
            self._sample(400.0), path=ledger
        )
        assert msg is not None and "gate_exp" in msg and "baseline" in msg

    def test_floor_fraction_validated(self, tmp_path):
        from repro.errors import ModelParameterError

        with pytest.raises(ModelParameterError):
            telemetry.check_throughput_regression(
                self._sample(1.0), floor_fraction=0.0, path=tmp_path / "l.json"
            )
