"""Ledger path resolution: explicit error instead of a silent CWD fallback."""

import json

import pytest

from repro.errors import TelemetryPathError
from repro.sim import telemetry
from repro.sim.telemetry import PerfSample, bench_path, record_perf


class TestBenchPath:
    def test_resolves_repo_root_in_checkout(self, monkeypatch):
        monkeypatch.delenv(telemetry._ENV_OVERRIDE, raising=False)
        path = bench_path()
        assert path.name == telemetry.BENCH_FILENAME
        assert (path.parent / "pyproject.toml").exists()

    def test_rootless_layout_raises_not_cwd(self, monkeypatch, tmp_path):
        # Pretend the module lives in an installed copy with no
        # pyproject.toml anywhere above it.
        fake = tmp_path / "site-packages" / "repro" / "sim" / "telemetry.py"
        fake.parent.mkdir(parents=True)
        monkeypatch.delenv(telemetry._ENV_OVERRIDE, raising=False)
        monkeypatch.setattr(telemetry, "_MODULE_PATH", fake)
        with pytest.raises(TelemetryPathError) as excinfo:
            bench_path()
        # The message must hand the operator the way out.
        assert telemetry._ENV_OVERRIDE in str(excinfo.value)

    def test_env_override_wins_even_when_rootless(self, monkeypatch, tmp_path):
        fake = tmp_path / "nowhere" / "telemetry.py"
        fake.parent.mkdir(parents=True)
        monkeypatch.setattr(telemetry, "_MODULE_PATH", fake)
        target = tmp_path / "my_ledger.json"
        monkeypatch.setenv(telemetry._ENV_OVERRIDE, str(target))
        assert bench_path() == target


class TestRecordPerfCounters:
    def _sample(self):
        sample = PerfSample(experiment="unit_exp", steps=1000)
        sample.wall_s = 0.5
        return sample

    def test_counters_embedded_sorted(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        entry = record_perf(
            self._sample(),
            note="unit",
            path=ledger,
            counters={"b.second": 2.0, "a.first": 1.0},
        )
        assert list(entry["counters"]) == ["a.first", "b.second"]
        on_disk = json.loads(ledger.read_text())
        assert on_disk["experiments"]["unit_exp"][-1]["counters"]["a.first"] == 1.0

    def test_counters_omitted_when_absent(self, tmp_path):
        entry = record_perf(self._sample(), path=tmp_path / "ledger.json")
        assert "counters" not in entry
