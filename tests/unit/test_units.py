"""Unit tests for physical constants and conversions."""

import math

import pytest

from repro import units


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert units.thermal_voltage(units.T_STC) == pytest.approx(25.7e-3, rel=0.01)

    def test_scales_linearly(self):
        assert units.thermal_voltage(2 * units.T_STC) == pytest.approx(
            2 * units.thermal_voltage(units.T_STC)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)


class TestTemperatureConversions:
    def test_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) == pytest.approx(25.0)

    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


class TestPhotometry:
    def test_full_sun_consistency(self):
        # 105 klux of daylight ~ 1000 W/m^2.
        irradiance = units.lux_to_irradiance(
            units.FULL_SUN_LUX, units.LUMENS_PER_WATT_SUNLIGHT
        )
        assert irradiance == pytest.approx(units.FULL_SUN_IRRADIANCE, rel=0.01)

    def test_roundtrip(self):
        lux = 732.0
        irr = units.lux_to_irradiance(lux)
        assert units.irradiance_to_lux(irr) == pytest.approx(lux)

    def test_fluorescent_lux_is_cheap_in_watts(self):
        # The same lux needs far less radiant power from a tube than the sun.
        w_fluor = units.lux_to_irradiance(500.0, units.LUMENS_PER_WATT_FLUORESCENT)
        w_sun = units.lux_to_irradiance(500.0, units.LUMENS_PER_WATT_SUNLIGHT)
        assert w_fluor < w_sun / 2.0

    def test_rejects_negative_lux(self):
        with pytest.raises(ValueError):
            units.lux_to_irradiance(-1.0)

    def test_rejects_bad_efficacy(self):
        with pytest.raises(ValueError):
            units.lux_to_irradiance(100.0, 0.0)


class TestDb:
    def test_10x_is_10db(self):
        assert units.db(10.0) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db(0.0)


class TestSiFormat:
    def test_microamps(self):
        assert units.si_format(7.6e-6, "A") == "7.6uA"

    def test_millivolts(self):
        assert units.si_format(12.7e-3, "V") == "12.7mV"

    def test_zero(self):
        assert units.si_format(0.0, "W") == "0W"

    def test_plain_units(self):
        assert units.si_format(3.3, "V") == "3.3V"

    def test_negative_value(self):
        assert units.si_format(-2.5e-3, "A").startswith("-2.5m")

    def test_tiny_value_uses_femto(self):
        assert "f" in units.si_format(3e-15, "A")
