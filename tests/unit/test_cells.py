"""Unit tests for the calibrated cell library."""

import pytest

from repro.errors import ModelParameterError
from repro.pv.cells import CellParameters, PVCell, am_1815, generic_asi, generic_csi, schott_1116929
from repro.pv.irradiance import DAYLIGHT, FLUORESCENT, INCANDESCENT
from repro.units import T_STC

# The paper's Table I open-circuit voltages for the AM-1815.
TABLE1_VOC = {
    200: 4.978, 300: 5.096, 400: 5.180, 500: 5.242, 600: 5.292, 700: 5.333,
    800: 5.369, 900: 5.410, 1000: 5.440, 2000: 5.640, 3000: 5.750, 5000: 5.910,
}


class TestAm1815Calibration:
    """Pins every published number the model was calibrated against."""

    @pytest.mark.parametrize("lux,voc", sorted(TABLE1_VOC.items()))
    def test_table1_voc_within_half_percent(self, am1815, lux, voc):
        assert am1815.voc(float(lux)) == pytest.approx(voc, rel=0.005)

    def test_isc_at_200_lux_matches_datasheet(self, am1815):
        assert am1815.isc(200.0) == pytest.approx(50e-6, rel=0.01)

    def test_datasheet_operating_point_on_curve(self, am1815):
        # Sec. IV-A / datasheet: 42 uA at 3.0 V under 200 lux.
        model = am1815.model_at(200.0)
        assert float(model.current_at(3.0)) == pytest.approx(42e-6, rel=0.01)

    def test_isc_roughly_linear_in_lux(self, am1815):
        ratio = am1815.isc(5000.0) / am1815.isc(200.0)
        assert 20.0 < ratio < 25.5  # 25x lux with mild sub-linearity

    def test_k_in_papers_quoted_band(self, am1815):
        # Sec. II-A: "typically between 0.6 and 0.8" (we allow the model's
        # slight exceedance at the calibration edge).
        for lux in (200.0, 500.0, 1000.0, 2000.0, 5000.0):
            k = am1815.mpp(lux).k
            assert 0.60 <= k <= 0.84

    def test_k_weakly_correlated_with_intensity(self, am1815):
        # Ref [10]: weak correlation — a fraction of the 25x lux span.
        k_low = am1815.mpp(200.0).k
        k_high = am1815.mpp(5000.0).k
        assert abs(k_low - k_high) < 0.2

    def test_voc_temperature_coefficient_matches_asi(self, am1815):
        v25 = am1815.voc(1000.0)
        v45 = am1815.voc(1000.0, temperature=T_STC + 20.0)
        coeff = (v45 - v25) / v25 / 20.0
        assert -0.006 < coeff < -0.002  # -0.2..-0.6 %/K

    def test_area_matches_paper(self, am1815):
        assert am1815.parameters.area_cm2 == pytest.approx(25.0)


class TestCellBehaviour:
    def test_dark_cell_produces_nothing(self, am1815):
        assert am1815.voc(0.0) == 0.0
        assert am1815.isc(0.0) == 0.0
        assert am1815.mpp(0.0).power == 0.0
        assert am1815.power_at(3.0, 0.0) == 0.0

    def test_power_clamped_outside_generating_quadrant(self, am1815):
        assert am1815.power_at(-1.0, 500.0) == 0.0
        assert am1815.power_at(am1815.voc(500.0) * 1.5, 500.0) == 0.0

    def test_power_at_matches_model(self, am1815):
        model = am1815.model_at(700.0)
        v = 3.0
        assert am1815.power_at(v, 700.0) == pytest.approx(v * float(model.current_at(v)), rel=1e-9)

    def test_voc_monotone_in_lux(self, am1815):
        levels = [50.0, 200.0, 1000.0, 5000.0, 20000.0]
        vocs = [am1815.voc(lux) for lux in levels]
        assert all(b > a for a, b in zip(vocs, vocs[1:]))

    def test_spectral_response_orders_sources(self, am1815):
        # Per lux, a-Si harvests most from fluorescent/daylight-visible
        # spectra and least from incandescent IR-heavy light.
        i_fluor = am1815.photocurrent(500.0, source=FLUORESCENT)
        i_day = am1815.photocurrent(500.0, source=DAYLIGHT)
        i_inc = am1815.photocurrent(500.0, source=INCANDESCENT)
        assert i_day > i_fluor  # daylight lux carries more radiant power
        assert i_inc < i_day

    def test_photo_shunt_caps_at_dark_value(self, am1815):
        dark = am1815.parameters.shunt_resistance
        assert am1815.shunt_resistance(0.0) == dark
        assert am1815.shunt_resistance(1e-12) == dark
        assert am1815.shunt_resistance(1e-3) < dark

    def test_repr_mentions_name(self, am1815):
        assert "AM-1815" in repr(am1815)


class TestLibraryCells:
    def test_schott_is_larger_than_am1815(self, schott, am1815):
        assert schott.mpp(1000.0).power > am1815.mpp(1000.0).power

    def test_schott_voc_band(self, schott):
        # 8 junctions -> Voc scales ~8/6 of the AM-1815's.
        assert 6.0 < schott.voc(1000.0) < 8.0

    def test_generic_asi_small(self):
        cell = generic_asi()
        assert cell.mpp(1000.0).power < am_1815().mpp(1000.0).power

    def test_csi_has_squarer_curve(self, csi, am1815):
        assert csi.mpp(1000.0).fill_factor > am1815.mpp(1000.0).fill_factor

    def test_csi_prefers_daylight(self, csi):
        per_lux_daylight = csi.photocurrent(1000.0, source=DAYLIGHT)
        per_lux_fluor = csi.photocurrent(1000.0, source=FLUORESCENT)
        assert per_lux_daylight > 2.0 * per_lux_fluor


class TestParameterValidation:
    def test_rejects_unknown_technology(self):
        with pytest.raises(ModelParameterError):
            CellParameters(
                name="x", technology="perovskite", area_cm2=1.0, n_series=1,
                ideality=1.5, i0_ref=1e-12, iph_per_klux=1e-4,
                series_resistance=1.0, shunt_resistance=1e6,
            )

    def test_rejects_bad_area(self):
        with pytest.raises(ModelParameterError):
            CellParameters(
                name="x", technology="asi", area_cm2=0.0, n_series=1,
                ideality=1.5, i0_ref=1e-12, iph_per_klux=1e-4,
                series_resistance=1.0, shunt_resistance=1e6,
            )

    def test_saturation_current_rejects_bad_temperature(self, am1815):
        with pytest.raises(ModelParameterError):
            am1815.saturation_current(-5.0)

    def test_saturation_current_grows_with_temperature(self, am1815):
        assert am1815.saturation_current(T_STC + 30.0) > am1815.saturation_current()
