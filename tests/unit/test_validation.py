"""Construction-time parameter validation (repro.validation, ConfigError)."""

import math

import pytest

from repro.errors import (
    ConfigError,
    ConfigurationError,
    ModelParameterError,
    ReproError,
)
from repro.validation import (
    require_finite,
    require_in_range,
    require_non_negative,
    require_positive,
)

NAN = float("nan")
INF = float("inf")


class TestHelpers:
    def test_finite_passes_through(self):
        require_finite(0.0, "x")
        require_finite(-3.5, "x")

    @pytest.mark.parametrize("bad", [NAN, INF, -INF])
    def test_finite_rejects_nonfinite(self, bad):
        with pytest.raises(ConfigError) as excinfo:
            require_finite(bad, "capacitance")
        assert excinfo.value.field == "capacitance"
        assert "capacitance" in str(excinfo.value)

    def test_positive_rejects_zero_and_nan(self):
        require_positive(1e-12, "dt")
        with pytest.raises(ConfigError):
            require_positive(0.0, "dt")
        with pytest.raises(ConfigError) as excinfo:
            require_positive(NAN, "dt")
        assert excinfo.value.field == "dt"

    def test_non_negative(self):
        require_non_negative(0.0, "esr")
        with pytest.raises(ConfigError):
            require_non_negative(-1e-9, "esr")

    def test_in_range(self):
        require_in_range(0.5, "soc", 0.0, 1.0)
        with pytest.raises(ConfigError):
            require_in_range(1.5, "soc", 0.0, 1.0)
        with pytest.raises(ConfigError):
            require_in_range(0.0, "eff", 0.0, 1.0, low_open=True)

    def test_config_error_catchable_as_legacy_types(self):
        """Every pre-existing except site keeps working."""
        err = ConfigError("bad", field="x")
        assert isinstance(err, ModelParameterError)
        assert isinstance(err, ConfigurationError)
        assert isinstance(err, ValueError)
        assert isinstance(err, ReproError)


class TestWiredConstructors:
    def test_supercap_rejects_nan_capacitance(self):
        from repro.storage.supercap import Supercapacitor

        with pytest.raises(ConfigError) as excinfo:
            Supercapacitor(capacitance=NAN)
        assert excinfo.value.field == "capacitance"

    def test_supercap_negative_still_model_parameter_error(self):
        from repro.storage.supercap import Supercapacitor

        with pytest.raises(ModelParameterError):
            Supercapacitor(capacitance=-1.0)

    def test_battery_rejects_inf_capacity(self):
        from repro.storage.battery import IdealBattery

        with pytest.raises(ConfigError) as excinfo:
            IdealBattery(capacity_joules=INF)
        assert excinfo.value.field == "capacity_joules"

    def test_scheduler_rejects_nan_threshold(self):
        from repro.node.scheduler import EnergyAwareScheduler
        from repro.node.sensor_node import SensorNode

        with pytest.raises(ConfigError) as excinfo:
            EnergyAwareScheduler(node=SensorNode(), storage=None, v_survival=NAN)
        assert excinfo.value.field == "v_survival"

    def test_thermal_rejects_nan_area(self):
        from repro.pv.thermal import CellThermalModel

        with pytest.raises(ConfigError) as excinfo:
            CellThermalModel(area_cm2=NAN)
        assert excinfo.value.field == "area_cm2"

    def test_simulator_rejects_nan_supply(self):
        from repro.baselines.hill_climbing import HillClimbing
        from repro.pv.cells import am_1815
        from repro.sim.quasistatic import QuasiStaticSimulator

        with pytest.raises(ConfigError) as excinfo:
            QuasiStaticSimulator(
                am_1815(),
                HillClimbing(),
                lambda t: 1000.0,
                supply_voltage=NAN,
            )
        assert excinfo.value.field == "supply_voltage"

    def test_platform_config_rejects_nan_alpha(self):
        from repro.core.config import PlatformConfig

        with pytest.raises(ConfigError) as excinfo:
            PlatformConfig(alpha=NAN)
        assert excinfo.value.field == "alpha"

    def test_valid_constructions_unaffected(self):
        from repro.storage.supercap import Supercapacitor
        from repro.pv.thermal import CellThermalModel

        cap = Supercapacitor(capacitance=0.1, voltage=2.0)
        assert math.isclose(cap.stored_energy, 0.5 * 0.1 * 4.0)
        model = CellThermalModel(area_cm2=5.0)
        assert model.temperature == model.ambient_k
