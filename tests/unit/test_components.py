"""Unit tests for passive components (R, C, divider) and dielectrics."""

import math

import pytest

from repro.analog.components import (
    CERAMIC_X7R,
    ELECTROLYTIC,
    POLYESTER_FILM,
    Capacitor,
    DielectricClass,
    Resistor,
    ResistiveDivider,
)
from repro.errors import ModelParameterError


class TestResistor:
    def test_ohms_law(self):
        r = Resistor(10e3)
        assert r.current(5.0) == pytest.approx(0.5e-3)
        assert r.power(5.0) == pytest.approx(2.5e-3)

    def test_temperature_coefficient(self):
        r = Resistor(10e3, temp_coeff_ppm=100.0)
        assert r.at_temperature(50.0) == pytest.approx(10e3 * 1.005)

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelParameterError):
            Resistor(0.0)

    def test_rejects_silly_tolerance(self):
        with pytest.raises(ModelParameterError):
            Resistor(1e3, tolerance=1.5)


class TestCapacitor:
    def test_leakage_resistance_from_dielectric(self):
        c = Capacitor(1e-6, dielectric=POLYESTER_FILM)
        assert c.leakage_resistance == pytest.approx(
            POLYESTER_FILM.insulation_ohm_farads / 1e-6
        )

    def test_droop_exponential_self_leakage(self):
        c = Capacitor(1e-6, dielectric=POLYESTER_FILM)
        tau = c.leakage_resistance * 1e-6
        after = c.droop(2.0, tau)
        assert after == pytest.approx(2.0 / math.e, rel=1e-9)

    def test_droop_with_bias_current(self):
        c = Capacitor(1e-6)
        pure = c.droop(2.0, 10.0)
        biased = c.droop(2.0, 10.0, external_bias_a=1e-9)
        assert pure - biased == pytest.approx(1e-9 * 10.0 / 1e-6, rel=1e-9)

    def test_droop_floors_at_zero(self):
        c = Capacitor(1e-9)
        assert c.droop(0.1, 1e6, external_bias_a=1e-3) == 0.0

    def test_dielectric_ordering(self):
        v, hold = 1.6, 69.0
        droops = {
            d.name: v - Capacitor(1e-6, dielectric=d).droop(v, hold)
            for d in (POLYESTER_FILM, CERAMIC_X7R, ELECTROLYTIC)
        }
        assert droops["polyester-film"] < droops["ceramic-X7R"] < droops["aluminium-electrolytic"]

    def test_polyester_droop_small_over_hold_period(self):
        # The design-enabling fact: <1 % droop over the 69 s hold.
        c = Capacitor(1e-6, dielectric=POLYESTER_FILM)
        after = c.droop(1.62, 69.0)
        assert (1.62 - after) / 1.62 < 0.01

    def test_stored_energy(self):
        c = Capacitor(2e-6)
        assert c.stored_energy(3.0) == pytest.approx(0.5 * 2e-6 * 9.0)

    def test_settle_time(self):
        c = Capacitor(1e-6)
        t = c.settle_time(1600.0, settle_fraction=1e-3)
        assert t == pytest.approx(1600.0 * 1e-6 * math.log(1000.0), rel=1e-9)

    def test_rejects_negative_hold(self):
        with pytest.raises(ModelParameterError):
            Capacitor(1e-6).droop(1.0, -1.0)

    def test_rejects_bad_dielectric(self):
        with pytest.raises(ModelParameterError):
            DielectricClass(name="x", insulation_ohm_farads=0.0, dielectric_absorption=0.0)


class TestResistiveDivider:
    def test_ratio(self):
        d = ResistiveDivider(top=Resistor(7.02e6), bottom=Resistor(2.98e6))
        assert d.ratio == pytest.approx(0.298)
        assert d.total_resistance == pytest.approx(10e6)

    def test_from_ratio_roundtrip(self):
        d = ResistiveDivider.from_ratio(0.2978, 10e6)
        assert d.ratio == pytest.approx(0.2978, rel=1e-12)
        assert d.total_resistance == pytest.approx(10e6, rel=1e-12)

    def test_output_resistance_is_parallel_combination(self):
        d = ResistiveDivider.from_ratio(0.5, 2e6)
        assert d.output_resistance == pytest.approx(0.5e6)

    def test_loaded_ratio_droops(self):
        d = ResistiveDivider.from_ratio(0.5, 2e6)
        assert d.loaded_ratio(1e6) < 0.5
        assert d.loaded_ratio(1e12) == pytest.approx(0.5, rel=1e-5)

    def test_input_current(self):
        d = ResistiveDivider.from_ratio(0.298, 10e6)
        assert d.input_current(5.0) == pytest.approx(0.5e-6)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ModelParameterError):
            ResistiveDivider.from_ratio(1.0, 1e6)

    def test_rejects_bad_load(self):
        d = ResistiveDivider.from_ratio(0.5, 1e6)
        with pytest.raises(ModelParameterError):
            d.loaded_ratio(0.0)
