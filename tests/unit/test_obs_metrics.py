"""The metrics registry: instruments, labels, snapshots, hook wiring."""

import pytest

import repro.obs as obs
from repro.errors import ModelParameterError
from repro.obs.metrics import (
    Counter,
    Gauge,
    HOOKS,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    diff_snapshots,
    install_hooks,
    uninstall_hooks,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture(autouse=True)
def _clean_global_obs():
    """Tests here touch the process-wide HOOKS/REGISTRY — leave them as found."""
    yield
    obs.disable()
    obs.REGISTRY.reset()
    obs.TRACER.reset()


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ModelParameterError):
            Counter("c").inc(-1.0)

    def test_gauge_last_value_wins(self):
        g = Gauge("g")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_and_totals(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, +Inf overflow
        assert h.sum == 55.5
        assert h.count == 3

    def test_histogram_requires_buckets(self):
        with pytest.raises(ModelParameterError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("a") is registry.counter("a")

    def test_labels_distinguish_instruments(self, registry):
        a = registry.counter("steps", labels={"technique": "focv"})
        b = registry.counter("steps", labels={"technique": "hill"})
        assert a is not b
        a.inc(3)
        assert b.value == 0.0

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("x", labels={"p": "1", "q": "2"})
        b = registry.counter("x", labels={"q": "2", "p": "1"})
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("name")
        with pytest.raises(ModelParameterError):
            registry.gauge("name")

    def test_reset_drops_everything(self, registry):
        registry.counter("a").inc()
        registry.reset()
        assert registry.instruments() == []

    def test_instruments_sorted(self, registry):
        registry.counter("b")
        registry.counter("a")
        assert [i.name for i in registry.instruments()] == ["a", "b"]


class TestSnapshotProtocol:
    """The worker-side aggregation scheme parallel_map relies on."""

    def test_counter_delta_merges_additively(self, registry):
        registry.counter("c").inc(2)
        before = registry.snapshot()
        registry.counter("c").inc(5)
        delta = diff_snapshots(before, registry.snapshot())

        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.merge(delta)
        assert parent.counter("c").value == 6.0  # 1 + the 5-wide delta

    def test_unchanged_counter_is_absent_from_delta(self, registry):
        registry.counter("quiet").inc(4)
        before = registry.snapshot()
        delta = diff_snapshots(before, registry.snapshot())
        assert delta == {}

    def test_new_instrument_ships_whole(self, registry):
        before = registry.snapshot()
        registry.counter("fresh").inc(7)
        delta = diff_snapshots(before, registry.snapshot())
        parent = MetricsRegistry()
        parent.merge(delta)
        assert parent.counter("fresh").value == 7.0

    def test_gauge_carries_last_value(self, registry):
        registry.gauge("g").set(1.0)
        before = registry.snapshot()
        registry.gauge("g").set(9.0)
        delta = diff_snapshots(before, registry.snapshot())
        parent = MetricsRegistry()
        parent.gauge("g").set(2.0)
        parent.merge(delta)
        assert parent.gauge("g").value == 9.0

    def test_histogram_delta_adds_counts_and_sum(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        before = registry.snapshot()
        h.observe(0.5)
        h.observe(2.0)
        delta = diff_snapshots(before, registry.snapshot())

        parent = MetricsRegistry()
        ph = parent.histogram("h", buckets=(1.0,))
        ph.observe(0.1)
        parent.merge(delta)
        assert ph.count == 3
        assert ph.counts == [2, 1]
        assert ph.sum == pytest.approx(0.1 + 0.5 + 2.0)

    def test_histogram_bucket_mismatch_raises(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        delta = diff_snapshots({}, registry.snapshot())
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(5.0,))
        with pytest.raises(ModelParameterError):
            parent.merge(delta)


class TestHooks:
    def test_slots_none_until_installed(self):
        uninstall_hooks()
        assert all(getattr(HOOKS, s) is None for s in HOOKS.__slots__)

    def test_install_wires_every_slot(self):
        registry = MetricsRegistry()
        install_hooks(registry)
        try:
            assert all(getattr(HOOKS, s) is not None for s in HOOKS.__slots__)
            HOOKS.lambertw_calls.inc(3)
            assert registry.counter("solver.lambertw_calls").value == 3.0
        finally:
            uninstall_hooks()

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.is_enabled()
        assert HOOKS.cache_hits is not None
        obs.disable()
        assert not obs.is_enabled()
        assert HOOKS.cache_hits is None

    def test_reset_rewires_hooks_when_enabled(self):
        obs.enable()
        HOOKS.cache_hits.inc()
        obs.reset()
        # The slot must point at a live instrument in the freshly-reset
        # registry, not the dropped one.
        HOOKS.cache_hits.inc()
        assert obs.REGISTRY.counter("pv.cache.hits").value == 1.0
