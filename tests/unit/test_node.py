"""Unit tests for the sensor-node load models."""

import pytest

from repro.errors import ModelParameterError
from repro.node.loads import DutyCycledLoad, NodeState
from repro.node.radio import LOW_POWER_RADIO, RadioModel
from repro.node.sensor_node import SensorNode


class TestRadio:
    def test_airtime_scales_with_payload(self):
        short = LOW_POWER_RADIO.packet_airtime(8)
        long = LOW_POWER_RADIO.packet_airtime(100)
        assert long > short
        # 250 kbit/s: (8+23)*8 bits -> ~1 ms.
        assert short == pytest.approx((8 + 23) * 8 / 250e3, rel=1e-9)

    def test_transmit_energy_millijoule_scale(self):
        energy = LOW_POWER_RADIO.transmit_energy(12)
        assert 10e-6 < energy < 1e-3

    def test_startup_dominates_small_packets(self):
        radio = LOW_POWER_RADIO
        startup = radio.startup_time * radio.startup_current * radio.supply
        airtime_energy = radio.packet_airtime(1) * radio.tx_current * radio.supply
        assert startup > airtime_energy

    def test_rejects_negative_payload(self):
        with pytest.raises(ModelParameterError):
            LOW_POWER_RADIO.packet_airtime(-1)

    def test_rejects_bad_spec(self):
        with pytest.raises(ModelParameterError):
            RadioModel(name="x", tx_current=0.0, rx_current=1e-3)


class TestDutyCycledLoad:
    def load(self):
        return DutyCycledLoad(
            period=10.0,
            phases=[
                (NodeState.SENSE, 0.1, 1e-3),
                (NodeState.TRANSMIT, 0.05, 30e-3),
            ],
            sleep_power=5e-6,
        )

    def test_phase_power_lookup(self):
        load = self.load()
        assert load(0.05) == 1e-3
        assert load(0.12) == 30e-3
        assert load(5.0) == 5e-6

    def test_periodic(self):
        load = self.load()
        assert load(10.05) == load(0.05)

    def test_state_lookup(self):
        load = self.load()
        assert load.state_at(0.05) is NodeState.SENSE
        assert load.state_at(0.12) is NodeState.TRANSMIT
        assert load.state_at(8.0) is NodeState.SLEEP

    def test_average_power(self):
        load = self.load()
        expected = (0.1 * 1e-3 + 0.05 * 30e-3 + 9.85 * 5e-6) / 10.0
        assert load.average_power() == pytest.approx(expected, rel=1e-9)

    def test_duty_cycle(self):
        assert self.load().duty_cycle() == pytest.approx(0.015)

    def test_rejects_overlong_phases(self):
        with pytest.raises(ModelParameterError):
            DutyCycledLoad(period=1.0, phases=[(NodeState.SENSE, 2.0, 1e-3)])


class TestSensorNode:
    def test_average_power_reasonable(self):
        node = SensorNode(report_period=60.0)
        avg = node.average_power()
        assert 4e-6 < avg < 100e-6  # duty-cycled WSN node scale

    def test_faster_reporting_costs_more(self):
        slow = SensorNode(report_period=300.0).average_power()
        fast = SensorNode(report_period=10.0).average_power()
        assert fast > slow

    def test_energy_per_report_independent_of_period(self):
        a = SensorNode(report_period=10.0).energy_per_report()
        b = SensorNode(report_period=600.0).energy_per_report()
        assert a == pytest.approx(b)

    def test_neutral_period_balances_budget(self):
        node = SensorNode()
        harvest = 50e-6
        period = node.neutral_report_period(harvest)
        balanced = SensorNode(report_period=period)
        assert balanced.average_power() == pytest.approx(harvest, rel=0.01)

    def test_neutral_period_impossible_below_sleep_floor(self):
        node = SensorNode(sleep_power=10e-6)
        with pytest.raises(ModelParameterError):
            node.neutral_report_period(5e-6)

    def test_load_callable_for_simulator(self):
        node = SensorNode(report_period=30.0)
        load = node.load()
        assert load(0.001) > load(15.0)
