"""The CLI exit-code contract: typed errors map to documented codes.

Codes (mirrored in README "Exit codes"): 0 success / graceful drain,
1 unexpected, 2 usage, 3 bench regression, 4 config, 5 numerical
guard, 6 checkpoint/lock.  Typed failures also journal a ``run-error``
event carrying the command, error type, and the code.
"""

import json

import pytest

from repro import errors
from repro.cli import (
    EXIT_CHECKPOINT,
    EXIT_CONFIG,
    EXIT_GUARD,
    EXIT_OK,
    classify_exit_code,
    main,
)
from repro.obs import journal


class TestClassifier:
    @pytest.mark.parametrize(
        "exc, code",
        [
            (errors.ConfigError("bad", field="hours"), EXIT_CONFIG),
            (errors.ModelParameterError("bad"), EXIT_CONFIG),
            (errors.ConfigurationError("bad"), EXIT_CONFIG),
            (errors.FaultConfigError("bad"), EXIT_CONFIG),
            (errors.NumericalGuardError("nan", signal="v"), EXIT_GUARD),
            (errors.CheckpointError("torn"), EXIT_CHECKPOINT),
            (errors.StateFormatError("schema"), EXIT_CHECKPOINT),
            (errors.LockTimeoutError("held"), EXIT_CHECKPOINT),
            (errors.RunDrainedError("drained", checkpoint_path="ck"), EXIT_OK),
            (errors.SimulationError("other"), 1),
            (RuntimeError("alien"), 1),
        ],
    )
    def test_mapping(self, exc, code):
        assert classify_exit_code(exc) == code

    def test_drained_beats_checkpoint_bucket(self):
        # RunDrainedError IS-A CheckpointError; drain must win.
        exc = errors.RunDrainedError("d")
        assert isinstance(exc, errors.CheckpointError)
        assert classify_exit_code(exc) == EXIT_OK


class TestMainExitCodes:
    def test_config_error_exits_4_with_field(self, capsys):
        # montecarlo boards=0 trips validation inside the driver
        code = main(["montecarlo", "--boards", "0"])
        assert code == EXIT_CONFIG
        err = capsys.readouterr().err
        assert "boards" in err

    def test_config_error_emits_journal_run_error(self, tmp_path, capsys):
        journal_path = tmp_path / "run.jsonl"
        code = main(["montecarlo", "--boards", "0", "--journal", str(journal_path)])
        assert code == EXIT_CONFIG
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
            if line.strip()
        ]
        run_errors = [e for e in events if e["event"] == "run-error"
                      and e.get("source") == "cli"]
        assert len(run_errors) == 1
        assert run_errors[0]["command"] == "montecarlo"
        assert run_errors[0]["exit_code"] == EXIT_CONFIG

    def test_resume_mismatch_exits_checkpoint_code(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        ck.write_text("{ not json")
        code = main(["endurance", "--resume", str(ck), "--days", "1"])
        assert code == EXIT_CHECKPOINT
        assert "CheckpointError" in capsys.readouterr().err

    def test_success_still_exits_zero(self, capsys):
        assert main(["montecarlo", "--boards", "20"]) == EXIT_OK
        capsys.readouterr()
