"""The resilience harness: determinism, clean-run equivalence, metrics."""

import pytest

from repro.env.profiles import HOURS
from repro.errors import FaultConfigError
from repro.experiments import resilience
from repro.experiments.comparison import run_comparison

TECHNIQUES = ["ideal-oracle", "proposed-S&H-FOCV", "fixed-voltage"]
SHORT = dict(
    duration=1.0 * HOURS,
    dt=60.0,
    techniques=TECHNIQUES,
    scenarios=["outdoor"],
    include_recovery=False,
    include_coldstart=False,
)


def _cells_as_dicts(report):
    return [
        (c.campaign, c.scenario, c.technique, c.summary.__dict__) for c in report.cells
    ]


class TestFaultCampaigns:
    def test_builtin_suite_has_enough_distinct_campaigns(self):
        # The acceptance bar: >= 4 distinct fault schedules plus clean.
        assert "clean" in resilience.CAMPAIGNS
        assert len([c for c in resilience.CAMPAIGNS if c != "clean"]) >= 4

    def test_unknown_campaign_rejected(self):
        with pytest.raises(FaultConfigError):
            resilience.build_plan("meteor-strike", seed=0, duration=3600.0)
        with pytest.raises(FaultConfigError):
            resilience.run_resilience(campaigns=["meteor-strike"], **SHORT)

    def test_plans_are_deterministic_in_seed(self):
        a = resilience.build_plan("light-dropout", seed=5, duration=86400.0)
        b = resilience.build_plan("light-dropout", seed=5, duration=86400.0)
        pa = a.wrap_environment(lambda t: 500.0)
        pb = b.wrap_environment(lambda t: 500.0)
        times = [k * 600.0 for k in range(144)]
        assert [pa(t) for t in times] == [pb(t) for t in times]


class TestRunResilience:
    def test_same_seed_identical_report(self):
        a = resilience.run_resilience(seed=11, campaigns=["light-dropout"], **SHORT)
        b = resilience.run_resilience(seed=11, campaigns=["light-dropout"], **SHORT)
        assert _cells_as_dicts(a) == _cells_as_dicts(b)

    def test_different_seed_different_faults(self):
        from repro.env.profiles import ConstantProfile

        # Different seeds place the dropout windows differently...
        pa = resilience.build_plan("light-dropout", 11, 86400.0).wrap_environment(
            ConstantProfile(500.0)
        )
        pb = resilience.build_plan("light-dropout", 12, 86400.0).wrap_environment(
            ConstantProfile(500.0)
        )
        times = [k * 60.0 for k in range(1440)]
        assert [pa(t) for t in times] != [pb(t) for t in times]
        # ...while the clean reference run is seed-independent.
        a = resilience.run_resilience(seed=11, campaigns=["clean"], **SHORT)
        b = resilience.run_resilience(seed=12, campaigns=["clean"], **SHORT)
        assert _cells_as_dicts(a) == _cells_as_dicts(b)

    def test_clean_campaign_matches_comparison_bitwise(self):
        # Pinned to the scalar engine: this is the bit-for-bit contract
        # against the E8 comparison path (which walks per technique).
        report = resilience.run_resilience(
            seed=0, campaigns=["clean"], engine="scalar", **SHORT
        )
        comparison = run_comparison(
            duration=SHORT["duration"],
            dt=SHORT["dt"],
            techniques=TECHNIQUES,
            scenarios=["outdoor"],
        )
        assert len(report.cells) == len(comparison)
        for mine, ref in zip(report.cells, comparison):
            assert (mine.technique, mine.scenario) == (ref.technique, ref.scenario)
            assert mine.summary.__dict__ == ref.summary.__dict__

    def test_fleet_engine_matches_scalar(self):
        scalar = resilience.run_resilience(
            seed=0, campaigns=["component-drift"], engine="scalar", **SHORT
        )
        fleet = resilience.run_resilience(
            seed=0, campaigns=["component-drift"], engine="fleet", **SHORT
        )
        assert len(scalar.cells) == len(fleet.cells)
        for mine, ref in zip(fleet.cells, scalar.cells):
            assert (mine.campaign, mine.technique, mine.scenario) == (
                ref.campaign, ref.technique, ref.scenario,
            )
            for name, value in ref.summary.__dict__.items():
                assert getattr(mine.summary, name) == pytest.approx(
                    value, rel=1e-12, abs=1e-18
                )

    def test_engine_validated(self):
        from repro.errors import ModelParameterError

        with pytest.raises(ModelParameterError):
            resilience.run_resilience(engine="quantum", **SHORT)

    def test_clean_always_included_and_first(self):
        report = resilience.run_resilience(seed=0, campaigns=["light-dropout"], **SHORT)
        assert report.campaigns[0] == "clean"
        assert {c.campaign for c in report.cells} == {"clean", "light-dropout"}

    def test_retention_and_energy_lost(self):
        report = resilience.run_resilience(seed=0, campaigns=["light-dropout"], **SHORT)
        for technique in TECHNIQUES:
            clean = report.net_energy("clean", "outdoor", technique)
            faulted = report.net_energy("light-dropout", "outdoor", technique)
            lost = report.energy_lost("light-dropout", "outdoor", technique)
            assert lost == pytest.approx(clean - faulted)
            if clean > 0.0:
                retention = report.retention("light-dropout", "outdoor", technique)
                assert retention == pytest.approx(faulted / clean)
                assert retention <= 1.001  # dropouts cannot add energy

    def test_unknown_lookup_rejected(self):
        report = resilience.run_resilience(seed=0, campaigns=["clean"], **SHORT)
        with pytest.raises(FaultConfigError):
            report.net_energy("clean", "outdoor", "nonexistent-technique")

    def test_render_covers_all_campaigns(self):
        report = resilience.run_resilience(
            seed=0, campaigns=["light-dropout", "converter-brownout"], **SHORT
        )
        text = resilience.render(report)
        for name in ("clean", "light-dropout", "converter-brownout"):
            assert name in text


class TestProbes:
    def test_recovery_measures_blackout(self):
        results = resilience.measure_recovery(
            ["ideal-oracle", "proposed-S&H-FOCV"],
            dropout_start=600.0,
            dropout_width=300.0,
            observe=600.0,
            dt=5.0,
        )
        by_name = {r.technique: r for r in results}
        oracle = by_name["ideal-oracle"]
        focv = by_name["proposed-S&H-FOCV"]
        assert oracle.baseline_power > 0.0
        # The oracle re-acquires instantly; the S&H holds its sample
        # through the blackout and is back within one astable period.
        assert oracle.recovered and oracle.recovery_time == 0.0
        assert focv.recovered and focv.recovery_time <= 120.0

    def test_coldstart_deterministic_and_marginal(self):
        a = resilience.coldstart_under_flicker(seed=0, attempts=4)
        b = resilience.coldstart_under_flicker(seed=0, attempts=4)
        assert (a.successes, a.mean_start_time) == (b.successes, b.mean_start_time)
        assert 0.0 <= a.success_rate <= 1.0
