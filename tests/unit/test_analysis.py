"""Unit tests for the analysis package (Eq. 2, efficiency, budgets, tables)."""

import numpy as np
import pytest

from repro.analysis.efficiency import (
    crossover_lux,
    efficiency_loss_from_voc_error,
    harvest_improvement,
    tracking_efficiency_of_ratio,
)
from repro.analysis.power_budget import BudgetLine, PowerBudget, proposed_platform_budget
from repro.analysis.reporting import format_table
from repro.analysis.sampling_error import (
    error_vs_period,
    mpp_voltage_error,
    worst_case_mean_error,
)
from repro.errors import ModelParameterError
from repro.pv.cells import am_1815


class TestEquation2:
    def test_constant_signal_has_zero_error(self):
        assert worst_case_mean_error([5.0] * 100, 10) == 0.0

    def test_single_sample_period_zero_error(self):
        # p = 1: each window is one sample, max == min.
        assert worst_case_mean_error([1.0, 5.0, 2.0], 1) == 0.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        x = rng.random(200)
        p = 17
        windows = [x[n : n + p] for n in range(len(x) - p + 1)]
        brute = float(np.mean([w.max() - w.min() for w in windows]))
        assert worst_case_mean_error(x, p) == pytest.approx(brute, rel=1e-12)

    def test_monotone_in_period(self):
        rng = np.random.default_rng(4)
        x = np.cumsum(rng.standard_normal(500))  # wandering signal
        errors = error_vs_period(x, [2, 5, 10, 50, 100])
        assert all(b >= a for a, b in zip(errors, errors[1:]))

    def test_step_signal_error(self):
        # One unit step: windows containing the step see range 1.
        x = [0.0] * 50 + [1.0] * 50
        p = 10
        expected = (p - 1) / (100 - p + 1)
        assert worst_case_mean_error(x, p) == pytest.approx(expected)

    def test_rejects_period_longer_than_record(self):
        with pytest.raises(ModelParameterError):
            worst_case_mean_error([1.0, 2.0], 5)

    def test_rejects_zero_period(self):
        with pytest.raises(ModelParameterError):
            worst_case_mean_error([1.0, 2.0], 0)

    def test_mpp_voltage_error_is_k_scaled(self):
        assert mpp_voltage_error(12.7e-3, 0.6) == pytest.approx(7.62e-3)
        # The paper's numbers: 12.7 mV -> ~7.7 mV, 24.1 mV -> ~14.7 mV.
        assert mpp_voltage_error(24.1e-3, 0.61) == pytest.approx(14.7e-3, abs=0.3e-3)

    def test_mpp_error_rejects_bad_k(self):
        with pytest.raises(ModelParameterError):
            mpp_voltage_error(1e-3, 1.5)


class TestEfficiencyAnalysis:
    def test_zero_error_zero_loss(self):
        loss = efficiency_loss_from_voc_error(am_1815(), 0.0, 1000.0, k=0.6)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_paper_scale_error_under_one_percent(self):
        # The Sec. II-B claim: the worst measured error (24.1 mV) costs
        # less than 1 % of the available power.
        for sign in (+1.0, -1.0):
            loss = efficiency_loss_from_voc_error(am_1815(), sign * 24.1e-3, 1000.0, k=0.6)
            assert loss < 0.01

    def test_large_error_costs_more(self):
        # Negative errors pull the point further below the MPP; cost
        # grows with magnitude.  (Positive errors from a k below the
        # cell's true k actually move *toward* the MPP — that asymmetry
        # is real and covered by the k-trim ablation.)
        small = efficiency_loss_from_voc_error(am_1815(), -20e-3, 1000.0, k=0.6)
        large = efficiency_loss_from_voc_error(am_1815(), -500e-3, 1000.0, k=0.6)
        assert large > small

    def test_tracking_efficiency_peaks_at_cell_k(self):
        cell = am_1815()
        k_true = cell.mpp(1000.0).k
        at_k = tracking_efficiency_of_ratio(cell, k_true, 1000.0)
        off_k = tracking_efficiency_of_ratio(cell, k_true - 0.15, 1000.0)
        assert at_k == pytest.approx(1.0, abs=1e-3)
        assert off_k < at_k

    def test_tracking_efficiency_rejects_bad_ratio(self):
        with pytest.raises(ModelParameterError):
            tracking_efficiency_of_ratio(am_1815(), 1.2, 1000.0)

    def test_crossover_micropower_wins_everywhere(self):
        # The proposed 28 uW overhead beats an 85 % baseline from
        # essentially any usable light level.
        lux = crossover_lux(am_1815(), overhead_power=28e-6, tracking_efficiency=0.998)
        assert lux < 300.0

    def test_crossover_heavy_tracker_needs_outdoor_light(self):
        lux = crossover_lux(am_1815(), overhead_power=2e-3, tracking_efficiency=1.0)
        assert lux > 2000.0

    def test_crossover_hopeless_technique_is_inf(self):
        lux = crossover_lux(
            am_1815(),
            overhead_power=10.0,
            tracking_efficiency=1.0,
            lux_range=(10.0, 100000.0),
        )
        assert lux == float("inf")

    def test_harvest_improvement(self):
        assert harvest_improvement(1.2, 1.0) == pytest.approx(0.2)
        with pytest.raises(ModelParameterError):
            harvest_improvement(1.0, 0.0)


class TestPowerBudget:
    def test_proposed_budget_totals(self):
        budget = proposed_platform_budget()
        assert budget.total_current() == pytest.approx(8.4e-6, rel=0.05)
        chain = budget.total_current("astable") + budget.total_current("sample-hold")
        assert chain == pytest.approx(7.6e-6, rel=0.02)

    def test_budget_groups(self):
        budget = proposed_platform_budget()
        assert budget.groups() == ["astable", "sample-hold", "active-monitor"]

    def test_budget_render_contains_totals(self):
        text = proposed_platform_budget().render()
        assert "TOTAL" in text
        assert "uA" in text

    def test_custom_budget(self):
        budget = PowerBudget(title="test", supply=3.0)
        budget.add("a", 1e-6, group="g")
        budget.add("b", 2e-6, group="g")
        assert budget.total_current() == pytest.approx(3e-6)
        assert budget.total_power() == pytest.approx(9e-6)

    def test_rejects_negative_line(self):
        with pytest.raises(ModelParameterError):
            BudgetLine(item="x", current=-1.0)


class TestReporting:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_title_included(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ModelParameterError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ModelParameterError):
            format_table([], [])

    def test_alignment(self):
        right = format_table(["col"], [["1"]], align_right=True)
        left = format_table(["col"], [["1"]], align_right=False)
        assert right.splitlines()[-1].endswith("1")
        assert left.splitlines()[-1].startswith("1")
