"""Unit tests for the compiled tier's power LUT (:mod:`repro.pv.lut`).

The table's contract: scalar and vectorized lookups agree bitwise, the
power is zero outside each condition's (0, Voc) window, dark rows are
exactly zero, and the pre-run validation gate measures worst-case error
against exact solves — passing within the declared budget and raising
:class:`~repro.errors.LUTValidationError` for an undersized table.
"""

import numpy as np
import pytest

from repro.errors import LUTValidationError, ModelParameterError, SimulationError
from repro.pv.cells import am_1815
from repro.pv.lut import (
    DEFAULT_GRID_POINTS,
    DEFAULT_REL_BUDGET,
    CellPowerLUT,
)


@pytest.fixture(scope="module")
def models():
    cell = am_1815()
    out = [cell.model_at(lux) for lux in (50.0, 200.0, 1000.0, 10000.0)]
    out.append(cell.model_at(500.0).with_photocurrent(0.0))  # dark row
    return out


@pytest.fixture(scope="module")
def lut(models):
    return CellPowerLUT.from_models(models)


class TestConstruction:
    def test_defaults(self, lut, models):
        assert lut.grid_points == DEFAULT_GRID_POINTS
        assert lut.rel_budget == DEFAULT_REL_BUDGET
        assert lut.power_table.shape == (len(models), DEFAULT_GRID_POINTS)

    def test_dark_rows_are_zero(self, lut):
        assert lut.voc[-1] <= 0.0 or lut.power_table[-1].max() == 0.0
        assert np.all(lut.power_table[-1] == 0.0)

    def test_rejects_bad_knobs(self, models):
        with pytest.raises(ModelParameterError):
            CellPowerLUT.from_models(models, grid_points=7)
        with pytest.raises(ModelParameterError):
            CellPowerLUT.from_models(models, grid_points=16.5)
        with pytest.raises(ModelParameterError):
            CellPowerLUT.from_models(models, rel_budget=0.0)
        with pytest.raises(ModelParameterError):
            CellPowerLUT.from_models(models, abs_floor=-1.0)


class TestEvaluation:
    def test_scalar_matches_vectorized_bitwise(self, lut, models):
        rng = np.random.default_rng(7)
        for i in range(len(models)):
            voc = lut.voc[i]
            volts = rng.uniform(-0.1, max(voc, 0.1) * 1.1, size=64)
            many = lut.power_many(np.full(64, i), volts)
            for v, p in zip(volts, many):
                assert lut.power(i, float(v)) == p

    def test_zero_outside_window(self, lut):
        for i in range(len(lut.voc)):
            voc = lut.voc[i]
            assert lut.power(i, 0.0) == 0.0
            assert lut.power(i, -0.5) == 0.0
            assert lut.power(i, max(voc, 0.1)) == 0.0
            assert lut.power(i, max(voc, 0.1) * 2.0) == 0.0

    def test_tracks_exact_curve(self, lut, models):
        rng = np.random.default_rng(11)
        for i, m in enumerate(models):
            voc = lut.voc[i]
            if voc <= 0.0:
                continue
            for v in rng.uniform(0.0, voc, size=32):
                exact = max(0.0, float(m.power_at(v)))
                err = abs(lut.power(i, float(v)) - exact) / lut.scale[i]
                assert err <= lut.rel_budget


class TestValidationGate:
    def test_default_table_passes(self, lut, models):
        report = lut.validate()
        assert report.ok
        assert report.conditions == len(models)
        assert report.conditions_checked == 4  # dark row skipped
        assert report.max_rel_error <= DEFAULT_REL_BUDGET
        assert report.rel_budget == DEFAULT_REL_BUDGET

    def test_undersized_table_rejected(self, models):
        small = CellPowerLUT.from_models(models, grid_points=8)
        with pytest.raises(LUTValidationError) as exc:
            small.validate()
        assert exc.value.max_rel_error > exc.value.rel_budget
        assert isinstance(exc.value, SimulationError)

    def test_all_dark_table_trivially_valid(self, models):
        dark = CellPowerLUT.from_models([models[-1], models[-1]])
        report = dark.validate()
        assert report.ok and report.samples == 0
