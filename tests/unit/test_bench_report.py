"""Bench-ledger trend analysis: the regression gate's semantics.

The contract: only same-host entries (matching
:func:`~repro.sim.telemetry.host_fingerprint` dicts) are comparable;
the median excludes the newest entry (the suspect never shifts its own
bar); a flag fires when ``latest < threshold x median`` and at least
``min_history`` same-host entries exist.
"""

import json

import pytest

from repro.errors import ModelParameterError
from repro.obs import benchreport
from repro.sim import telemetry

HOST_A = {"python": "3.11.7", "numpy": "1.26.0", "cpu_count": 8}
HOST_B = {"python": "3.12.1", "numpy": "2.0.0", "cpu_count": 96}


def _entry(steps_per_s, host=HOST_A, note="test"):
    return {
        "wall_s": 1.0,
        "steps": int(steps_per_s),
        "steps_per_s": steps_per_s,
        "note": note,
        "recorded": "2026-08-07T00:00:00Z",
        "host": host,
    }


def _write_ledger(path, experiments):
    path.write_text(json.dumps({"schema": 1, "experiments": experiments}))
    return path


class TestAnalyzeLedger:
    def test_sixty_percent_drop_is_flagged_at_default_threshold(self, tmp_path):
        ledger = _write_ledger(tmp_path / "BENCH_perf.json", {
            "comparison": [
                _entry(100.0), _entry(110.0), _entry(90.0),
                _entry(40.0, note="the regression"),  # 40% of median 100
            ],
        })
        report = benchreport.analyze_ledger(path=ledger, host=HOST_A)
        (trend,) = report.trends
        assert trend.entries == 4 and trend.ignored == 0
        assert trend.median_steps_per_s == pytest.approx(100.0)
        assert trend.ratio == pytest.approx(0.4)
        assert trend.regressed
        assert report.regressions[0].experiment == "comparison"
        assert report.regressions[0].latest_note == "the regression"

    def test_small_dip_not_flagged(self, tmp_path):
        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [_entry(100.0), _entry(100.0), _entry(60.0)],
        })
        report = benchreport.analyze_ledger(path=ledger, host=HOST_A)
        (trend,) = report.trends
        assert trend.ratio == pytest.approx(0.6)
        assert not trend.regressed  # 0.6 >= default threshold 0.5

    def test_cross_host_entries_are_ignored_not_compared(self, tmp_path):
        """A 60% drop *relative to another machine* must not flag."""
        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [
                _entry(100.0, host=HOST_B),
                _entry(110.0, host=HOST_B),
                _entry(40.0, host=HOST_A),
            ],
        })
        report = benchreport.analyze_ledger(path=ledger, host=HOST_A)
        (trend,) = report.trends
        assert trend.entries == 1 and trend.ignored == 2
        assert trend.median_steps_per_s is None
        assert not trend.regressed
        assert report.regressions == []

    def test_pre_fingerprint_entries_are_ignored(self, tmp_path):
        legacy = {"wall_s": 1.0, "steps": 100, "steps_per_s": 100.0}  # no host
        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [legacy, _entry(100.0), _entry(30.0)],
        })
        report = benchreport.analyze_ledger(path=ledger, host=HOST_A)
        (trend,) = report.trends
        assert trend.ignored == 1
        assert trend.median_steps_per_s == pytest.approx(100.0)
        assert trend.regressed  # 30 vs 100 — legacy row changed nothing

    def test_single_entry_never_flags(self, tmp_path):
        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [_entry(1.0)],
        })
        report = benchreport.analyze_ledger(path=ledger, host=HOST_A)
        (trend,) = report.trends
        assert trend.latest_steps_per_s == pytest.approx(1.0)
        assert trend.ratio is None and not trend.regressed

    def test_custom_threshold(self, tmp_path):
        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [_entry(100.0), _entry(100.0), _entry(80.0)],
        })
        loose = benchreport.analyze_ledger(path=ledger, host=HOST_A, threshold=0.5)
        tight = benchreport.analyze_ledger(path=ledger, host=HOST_A, threshold=0.9)
        assert not loose.trends[0].regressed
        assert tight.trends[0].regressed

    def test_threshold_validation(self, tmp_path):
        ledger = _write_ledger(tmp_path / "l.json", {})
        with pytest.raises(ModelParameterError):
            benchreport.analyze_ledger(path=ledger, threshold=0.0)
        with pytest.raises(ModelParameterError):
            benchreport.analyze_ledger(path=ledger, threshold=1.5)
        with pytest.raises(ModelParameterError):
            benchreport.analyze_ledger(path=ledger, min_history=1)

    def test_missing_ledger_reads_empty(self, tmp_path):
        report = benchreport.analyze_ledger(path=tmp_path / "absent.json")
        assert report.trends == []

    def test_defaults_to_current_host(self, tmp_path):
        mine = telemetry.host_fingerprint()
        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [_entry(100.0, host=mine), _entry(20.0, host=mine)],
        })
        report = benchreport.analyze_ledger(path=ledger)
        assert report.trends[0].regressed


class TestRendering:
    def _report(self, tmp_path):
        ledger = _write_ledger(tmp_path / "l.json", {
            "fast": [_entry(100.0), _entry(100.0), _entry(101.0)],
            "slow": [_entry(100.0), _entry(100.0), _entry(10.0)],
        })
        return benchreport.analyze_ledger(path=ledger, host=HOST_A)

    def test_markdown(self, tmp_path):
        text = benchreport.render_markdown(self._report(tmp_path))
        assert "# Bench trend report" in text
        assert "1 regression(s) flagged" in text
        assert "**REGRESSED**" in text
        assert "`fast`" in text and "`slow`" in text
        assert benchreport.host_key(HOST_A) in text

    def test_json_round_trip(self, tmp_path):
        snap = self._report(tmp_path).to_dict()
        again = json.loads(json.dumps(snap))
        assert again["schema"] == 1
        assert again["regressions"] == ["slow"]
        assert len(again["trends"]) == 2

    def test_write_report(self, tmp_path):
        paths = benchreport.write_report(self._report(tmp_path), tmp_path / "out")
        assert paths["markdown"].exists() and paths["json"].exists()
        assert json.loads(paths["json"].read_text())["regressions"] == ["slow"]

    def test_host_key(self):
        assert benchreport.host_key(HOST_A) == "py3.11.7-numpy1.26.0-8cpu"
        assert benchreport.host_key(None) == "unknown-host"
        assert benchreport.host_key({}) == "unknown-host"


class TestCli:
    def test_bench_report_flags_injected_regression(self, tmp_path, capsys):
        from repro.cli import main

        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [
                _entry(100.0, host=telemetry.host_fingerprint()),
                _entry(40.0, host=telemetry.host_fingerprint()),
            ],
        })
        code = main(["bench", "report", "--path", str(ledger),
                     "--fail-on-regression"])
        out = capsys.readouterr().out
        assert code != 0
        assert "REGRESSED" in out

    def test_bench_report_clean_exit(self, tmp_path, capsys):
        from repro.cli import main

        ledger = _write_ledger(tmp_path / "l.json", {
            "comparison": [
                _entry(100.0, host=telemetry.host_fingerprint()),
                _entry(95.0, host=telemetry.host_fingerprint()),
            ],
        })
        code = main(["bench", "report", "--path", str(ledger),
                     "--fail-on-regression", "--format", "json",
                     "--out", str(tmp_path / "reports")])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "reports" / "bench_report.md").exists()
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["regressions"] == []
