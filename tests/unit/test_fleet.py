"""Fleet-vs-scalar equivalence: the vectorized engine must not change physics.

The fleet engine (:mod:`repro.sim.fleet`) exists purely for throughput;
its contract is that every per-node result matches the scalar
:class:`QuasiStaticSimulator` walk over the same precomputed conditions
— bitwise where the scalar path is deterministic NumPy arithmetic, and
to a-few-ulp tolerance on long energy accumulations (the fleet sums the
population axis in a different association order).

Covered here: a clean run, a fully-faulted run (hold leakage, converter
brownout, storage short, energy-aware scheduler), an open-mode storage
fault, checkpoint/resume mid-run through a JSON round trip, member-order
invariance, and the Monte Carlo fleet kernel against the scalar board
walk.
"""

import json

import numpy as np
import pytest

from repro.analysis.montecarlo import run_sample_hold_montecarlo
from repro.converter.buck_boost import BuckBoostConverter
from repro.core.config import PlatformConfig
from repro.core.system import SampleHoldMPPT
from repro.env.profiles import ConstantProfile
from repro.errors import ModelParameterError, StateFormatError
from repro.faults.components import (
    ConverterBrownoutFault,
    HoldLeakageFault,
    StorageFault,
)
from repro.faults.schedule import FaultSchedule
from repro.node.scheduler import EnergyAwareScheduler
from repro.node.sensor_node import SensorNode
from repro.pv.cells import am_1815
from repro.pv.thermal import CellThermalModel
from repro.sim.fleet import FleetMember, FleetSimulator, fleet_supported
from repro.sim.precompute import precompute_conditions
from repro.sim.quasistatic import QuasiStaticSimulator
from repro.storage.supercap import Supercapacitor

ENERGY_FIELDS = (
    "duration",
    "energy_ideal",
    "energy_at_cell",
    "energy_delivered",
    "energy_overhead",
    "energy_load",
    "final_storage_voltage",
)

DUR = 4 * 3600.0
DT = 60.0


@pytest.fixture(scope="module")
def conditions():
    cell = am_1815()
    env = ConstantProfile(500.0)
    thermal = CellThermalModel(area_cm2=cell.parameters.area_cm2)
    pc = precompute_conditions(cell, env, DUR, DT, thermal=thermal)
    return cell, env, pc


def _assert_summaries_match(scalar, fleet, rtol=1e-12):
    for name in ENERGY_FIELDS:
        a, b = getattr(scalar, name), getattr(fleet, name)
        assert a == pytest.approx(b, rel=rtol, abs=1e-18), (
            f"{name}: scalar {a!r} != fleet {b!r}"
        )


def _build_clean():
    ctl = SampleHoldMPPT(config=PlatformConfig.paper_prototype(), assume_started=True)
    conv = BuckBoostConverter()
    store = Supercapacitor(capacitance=25.0, rated_voltage=5.5, voltage=2.7)
    return ctl, conv, store


def _build_faulted():
    ctl = SampleHoldMPPT(config=PlatformConfig.paper_prototype(), assume_started=True)
    ctl = HoldLeakageFault(
        ctl,
        FaultSchedule.bursts(duration=DUR, rate_per_hour=1.0, mean_width=900.0, seed=401),
        droop_multiplier=40.0,
    )
    conv = ConverterBrownoutFault(
        BuckBoostConverter(),
        FaultSchedule.periodic(first=3600.0, period=7200.0, width=300.0, count=2),
    )
    store = StorageFault(
        Supercapacitor(capacitance=25.0, rated_voltage=5.5, voltage=2.7),
        FaultSchedule.bursts(duration=DUR, rate_per_hour=0.5, mean_width=300.0, seed=307),
        mode="short",
        short_resistance=200.0,
    )
    node = SensorNode(payload_bytes=16)
    sched = EnergyAwareScheduler(
        node, store.base, v_survival=2.3, v_comfort=4.2, min_period=30, max_period=3600
    )
    return ctl, conv, store, sched


class TestFleetEquivalence:
    def test_clean_run_matches_scalar(self, conditions):
        cell, env, pc = conditions
        ctl, conv, store = _build_clean()
        sim = QuasiStaticSimulator(
            cell=cell, environment=env, controller=ctl, converter=conv,
            storage=store, supply_voltage=3.0, record=False, precomputed=pc,
        )
        sim.run(duration=DUR, dt=DT)

        ctl2, conv2, store2 = _build_clean()
        assert fleet_supported(ctl2, conv2, store2)
        fleet = FleetSimulator(
            [FleetMember(controller=ctl2, precomputed=pc, converter=conv2,
                         storage=store2, supply_voltage=3.0)]
        )
        summary = fleet.run()[0]
        _assert_summaries_match(sim.summary, summary)

    def test_faulted_run_matches_scalar(self, conditions):
        cell, env, pc = conditions
        ctl, conv, store, sched = _build_faulted()
        sim = QuasiStaticSimulator(
            cell=cell, environment=env, controller=ctl, converter=conv,
            storage=store, load=sched.power, supply_voltage=3.0,
            record=False, precomputed=pc,
        )
        sim.run(duration=DUR, dt=DT)

        ctl2, conv2, store2, sched2 = _build_faulted()
        assert fleet_supported(ctl2, conv2, store2, sched2)
        fleet = FleetSimulator(
            [FleetMember(controller=ctl2, precomputed=pc, converter=conv2,
                         storage=store2, load=sched2, supply_voltage=3.0)]
        )
        summary = fleet.run()[0]
        _assert_summaries_match(sim.summary, summary)
        assert int(fleet.reports_sent[0]) == sched.reports_sent

    def test_open_mode_storage_fault_matches_scalar(self, conditions):
        cell, env, pc = conditions

        def build():
            ctl = SampleHoldMPPT(
                config=PlatformConfig.paper_prototype(), assume_started=True
            )
            store = StorageFault(
                Supercapacitor(capacitance=25.0, rated_voltage=5.5, voltage=2.7),
                FaultSchedule.periodic(first=1800.0, period=3600.0, width=600.0, count=3),
                mode="open",
            )
            return ctl, BuckBoostConverter(), store

        ctl, conv, store = build()
        sim = QuasiStaticSimulator(
            cell=cell, environment=env, controller=ctl, converter=conv,
            storage=store, supply_voltage=3.0, record=False, precomputed=pc,
        )
        sim.run(duration=DUR, dt=DT)

        ctl2, conv2, store2 = build()
        fleet = FleetSimulator(
            [FleetMember(controller=ctl2, precomputed=pc, converter=conv2,
                         storage=store2, supply_voltage=3.0)]
        )
        _assert_summaries_match(sim.summary, fleet.run()[0])

    def test_checkpoint_resume_mid_run_matches_scalar(self, conditions):
        cell, env, pc = conditions
        ctl, conv, store, sched = _build_faulted()
        sim = QuasiStaticSimulator(
            cell=cell, environment=env, controller=ctl, converter=conv,
            storage=store, load=sched.power, supply_voltage=3.0,
            record=False, precomputed=pc,
        )
        sim.run(duration=DUR, dt=DT)

        ctl2, conv2, store2, sched2 = _build_faulted()
        fleet = FleetSimulator(
            [FleetMember(controller=ctl2, precomputed=pc, converter=conv2,
                         storage=store2, load=sched2, supply_voltage=3.0)]
        )
        for _ in range(fleet.steps // 2):
            fleet.step()
        snap = json.loads(json.dumps(fleet.state_dict()))  # force JSON types

        ctl3, conv3, store3, sched3 = _build_faulted()
        resumed = FleetSimulator(
            [FleetMember(controller=ctl3, precomputed=pc, converter=conv3,
                         storage=store3, load=sched3, supply_voltage=3.0)]
        )
        resumed.load_state(snap)
        summary = resumed.run()[0]
        _assert_summaries_match(sim.summary, summary)
        assert int(resumed.reports_sent[0]) == sched.reports_sent

    def test_member_order_invariance(self, conditions):
        """Swapping member order swaps summaries and changes nothing else."""
        cell, env, pc = conditions

        def members():
            ctl_a, conv_a, store_a = _build_clean()
            ctl_b, conv_b, store_b, sched_b = _build_faulted()
            return (
                FleetMember(controller=ctl_a, precomputed=pc, converter=conv_a,
                            storage=store_a, supply_voltage=3.0),
                FleetMember(controller=ctl_b, precomputed=pc, converter=conv_b,
                            storage=store_b, load=sched_b, supply_voltage=3.0),
            )

        a, b = members()
        forward = FleetSimulator([a, b]).run()
        a2, b2 = members()
        backward = FleetSimulator([b2, a2]).run()

        for lhs, rhs in zip(forward, reversed(backward)):
            assert lhs.__dict__ == rhs.__dict__

    def test_load_state_rejects_wrong_population(self, conditions):
        cell, env, pc = conditions
        ctl, conv, store = _build_clean()
        fleet = FleetSimulator(
            [FleetMember(controller=ctl, precomputed=pc, converter=conv,
                         storage=store, supply_voltage=3.0)]
        )
        state = fleet.state_dict()
        state["n"] = 3
        ctl2, conv2, store2 = _build_clean()
        fresh = FleetSimulator(
            [FleetMember(controller=ctl2, precomputed=pc, converter=conv2,
                         storage=store2, supply_voltage=3.0)]
        )
        with pytest.raises(StateFormatError):
            fresh.load_state(state)


class TestMonteCarloFleetKernel:
    def test_fleet_population_matches_scalar_boards(self):
        scalar = run_sample_hold_montecarlo(boards=64, engine="scalar")
        fleet = run_sample_hold_montecarlo(boards=64, engine="fleet")
        np.testing.assert_allclose(
            np.asarray(scalar.ratios), np.asarray(fleet.ratios),
            rtol=1e-9, atol=1e-12,
        )

    def test_engine_validated(self):
        with pytest.raises(ModelParameterError):
            run_sample_hold_montecarlo(boards=4, engine="gpu")
