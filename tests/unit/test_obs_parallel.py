"""Exactly-once metric aggregation across parallel_map's execution modes.

The worker-side protocol (snapshot -> delta -> parent merge) must
produce the same counts as a serial run, whether specs execute on the
pool, inline, or through the broken-pool serial retry — and never
double-count a spec on the retry path.
"""

from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.obs as obs
from repro.sim import parallel
from repro.sim.parallel import parallel_map

WORK_COUNTER = "test.obs.pool_work"


def _counted_work(x):
    # Module-level so it pickles into pool workers.  Direct registry use
    # works regardless of the enabled flag; the span only records when
    # the worker-side wrapper has enabled tracing.
    obs.REGISTRY.counter(WORK_COUNTER).inc()
    with obs.TRACER.span("spec-span"):
        pass
    return x * 2


@pytest.fixture(autouse=True)
def _clean_global_obs():
    obs.disable()
    obs.REGISTRY.reset()
    obs.TRACER.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()
    obs.TRACER.reset()


class TestExactlyOnce:
    def test_pool_counts_each_spec_once(self):
        obs.enable()
        results = parallel_map(_counted_work, list(range(8)), mode="process", max_workers=2)
        assert results == [x * 2 for x in range(8)]
        assert obs.REGISTRY.counter(WORK_COUNTER).value == 8.0

    def test_pool_merges_worker_spans_under_parallel_map(self):
        obs.enable()
        parallel_map(_counted_work, list(range(4)), mode="process", max_workers=2)
        graft = obs.TRACER.root.children["parallel_map"]
        assert graft.children["spec-span"].count == 4

    def test_serial_mode_counts_once(self):
        obs.enable()
        parallel_map(_counted_work, list(range(5)), mode="serial")
        assert obs.REGISTRY.counter(WORK_COUNTER).value == 5.0

    def test_broken_pool_retry_counts_once(self, monkeypatch):
        """The serial retry runs the *raw* fn, so nothing merges twice."""

        def _explode(task, specs, workers, chunksize, timeout):
            raise BrokenProcessPool("simulated worker death")

        monkeypatch.setattr(parallel, "_run_pool", _explode)
        obs.enable()
        results = parallel_map(_counted_work, list(range(6)), mode="process", max_workers=2)
        assert results == [x * 2 for x in range(6)]
        assert obs.REGISTRY.counter(WORK_COUNTER).value == 6.0

    def test_disabled_pool_returns_plain_results(self):
        assert not obs.is_enabled()
        results = parallel_map(_counted_work, list(range(4)), mode="process", max_workers=2)
        assert results == [0, 2, 4, 6]
        # Parent-side registry untouched: workers counted into their own
        # (discarded) registries and no merge happened.
        assert obs.REGISTRY.counter(WORK_COUNTER).value == 0.0

    def test_worker_histogram_records_per_spec_wall_time(self):
        obs.enable()
        parallel_map(_counted_work, list(range(6)), mode="process", max_workers=2)
        hist = obs.REGISTRY.histogram("parallel.spec_seconds")
        assert hist.count == 6
