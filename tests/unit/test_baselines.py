"""Unit tests for the baseline MPPT techniques."""

import pytest

from repro.baselines import (
    FixedVoltage,
    HillClimbing,
    IdealMPPT,
    NoMPPT,
    PeriodicFOCV,
    PhotodiodeReference,
    PilotCell,
)
from repro.baselines.bootstrap import bootstrap_decision
from repro.env.scenarios import constant_bench
from repro.errors import ModelParameterError
from repro.pv.cells import am_1815
from repro.sim.quasistatic import Observation, QuasiStaticSimulator


def observe(lux=1000.0, t=0.0, dt=1.0, storage=3.0, supply=3.0):
    model = am_1815().model_at(lux)
    return Observation(
        time=t, dt=dt, cell_model=model, lux=lux, storage_voltage=storage, supply_voltage=supply
    )


class TestIdealMPPT:
    def test_operates_exactly_at_mpp(self):
        obs = observe()
        decision = IdealMPPT().decide(obs)
        assert decision.operating_voltage == pytest.approx(obs.cell_model.mpp().voltage, rel=1e-6)
        assert decision.overhead_current == 0.0

    def test_dark_idles(self):
        decision = IdealMPPT().decide(observe(lux=0.0))
        assert decision.operating_voltage is None


class TestHillClimbing:
    def test_converges_to_mpp_under_constant_light(self):
        controller = HillClimbing(step_voltage=0.05, update_period=1.0)
        sim = QuasiStaticSimulator(am_1815(), controller, constant_bench(1000.0), record=False)
        summary = sim.run(300.0, dt=1.0)
        # After convergence it oscillates one step around the true MPP.
        mpp = am_1815().mpp(1000.0)
        assert abs(controller._v_op - mpp.voltage) < 3.0 * controller.step_voltage
        assert summary.tracking_efficiency > 0.9

    def test_overhead_is_mcu_class(self):
        controller = HillClimbing()
        assert controller.average_overhead_current() > 100e-6

    def test_brownout_falls_back_to_bootstrap(self):
        decision = HillClimbing().decide(observe(supply=1.0, storage=1.0))
        assert decision.note.startswith("bootstrap")
        assert decision.overhead_current == 0.0

    def test_rejects_bad_step(self):
        with pytest.raises(ModelParameterError):
            HillClimbing(step_voltage=0.0)


class TestPeriodicFOCV:
    def test_tracks_k_voc(self):
        controller = PeriodicFOCV(k=0.6)
        obs = observe()
        decision = controller.decide(obs)
        assert decision.operating_voltage == pytest.approx(0.6 * obs.cell_model.voc(), rel=1e-6)

    def test_duty_loss_from_sampling(self):
        controller = PeriodicFOCV(sample_period=0.1, sample_duration=5e-3)
        decision = controller.decide(observe())
        assert decision.harvest_duty == pytest.approx(0.95)

    def test_overhead_is_2mw_class(self):
        controller = PeriodicFOCV()
        decision = controller.decide(observe(supply=3.0))
        assert decision.overhead_current * 3.0 == pytest.approx(2e-3, rel=1e-6)

    def test_rejects_sample_longer_than_period(self):
        with pytest.raises(ModelParameterError):
            PeriodicFOCV(sample_period=0.1, sample_duration=0.2)


class TestPilotCell:
    def test_area_cost_shows_as_duty(self):
        controller = PilotCell(pilot_area_fraction=0.1)
        decision = controller.decide(observe())
        assert decision.harvest_duty == pytest.approx(0.9)

    def test_reference_is_continuous_k_voc(self):
        controller = PilotCell(k=0.7)
        obs = observe(lux=3000.0)
        decision = controller.decide(obs)
        assert decision.operating_voltage == pytest.approx(0.7 * obs.cell_model.voc(), rel=1e-6)

    def test_overhead_300uw(self):
        decision = PilotCell().decide(observe(supply=3.0))
        assert decision.overhead_current * 3.0 == pytest.approx(300e-6, rel=1e-6)


class TestPhotodiodeReference:
    def test_exact_at_calibration_intensity(self):
        controller = PhotodiodeReference(calibration_lux=1000.0)
        obs = observe(lux=1000.0)
        decision = controller.decide(obs)
        assert decision.operating_voltage == pytest.approx(
            obs.cell_model.mpp().voltage, rel=0.01
        )

    def test_approximate_away_from_calibration(self):
        controller = PhotodiodeReference(calibration_lux=1000.0)
        controller.decide(observe(lux=1000.0))  # calibrate
        obs = observe(lux=200.0)
        decision = controller.decide(obs)
        true_vmpp = obs.cell_model.mpp().voltage
        assert decision.operating_voltage != pytest.approx(true_vmpp, rel=1e-4)
        assert abs(decision.operating_voltage - true_vmpp) < 0.5

    def test_overhead_500ua(self):
        decision = PhotodiodeReference().decide(observe())
        assert decision.overhead_current == pytest.approx(500e-6)


class TestFixedVoltage:
    def test_holds_setpoint(self):
        controller = FixedVoltage(setpoint=3.1)
        decision = controller.decide(observe())
        assert decision.operating_voltage == 3.1

    def test_idles_when_setpoint_above_voc(self):
        controller = FixedVoltage(setpoint=6.0)
        decision = controller.decide(observe(lux=200.0))
        assert decision.operating_voltage is None
        assert decision.overhead_current > 0.0  # reference IC still burns

    def test_reference_ic_draws_more_than_proposed_chain(self):
        # The paper's punchline: the S&H (7.6 uA) beats even the
        # fixed-voltage technique's reference IC.
        from repro.core.config import PlatformConfig

        assert FixedVoltage().reference_current > PlatformConfig().sampling_chain_current()


class TestNoMPPT:
    def test_operates_at_store_plus_diode(self):
        decision = NoMPPT(diode_drop=0.25).decide(observe(storage=3.0))
        assert decision.operating_voltage == pytest.approx(3.25)

    def test_idles_when_store_above_voc(self):
        decision = NoMPPT().decide(observe(lux=100.0, storage=5.0))
        assert decision.operating_voltage is None

    def test_zero_overhead(self):
        decision = NoMPPT().decide(observe())
        assert decision.overhead_current == 0.0


class TestBootstrap:
    def test_bootstrap_charges_when_possible(self):
        decision = bootstrap_decision(observe(storage=1.0))
        assert decision.operating_voltage == pytest.approx(1.25)
        assert decision.overhead_current == 0.0

    def test_bootstrap_dark(self):
        decision = bootstrap_decision(observe(lux=0.0, storage=1.0))
        assert decision.operating_voltage is None
