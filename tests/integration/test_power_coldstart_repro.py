"""Integration: Sec. IV-A current/timing (E6) and Sec. IV-B cold start (E7)."""

import pytest

from repro.experiments import sec4a, sec4b


class TestSec4aPower:
    @pytest.fixture(scope="class")
    def result(self):
        return sec4a.run_power_measurement()

    def test_astable_on_period_39ms(self, result):
        assert result.t_on == pytest.approx(39e-3, rel=0.01)

    def test_astable_off_period_69s(self, result):
        assert result.t_off == pytest.approx(69.0, rel=0.01)

    def test_chain_current_7_6uA(self, result):
        assert result.chain_current == pytest.approx(7.6e-6, rel=0.02)

    def test_metrology_current_about_8uA(self, result):
        # Paper: "draws an average 8 uA" for the S&H arrangement.
        assert result.metrology_current == pytest.approx(8e-6, rel=0.08)

    def test_cell_operating_current_42uA_at_200lux(self, result):
        assert result.cell_op_current_200lux == pytest.approx(42e-6, rel=0.02)

    def test_overhead_fraction_near_18_percent(self, result):
        # Paper: "<18 % of the power obtained from the cell" (current
        # ratio 7.6/42); our calibrated cell lands right at that edge.
        assert result.overhead_fraction_200lux < 0.20
        assert result.overhead_fraction_200lux > 0.12

    def test_budget_groups_sum_to_totals(self, result):
        budget = result.budget
        total = sum(line.current for line in budget.lines)
        assert budget.total_current() == pytest.approx(total, rel=1e-12)

    def test_render_quotes_paper_numbers(self, result):
        text = sec4a.render(result)
        assert "7.6 uA" in text
        assert "39 ms" in text


class TestSec4bColdStart:
    def test_cold_start_at_200_lux(self):
        # The paper's headline: cold-start observed down to 200 lux.
        result = sec4b.run_cold_start(200.0, dt=5e-4, timeout=30.0)
        assert result.succeeded
        assert result.t_powered < 5.0

    def test_first_pulse_quickly_after_wake(self):
        # "quickly generate a signal on the PULSE line".
        result = sec4b.run_cold_start(500.0, dt=5e-4, timeout=30.0)
        assert result.t_first_pulse - result.t_powered < 1.0

    def test_active_released_only_after_first_sample(self):
        result = sec4b.run_cold_start(1000.0, dt=5e-4, timeout=30.0)
        assert result.t_active >= result.t_first_pulse

    def test_brighter_light_starts_faster(self):
        slow = sec4b.run_cold_start(200.0, dt=5e-4, timeout=60.0)
        fast = sec4b.run_cold_start(2000.0, dt=5e-4, timeout=60.0)
        assert fast.t_powered < slow.t_powered

    def test_sweep_marks_failures_gracefully(self):
        results = sec4b.run_sweep(lux_levels=(1.0, 1000.0), dt=1e-3, timeout=5.0)
        assert not results[0].succeeded
        assert results[1].succeeded

    def test_render_table(self):
        results = sec4b.run_sweep(lux_levels=(1000.0,), dt=1e-3, timeout=10.0)
        text = sec4b.render(results)
        assert "cold-started" in text
