"""SIGTERM graceful drain for checkpointed experiment CLIs.

The satellite contract: a checkpointing run that receives SIGTERM
writes one final checkpoint, flushes the journal, prints the resume
hint, and exits 0 — and resuming from that checkpoint produces a
result bitwise-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments.endurance import run_week

DT = 20.0
DAYS = 2
CKPT_EVERY = 1800.0  # 90 steps between saves: many drain windows


def _spawn_endurance(tmp_path, ckpt, jpath):
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([src, env.get("PYTHONPATH", "")])
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "endurance",
            "--days", str(DAYS), "--dt", str(DT),
            "--checkpoint", str(ckpt),
            "--checkpoint-every", str(CKPT_EVERY),
            "--journal", str(jpath),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=tmp_path,
    )


def _wait_for(path, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            return True
        time.sleep(0.01)
    return False


class TestSigtermDrain:
    def test_sigterm_checkpoints_and_exits_zero(self, tmp_path):
        ckpt = tmp_path / "drain.ckpt.json"
        jpath = tmp_path / "drain.jsonl"
        proc = _spawn_endurance(tmp_path, ckpt, jpath)
        try:
            assert _wait_for(ckpt), "no checkpoint before timeout"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Graceful drain is a success, with the resume hint on stderr.
        assert proc.returncode == 0, stderr.decode()
        err = stderr.decode()
        assert "drained" in err
        assert f"--resume {ckpt}" in err

        # The final checkpoint is marked as the drain's own save.
        envelope = json.loads(ckpt.read_text())
        assert envelope["meta"].get("drained") is True

        # Journal flushed: checkpoint saves recorded, but the run never
        # emitted run-end — the drain interrupted it.
        events = [
            json.loads(line)
            for line in jpath.read_text().splitlines()
            if line.strip()
        ]
        names = [e["event"] for e in events]
        assert "checkpoint-save" in names
        assert "run-end" not in names
        cli_errors = [e for e in events if e["event"] == "run-error"
                      and e.get("source") == "cli"]
        assert cli_errors and cli_errors[0]["error"] == "RunDrainedError"
        assert cli_errors[0]["exit_code"] == 0

        # Resuming finishes the run to a bitwise-identical result.
        resumed = run_week(dt=DT, days=DAYS, resume_from=str(ckpt))
        clean = run_week(dt=DT, days=DAYS)
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            clean.to_dict(), sort_keys=True
        )

    def test_run_without_checkpoint_ignores_drain_plumbing(self, tmp_path):
        # No --checkpoint: SIGTERM keeps its default fatal behaviour —
        # there is nothing safe to save — so only checkpointed runs opt
        # into the cooperative drain.
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([src, env.get("PYTHONPATH", "")])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "endurance",
             "--days", "2", "--dt", "20"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=tmp_path,
        )
        try:
            time.sleep(1.0)  # let it get into the run
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGTERM
