"""Integration: Table I reproduction (E5).

Pins the complete system's tracking-accuracy table against the paper's
published values: Voc and HELD_SAMPLE at every intensity, and the
measured-k band.
"""

import pytest

from repro.experiments import table1


@pytest.fixture(scope="module")
def rows():
    return table1.run_table1()


class TestTable1:
    def test_all_twelve_intensities_present(self, rows):
        assert [r.lux for r in rows] == list(table1.PAPER_LUX_LEVELS)

    def test_voc_matches_paper_within_one_percent(self, rows):
        for row in rows:
            paper_voc, _, _ = table1.PAPER_TABLE1[int(row.lux)]
            assert row.voc == pytest.approx(paper_voc, rel=0.01), f"{row.lux} lux"

    def test_held_matches_paper_within_two_percent(self, rows):
        for row in rows:
            _, paper_held, _ = table1.PAPER_TABLE1[int(row.lux)]
            assert row.held == pytest.approx(paper_held, rel=0.02), f"{row.lux} lux"

    def test_k_within_papers_measured_band(self, rows):
        # Paper: "all values fall within the range 59.2 % to 60.1 %".
        lo, hi = table1.k_band(rows)
        assert lo > 58.7
        assert hi < 60.6

    def test_k_band_tight(self, rows):
        lo, hi = table1.k_band(rows)
        assert hi - lo < 1.2  # the paper's spread is 0.9 points

    def test_k_per_row_close_to_paper(self, rows):
        for row in rows:
            _, _, paper_k = table1.PAPER_TABLE1[int(row.lux)]
            assert row.k_percent == pytest.approx(paper_k, abs=0.8), f"{row.lux} lux"

    def test_render_includes_all_rows(self, rows):
        text = table1.render(rows)
        for lux in table1.PAPER_LUX_LEVELS:
            assert f"{lux}" in text

    def test_repeatability_same_seed(self):
        a = table1.run_table1(seed=7)
        b = table1.run_table1(seed=7)
        assert [r.held for r in a] == [r.held for r in b]
