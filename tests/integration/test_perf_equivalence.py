"""The fast paths change wall time, not physics.

Three layers are asserted bit-for-bit against the original per-step
path: the condition-keyed cell cache (exact keying), the precomputed
condition trace consumed by the simulator, and the precompute+batch
path inside ``run_comparison``.
"""

import pytest

from repro.baselines import IdealMPPT
from repro.converter.buck_boost import BuckBoostConverter
from repro.core.system import SampleHoldMPPT
from repro.env.profiles import HOURS
from repro.env.scenarios import office_desk_24h, outdoor_day
from repro.errors import ModelParameterError
from repro.experiments.comparison import run_comparison
from repro.pv.cells import am_1815
from repro.pv.thermal import CellThermalModel
from repro.sim.precompute import precompute_conditions
from repro.sim.quasistatic import QuasiStaticSimulator
from repro.storage.supercap import Supercapacitor


def _summaries_identical(a, b):
    assert a.__dict__ == b.__dict__, (
        f"fast-path summary deviates from reference:\n{a.__dict__}\nvs\n{b.__dict__}"
    )


def _make_sim(cell, controller, environment, **kwargs):
    return QuasiStaticSimulator(
        cell,
        controller,
        environment,
        converter=BuckBoostConverter(),
        storage=Supercapacitor(capacitance=25.0, rated_voltage=5.5, voltage=2.7),
        supply_voltage=3.0,
        record=False,
        **kwargs,
    )


def test_cached_cell_run_is_bitwise_identical():
    duration, dt = 1.0 * HOURS, 10.0
    plain = _make_sim(am_1815(), SampleHoldMPPT(assume_started=True), office_desk_24h())
    cached = _make_sim(
        am_1815(), SampleHoldMPPT(assume_started=True), office_desk_24h(), cache=True
    )
    _summaries_identical(cached.run(duration, dt=dt), plain.run(duration, dt=dt))


def test_precomputed_run_is_bitwise_identical():
    duration, dt = 1.0 * HOURS, 10.0
    cell = am_1815()
    live = _make_sim(cell, IdealMPPT(), office_desk_24h())
    pc = precompute_conditions(cell, office_desk_24h(), duration, dt)
    fast = _make_sim(cell, IdealMPPT(), office_desk_24h(), precomputed=pc)
    _summaries_identical(fast.run(duration, dt=dt), live.run(duration, dt=dt))


def test_precomputed_run_with_thermal_is_bitwise_identical():
    # Thermal stepping moves to the precompute — the outdoor scenario's
    # sun-heated temperature trace must come out the same.
    duration, dt = 1.0 * HOURS, 10.0
    cell = am_1815()
    live = _make_sim(
        cell,
        IdealMPPT(),
        outdoor_day(),
        thermal=CellThermalModel(area_cm2=cell.parameters.area_cm2),
    )
    pc = precompute_conditions(
        cell,
        outdoor_day(),
        duration,
        dt,
        thermal=CellThermalModel(area_cm2=cell.parameters.area_cm2),
    )
    fast = _make_sim(cell, IdealMPPT(), outdoor_day(), precomputed=pc)
    _summaries_identical(fast.run(duration, dt=dt), live.run(duration, dt=dt))


def test_precomputed_and_thermal_are_mutually_exclusive():
    cell = am_1815()
    pc = precompute_conditions(cell, office_desk_24h(), 60.0, 10.0)
    with pytest.raises(ModelParameterError):
        QuasiStaticSimulator(
            cell,
            IdealMPPT(),
            office_desk_24h(),
            thermal=CellThermalModel(area_cm2=cell.parameters.area_cm2),
            precomputed=pc,
        )


def test_run_comparison_fast_path_is_bitwise_identical():
    kwargs = dict(duration=0.5 * HOURS, dt=10.0)
    fast = run_comparison(precompute=True, **kwargs)
    slow = run_comparison(precompute=False, **kwargs)
    assert len(fast) == len(slow) == 27
    for f, s in zip(fast, slow):
        assert (f.technique, f.scenario) == (s.technique, s.scenario)
        _summaries_identical(f.summary, s.summary)


def test_run_beyond_precomputed_trace_falls_back_to_live_path():
    # The trace covers 30 min; running 60 min must keep going (live path)
    # and match an entirely-live run.
    duration, dt = 1.0 * HOURS, 10.0
    cell = am_1815()
    pc = precompute_conditions(cell, office_desk_24h(), 0.5 * HOURS, dt)
    fast = _make_sim(cell, IdealMPPT(), office_desk_24h(), precomputed=pc)
    live = _make_sim(cell, IdealMPPT(), office_desk_24h())
    _summaries_identical(fast.run(duration, dt=dt), live.run(duration, dt=dt))
