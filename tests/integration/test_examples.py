"""Integration: the example scripts run end to end.

The three fast examples execute fully; the two long ones (24-hour
multi-technique sweeps) are compile-checked and have their core loop
exercised in miniature elsewhere (test_comparison_repro).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "tracking efficiency" in out
        assert "net harvest" in out
        assert "AM-1815" in out

    def test_coldstart_demo(self):
        out = run_example("coldstart_demo.py", "500")
        assert "metrology wakes" in out
        assert "first PULSE" in out
        assert "converter released" in out

    def test_coldstart_demo_fails_gracefully_in_gloom(self):
        out = run_example("coldstart_demo.py", "2")
        assert "no cold start" in out

    def test_teg_harvester(self):
        out = run_example("teg_harvester.py")
        assert "TEG extension" in out
        assert "k = 0.5" in out


class TestLongExamplesCompile:
    @pytest.mark.parametrize("name", ["body_worn_sensor.py", "office_monitor.py", "adaptive_node.py"])
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)
