"""Integration: the E8 state-of-the-art comparison (coarse, fast variant).

The full bench runs 24 h at 10 s steps for nine techniques and three
scenarios; here we pin the *orderings* the paper argues with a coarse
60 s step on a single scenario per claim.
"""

import pytest

from repro.env.profiles import HOURS
from repro.experiments import comparison


@pytest.fixture(scope="module")
def desk_results():
    return comparison.run_comparison(
        duration=24.0 * HOURS,
        dt=60.0,
        scenarios=("office-desk",),
    )


class TestQuiescentTable:
    def test_proposed_is_cheapest_tracker(self):
        draws = {name: watts for name, _, watts in comparison.QUIESCENT_CLAIMS}
        trackers = {k: v for k, v in draws.items() if k not in ("no-MPPT [7]",)}
        assert min(trackers, key=trackers.get) == "proposed-S&H-FOCV"

    def test_orders_match_paper_citations(self):
        draws = {name: watts for name, _, watts in comparison.QUIESCENT_CLAIMS}
        assert (
            draws["proposed-S&H-FOCV"]
            < draws["fixed-voltage [8]"]
            < draws["pilot-cell [5]"]
            < draws["photodiode [6]"]
            < draws["periodic-uC-FOCV [4]"]
        )

    def test_render_mentions_all(self):
        text = comparison.render_quiescent()
        for name, _, _ in comparison.QUIESCENT_CLAIMS:
            assert name in text


class TestIndoorOrdering:
    def test_heavy_trackers_net_negative_indoors(self, desk_results):
        net = comparison.net_energy_by_scenario(desk_results)["office-desk"]
        for heavy in ("hill-climbing", "periodic-uC-FOCV", "photodiode-ref", "pilot-cell"):
            assert net[heavy] < 0.0, heavy

    def test_proposed_positive_indoors(self, desk_results):
        net = comparison.net_energy_by_scenario(desk_results)["office-desk"]
        assert net["proposed-S&H-FOCV"] > 0.0
        assert net["proposed-S&H-trimmed"] > 0.0

    def test_trimmed_beats_paper_trim_indoors(self, desk_results):
        # The R2-trim provision pays: trimming to the cell's k recovers
        # the margin the fixed 59.6 % prototype trim leaves.
        net = comparison.net_energy_by_scenario(desk_results)["office-desk"]
        assert net["proposed-S&H-trimmed"] > net["proposed-S&H-FOCV"]

    def test_nobody_beats_the_oracle(self, desk_results):
        net = comparison.net_energy_by_scenario(desk_results)["office-desk"]
        oracle = net["ideal-oracle"]
        for name, value in net.items():
            assert value <= oracle + 1e-9, name

    def test_render_contains_league_table(self, desk_results):
        text = comparison.render(desk_results)
        assert "office-desk" in text
        assert "proposed-S&H-FOCV" in text


class TestSubsetSelection:
    def test_technique_subset_respected(self):
        results = comparison.run_comparison(
            duration=1.0 * HOURS,
            dt=60.0,
            techniques=("ideal-oracle", "no-MPPT-direct"),
            scenarios=("office-desk",),
        )
        assert {r.technique for r in results} == {"ideal-oracle", "no-MPPT-direct"}

    def test_storage_and_thermal_optional(self):
        results = comparison.run_comparison(
            duration=1.0 * HOURS,
            dt=60.0,
            techniques=("ideal-oracle",),
            scenarios=("office-desk",),
            use_storage=False,
            use_thermal=False,
        )
        assert len(results) == 1
