"""Integration: Sec. II-B sampling-parameter analysis (E3) and Fig. 2 logs (E2).

The paper's numbers for a 1-minute hold period: worst-case mean Voc
error of 12.7 mV on the desk log and 24.1 mV on the semi-mobile log,
mapping to ~7.7 / 14.7 mV MPP-voltage errors and <1 % efficiency loss.
Our synthetic environments reproduce the *shape*: same order of
magnitude, desk < semi-mobile, <1 % loss, and error growing with the
hold period.
"""

import numpy as np
import pytest

from repro.experiments import fig2, sec2b


@pytest.fixture(scope="module")
def desk_log():
    return fig2.run_log("desk", dt=10.0)


@pytest.fixture(scope="module")
def mobile_log():
    return fig2.run_log("semi-mobile", dt=10.0)


class TestFig2Logs:
    def test_24_hours_recorded(self, desk_log):
        assert desk_log.times[-1] == pytest.approx(24 * 3600.0, abs=desk_log.dt)

    def test_dark_overnight(self, desk_log):
        overnight = desk_log.voc[desk_log.times < 4 * 3600.0]
        assert np.all(overnight < 0.5)

    def test_voc_in_cell_band_when_lit(self, desk_log):
        # Twilight produces intermediate values; the *working-day* Voc
        # sits in the Schott module's band.
        lit = desk_log.voc[desk_log.lux > 100.0]
        assert lit.size > 0
        assert np.all((lit > 5.0) & (lit < 8.5))

    def test_sunrise_event_detected(self, desk_log):
        events = fig2.detect_events(desk_log)
        assert events["sunrise"] is not None
        assert 5.0 * 3600 < events["sunrise"] < 8.0 * 3600

    def test_lights_off_event_detected(self, desk_log):
        events = fig2.detect_events(desk_log)
        assert events["lights_off"] is not None
        assert 18.0 * 3600 < events["lights_off"] < 23.0 * 3600

    def test_mobile_log_has_outdoor_excursion(self, mobile_log):
        lunch = (mobile_log.times > 12.2 * 3600) & (mobile_log.times < 12.8 * 3600)
        morning = (mobile_log.times > 10.0 * 3600) & (mobile_log.times < 11.0 * 3600)
        assert np.mean(mobile_log.lux[lunch]) > 10.0 * np.mean(mobile_log.lux[morning])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            fig2.run_log("submarine")


class TestSec2BAnalysis:
    def test_desk_error_matches_paper_magnitude(self, desk_log):
        result = sec2b.analyse_log(desk_log, period_seconds=60.0)
        # Paper: 12.7 mV.  Same order, single-digit-to-tens of mV.
        assert 3e-3 < result.mean_error_v < 40e-3

    def test_mobile_error_exceeds_desk(self, desk_log, mobile_log):
        desk = sec2b.analyse_log(desk_log, period_seconds=60.0)
        mobile = sec2b.analyse_log(mobile_log, period_seconds=60.0)
        assert mobile.mean_error_v > desk.mean_error_v

    def test_mobile_error_matches_paper_magnitude(self, mobile_log):
        result = sec2b.analyse_log(mobile_log, period_seconds=60.0)
        # Paper: 24.1 mV.
        assert 8e-3 < result.mean_error_v < 80e-3

    def test_mpp_error_is_k_fraction(self, desk_log):
        result = sec2b.analyse_log(desk_log, period_seconds=60.0, k=0.6)
        assert result.mpp_error_v == pytest.approx(0.6 * result.mean_error_v, rel=1e-9)

    def test_efficiency_loss_below_one_percent(self, desk_log, mobile_log):
        # The claim the >60 s hold period rests on.
        for log in (desk_log, mobile_log):
            result = sec2b.analyse_log(log, period_seconds=60.0)
            assert result.efficiency_loss < 0.01

    def test_error_grows_with_period(self, mobile_log):
        errors = sec2b.period_sweep(mobile_log, periods_seconds=(30.0, 300.0, 1800.0))
        assert errors[0] < errors[1] < errors[2]

    def test_render_has_both_scenarios(self, desk_log, mobile_log):
        text = sec2b.render(
            [sec2b.analyse_log(desk_log, 60.0), sec2b.analyse_log(mobile_log, 60.0)]
        )
        assert "desk" in text
        assert "semi-mobile" in text
