"""Golden traces for the shaded-string scenarios, across all three tiers.

Mirrors ``test_golden_traces.py`` for the heterogeneous-string
workload: a mismatched 4s AM-1815 string under the indoor edge-sweep
and the outdoor blob-occlusion shadow maps, frozen bit-for-bit from the
scalar engine.  Engine contracts are stricter than the plain-cell
goldens in one place: the scalar string model is literally a one-row
fleet stack, so *fleet is held bitwise*, not at an ulp tolerance.
The compiled tier is held to its mixed-LUT validated budget.

Re-baseline (after a reviewed numerical change)::

    pytest tests/integration/test_string_golden_traces.py --update-golden
"""

import json
import pathlib

import pytest

from repro.env.profiles import HOURS
from repro.experiments.comparison import run_comparison
from repro.pv.cells import am_1815
from repro.pv.string import CellString

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"
DURATION = 24.0 * HOURS
DT = 300.0
MISMATCH = (1.0, 0.9, 1.05, 0.85)
TECHNIQUES = (
    "ideal-oracle",
    "proposed-S&H-FOCV",
    "hill-climbing",
    "fixed-voltage",
    "no-MPPT-direct",
    "photodiode-ref",
)
#: label -> (scenario, shading spec)
STRING_SCENARIOS = {
    "indoor-edge-sweep": ("office-desk", "edge-sweep"),
    "outdoor-blob": ("outdoor", "blob:seed=3"),
}
SUMMARY_FIELDS = (
    "duration",
    "energy_ideal",
    "energy_at_cell",
    "energy_delivered",
    "energy_overhead",
    "energy_load",
    "final_storage_voltage",
)
ENERGY_FIELDS = ("energy_at_cell", "energy_delivered", "energy_overhead", "energy_load")

COMPILED_ENERGY_TOL = {"default": 1e-3, "hill-climbing": 2e-2}
COMPILED_VOLTAGE_TOL = {"default": 1e-3, "hill-climbing": 1e-2}


def golden_path(label: str) -> pathlib.Path:
    return GOLDEN_DIR / f"string_{label}.json"


def _string():
    return CellString(am_1815(), 4, mismatch=MISMATCH)


def run_label(label: str, engine: str):
    scenario, shading = STRING_SCENARIOS[label]
    results = run_comparison(
        cell=_string(),
        duration=DURATION,
        dt=DT,
        techniques=list(TECHNIQUES),
        scenarios=[scenario],
        engine=engine,
        shading=shading,
    )
    return {
        r.technique: {f: getattr(r.summary, f) for f in SUMMARY_FIELDS}
        for r in results
    }


def assert_matches_golden(engine, label, technique, measured, golden_fields):
    if engine in ("scalar", "fleet"):
        # Shared kernels: both tiers reproduce the fixtures bit-for-bit.
        for f, value in golden_fields.items():
            assert measured[f] == value, (
                f"{label}/{technique}/{f} ({engine}): golden {value!r} != "
                f"measured {measured[f]!r} (bitwise regression — if "
                "intentional, re-baseline with --update-golden)"
            )
        return
    etol = COMPILED_ENERGY_TOL.get(technique, COMPILED_ENERGY_TOL["default"])
    vtol = COMPILED_VOLTAGE_TOL.get(technique, COMPILED_VOLTAGE_TOL["default"])
    scale = max(abs(golden_fields["energy_ideal"]), 1e-9)
    assert measured["duration"] == golden_fields["duration"]
    assert measured["energy_ideal"] == pytest.approx(
        golden_fields["energy_ideal"], rel=1e-12, abs=1e-18
    ), f"{label}/{technique}: energy_ideal is replayed exactly, not interpolated"
    for f in ENERGY_FIELDS:
        err = abs(measured[f] - golden_fields[f]) / scale
        assert err <= etol, (
            f"{label}/{technique}/{f}: compiled error {err:.3e} exceeds "
            f"the declared budget {etol:.1e} (relative to ideal harvest)"
        )
    dv = abs(measured["final_storage_voltage"] - golden_fields["final_storage_voltage"])
    assert dv <= vtol, (
        f"{label}/{technique}: compiled final storage voltage off by "
        f"{dv:.3e} V (declared budget {vtol:.1e} V)"
    )


def write_golden(label: str, techniques) -> None:
    from repro.ckpt.atomic import atomic_write_json

    scenario, shading = STRING_SCENARIOS[label]
    GOLDEN_DIR.mkdir(exist_ok=True)
    atomic_write_json(
        golden_path(label),
        {
            "experiment": "string-comparison",
            "scenario": scenario,
            "shading": shading,
            "cell": f"4s AM-1815 mismatch={list(MISMATCH)}",
            "duration": DURATION,
            "dt": DT,
            "techniques": techniques,
        },
    )


@pytest.mark.parametrize("label", sorted(STRING_SCENARIOS))
@pytest.mark.parametrize("engine", ("scalar", "fleet", "compiled"))
def test_string_scenario_matches_golden(engine, label, update_golden):
    if update_golden:
        if engine != "scalar":
            pytest.skip("golden fixtures are written from the scalar engine")
        write_golden(label, run_label(label, "scalar"))
        pytest.skip("golden fixtures rewritten")
    path = golden_path(label)
    assert path.exists(), (
        f"missing golden fixture {path}; generate with --update-golden"
    )
    golden = json.loads(path.read_text())
    assert golden["duration"] == DURATION and golden["dt"] == DT
    measured = run_label(label, engine)
    assert set(golden["techniques"]) == set(measured)
    for technique, fields in golden["techniques"].items():
        assert_matches_golden(engine, label, technique, measured[technique], fields)
