"""Integration: Fig. 4 sampling-operation waveform (E4) and Fig. 1 curve (E1)."""

import numpy as np
import pytest

from repro.experiments import fig1, fig4


@pytest.fixture(scope="module")
def transient():
    return fig4.run_sampling_transient(lux=1000.0)


class TestFig4:
    def test_pulse_width_is_39ms(self, transient):
        assert transient.pulse_width == pytest.approx(39e-3, rel=0.05)

    def test_pv_disconnects_up_to_voc(self, transient):
        # During the pulse the module relaxes to (nearly) open circuit.
        assert transient.pv_peak == pytest.approx(transient.true_voc, rel=0.01)

    def test_pv_regulated_below_voc_before_pulse(self, transient):
        assert transient.pv_regulated < 0.75 * transient.true_voc

    def test_held_updates_toward_divided_voc(self, transient):
        expected = 0.298 * transient.true_voc
        assert transient.held_after == pytest.approx(expected, rel=0.02)

    def test_ripple_small_but_visible(self, transient):
        # "A small ripple may be observed" — millivolt scale, not volts.
        assert 0.1e-3 < transient.ripple < 50e-3

    def test_regulation_follows_half_alpha_rule(self, transient):
        assert transient.pv_regulated == pytest.approx(transient.held_before / 0.5, rel=0.03)

    def test_render_mentions_features(self, transient):
        text = fig4.render(transient)
        assert "PULSE width" in text
        assert "HELD_SAMPLE" in text


class TestFig1:
    @pytest.fixture(scope="class")
    def curves(self):
        return fig1.run_iv_curves()

    def test_covers_requested_intensities(self, curves):
        assert set(curves) == {200.0, 500.0, 1000.0, 2000.0}

    def test_current_monotone_decreasing(self, curves):
        for result in curves.values():
            assert np.all(np.diff(result.currents) <= 1e-12)

    def test_power_unimodal_with_marked_mpp(self, curves):
        r = curves[1000.0]
        peak_index = int(np.argmax(r.powers))
        assert 0 < peak_index < len(r.powers) - 1
        assert r.voltages[peak_index] == pytest.approx(r.mpp.voltage, abs=0.1)

    def test_asi_curve_shape(self, curves):
        # a-Si: soft knee, k in the paper's 0.6-0.8 band at bench lux.
        r = curves[1000.0]
        assert 0.55 < r.mpp.k < 0.85
        assert 0.3 < r.mpp.fill_factor < 0.7

    def test_render_includes_mpp_marker(self, curves):
        text = fig1.render(curves)
        assert "MPP dashed at" in text
