"""Service acceptance gates: SIGKILL crash-resume and SIGTERM drain.

The tentpole's two hard guarantees, exercised against the real server
process over real HTTP:

* SIGKILL the server mid-job, restart it on the same store, and the
  job is re-admitted, resumes from its last checkpoint, and finishes
  with a result **bitwise-identical** to an uninterrupted run.
* SIGTERM makes the server stop admissions, checkpoint its running
  jobs, persist the store, and exit 0.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.endurance import run_week
from repro.service.client import ServiceClient

DT = 20.0
DAYS = 2
CKPT_EVERY = 1800.0
ENDURANCE = {"kind": "endurance", "params": {"days": DAYS, "dt": DT}}


def _spawn_server(data_dir, jpath, extra=()):
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([src, env.get("PYTHONPATH", "")])
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--data-dir", str(data_dir),
            "--workers", "1",
            "--checkpoint-every", str(CKPT_EVERY),
            "--journal", str(jpath),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
    )
    line = proc.stdout.readline().decode()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    if not match:
        proc.kill()
        out, err = proc.communicate(timeout=30)
        raise AssertionError(f"no listening line: {line!r} / {err.decode()}")
    return proc, ServiceClient(match.group(1))


def _wait_for_file(pattern_dir, glob, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        hits = list(Path(pattern_dir).glob(glob))
        if hits:
            return hits[0]
        time.sleep(0.01)
    return None


@pytest.fixture
def clean_result():
    # The ground truth the resumed job must match bitwise.
    return run_week(dt=DT, seed=4, days=DAYS).to_dict()


class TestSigkillRestartResume:
    def test_killed_server_restarts_and_resumes_bitwise(
        self, tmp_path, clean_result
    ):
        data_dir = tmp_path / "jobs"
        jpath = tmp_path / "service.jsonl"

        proc, client = _spawn_server(data_dir, jpath)
        try:
            job = client.submit(ENDURANCE)
            job_id = job["job_id"]
            # SIGKILL as soon as the first job checkpoint lands — the
            # job is mid-run, the store says "running".
            assert _wait_for_file(data_dir, "*.ckpt.json"), "no checkpoint"
        finally:
            proc.kill()
            proc.communicate(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        record = json.loads((data_dir / f"{job_id}.job.json").read_text())
        assert record["job"]["state"] in ("running", "queued")

        proc2, client2 = _spawn_server(data_dir, jpath)
        try:
            done = client2.wait(job_id, timeout=240)
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.communicate(timeout=120)

        # Re-admitted, resumed from the checkpoint, finished bitwise.
        assert done["state"] == "succeeded"
        assert done["recoveries"] == 1
        assert done["resume_from"], "job re-ran from scratch, not resumed"
        assert json.dumps(done["result"], sort_keys=True) == json.dumps(
            clean_result, sort_keys=True
        )

        # The journal shows the recovery: a resumed job-submit from the
        # second server pid and a mid-run checkpoint-restore.
        events = [
            json.loads(line)
            for line in jpath.read_text().splitlines()
            if line.strip()
        ]
        recovered = [e for e in events if e["event"] == "job-submit"
                     and e.get("recovered")]
        assert len(recovered) == 1
        assert recovered[0]["resume_from"]
        assert any(e["event"] == "checkpoint-restore" for e in events)
        # Exactly one run-end: the killed attempt never finished.
        by_kind = [e for e in events if e["event"] == "run-end"
                   and e.get("kind") == "endurance"]
        assert len(by_kind) == 1


class TestSigtermDrainsServer:
    def test_sigterm_drains_running_job_and_exits_zero(self, tmp_path):
        data_dir = tmp_path / "jobs"
        jpath = tmp_path / "service.jsonl"
        proc, client = _spawn_server(data_dir, jpath)
        try:
            job = client.submit(ENDURANCE)
            assert _wait_for_file(data_dir, "*.ckpt.json"), "no checkpoint"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)

        assert proc.returncode == 0, stderr.decode()
        assert b"drained cleanly" in stdout

        # The interrupted job was checkpointed and re-queued for the
        # next server instance, attempt refunded.
        record = json.loads(
            (data_dir / f"{job['job_id']}.job.json").read_text()
        )["job"]
        assert record["state"] == "queued"
        assert record["attempts"] == 0
        assert record["resume_from"]

    def test_idle_server_drains_immediately(self, tmp_path):
        proc, client = _spawn_server(tmp_path / "jobs", tmp_path / "j.jsonl")
        assert client.healthy()
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 0, stderr.decode()
        assert b"drained cleanly" in stdout
