"""Integration: the extension experiments (E11 Monte Carlo, E12 endurance,
E13 environment diversity) and the weekly environment behind E12."""

import pytest

from repro.env.profiles import HOURS
from repro.env.scenarios import weekly_office
from repro.experiments import endurance, spectra


class TestWeeklyEnvironment:
    def test_weekday_has_room_lights(self):
        week = weekly_office()
        # Wednesday (day 2) at 10:00: room lights + daylight.
        wednesday_morning = week(2 * 24 * HOURS + 10 * HOURS)
        assert wednesday_morning > 300.0

    def test_weekend_is_daylight_only(self):
        week = weekly_office()
        saturday_morning = week(5 * 24 * HOURS + 10 * HOURS)
        wednesday_morning = week(2 * 24 * HOURS + 10 * HOURS)
        assert saturday_morning < 0.7 * wednesday_morning

    def test_weekend_evening_dark(self):
        week = weekly_office()
        # Saturday 22:00: no lights-on schedule, sun down.
        assert week(5 * 24 * HOURS + 22 * HOURS) == 0.0

    def test_periodic_beyond_week(self):
        # The weekday/weekend schedule repeats weekly (the noise texture
        # differs, so compare regimes rather than samples).
        week = weekly_office()
        first = week(10.0 * HOURS)
        second = week(7 * 24 * HOURS + 10.0 * HOURS)
        assert second == pytest.approx(first, rel=0.25)


class TestEndurance:
    @pytest.fixture(scope="class")
    def result(self):
        return endurance.run_week(dt=30.0)

    def test_survives_the_week(self, result):
        assert result.survived

    def test_energy_neutral(self, result):
        assert result.energy_neutral

    def test_weekend_trough_visible(self, result):
        weekday_harvest = result.days[0].harvested_j
        weekend_harvest = result.days[5].harvested_j
        assert weekend_harvest < 0.5 * weekday_harvest

    def test_reports_continue_through_weekend(self, result):
        assert result.days[5].reports > 0
        assert result.days[6].reports > 0

    def test_never_hibernates_with_default_sizing(self, result):
        assert not any(d.hibernated for d in result.days)

    def test_render(self, result):
        text = endurance.render(result)
        assert "Mon" in text and "Sun" in text
        assert "survived: yes" in text

    def test_tiny_store_fails_gracefully(self):
        # With a badly undersized store the run completes and reports the
        # failure honestly rather than crashing.
        result = endurance.run_week(storage_farads=0.05, initial_voltage=2.6, dt=60.0)
        assert isinstance(result.survived, bool)


class TestSpectraDiversity:
    @pytest.fixture(scope="class")
    def points(self):
        return spectra.run_spectra()

    def test_covers_all_default_environments(self, points):
        names = {p.environment for p in points}
        assert "office-fluorescent" in names
        assert "outdoor-sun" in names

    def test_focv_perfect_where_trimmed(self, points):
        office = next(p for p in points if p.environment == "office-fluorescent")
        assert office.focv_efficiency > 0.99

    def test_mixed_use_trim_robust_outdoors(self, points):
        sun = next(p for p in points if p.environment == "outdoor-sun")
        assert sun.paper_trim_efficiency > 0.9

    def test_outdoor_power_dominates(self, points):
        sun = next(p for p in points if p.environment == "outdoor-sun")
        office = next(p for p in points if p.environment == "office-fluorescent")
        assert sun.pmpp > 10.0 * office.pmpp

    def test_render(self, points):
        text = spectra.render(points)
        assert "FOCV@59.6" in text
