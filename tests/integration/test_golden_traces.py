"""Golden-trace regression: the 24 h comparison is frozen bit-for-bit.

``tests/golden/comparison_<scenario>.json`` holds the
:class:`~repro.sim.quasistatic.HarvestSummary` of every technique for
the canonical 24-hour, dt=60 s comparison.  Any PR that changes these
numbers — a perf optimisation that was supposed to be equivalence-
preserving, a refactor that accidentally reorders floating-point
operations — fails here instead of shipping a silent behaviour change.

JSON float serialisation uses ``repr`` round-tripping, so equality
below is exact binary equality, not approximate.

Every engine tier is held to the same fixtures, each at its declared
tolerance: ``scalar`` bit-for-bit (it produced the fixtures), ``fleet``
at a-few-ulp accumulation tolerance, ``compiled`` within its power
LUT's declared error budget (hill climbing looser — its perturb/observe
probes feed back through the table, so trajectory deviations compound
before self-correcting).

To intentionally re-baseline (after a *reviewed* numerical change)::

    pytest tests/integration/test_golden_traces.py --update-golden
"""

import json
import pathlib

import pytest

from repro.env.profiles import HOURS
from repro.experiments.comparison import run_comparison

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"
DURATION = 24.0 * HOURS
DT = 60.0
SCENARIOS = ("office-desk", "semi-mobile", "outdoor")
SUMMARY_FIELDS = (
    "duration",
    "energy_ideal",
    "energy_at_cell",
    "energy_delivered",
    "energy_overhead",
    "energy_load",
    "final_storage_voltage",
)
ENERGY_FIELDS = ("energy_at_cell", "energy_delivered", "energy_overhead", "energy_load")

FLEET_RTOL = 1e-12
# Compiled-tier declared tolerances: energies relative to the lane's
# ideal harvest, final voltage absolute.  The defaults are the LUT's
# declared budget (measured worst case ~1.1e-4 — see docs/performance.md);
# hill climbing is feedback-coupled through the table (measured ~4.5e-3).
COMPILED_ENERGY_TOL = {"default": 1e-3, "hill-climbing": 2e-2}
COMPILED_VOLTAGE_TOL = {"default": 1e-3, "hill-climbing": 1e-2}


def golden_path(scenario: str) -> pathlib.Path:
    return GOLDEN_DIR / f"comparison_{scenario}.json"


def summaries_by_scenario(engine: str = "scalar"):
    """One full comparison run, pivoted to {scenario: {technique: fields}}."""
    results = run_comparison(duration=DURATION, dt=DT, engine=engine)
    pivot = {}
    for r in results:
        pivot.setdefault(r.scenario, {})[r.technique] = {
            field: getattr(r.summary, field) for field in SUMMARY_FIELDS
        }
    return pivot


def assert_matches_golden(engine, scenario, technique, measured, golden_fields):
    """Per-engine equivalence contract against one golden lane."""
    if engine == "scalar":
        for field, value in golden_fields.items():
            assert measured[field] == value, (
                f"{scenario}/{technique}/{field}: "
                f"golden {value!r} != measured {measured[field]!r} "
                "(bitwise regression — if intentional, re-baseline "
                "with --update-golden)"
            )
        return
    if engine == "fleet":
        for field, value in golden_fields.items():
            assert measured[field] == pytest.approx(value, rel=FLEET_RTOL, abs=1e-18), (
                f"{scenario}/{technique}/{field}: fleet diverged beyond ulp "
                f"tolerance (golden {value!r}, measured {measured[field]!r})"
            )
        return
    # compiled: the declared-budget contract
    etol = COMPILED_ENERGY_TOL.get(technique, COMPILED_ENERGY_TOL["default"])
    vtol = COMPILED_VOLTAGE_TOL.get(technique, COMPILED_VOLTAGE_TOL["default"])
    scale = max(abs(golden_fields["energy_ideal"]), 1e-9)
    assert measured["duration"] == golden_fields["duration"]
    assert measured["energy_ideal"] == pytest.approx(
        golden_fields["energy_ideal"], rel=FLEET_RTOL, abs=1e-18
    ), f"{scenario}/{technique}: energy_ideal is replayed exactly, not interpolated"
    for field in ENERGY_FIELDS:
        err = abs(measured[field] - golden_fields[field]) / scale
        assert err <= etol, (
            f"{scenario}/{technique}/{field}: compiled error {err:.3e} exceeds "
            f"the declared budget {etol:.1e} (relative to ideal harvest)"
        )
    dv = abs(measured["final_storage_voltage"] - golden_fields["final_storage_voltage"])
    assert dv <= vtol, (
        f"{scenario}/{technique}: compiled final storage voltage off by "
        f"{dv:.3e} V (declared budget {vtol:.1e} V)"
    )


def write_golden(pivot) -> None:
    from repro.ckpt.atomic import atomic_write_json

    GOLDEN_DIR.mkdir(exist_ok=True)
    for scenario, techniques in pivot.items():
        payload = {
            "experiment": "comparison",
            "scenario": scenario,
            "duration": DURATION,
            "dt": DT,
            "techniques": techniques,
        }
        atomic_write_json(golden_path(scenario), payload)


@pytest.fixture(scope="module", params=("scalar", "fleet", "compiled"))
def computed(request):
    return request.param, summaries_by_scenario(engine=request.param)


class TestGoldenComparison:
    def test_all_scenarios_match_golden(self, computed, update_golden):
        engine, pivot = computed
        if update_golden:
            if engine != "scalar":
                pytest.skip("golden fixtures are written from the scalar engine")
            write_golden(pivot)
            pytest.skip("golden fixtures rewritten")
        for scenario in SCENARIOS:
            path = golden_path(scenario)
            assert path.exists(), (
                f"missing golden fixture {path}; generate with --update-golden"
            )
            golden = json.loads(path.read_text())
            assert golden["duration"] == DURATION and golden["dt"] == DT
            assert set(golden["techniques"]) == set(pivot[scenario]), scenario
            for technique, fields in golden["techniques"].items():
                assert_matches_golden(
                    engine, scenario, technique, pivot[scenario][technique], fields
                )

    @pytest.mark.parametrize("engine", ("scalar", "fleet", "compiled"))
    def test_resilience_clean_campaign_reproduces_golden(self, engine, update_golden):
        """The resilience harness's no-fault run IS the golden comparison.

        Scalar reproduces the golden bits exactly; fleet and compiled
        are held to the same fixtures at their declared tolerances (the
        non-scalar tiers only batch the S&H lanes — the rest of the
        techniques take the scalar walk inside the harness).
        """
        from repro.experiments.resilience import run_resilience

        if update_golden:
            pytest.skip("golden fixtures being rewritten")
        report = run_resilience(
            duration=DURATION,
            dt=DT,
            campaigns=["clean"],
            include_recovery=False,
            include_coldstart=False,
            engine=engine,
        )
        for cell in report.cells:
            golden = json.loads(golden_path(cell.scenario).read_text())
            expected = golden["techniques"][cell.technique]
            measured = {f: getattr(cell.summary, f) for f in SUMMARY_FIELDS}
            lane_engine = engine
            if engine != "scalar" and not cell.technique.startswith("proposed-S&H"):
                lane_engine = "scalar"  # non-S&H lanes take the scalar walk
            assert_matches_golden(
                lane_engine, cell.scenario, cell.technique, measured, expected
            )
