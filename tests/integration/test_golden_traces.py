"""Golden-trace regression: the 24 h comparison is frozen bit-for-bit.

``tests/golden/comparison_<scenario>.json`` holds the
:class:`~repro.sim.quasistatic.HarvestSummary` of every technique for
the canonical 24-hour, dt=60 s comparison.  Any PR that changes these
numbers — a perf optimisation that was supposed to be equivalence-
preserving, a refactor that accidentally reorders floating-point
operations — fails here instead of shipping a silent behaviour change.

JSON float serialisation uses ``repr`` round-tripping, so equality
below is exact binary equality, not approximate.

To intentionally re-baseline (after a *reviewed* numerical change)::

    pytest tests/integration/test_golden_traces.py --update-golden
"""

import json
import pathlib

import pytest

from repro.env.profiles import HOURS
from repro.experiments.comparison import run_comparison

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"
DURATION = 24.0 * HOURS
DT = 60.0
SCENARIOS = ("office-desk", "semi-mobile", "outdoor")
SUMMARY_FIELDS = (
    "duration",
    "energy_ideal",
    "energy_at_cell",
    "energy_delivered",
    "energy_overhead",
    "energy_load",
    "final_storage_voltage",
)


def golden_path(scenario: str) -> pathlib.Path:
    return GOLDEN_DIR / f"comparison_{scenario}.json"


def summaries_by_scenario():
    """One full comparison run, pivoted to {scenario: {technique: fields}}."""
    results = run_comparison(duration=DURATION, dt=DT)
    pivot = {}
    for r in results:
        pivot.setdefault(r.scenario, {})[r.technique] = {
            field: getattr(r.summary, field) for field in SUMMARY_FIELDS
        }
    return pivot


def write_golden(pivot) -> None:
    from repro.ckpt.atomic import atomic_write_json

    GOLDEN_DIR.mkdir(exist_ok=True)
    for scenario, techniques in pivot.items():
        payload = {
            "experiment": "comparison",
            "scenario": scenario,
            "duration": DURATION,
            "dt": DT,
            "techniques": techniques,
        }
        atomic_write_json(golden_path(scenario), payload)


@pytest.fixture(scope="module")
def computed():
    return summaries_by_scenario()


class TestGoldenComparison:
    def test_all_scenarios_match_golden(self, computed, update_golden):
        if update_golden:
            write_golden(computed)
            pytest.skip("golden fixtures rewritten")
        for scenario in SCENARIOS:
            path = golden_path(scenario)
            assert path.exists(), (
                f"missing golden fixture {path}; generate with --update-golden"
            )
            golden = json.loads(path.read_text())
            assert golden["duration"] == DURATION and golden["dt"] == DT
            assert set(golden["techniques"]) == set(computed[scenario]), scenario
            for technique, fields in golden["techniques"].items():
                measured = computed[scenario][technique]
                for field, value in fields.items():
                    assert measured[field] == value, (
                        f"{scenario}/{technique}/{field}: "
                        f"golden {value!r} != measured {measured[field]!r} "
                        "(bitwise regression — if intentional, re-baseline "
                        "with --update-golden)"
                    )

    def test_resilience_clean_campaign_reproduces_golden(self, update_golden):
        """The resilience harness's no-fault run IS the golden comparison."""
        from repro.experiments.resilience import run_resilience

        if update_golden:
            pytest.skip("golden fixtures being rewritten")
        # Pinned to the scalar engine: the golden traces encode the
        # scalar walk's exact bits.  The fleet engine is held to the
        # scalar result separately (tests/unit/test_fleet.py,
        # test_resilience.py) at a-few-ulp tolerance.
        report = run_resilience(
            duration=DURATION,
            dt=DT,
            campaigns=["clean"],
            include_recovery=False,
            include_coldstart=False,
            engine="scalar",
        )
        for cell in report.cells:
            golden = json.loads(golden_path(cell.scenario).read_text())
            expected = golden["techniques"][cell.technique]
            for field, value in expected.items():
                assert getattr(cell.summary, field) == value, (
                    f"clean campaign diverged from golden at "
                    f"{cell.scenario}/{cell.technique}/{field}"
                )
