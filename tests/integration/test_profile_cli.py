"""E17: `python -m repro profile <experiment>` end-to-end.

One instrumented comparison slice long enough to reach daylight (the
scenarios start at midnight, so a too-short run never exercises the MPP
path) must produce all three export formats with nonzero solver, cache,
and per-technique span data — the acceptance bar for the observability
layer.
"""

import json

import pytest

import repro.obs as obs
from repro import cli


@pytest.fixture(autouse=True)
def _clean_global_obs():
    obs.disable()
    obs.REGISTRY.reset()
    obs.TRACER.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()
    obs.TRACER.reset()


@pytest.fixture(scope="module")
def profile_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("profile")
    exit_code = cli.main(
        ["profile", "comparison", "--hours", "10", "--out", str(out)]
    )
    return exit_code, out


class TestProfileCommand:
    def test_exit_code_and_artifacts(self, profile_run):
        exit_code, out = profile_run
        assert exit_code == 0
        for suffix in (".json", ".prom", ".folded"):
            assert (out / f"profile_comparison{suffix}").exists()

    def test_json_report_has_nonzero_solver_and_cache(self, profile_run):
        _, out = profile_run
        report = json.loads((out / "profile_comparison.json").read_text())
        values = {m["name"]: m.get("value", 0) for m in report["metrics"]}
        assert values["solver.lambertw_calls"] > 0
        assert values["solver.mpp_iterations"] > 0
        assert values["pv.cache.hits"] > 0
        assert values["pv.cache.misses"] > 0

    def test_json_report_trace_has_per_technique_spans(self, profile_run):
        _, out = profile_run
        report = json.loads((out / "profile_comparison.json").read_text())

        found = []

        def walk(node):
            if node["name"].startswith("technique:"):
                found.append(node)
            for child in node.get("children", ()):
                walk(child)

        walk(report["trace"])
        assert len(found) >= 9  # nine techniques, three scenarios
        assert all(n["total_s"] > 0.0 for n in found)

    def test_prometheus_text_scrapeable(self, profile_run):
        _, out = profile_run
        text = (out / "profile_comparison.prom").read_text()
        assert "# TYPE repro_solver_lambertw_calls_total counter" in text
        assert "repro_solver_lambertw_calls_total 0" not in text

    def test_collapsed_stacks_carry_technique_frames(self, profile_run):
        _, out = profile_run
        folded = (out / "profile_comparison.folded").read_text()
        technique_lines = [l for l in folded.splitlines() if "technique:" in l]
        assert technique_lines
        for line in technique_lines:
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0

    def test_profile_leaves_observability_disabled(self, profile_run):
        assert not obs.is_enabled()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["profile", "not-an-experiment"])
