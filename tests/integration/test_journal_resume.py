"""Journal integration: SIGKILL-then-resume telemetry replay.

The observability acceptance gate: kill an endurance run mid-flight
(SIGKILL — nothing cleans up, exactly like an OOM kill), resume it from
its checkpoint with the same journal attached, and replay the combined
journal.  The replayed state must show *cumulative* progress at least
the pre-kill value and exactly one run-end event — the killed attempt
never reached its run-end, and the estimator's monotonic counters plus
the resumed run-start's ``resumed_steps`` stitch the two attempts into
one run.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.experiments.endurance import run_week
from repro.obs import journal
from repro.obs.progress import replay_journal

DT = 60.0
DAYS = 1
CKPT_EVERY = 4.0 * 3600.0

_CHILD = """\
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.experiments.endurance import run_week

def kill_after(count, path):
    if count >= 2:
        os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no atexit

run_week(dt={dt!r}, days={days!r}, checkpoint_path={ckpt!r},
         checkpoint_every={every!r}, on_checkpoint=kill_after)
raise SystemExit("should have been killed")
"""


def _env_with_journal(path):
    env = dict(os.environ, REPRO_JOURNAL=str(path))
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join([src, env.get("PYTHONPATH", "")])
    return env


class TestSigkillJournalReplay:
    def test_killed_then_resumed_run_replays_cumulatively(self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        ckpt = str(tmp_path / "killed.ckpt.json")
        jpath = tmp_path / "run.jsonl"
        script = _CHILD.format(src=src, dt=DT, days=DAYS, ckpt=ckpt, every=CKPT_EVERY)

        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            timeout=600,
            env=_env_with_journal(jpath),
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        # The journal survived the kill: run-start, progress, checkpoint
        # saves — and no run-end (the run never completed).
        killed = replay_journal(jpath)
        assert killed.run_start_count == 1
        assert killed.run_end_count == 0
        assert not killed.finished
        assert killed.checkpoint_saves >= 2
        pre_kill = killed.steps_done
        assert pre_kill > 0

        # Resume in-process with the same journal appended to.
        journal.enable_journal(jpath)
        try:
            resumed = run_week(dt=DT, days=DAYS, resume_from=ckpt)
        finally:
            journal.disable_journal()
        assert resumed.to_dict() == run_week(dt=DT, days=DAYS).to_dict()

        replay = replay_journal(jpath)
        assert replay.steps_done >= pre_kill       # cumulative, never less
        assert replay.run_start_count == 2          # killed + resumed
        assert replay.run_end_count == 1            # only the resume ended
        assert replay.finished
        assert replay.checkpoint_restores == 1
        assert replay.fraction == 1.0
        total = int(DAYS * 24 * 3600 / DT)
        assert replay.steps_done == total

        # The resumed run-start declares where it picked up.
        events = journal.read_journal(jpath)
        starts = [e for e in events if e["event"] == journal.RUN_START]
        assert starts[1]["resumed_steps"] > 0
        # Two processes wrote the file; every line parsed cleanly.
        assert len({e["pid"] for e in events}) == 2


class TestCliJournalSmoke:
    def test_cli_journal_and_progress_flags(self, tmp_path, capsys):
        from repro.cli import main

        jpath = tmp_path / "cli.jsonl"
        assert main([
            "endurance", "--days", "1", "--dt", "600",
            "--journal", str(jpath),
        ]) == 0
        capsys.readouterr()
        replay = replay_journal(jpath)
        assert replay.kind == "endurance"
        assert replay.finished and replay.run_end_count == 1
        assert replay.fraction == 1.0
