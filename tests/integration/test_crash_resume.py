"""Crash-safety integration: interrupted runs resume bitwise-identically.

The hard gate of the checkpoint subsystem: a run that is killed between
checkpoints and resumed must produce *exactly* the result of an
uninterrupted run — not approximately, bitwise.  Three layers are
exercised:

* in-process interruption (an ``on_checkpoint`` hook that raises),
* a subprocess that SIGKILLs itself mid-run (nothing gets to clean up,
  exactly like an OOM kill or power loss),
* the ``python -m repro ... --checkpoint/--resume`` CLI path.
"""

import json
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.montecarlo import run_sample_hold_montecarlo
from repro.ckpt import load_checkpoint
from repro.errors import CheckpointError
from repro.experiments.endurance import run_week
from repro.experiments.resilience import run_resilience

DT = 60.0
DAYS = 1
CKPT_EVERY = 4.0 * 3600.0


class _StopAfter(Exception):
    """Injected interruption: raised out of the Nth checkpoint hook."""


def _interrupt_after(n):
    def hook(count, path):
        if count >= n:
            raise _StopAfter(f"interrupted after checkpoint {count}")

    return hook


class TestEnduranceResume:
    def test_interrupted_run_resumes_bitwise_identical(self, tmp_path):
        reference = run_week(dt=DT, days=DAYS)

        ckpt = str(tmp_path / "week.ckpt.json")
        with pytest.raises(_StopAfter):
            run_week(
                dt=DT,
                days=DAYS,
                checkpoint_path=ckpt,
                checkpoint_every=CKPT_EVERY,
                on_checkpoint=_interrupt_after(2),
            )
        resumed = run_week(
            dt=DT,
            days=DAYS,
            checkpoint_path=ckpt,
            checkpoint_every=CKPT_EVERY,
            resume_from=ckpt,
        )
        # Bitwise, not approx: the resumed run IS the reference run.
        assert resumed.to_dict() == reference.to_dict()

    def test_resume_refuses_mismatched_spec(self, tmp_path):
        ckpt = str(tmp_path / "week.ckpt.json")
        with pytest.raises(_StopAfter):
            run_week(
                dt=DT,
                days=DAYS,
                checkpoint_path=ckpt,
                checkpoint_every=CKPT_EVERY,
                on_checkpoint=_interrupt_after(1),
            )
        with pytest.raises(CheckpointError, match="seed"):
            run_week(dt=DT, days=DAYS, seed=99, resume_from=ckpt)

    def test_checkpoint_file_is_valid_envelope(self, tmp_path):
        ckpt = str(tmp_path / "week.ckpt.json")
        with pytest.raises(_StopAfter):
            run_week(
                dt=DT,
                days=DAYS,
                checkpoint_path=ckpt,
                checkpoint_every=CKPT_EVERY,
                on_checkpoint=_interrupt_after(1),
            )
        envelope = load_checkpoint(ckpt, kind="endurance")
        assert envelope["spec"]["dt"] == DT
        assert "sim" in envelope["state"] and "scheduler" in envelope["state"]


_CHILD = """\
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.experiments.endurance import run_week

def kill_after(count, path):
    if count >= 2:
        os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no atexit

run_week(dt={dt!r}, days={days!r}, checkpoint_path={ckpt!r},
         checkpoint_every={every!r}, on_checkpoint=kill_after)
raise SystemExit("should have been killed")
"""


class TestSigkillResume:
    def test_sigkilled_subprocess_resumes_bitwise_identical(self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        ckpt = str(tmp_path / "killed.ckpt.json")
        script = _CHILD.format(src=src, dt=DT, days=DAYS, ckpt=ckpt, every=CKPT_EVERY)
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, timeout=600
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        # The atomically-written checkpoint survived the kill intact.
        envelope = load_checkpoint(ckpt, kind="endurance")
        assert envelope["meta"]["sim_time"] > 0.0

        resumed = run_week(dt=DT, days=DAYS, resume_from=ckpt)
        reference = run_week(dt=DT, days=DAYS)
        assert resumed.to_dict() == reference.to_dict()


class TestResilienceResume:
    KWARGS = dict(
        duration=2.0 * 3600.0,
        dt=300.0,
        techniques=["proposed-S&H-trimmed", "hill-climbing"],
        scenarios=["office-desk"],
        campaigns=["clean", "light-dropout"],
        include_recovery=False,
        include_coldstart=False,
    )

    def test_truncated_checkpoint_resumes_identically(self, tmp_path):
        reference = run_resilience(**self.KWARGS)

        ckpt = tmp_path / "res.ckpt.json"
        run_resilience(**self.KWARGS, checkpoint_path=str(ckpt))
        # Simulate a crash partway: keep only the first finished batch.
        envelope = json.loads(ckpt.read_text())
        done = envelope["state"]["batches"]
        envelope["state"]["batches"] = dict(list(done.items())[:1])
        ckpt.write_text(json.dumps(envelope))

        resumed = run_resilience(
            **self.KWARGS, checkpoint_path=str(ckpt), resume_from=str(ckpt)
        )
        assert [c.to_dict() for c in resumed.cells] == [
            c.to_dict() for c in reference.cells
        ]


class TestMonteCarloResume:
    def test_partial_chunks_resume_identically(self, tmp_path):
        reference = run_sample_hold_montecarlo(boards=40, workers=2)

        ckpt = tmp_path / "mc.ckpt.json"
        run_sample_hold_montecarlo(boards=40, workers=2, checkpoint_path=str(ckpt))
        envelope = json.loads(ckpt.read_text())
        chunks = envelope["state"]["chunks"]
        kept = {k: chunks[k] for k in list(chunks)[: len(chunks) // 2]}
        envelope["state"]["chunks"] = kept
        ckpt.write_text(json.dumps(envelope))

        resumed = run_sample_hold_montecarlo(
            boards=40, workers=2, checkpoint_path=str(ckpt), resume_from=str(ckpt)
        )
        assert np.array_equal(resumed.ratios, reference.ratios)


class TestCliResume:
    def test_cli_checkpoint_then_resume(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = str(tmp_path / "cli.ckpt.json")
        assert main([
            "endurance", "--days", "1", "--dt", "120",
            "--checkpoint", ckpt, "--checkpoint-every", "21600",
        ]) == 0
        full_output = capsys.readouterr().out
        assert load_checkpoint(ckpt, kind="endurance")

        assert main([
            "endurance", "--days", "1", "--dt", "120", "--resume", ckpt,
        ]) == 0
        resumed_output = capsys.readouterr().out
        # Resuming from the final checkpoint replays the tail of the run
        # and renders the identical artefact.
        assert resumed_output == full_output
