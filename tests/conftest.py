"""Shared fixtures for the repro test suite."""

import pytest

from repro.core.config import PlatformConfig
from repro.pv.cells import am_1815, generic_csi, schott_1116929


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-trace fixtures in tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request):
    """Whether this run should rewrite the golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def am1815():
    """The paper's system-test cell."""
    return am_1815()


@pytest.fixture
def schott():
    """The paper's Fig. 1 / Fig. 2 cell."""
    return schott_1116929()


@pytest.fixture
def csi():
    """A crystalline comparator cell."""
    return generic_csi()


@pytest.fixture
def prototype_config():
    """A fresh paper-prototype platform configuration."""
    return PlatformConfig.paper_prototype()
