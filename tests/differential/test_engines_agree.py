"""Differential tests: every engine tier, one spec, declared tolerances.

Fixed specs pin the contracts the repo's acceptance criteria name —
scalar<->fleet *bitwise* on shaded string runs (including under fault
campaigns) and compiled within its LUT budget — while Hypothesis draws
random spec corners (techniques x scenarios x string configs x shading)
so the equivalence story is exercised beyond the hand-picked cases.

Runtime discipline: every spec runs a coarse 24 h day (dt >= 20 min —
the scenarios are dark at t=0, so shorter windows would compare zeros)
and Hypothesis example counts are small; this suite is a smoke layer,
not a benchmark.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.differential.harness import (
    DifferentialSpec,
    Tolerances,
    assert_engines_agree,
)

_CHEAP_TECHNIQUES = (
    "proposed-S&H-FOCV",
    "fixed-voltage",
    "no-MPPT-direct",
    "hill-climbing",
)


class TestFixedSpecs:
    def test_plain_cell_all_engines(self):
        assert_engines_agree(
            DifferentialSpec(
                techniques=("proposed-S&H-FOCV", "fixed-voltage", "hill-climbing")
            )
        )

    def test_shaded_string_all_engines(self):
        """The tentpole contract: a mismatched, shaded 4s string agrees
        bitwise between scalar and fleet, and within the LUT budget on
        the compiled tier."""
        assert_engines_agree(
            DifferentialSpec(
                n_cells=4,
                mismatch=(1.0, 0.9, 1.05, 0.85),
                shading="edge-sweep",
                techniques=("proposed-S&H-FOCV", "fixed-voltage", "hill-climbing"),
            ),
            tols=Tolerances(fleet_rtol=0.0),
        )

    def test_faulted_string_scalar_fleet_bitwise(self):
        """Fault campaigns on a shaded string: scalar<->fleet bitwise."""
        assert_engines_agree(
            DifferentialSpec(
                experiment="resilience",
                n_cells=3,
                mismatch=(1.0, 0.8, 1.1),
                shading="venetian",
                scenario="office-desk",
                techniques=("proposed-S&H-FOCV", "fixed-voltage"),
                campaigns=("light-dropout",),
                seed=7,
            ),
            tols=Tolerances(fleet_rtol=0.0),
            engines=("scalar", "fleet"),
        )

    def test_faulted_string_compiled_within_budget(self):
        assert_engines_agree(
            DifferentialSpec(
                experiment="resilience",
                n_cells=3,
                mismatch=(1.0, 0.8, 1.1),
                shading="venetian",
                scenario="office-desk",
                techniques=("proposed-S&H-FOCV",),
                campaigns=("light-dropout",),
                seed=7,
            ),
            engines=("scalar", "compiled"),
        )

    def test_tolerance_violation_is_reported_per_field(self):
        """The harness fails loudly, naming lane and field."""
        spec = DifferentialSpec(techniques=("proposed-S&H-FOCV",))
        with pytest.raises(AssertionError) as excinfo:
            assert_engines_agree(
                spec,
                tols=Tolerances(compiled_energy_rtol=1e-30, compiled_voltage_atol=0.0),
                engines=("scalar", "compiled"),
            )
        assert "declared budget" in str(excinfo.value)
        assert "proposed-S&H-FOCV" in str(excinfo.value)


# One random spec corner: scenario, technique subset, string geometry,
# shading pattern.  Plain cells (n_cells=1) take no shading, matching
# the experiment surface's contract.
_spec = st.builds(
    lambda scenario, techniques, n_cells, mismatch, shading: DifferentialSpec(
        scenario=scenario,
        techniques=tuple(sorted(techniques)),
        n_cells=n_cells,
        mismatch=tuple(mismatch[:n_cells]) if n_cells > 1 else (),
        shading=shading if n_cells > 1 else None,
    ),
    st.sampled_from(("office-desk", "semi-mobile", "outdoor")),
    st.sets(st.sampled_from(_CHEAP_TECHNIQUES), min_size=1, max_size=2),
    st.sampled_from((1, 2, 4)),
    st.lists(
        st.floats(min_value=0.5, max_value=1.1), min_size=4, max_size=4
    ),
    st.sampled_from(
        (None, "edge-sweep", "venetian:depth=0.6", "blob:seed=5", "edge-sweep:depth=0.9")
    ),
)


class TestGeneratedSpecs:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(_spec)
    def test_random_spec_agrees_across_engines(self, spec):
        # String runs hold the stronger (bitwise) scalar<->fleet contract.
        tols = Tolerances(fleet_rtol=0.0) if spec.n_cells > 1 else Tolerances()
        assert_engines_agree(spec, tols=tols)
