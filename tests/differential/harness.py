"""Cross-engine differential harness: one spec, every engine, one diff.

The repo carries three executions of the same physics — the scalar
reference walk, the vectorized fleet engine, and the fused compiled
tier — plus per-suite spot checks that grew up ad hoc.  This harness
makes the equivalence contract first-class and reusable:

* :class:`DifferentialSpec` — a declarative description of one
  experiment run (cell/string geometry, shading, scenario, techniques,
  fault campaigns) that any engine can execute.
* :class:`Tolerances` — the *declared* agreement budget per engine
  pair.  Scalar and fleet share their numpy kernels, so they are held
  bitwise by default; the compiled tier is held to its power LUT's
  validated error budget (feedback-coupled techniques looser, since
  perturb/observe probes compound table error before self-correcting).
* :func:`assert_engines_agree` — run the spec through every engine and
  diff the harvest summaries field by field, failing with a readable
  per-field report.

Tests (including Hypothesis-generated specs) compose these; see
``test_engines_agree.py``.
"""

from dataclasses import dataclass

from repro.pv.cells import am_1815
from repro.pv.string import CellString

SUMMARY_FIELDS = (
    "duration",
    "energy_ideal",
    "energy_at_cell",
    "energy_delivered",
    "energy_overhead",
    "energy_load",
    "final_storage_voltage",
)
ENERGY_FIELDS = ("energy_at_cell", "energy_delivered", "energy_overhead", "energy_load")

#: Techniques whose compiled-tier trajectory feeds back through the LUT
#: (operating point chosen from table values), compounding its error.
FEEDBACK_TECHNIQUES = ("hill-climbing",)


@dataclass(frozen=True)
class Tolerances:
    """Declared per-engine-pair agreement budgets.

    Attributes:
        fleet_rtol: scalar<->fleet relative tolerance per summary field.
            0.0 means bitwise.  Default is a few-ulp accumulation
            tolerance: the plain-cell scalar walk predates the shared
            kernels and differs from the fleet lane by ~1 ulp.  String
            runs ARE bitwise (the scalar string model is a one-row
            fleet stack) — string tests pass ``fleet_rtol=0.0``.
        compiled_energy_rtol: scalar<->compiled energy-field tolerance,
            relative to the lane's ideal harvest (the LUT's validated
            budget).
        compiled_voltage_atol: scalar<->compiled absolute tolerance on
            the final storage voltage, volts.
        feedback_scale: multiplier applied to both compiled tolerances
            for :data:`FEEDBACK_TECHNIQUES`.
    """

    fleet_rtol: float = 1e-12
    compiled_energy_rtol: float = 1e-3
    compiled_voltage_atol: float = 1e-3
    feedback_scale: float = 20.0

    def compiled_budget(self, technique: str) -> "tuple[float, float]":
        scale = self.feedback_scale if technique in FEEDBACK_TECHNIQUES else 1.0
        return self.compiled_energy_rtol * scale, self.compiled_voltage_atol * scale


@dataclass(frozen=True)
class DifferentialSpec:
    """One experiment run, declaratively, for any engine to execute.

    Attributes:
        experiment: ``"comparison"`` or ``"resilience"``.
        n_cells: 1 builds a plain AM-1815 cell; more builds a series
            string of them.
        mismatch: static per-cell irradiance factors (strings only;
            empty means uniform).
        shading: shadow-map spec string (strings only), e.g.
            ``"edge-sweep:depth=0.6"``.
        scenario: environment name from the comparison suite.
        techniques: technique subset to run.
        campaigns: fault campaigns (resilience only; ``"clean"`` is
            always prepended by the experiment itself).
        duration / dt: horizon and quasi-static step, seconds.
        seed: campaign seed (resilience only).
    """

    experiment: str = "comparison"
    n_cells: int = 1
    mismatch: "tuple[float, ...]" = ()
    shading: "str | None" = None
    scenario: str = "office-desk"
    techniques: "tuple[str, ...]" = ("proposed-S&H-FOCV", "fixed-voltage")
    campaigns: "tuple[str, ...]" = ()
    duration: float = 24.0 * 3600.0
    dt: float = 1800.0
    seed: int = 0

    def build_cell(self):
        if self.n_cells <= 1:
            return am_1815()
        return CellString(
            am_1815(), self.n_cells, mismatch=self.mismatch or None
        )


def run_spec(spec: DifferentialSpec, engine: str) -> dict:
    """Execute the spec on one engine.

    Returns ``{(scenario, technique): {field: value}}`` for comparison
    specs and ``{(campaign, scenario, technique): {field: value}}`` for
    resilience specs.
    """
    cell = spec.build_cell()
    if spec.experiment == "comparison":
        from repro.experiments.comparison import run_comparison

        results = run_comparison(
            cell=cell,
            duration=spec.duration,
            dt=spec.dt,
            techniques=list(spec.techniques),
            scenarios=[spec.scenario],
            engine=engine,
            shading=spec.shading,
        )
        return {
            (r.scenario, r.technique): {
                f: getattr(r.summary, f) for f in SUMMARY_FIELDS
            }
            for r in results
        }
    if spec.experiment == "resilience":
        from repro.experiments.resilience import run_resilience

        report = run_resilience(
            cell=cell,
            duration=spec.duration,
            dt=spec.dt,
            techniques=list(spec.techniques),
            scenarios=[spec.scenario],
            campaigns=list(spec.campaigns),
            seed=spec.seed,
            include_recovery=False,
            include_coldstart=False,
            engine=engine,
            shading=spec.shading,
        )
        return {
            (c.campaign, c.scenario, c.technique): {
                f: getattr(c.summary, f) for f in SUMMARY_FIELDS
            }
            for c in report.cells
        }
    raise ValueError(f"unknown experiment {spec.experiment!r}")


def _diff_fleet(key, ref, other, tols: Tolerances) -> "list[str]":
    problems = []
    for f in SUMMARY_FIELDS:
        a, b = ref[f], other[f]
        if tols.fleet_rtol == 0.0:
            ok = a == b
        else:
            ok = abs(a - b) <= tols.fleet_rtol * max(abs(a), abs(b)) + 1e-18
        if not ok:
            problems.append(
                f"{key}/{f}: scalar {a!r} != fleet {b!r} "
                f"(declared rtol {tols.fleet_rtol:g})"
            )
    return problems


def _diff_compiled(key, ref, other, tols: Tolerances) -> "list[str]":
    technique = key[-1]
    etol, vtol = tols.compiled_budget(technique)
    problems = []
    if ref["duration"] != other["duration"]:
        problems.append(f"{key}/duration: {ref['duration']} != {other['duration']}")
    scale = max(abs(ref["energy_ideal"]), 1e-9)
    # The ideal trace is replayed from exact solves, not interpolated.
    err = abs(ref["energy_ideal"] - other["energy_ideal"]) / scale
    if err > 1e-12:
        problems.append(
            f"{key}/energy_ideal: compiled deviates rel {err:.3e} "
            "(must be replayed exactly)"
        )
    for f in ENERGY_FIELDS:
        err = abs(ref[f] - other[f]) / scale
        if err > etol:
            problems.append(
                f"{key}/{f}: compiled error {err:.3e} exceeds declared "
                f"budget {etol:.1e} (relative to ideal harvest)"
            )
    dv = abs(ref["final_storage_voltage"] - other["final_storage_voltage"])
    if dv > vtol:
        problems.append(
            f"{key}/final_storage_voltage: compiled off by {dv:.3e} V "
            f"(declared budget {vtol:.1e} V)"
        )
    return problems


def assert_engines_agree(
    spec: DifferentialSpec,
    tols: "Tolerances | None" = None,
    engines: "tuple[str, ...]" = ("scalar", "fleet", "compiled"),
) -> dict:
    """Run the spec through every engine and diff against scalar.

    The scalar walk is the reference; ``fleet`` is diffed at
    ``tols.fleet_rtol`` (bitwise by default) and ``compiled`` at the
    LUT's declared budget.  Raises ``AssertionError`` with every
    violated field listed; returns ``{engine: summaries}`` on success
    so callers can assert additional facts.
    """
    tols = tols if tols is not None else Tolerances()
    if "scalar" not in engines:
        raise ValueError("the scalar reference engine is required")
    outputs = {engine: run_spec(spec, engine) for engine in engines}
    reference = outputs["scalar"]
    problems: "list[str]" = []
    for engine in engines:
        if engine == "scalar":
            continue
        candidate = outputs[engine]
        if set(candidate) != set(reference):
            problems.append(
                f"{engine}: lane set differs from scalar "
                f"(missing {set(reference) - set(candidate)}, "
                f"extra {set(candidate) - set(reference)})"
            )
            continue
        differ = _diff_fleet if engine == "fleet" else _diff_compiled
        for key in sorted(reference):
            problems.extend(differ(key, reference[key], candidate[key], tols))
    assert not problems, (
        f"engines disagree on {spec}:\n" + "\n".join(problems)
    )
    return outputs


__all__ = [
    "DifferentialSpec",
    "Tolerances",
    "SUMMARY_FIELDS",
    "assert_engines_agree",
    "run_spec",
]
