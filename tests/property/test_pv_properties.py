"""Property-based tests for the PV device physics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pv.cells import am_1815
from repro.pv.single_diode import SingleDiodeModel, lambertw_of_exp

# Physically sensible parameter ranges for a small harvesting cell.
photocurrents = st.floats(min_value=1e-7, max_value=0.05)
saturation_currents = st.floats(min_value=1e-15, max_value=1e-8)
idealities = st.floats(min_value=1.0, max_value=3.0)
junctions = st.integers(min_value=1, max_value=12)
series_resistances = st.floats(min_value=0.0, max_value=5e3)
shunt_resistances = st.floats(min_value=1e3, max_value=1e8)


def make_model(iph, i0, n, ns, rs, rsh):
    return SingleDiodeModel(
        photocurrent=iph,
        saturation_current=i0,
        ideality=n,
        n_series=ns,
        series_resistance=rs,
        shunt_resistance=rsh,
    )


model_params = st.tuples(
    photocurrents, saturation_currents, idealities, junctions, series_resistances, shunt_resistances
)


class TestLambertW:
    @given(st.floats(min_value=-20.0, max_value=1e6))
    def test_defining_equation(self, x):
        w = lambertw_of_exp(x)
        assert w > 0.0
        assert w + math.log(w) == pytest.approx(x, rel=1e-9, abs=1e-9)

    @given(st.floats(min_value=-20.0, max_value=1e5), st.floats(min_value=1e-6, max_value=1.0))
    def test_monotone(self, x, dx):
        assert lambertw_of_exp(x + dx) > lambertw_of_exp(x)


class TestCurveInvariants:
    @settings(max_examples=60, deadline=None)
    @given(model_params)
    def test_isc_voc_positive_and_ordered(self, params):
        m = make_model(*params)
        voc = m.voc()
        isc = m.isc()
        assert voc > 0.0
        assert 0.0 < isc <= m.photocurrent * (1.0 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(model_params, st.floats(min_value=0.01, max_value=0.99))
    def test_current_voltage_inverse(self, params, fraction):
        m = make_model(*params)
        v = fraction * m.voc()
        i = float(m.current_at(v))
        assert float(m.voltage_at(i)) == pytest.approx(v, rel=1e-6, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(model_params)
    def test_current_strictly_decreasing(self, params):
        m = make_model(*params)
        v = np.linspace(0.0, m.voc(), 64)
        i = np.asarray(m.current_at(v))
        assert np.all(np.diff(i) < 1e-15)

    @settings(max_examples=60, deadline=None)
    @given(model_params)
    def test_mpp_inside_curve_and_dominant(self, params):
        m = make_model(*params)
        mpp = m.mpp()
        assert 0.0 < mpp.voltage < mpp.voc
        assert 0.0 < mpp.current < mpp.isc
        v = np.linspace(1e-6, mpp.voc * 0.9999, 40)
        powers = np.asarray(m.power_at(v))
        assert mpp.power >= np.max(powers) - 1e-12 - 1e-6 * mpp.power

    @settings(max_examples=60, deadline=None)
    @given(model_params)
    def test_fill_factor_bounded(self, params):
        m = make_model(*params)
        ff = m.mpp().fill_factor
        assert 0.0 < ff < 1.0

    @settings(max_examples=40, deadline=None)
    @given(model_params, st.floats(min_value=1.1, max_value=10.0))
    def test_more_light_more_power(self, params, gain):
        m = make_model(*params)
        brighter = m.with_photocurrent(m.photocurrent * gain)
        assert brighter.mpp().power > m.mpp().power
        assert brighter.voc() > m.voc()


class TestCellInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=10.0, max_value=100000.0))
    def test_k_stays_in_unit_interval(self, lux):
        mpp = am_1815().mpp(lux)
        assert 0.3 < mpp.k < 0.95

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=10.0, max_value=50000.0),
        st.floats(min_value=263.0, max_value=353.0),
    )
    def test_power_positive_under_any_condition(self, lux, temp):
        mpp = am_1815().mpp(lux, temperature=temp)
        assert mpp.power > 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=50.0, max_value=50000.0))
    def test_voc_temperature_always_negative_coefficient(self, lux):
        cell = am_1815()
        cold = cell.voc(lux, temperature=283.0)
        hot = cell.voc(lux, temperature=333.0)
        assert hot < cold
