"""Property tests: the vectorized batch solver agrees with the scalar path.

The batch golden-section search mirrors the scalar one update for
update, but at a flat maximum the last few comparisons can flip on
sub-epsilon power differences — so ``v_mpp`` is only pinned to the
noise ball around the optimum while ``p_mpp`` (the physically
meaningful output) agrees to ~1e-12 relative, and Voc/Isc (closed-form
Lambert-W evaluations) agree essentially bitwise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pv.batch import batch_mpp, solve_models
from repro.pv.cells import am_1815, generic_csi, schott_1116929
from repro.pv.mpp import k_factor, k_factor_curve

lux_levels = st.floats(min_value=200.0, max_value=5000.0)


@settings(max_examples=30, deadline=None)
@given(lux=lux_levels)
def test_batch_matches_scalar_single_level(lux):
    cell = am_1815()
    scalar = cell.mpp(lux)
    batch = batch_mpp(cell, [lux])
    assert np.isclose(batch.voc[0], scalar.voc, rtol=1e-12, atol=0.0)
    assert np.isclose(batch.p_mpp[0], scalar.power, rtol=1e-9, atol=1e-18)
    assert abs(batch.v_mpp[0] - scalar.voltage) < 1e-6 * max(scalar.voc, 1.0)


@settings(max_examples=10, deadline=None)
@given(
    levels=st.lists(lux_levels, min_size=1, max_size=8),
)
def test_batch_matches_scalar_across_grids(levels):
    cell = am_1815()
    batch = batch_mpp(cell, levels)
    assert len(batch.voc) == len(levels)
    for i, lux in enumerate(levels):
        scalar = cell.mpp(lux)
        assert np.isclose(batch.voc[i], scalar.voc, rtol=1e-12, atol=0.0)
        assert np.isclose(batch.isc[i], scalar.isc, rtol=1e-12, atol=0.0)
        assert np.isclose(batch.p_mpp[i], scalar.power, rtol=1e-9, atol=1e-18)


def test_batch_memoizes_onto_models():
    cell = am_1815()
    models = [cell.model_at(lux) for lux in (250.0, 1000.0, 4000.0)]
    result = solve_models(models, memoize=True)
    for i, model in enumerate(models):
        # Memoised: the instance answers without re-solving, and agrees
        # with the batch arrays it was filled from.
        assert model.voc() == result.voc[i]
        assert model.mpp().power == result.p_mpp[i]


def test_mpp_result_roundtrip():
    cell = schott_1116929()
    batch = batch_mpp(cell, [300.0, 2000.0])
    for i in (0, 1):
        r = batch.mpp_result(i)
        assert r.power == batch.p_mpp[i]
        assert r.voltage == batch.v_mpp[i]
        assert r.voc == batch.voc[i]


def test_k_factor_curve_matches_scalar_k():
    for cell in (am_1815(), generic_csi()):
        levels = [200.0, 500.0, 1000.0, 2500.0, 5000.0]
        curve = k_factor_curve(cell, levels)
        scalars = np.array([k_factor(cell, lux) for lux in levels])
        assert np.allclose(curve, scalars, rtol=0.0, atol=1e-6)


def test_k_factor_curve_empty():
    assert len(k_factor_curve(am_1815(), [])) == 0
