"""Property-based tests for the Eq. (2) analysis and energy accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.sampling_error import worst_case_mean_error
from repro.storage.supercap import Supercapacitor

records = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=20, max_value=200),
    elements=st.floats(min_value=0.0, max_value=10.0),
)


class TestEq2Properties:
    @settings(max_examples=60, deadline=None)
    @given(records, st.integers(min_value=1, max_value=19))
    def test_error_nonnegative_and_bounded_by_range(self, x, p):
        error = worst_case_mean_error(x, p)
        assert error >= 0.0
        assert error <= float(np.max(x) - np.min(x)) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(records, st.integers(min_value=1, max_value=9))
    def test_monotone_in_period(self, x, p):
        # Widening the window can only widen (or keep) each excursion...
        narrow = worst_case_mean_error(x, p)
        wide = worst_case_mean_error(x, p + 10)
        assert wide >= narrow - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(records, st.integers(min_value=2, max_value=19), st.floats(min_value=0.1, max_value=10.0))
    def test_scale_equivariance(self, x, p, gain):
        assert worst_case_mean_error(x * gain, p) == pytest.approx(
            gain * worst_case_mean_error(x, p), rel=1e-9, abs=1e-12
        )

    @settings(max_examples=60, deadline=None)
    @given(records, st.integers(min_value=2, max_value=19), st.floats(min_value=-5.0, max_value=5.0))
    def test_offset_invariance(self, x, p, offset):
        assert worst_case_mean_error(x + offset, p) == pytest.approx(
            worst_case_mean_error(x, p), rel=1e-9, abs=1e-9
        )


class TestStorageProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.0, max_value=5.0),
        st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=30),
    )
    def test_voltage_always_within_bounds(self, capacitance, v0, powers):
        cap = Supercapacitor(capacitance=capacitance, rated_voltage=5.0, voltage=min(v0, 5.0))
        for p in powers:
            cap.exchange(p, 1.0)
            assert 0.0 <= cap.voltage <= 5.0 + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.5, max_value=4.0),
        st.floats(min_value=0.001, max_value=0.1),
    )
    def test_charge_never_creates_energy(self, capacitance, v0, power):
        cap = Supercapacitor(
            capacitance=capacitance, rated_voltage=5.0, voltage=v0, leakage_current=0.0
        )
        before = cap.stored_energy
        accepted = cap.exchange(power, 10.0)
        gained = cap.stored_energy - before
        assert gained <= accepted * 10.0 + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.5, max_value=4.0),
        st.floats(min_value=0.001, max_value=10.0),
    )
    def test_discharge_never_exceeds_stored(self, capacitance, v0, power):
        cap = Supercapacitor(capacitance=capacitance, rated_voltage=5.0, voltage=v0)
        before = cap.stored_energy
        delivered = cap.exchange(-power, 100.0)
        assert -delivered * 100.0 <= before + 1e-9
