"""Property tests for the fleet engine's population axis and scatter().

Two invariants the vectorized paths must hold for any input:

* ``scatter`` never changes the population — concatenating its chunks
  reproduces the items exactly for every chunk count, and no chunk is
  ever empty (``n_chunks > len(items)`` used to be able to produce
  empty tails downstream).
* The fleet Monte Carlo kernel is elementwise over the board axis, so
  permuting the boards permutes the outputs bitwise — board results
  cannot depend on their neighbours or their position.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pv.cells import am_1815
from repro.sim.fleet import evaluate_sample_hold_boards
from repro.sim.parallel import scatter

_CELL = am_1815()
_MODEL = _CELL.model_at(1000.0)
_VOC = _MODEL.voc()


class TestScatterProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(), max_size=60),
        st.integers(min_value=1, max_value=100),
    )
    def test_chunk_count_never_changes_population(self, items, parts):
        chunks = scatter(items, parts)
        rebuilt = [x for chunk in chunks for x in chunk]
        assert rebuilt == items

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(), max_size=60),
        st.integers(min_value=1, max_value=100),
    )
    def test_chunks_nonempty_and_bounded(self, items, parts):
        chunks = scatter(items, parts)
        assert all(len(chunk) > 0 for chunk in chunks)
        assert len(chunks) <= min(parts, len(items))


# One draw per board: divider skew, offsets, injection and hold-cap
# spread within (generous) component-tolerance ranges.
_board = st.tuples(
    st.floats(min_value=6e6, max_value=8e6),    # top resistor
    st.floats(min_value=2e6, max_value=4e6),    # bottom resistor
    st.floats(min_value=-5e-3, max_value=5e-3),  # buffer offset (sample)
    st.floats(min_value=-5e-3, max_value=5e-3),  # buffer offset (readout)
    st.floats(min_value=0.0, max_value=4e-12),   # charge injection
    st.floats(min_value=5e-7, max_value=2e-6),   # hold capacitor
)


class TestBoardOrderInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(_board, min_size=2, max_size=12),
        st.randoms(use_true_random=False),
    )
    def test_permuting_boards_permutes_results_bitwise(self, boards, rng):
        perm = list(range(len(boards)))
        rng.shuffle(perm)

        def held(rows):
            top, bottom, u2, u4, inj, cap = (np.asarray(c) for c in zip(*rows))
            return evaluate_sample_hold_boards(
                _MODEL,
                _VOC,
                top=top,
                bottom=bottom,
                u2_offset=u2,
                u4_offset=u4,
                injection=inj,
                hold_c=cap,
                pulse_width=39e-3,
                hold_time=34.5,
            )

        direct = held(boards)
        permuted = held([boards[i] for i in perm])
        # Bitwise: elementwise NumPy ops cannot couple lanes.
        assert np.array_equal(direct[perm], permuted)
