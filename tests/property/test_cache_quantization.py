"""CachedPVCell quantization: bounded model error, exact mode bitwise.

The PR 1 solve cache has two keying modes.  Exact keying must be
invisible — every characteristic point bitwise-identical to the
uncached cell.  Quantized keying (snap lux/temperature onto a grid
before solving) trades a *bounded* model error for hit rate; these
tests pin the bound: with 2-lux / 0.5-K grids over the indoor-outdoor
envelope, MPP power stays within 2 % of the exact solve (the docstring
claim is "0.25 % lux bins keep MPP power well inside 0.1 %" — the
relative error scales with quantum/lux, asserted here too).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pv.cache import CachedPVCell
from repro.pv.cells import am_1815
from repro.units import T_STC

LUX_QUANTUM = 2.0
TEMP_QUANTUM = 0.5

luxes = st.floats(min_value=50.0, max_value=20000.0)
temperatures = st.floats(min_value=T_STC - 15.0, max_value=T_STC + 40.0)


@pytest.fixture(scope="module")
def exact_cell():
    return am_1815()


class TestExactKeying:
    @given(lux=luxes, temperature=temperatures)
    @settings(max_examples=40, deadline=None)
    def test_bitwise_identical_to_uncached(self, lux, temperature):
        plain = am_1815()
        cached = CachedPVCell(am_1815())
        exact = plain.model_at(lux, temperature=temperature)
        via_cache = cached.model_at(lux, temperature=temperature)
        assert via_cache.voc() == exact.voc()
        assert via_cache.isc() == exact.isc()
        assert via_cache.mpp().power == exact.mpp().power
        assert via_cache.mpp().voltage == exact.mpp().voltage

    def test_repeated_condition_returns_same_instance(self):
        cached = CachedPVCell(am_1815())
        a = cached.model_at(500.0)
        b = cached.model_at(500.0)
        assert a is b
        assert cached.stats.hits == 1 and cached.stats.misses == 1


class TestQuantizedKeying:
    @given(lux=luxes, temperature=temperatures)
    @settings(max_examples=40, deadline=None)
    def test_mpp_power_within_stated_tolerance(self, lux, temperature):
        plain = am_1815()
        quantized = CachedPVCell(
            am_1815(), lux_quantum=LUX_QUANTUM, temperature_quantum=TEMP_QUANTUM
        )
        exact_power = plain.model_at(lux, temperature=temperature).mpp().power
        snapped_power = quantized.model_at(lux, temperature=temperature).mpp().power
        assert exact_power > 0.0
        # Lux snap error is at most quantum/2 = 2 % of the 50-lux floor,
        # but power is slightly *super*linear in lux (the log-term in
        # Voc), so the worst case lands just above 2 % (lux=51 snaps to
        # 52 -> 2.05 %).  2.5 % bounds that with margin while staying
        # far tighter than typical examples.
        assert snapped_power == pytest.approx(exact_power, rel=0.025)

    @given(lux=st.floats(min_value=400.0, max_value=20000.0))
    @settings(max_examples=25, deadline=None)
    def test_relative_error_scales_with_quantum(self, lux):
        # MPP power is near-linear in lux, so the power error tracks the
        # relative lux snap error (at most half a quantum) with only a
        # little headroom for the logarithmic Voc growth.
        plain = am_1815()
        quantized = CachedPVCell(am_1815(), lux_quantum=LUX_QUANTUM)
        exact_power = plain.model_at(lux).mpp().power
        snapped_power = quantized.model_at(lux).mpp().power
        snap_error = (LUX_QUANTUM / 2.0) / lux
        assert snapped_power == pytest.approx(exact_power, rel=1.5 * snap_error + 1e-9)

    def test_quantized_mode_collapses_nearby_conditions(self):
        quantized = CachedPVCell(am_1815(), lux_quantum=2.0)
        a = quantized.model_at(500.3)
        b = quantized.model_at(500.9)  # same 2-lux bin
        assert a is b
        assert quantized.stats.hit_rate > 0.0
