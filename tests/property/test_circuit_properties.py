"""Property-based tests for the analog substrate and MNA solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.components import Capacitor, ResistiveDivider
from repro.analog.mna import Circuit
from repro.core.astable import AstableMultivibrator

resistances = st.floats(min_value=1.0, max_value=1e9)
ratios = st.floats(min_value=0.01, max_value=0.99)
voltages = st.floats(min_value=0.1, max_value=100.0)


class TestDividerProperties:
    @given(ratios, resistances)
    def test_from_ratio_roundtrip(self, ratio, total):
        d = ResistiveDivider.from_ratio(ratio, total)
        assert d.ratio == pytest.approx(ratio, rel=1e-9)
        assert d.total_resistance == pytest.approx(total, rel=1e-9)

    @given(ratios, resistances, resistances)
    def test_loading_always_droops(self, ratio, total, load):
        d = ResistiveDivider.from_ratio(ratio, total)
        assert d.loaded_ratio(load) <= d.ratio + 1e-15

    @given(ratios, resistances)
    def test_output_resistance_below_total(self, ratio, total):
        d = ResistiveDivider.from_ratio(ratio, total)
        assert 0.0 < d.output_resistance < d.total_resistance


class TestCapacitorProperties:
    @given(
        st.floats(min_value=1e-9, max_value=1e-3),
        voltages,
        st.floats(min_value=0.0, max_value=1e5),
    )
    def test_droop_never_increases_positive_voltage(self, farads, v, hold):
        c = Capacitor(farads)
        after = c.droop(v, hold)
        assert 0.0 <= after <= v + 1e-12

    @given(
        st.floats(min_value=1e-9, max_value=1e-3),
        voltages,
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1.0, max_value=1e4),
    )
    def test_droop_composes(self, farads, v, t1, t2):
        # Drooping t1 then t2 equals drooping t1+t2 (self-leakage only).
        c = Capacitor(farads)
        sequential = c.droop(c.droop(v, t1), t2)
        combined = c.droop(v, t1 + t2)
        assert sequential == pytest.approx(combined, rel=1e-9, abs=1e-12)


class TestMNAProperties:
    @settings(max_examples=50, deadline=None)
    @given(voltages, resistances, resistances, resistances)
    def test_kcl_holds_at_solved_node(self, vin, r1, r2, r3):
        c = Circuit()
        c.add_voltage_source("in", "0", vin)
        c.add_resistor("in", "n", r1)
        c.add_resistor("n", "0", r2)
        c.add_resistor("n", "0", r3)
        sol = c.solve_dc()
        v = sol["n"]
        residual = (vin - v) / r1 - v / r2 - v / r3
        assert residual == pytest.approx(0.0, abs=1e-9 * max(1.0, vin))

    @settings(max_examples=50, deadline=None)
    @given(voltages, ratios, resistances)
    def test_divider_solution_matches_formula(self, vin, ratio, total):
        d = ResistiveDivider.from_ratio(ratio, total)
        c = Circuit()
        c.add_voltage_source("in", "0", vin)
        c.add_resistor("in", "tap", d.top.ohms)
        c.add_resistor("tap", "0", d.bottom.ohms)
        sol = c.solve_dc()
        assert sol["tap"] == pytest.approx(vin * ratio, rel=1e-9)


class TestAstableProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=1e-2, max_value=100.0),
        st.floats(min_value=0.1, max_value=0.95),
    )
    def test_design_roundtrip(self, t_on, t_off, beta):
        a = AstableMultivibrator.from_timing(t_on=t_on, t_off=t_off, beta=beta)
        assert a.t_on == pytest.approx(t_on, rel=1e-9)
        assert a.t_off == pytest.approx(t_off, rel=1e-9)
        assert 0.0 < a.duty_cycle < 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_pulse_count_additive(self, t1, span):
        a = AstableMultivibrator.from_timing(t_on=39e-3, t_off=69.0)
        mid = t1 + span / 2.0
        end = t1 + span
        total = a.pulse_count_in(t1, end)
        split = a.pulse_count_in(t1, mid) + a.pulse_count_in(mid, end)
        assert total == split

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_next_pulse_is_a_pulse_start(self, t):
        a = AstableMultivibrator.from_timing(t_on=39e-3, t_off=69.0)
        nxt = a.next_pulse_start(t)
        assert nxt >= t - 1e-9
        assert a.is_pulse_high(nxt + 1e-6)
