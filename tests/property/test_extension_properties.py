"""Property-based tests for the extension modules (E-series, fitting
inputs, scheduler policy, aging)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.eseries import best_ratio_pair, nearest_value, rounding_error
from repro.node.scheduler import EnergyAwareScheduler
from repro.node.sensor_node import SensorNode
from repro.pv.cells import am_1815


class _Store:
    def __init__(self, voltage):
        self.voltage = voltage


class TestESeriesProperties:
    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_nearest_value_within_series_step(self, target):
        # E24 steps are 10-15 % (the series is not log-uniform; the
        # 1.3 -> 1.5 gap is the widest), so the snap error stays < 8 %.
        value = nearest_value(target, "E24")
        assert abs(rounding_error(target, "E24")) < 0.08
        assert value > 0.0

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_e96_snap_error_bounded(self, target):
        # E96 steps are ~2.4 %, so the snap error stays below ~2 %.
        # (Note E96 is NOT a superset of E12 — 1.8 is an E12 value with
        # no E96 counterpart — so "E96 always beats E12" is false.)
        assert abs(rounding_error(target, "E96")) < 0.02

    @given(st.floats(min_value=1e-6, max_value=1e12))
    def test_snap_idempotent(self, target):
        once = nearest_value(target, "E24")
        twice = nearest_value(once, "E24")
        assert twice == pytest.approx(once, rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=1e4, max_value=1e8),
    )
    def test_ratio_pair_close_and_positive(self, ratio, total):
        top, bottom = best_ratio_pair(ratio, total, "E24")
        assert top > 0.0 and bottom > 0.0
        achieved = bottom / (top + bottom)
        assert achieved == pytest.approx(ratio, rel=0.05)


class TestSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=6.0))
    def test_policy_total(self, voltage):
        sched = EnergyAwareScheduler(node=SensorNode(), storage=_Store(3.0))
        period = sched.period_for_voltage(voltage)
        if voltage < sched.v_survival:
            assert period is None
        else:
            assert sched.min_period <= period <= sched.max_period

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=2.21, max_value=5.9),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_policy_monotone(self, voltage, dv):
        sched = EnergyAwareScheduler(node=SensorNode(), storage=_Store(3.0))
        lower = sched.period_for_voltage(voltage)
        higher = sched.period_for_voltage(min(voltage + dv, 6.0))
        assert higher <= lower + 1e-9


class TestAgingProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=40.0))
    def test_power_never_increases_with_age(self, years):
        fresh = am_1815()
        aged = fresh.degraded(years)
        assert aged.mpp(500.0).power <= fresh.mpp(500.0).power * (1.0 + 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=30.0),
    )
    def test_aging_monotone(self, a, b):
        younger, older = sorted((a, b))
        cell = am_1815()
        p_young = cell.degraded(younger).mpp(500.0).power
        p_old = cell.degraded(older).mpp(500.0).power
        assert p_old <= p_young * (1.0 + 1e-9)
