"""Property: a state round-trip at an arbitrary step is invisible.

Snapshot any stateful link of the harvesting chain mid-run, push the
snapshot through JSON (what a checkpoint file does), load it into a
freshly constructed twin, and the twin's subsequent trajectory must be
*bitwise* identical to the original's — no drift, no approximation.
This is the property the whole resume subsystem rests on.
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hill_climbing import HillClimbing
from repro.faults.schedule import FaultSchedule
from repro.pv.cells import am_1815
from repro.sim.quasistatic import QuasiStaticSimulator
from repro.storage.supercap import Supercapacitor


def _wavy_office(t: float) -> float:
    """A deterministic, non-trivial light profile (module-level: rebuildable)."""
    return 600.0 + 400.0 * math.sin(t / 700.0) + 150.0 * math.sin(t / 131.0)


def _build_sim() -> QuasiStaticSimulator:
    return QuasiStaticSimulator(
        am_1815(),
        HillClimbing(),
        _wavy_office,
        storage=Supercapacitor(capacitance=0.05, voltage=2.5),
        load=lambda t: 150e-6,
        record=False,
    )


def _json_round_trip(state: dict) -> dict:
    """What a checkpoint does to the snapshot: serialize, parse back."""
    return json.loads(json.dumps(state))


@settings(max_examples=20, deadline=None)
@given(
    before=st.integers(min_value=1, max_value=300),
    after=st.integers(min_value=1, max_value=300),
    dt=st.sampled_from([1.0, 5.0, 30.0]),
)
def test_engine_roundtrip_is_bitwise_invisible(before, after, dt):
    original = _build_sim()
    for _ in range(before):
        original.step(dt)
    snapshot = _json_round_trip(original.state_dict())

    twin = _build_sim()
    twin.load_state(snapshot)

    for _ in range(after):
        original.step(dt)
        twin.step(dt)

    assert twin.summary.to_dict() == original.summary.to_dict()
    assert twin.time == original.time
    assert twin.storage.voltage == original.storage.voltage
    assert twin.state_dict() == original.state_dict()


@settings(max_examples=20, deadline=None)
@given(
    steps=st.integers(min_value=0, max_value=500),
    dt=st.sampled_from([0.5, 2.0, 10.0]),
)
def test_snapshot_at_any_step_is_json_stable(steps, dt):
    """The snapshot itself survives JSON exactly (floats round-trip)."""
    sim = _build_sim()
    for _ in range(steps):
        sim.step(dt)
    state = sim.state_dict()
    assert _json_round_trip(state) == json.loads(json.dumps(_json_round_trip(state)))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=0.1, max_value=5.0),
    probes=st.lists(
        st.floats(min_value=0.0, max_value=86400.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
def test_fault_schedule_roundtrip_preserves_every_query(seed, rate, probes):
    schedule = FaultSchedule.bursts(
        86400.0, rate_per_hour=rate, mean_width=300.0, seed=seed
    )
    clone = FaultSchedule.from_state(_json_round_trip(schedule.state_dict()))
    for t in probes:
        assert clone.active(t) == schedule.active(t)
    assert clone.state_dict() == schedule.state_dict()
