"""Property tests: the power LUT's error budget holds across the fitted
parameter space, and the validation gate rejects undersized tables.

The compiled engine tier trusts :class:`repro.pv.lut.CellPowerLUT`
wherever the scalar engine performed an exact Lambert-W solve, so the
table's declared budget has to hold not just for one cell at one light
level but across everything the fitted models can produce: any cell in
the library, any lux the scenarios emit, any temperature the thermal
model reaches — and at arbitrary off-grid voltages, not only the
midpoints the gate samples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LUTValidationError
from repro.pv.cells import am_1815, generic_csi, schott_1116929
from repro.pv.lut import DEFAULT_REL_BUDGET, CellPowerLUT

CELLS = {"am1815": am_1815, "csi": generic_csi, "schott": schott_1116929}

conditions = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=5.2),  # log10 lux: 10 .. ~160k
        st.floats(min_value=273.15, max_value=348.15),  # 0 .. 75 C
    ),
    min_size=1,
    max_size=6,
)


def _models(cell_name, conds):
    cell = CELLS[cell_name]()
    return [
        cell.model_at(10.0**log_lux).with_temperature(temp)
        for log_lux, temp in conds
    ]


class TestBudgetAcrossParameterSpace:
    @settings(max_examples=40, deadline=None)
    @given(
        cell_name=st.sampled_from(sorted(CELLS)),
        conds=conditions,
        data=st.data(),
    )
    def test_worst_case_error_within_declared_budget(self, cell_name, conds, data):
        models = _models(cell_name, conds)
        lut = CellPowerLUT.from_models(models)

        # The pre-run gate (interval midpoints — the piecewise-linear
        # worst case) must pass at the default grid size.
        report = lut.validate()
        assert report.ok
        assert report.max_rel_error <= DEFAULT_REL_BUDGET

        # And the bound must hold at arbitrary voltages, not only the
        # gate's sample points.
        for i, model in enumerate(models):
            voc = lut.voc[i]
            if voc <= 0.0:
                continue
            fractions = data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
                    min_size=1,
                    max_size=8,
                ),
                label=f"voltage fractions (condition {i})",
            )
            for frac in fractions:
                v = float(voc * frac)
                exact = max(0.0, float(model.power_at(v)))
                err = abs(lut.power(i, v) - exact) / lut.scale[i]
                assert err <= DEFAULT_REL_BUDGET, (
                    f"{cell_name} condition {i}: error {err:.3e} at "
                    f"V={v:.4f} exceeds the declared budget"
                )

    @settings(max_examples=40, deadline=None)
    @given(cell_name=st.sampled_from(sorted(CELLS)), conds=conditions)
    def test_scalar_and_vector_lookups_agree_bitwise(self, cell_name, conds):
        models = _models(cell_name, conds)
        lut = CellPowerLUT.from_models(models)
        rng = np.random.default_rng(len(conds))
        idx = rng.integers(0, len(models), size=32)
        volts = rng.uniform(-0.2, float(lut.voc.max() + 0.2), size=32)
        many = lut.power_many(idx, volts)
        for i, v, p in zip(idx, volts, many):
            assert lut.power(int(i), float(v)) == p


class TestGateRejectsUndersizedTables:
    @settings(max_examples=25, deadline=None)
    @given(cell_name=st.sampled_from(sorted(CELLS)), conds=conditions)
    def test_minimum_grid_fails_tight_budget(self, cell_name, conds):
        models = _models(cell_name, conds)
        # An 8-point table cannot track the knee to 1e-5 of full scale;
        # the gate must refuse it rather than let the engine run on it.
        lut = CellPowerLUT.from_models(models, grid_points=8, rel_budget=1e-5)
        with pytest.raises(LUTValidationError) as exc:
            lut.validate()
        assert exc.value.max_rel_error > exc.value.rel_budget

    def test_growing_the_grid_recovers_validity(self):
        models = _models("am1815", [(3.0, 298.15)])
        small = CellPowerLUT.from_models(models, grid_points=8)
        with pytest.raises(LUTValidationError):
            small.validate()
        assert CellPowerLUT.from_models(models, grid_points=129).validate().ok
