"""Property tests for the series-string model and shadow maps.

Four invariants from the string physics, held for any drawn input:

* **Mismatch only loses power** — a string's global MPP can never beat
  the sum of its cells' individual MPPs (series wiring forces one chain
  current; bypass diodes only *reduce* the loss, they cannot create
  gain).
* **Shading depth is monotone** — deepening a fixed shadow pattern
  never raises the string's voltage at a given current, nor its global
  MPP power; and the bypass knee, once carved into the curve, stays
  there as the shadow deepens (up to near-total darkness of the shaded
  cells, where their knee vanishes with their power).
* **Uniform light degenerates exactly** — N identical cells under
  identical light are electrically one cell at N× the voltage: Voc and
  the V(I) curve match ``N * single_cell`` bitwise, the MPP power to a
  few ulp (the string MPP comes from a bisection refine, the single
  cell from the closed-form solver).
* **Shadow maps are pure functions of (seed, t)** — two instances with
  the same seed produce bitwise-identical factor tuples forever, which
  is what makes shaded runs reproducible and checkpointable.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.shading import BlobOcclusion, EdgeSweep, VenetianBlind
from repro.pv.cells import am_1815
from repro.pv.string import CellString

_CELL = am_1815()

_lux = st.floats(min_value=50.0, max_value=50000.0)
_factors = st.lists(
    st.floats(min_value=0.02, max_value=1.0), min_size=2, max_size=5
)


class TestPowerBudget:
    @settings(max_examples=30, deadline=None)
    @given(_lux, _factors)
    def test_string_mpp_never_beats_sum_of_cell_mpps(self, lux, factors):
        model = CellString(_CELL, len(factors)).model_at(lux, factors=factors)
        ceiling = sum(c.mpp().power for c in model.cells)
        assert model.mpp().power <= ceiling * (1.0 + 1e-12) + 1e-15

    @settings(max_examples=30, deadline=None)
    @given(_lux, _factors)
    def test_every_knee_is_below_the_global_mpp(self, lux, factors):
        mpp = CellString(_CELL, len(factors)).model_at(lux, factors=factors).mpp()
        assert mpp.n_knees >= 1
        for _, _, power in mpp.knees:
            assert power <= mpp.power * (1.0 + 1e-12) + 1e-15


class TestShadingDepthMonotone:
    @settings(max_examples=20, deadline=None)
    @given(
        _lux,
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=4),
    )
    def test_deeper_shade_never_raises_voltage_or_power(self, lux, n, k):
        """V(I) and the global MPP are non-increasing in shading depth."""
        k = min(k, n - 1)
        string = CellString(_CELL, n)
        depths = (0.0, 0.25, 0.5, 0.75, 0.9)
        models = [
            string.model_at(lux, factors=[1.0 - d] * k + [1.0] * (n - k))
            for d in depths
        ]
        currents = np.linspace(0.05, 0.95, 5) * models[0].isc()
        # Bisection solves carry a fixed-iteration bracket width; allow it.
        v_tol = 1e-6 * models[0].voc()
        for shallow, deep in zip(models, models[1:]):
            assert deep.mpp().power <= shallow.mpp().power * (1.0 + 1e-12) + 1e-15
            for i in currents:
                assert float(deep.voltage_at(i)) <= float(shallow.voltage_at(i)) + v_tol

    def test_bypass_knee_appears_once_and_persists(self):
        """Knee count transitions 1 -> 2 exactly once as depth grows.

        (Depth is capped at 0.9: at near-total darkness the shaded
        cells' local maximum vanishes along with their power, which is
        correct physics, not a bypass deactivation.)
        """
        string = CellString(_CELL, 4)
        counts = []
        for depth in np.linspace(0.0, 0.9, 19):
            factors = [1.0 - depth, 1.0 - depth, 1.0, 1.0]
            counts.append(string.model_at(1000.0, factors=factors).mpp().n_knees)
        assert counts[0] == 1
        assert counts[-1] == 2
        transitions = sum(1 for a, b in zip(counts, counts[1:]) if a != b)
        assert transitions == 1, f"knee count not monotone: {counts}"


class TestUniformDegeneration:
    @settings(max_examples=30, deadline=None)
    @given(_lux, st.integers(min_value=1, max_value=5))
    def test_uniform_string_is_n_times_single_cell(self, lux, n):
        single = _CELL.model_at(lux)
        string = CellString(_CELL, n).model_at(lux)
        assert string.voc() == n * single.voc()
        currents = np.linspace(0.05, 0.95, 7) * single.isc()
        for i in currents:
            assert float(string.voltage_at(i)) == n * float(single.voltage_at(i))
        assert string.mpp().power == pytest.approx(n * single.mpp().power, rel=5e-15)
        assert string.mpp().n_knees == 1


class TestShadowMapReproducibility:
    _times = [0.0, 17.0, 299.9, 300.0, 3600.0, 86399.0, 7 * 86400.0 - 1.0]

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=8),
    )
    def test_blob_occlusion_bitwise_under_seed(self, seed, n):
        a = BlobOcclusion(n, seed=seed)
        b = BlobOcclusion(n, seed=seed)
        for t in self._times:
            assert a.factors_at(t) == b.factors_at(t)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.floats(0.05, 0.95))
    def test_deterministic_maps_bitwise_across_instances(self, n, depth):
        for make in (
            lambda: EdgeSweep(n, depth=depth),
            lambda: VenetianBlind(n, depth=depth),
        ):
            a, b = make(), make()
            for t in self._times:
                assert a.factors_at(t) == b.factors_at(t)

    def test_different_seeds_diverge(self):
        a = BlobOcclusion(6, seed=1)
        b = BlobOcclusion(6, seed=2)
        assert any(
            a.factors_at(t) != b.factors_at(t)
            for t in np.linspace(0.0, 86400.0, 97)
        )
