"""E13 (extension) — lighting-environment diversity (the body-worn claim).

Evaluates the S&H FOCV system (at the office trim and at the paper's
59.6 % mixed-use trim) against an office-tuned fixed voltage across the
environments a body-worn sensor passes through in a day.
"""

from repro.experiments import spectra


def test_spectra_diversity(benchmark, save_result):
    points = benchmark.pedantic(spectra.run_spectra, rounds=1, iterations=1)

    save_result("spectra_diversity", spectra.render(points))

    by_env = {p.environment: p for p in points}

    # Indoors the office-trimmed FOCV is essentially perfect everywhere —
    # including under spectra it was never tuned for.
    for env in ("office-fluorescent", "retail-LED", "domestic-incandescent"):
        assert by_env[env].focv_efficiency > 0.95, env

    # Outdoors this indoor-optimised cell saturates (k collapses), so the
    # paper's mid-band 59.6 % trim is the robust mixed-use choice:
    assert by_env["outdoor-sun"].paper_trim_efficiency > 0.9
    assert (
        by_env["outdoor-sun"].paper_trim_efficiency
        > by_env["outdoor-sun"].focv_efficiency
    )

    # Energy-weighted across the whole set (outdoor power dominates), the
    # paper trim beats both the office trim and the fixed setpoint.
    def weighted(attribute):
        total = sum(p.pmpp for p in points)
        return sum(getattr(p, attribute) * p.pmpp for p in points) / total

    assert weighted("paper_trim_efficiency") > weighted("focv_efficiency")
    assert weighted("paper_trim_efficiency") > weighted("fixed_efficiency")
