"""E4 / Fig. 4 — detail of a sampling operation at 1000 lux.

Regenerates the oscilloscope capture: PULSE rising for 39 ms, the PV
module relaxing to Voc while disconnected, HELD_SAMPLE updating (with
its small ripple), and the converter resuming at the refreshed setpoint.
"""

import pytest

from repro.experiments import fig4


def test_fig4_sampling_transient(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig4.run_sampling_transient(lux=1000.0), rounds=1, iterations=1
    )

    save_result("fig4_sampling_transient", fig4.render(result))

    assert result.pulse_width == pytest.approx(39e-3, rel=0.05), "39 ms PULSE"
    assert result.pv_peak == pytest.approx(result.true_voc, rel=0.01), (
        "loads disconnect: PV relaxes to Voc"
    )
    assert result.held_after == pytest.approx(0.298 * result.true_voc, rel=0.02), (
        "HELD_SAMPLE lands on the divided open-circuit voltage"
    )
    assert 0.1e-3 < result.ripple < 50e-3, "the paper's 'small ripple'"


def test_fig4_low_light_variant(benchmark, save_result):
    """The same capture at 200 lux — the slower Voc relaxation is why
    the pulse needs its full 39 ms at indoor intensities."""
    result = benchmark.pedantic(
        lambda: fig4.run_sampling_transient(lux=200.0), rounds=1, iterations=1
    )

    save_result("fig4_sampling_transient_200lux", fig4.render(result))

    assert result.pv_peak == pytest.approx(result.true_voc, rel=0.03)
    assert result.held_after == pytest.approx(0.298 * result.true_voc, rel=0.03)
