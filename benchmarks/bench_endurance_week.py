"""E12 (extension) — week-long endurance of the complete harvesting node.

Full stack, seven days: trimmed S&H platform, buck-boost converter,
supercapacitor, and an energy-aware duty-cycled sensor node through five
office days and a daylight-only weekend.  Pass: the node never loses its
store, rides the weekend trough, and ends the week at least as charged
as it began — the paper's "operate indefinitely" purpose statement.
"""

from repro.experiments import endurance
from repro.sim.telemetry import measure, record_perf


def test_endurance_week(benchmark, save_result):
    steps = int(endurance.WEEK / 20.0)

    def timed_run():
        with measure("endurance_week_dt20", steps=steps) as perf:
            result = endurance.run_week(dt=20.0)
        record_perf(perf, note="bench_endurance_week")
        return result

    result = benchmark.pedantic(timed_run, rounds=1, iterations=1)

    save_result("endurance_week", endurance.render(result))

    assert result.survived, "the node must never lose its store"
    assert result.energy_neutral, "the week must end at least as charged"
    assert result.total_reports > 1000, "the node must actually do its job"
    # The weekend trough is real: Saturday harvests far less than Monday.
    assert result.days[5].harvested_j < 0.5 * result.days[0].harvested_j
    # And the scheduler reacts: weekday report counts grow as the store
    # fills, weekend counts do not collapse to zero.
    assert result.days[6].reports > 0
