"""E8 — comparison against the state of the art (paper Sec. I / IV-B).

Regenerates (a) the quiescent-consumption table the paper's introduction
builds its case on, and (b) 24-hour net-harvest league tables for all
nine techniques under the three lighting scenarios.

Expected shape (asserted):
* indoors, every microcontroller/pilot/photodiode-class tracker is
  net-NEGATIVE ("the tracking circuitry itself consumed all of the
  power generated indoors") while the proposed 8 uA S&H nets positive;
* the proposed system's overhead is the smallest of any *tracking*
  technique, and smaller than the fixed-voltage reference IC's;
* outdoors the proposed system is within a few percent of the oracle.
"""

from repro.env.profiles import HOURS
from repro.experiments import comparison
from repro.sim.telemetry import measure, record_perf


def test_quiescent_overhead_table(benchmark, save_result):
    text = benchmark(comparison.render_quiescent)
    save_result("comparison_quiescent", text)

    draws = {name: watts for name, _, watts in comparison.QUIESCENT_CLAIMS}
    proposed = draws["proposed-S&H-FOCV"]
    assert proposed < draws["fixed-voltage [8]"]
    assert proposed < draws["pilot-cell [5]"] / 10.0
    assert proposed < draws["photodiode [6]"] / 50.0
    assert proposed < draws["periodic-uC-FOCV [4]"] / 70.0


def test_24h_comparison_all_scenarios(benchmark, save_result):
    steps = 9 * 3 * int(24.0 * HOURS / 10.0)

    def timed_run():
        with measure("comparison_24h_dt10", steps=steps) as perf:
            results = comparison.run_comparison(duration=24.0 * HOURS, dt=10.0)
        record_perf(perf, note="bench_comparison_sota")
        return results

    results = benchmark.pedantic(timed_run, rounds=1, iterations=1)

    save_result("comparison_24h", comparison.render(results))

    net = comparison.net_energy_by_scenario(results)

    # Indoors: the heavyweight trackers eat themselves ...
    desk = net["office-desk"]
    for heavy in ("hill-climbing", "periodic-uC-FOCV", "photodiode-ref", "pilot-cell"):
        assert desk[heavy] < 0.0, f"{heavy} should be net-negative indoors"
    # ... while the proposed S&H nets positive, and the trimmed variant
    # leads every realisable technique.
    assert desk["proposed-S&H-FOCV"] > 0.0
    best_real = max(v for k, v in desk.items() if k != "ideal-oracle")
    assert desk["proposed-S&H-trimmed"] == best_real

    # Mixed day: proposed still positive and ahead of every heavy tracker.
    mobile = net["semi-mobile"]
    assert mobile["proposed-S&H-FOCV"] > 0.0
    for heavy in ("hill-climbing", "periodic-uC-FOCV", "photodiode-ref"):
        assert mobile["proposed-S&H-FOCV"] > mobile[heavy]

    # Outdoors: proposed within a few percent of the oracle.
    outdoor = net["outdoor"]
    assert outdoor["proposed-S&H-FOCV"] > 0.95 * outdoor["ideal-oracle"]
