"""Perf smoke — a fast throughput gate for the quasi-static engine.

A deliberately short slice of the E8 comparison (one hour, all nine
techniques, all three scenarios) run through the precompute fast path.
It asserts a steps-per-second floor — set far below what the optimised
engine achieves but well above the original per-step path — so a
regression that silently disables the condition cache or the batch
solver fails loudly, and it appends the measurement to the
``BENCH_perf.json`` ledger for cross-PR tracking.
"""

from repro.env.profiles import HOURS
from repro.experiments import comparison
from repro.sim.telemetry import latest, measure, record_perf

# The seed engine managed ~2 100 steps/s on the reference container; the
# precompute+batch path exceeds 20 000.  The floor splits the difference
# with generous headroom for slower CI machines.
STEPS_PER_S_FLOOR = 4000.0


def test_perf_smoke(benchmark, save_result):
    duration = 1.0 * HOURS
    dt = 10.0
    steps = 9 * 3 * int(duration / dt)

    def timed_run():
        with measure("perf_smoke_1h_dt10", steps=steps) as perf:
            results = comparison.run_comparison(duration=duration, dt=dt)
        record_perf(perf, note="bench_perf_smoke")
        return results, perf

    results, perf = benchmark.pedantic(timed_run, rounds=1, iterations=1)

    assert len(results) == 27
    assert all(r.summary.duration == duration for r in results)
    assert perf.steps_per_s > STEPS_PER_S_FLOOR, (
        f"engine throughput regressed: {perf.steps_per_s:.0f} steps/s "
        f"< floor {STEPS_PER_S_FLOOR:.0f}"
    )

    entry = latest("perf_smoke_1h_dt10")
    assert entry is not None and entry["steps"] == steps

    save_result(
        "perf_smoke",
        f"perf smoke: {steps} steps in {perf.wall_s:.2f} s "
        f"({perf.steps_per_s:.0f} steps/s; floor {STEPS_PER_S_FLOOR:.0f})",
    )
