"""Perf smoke — a fast throughput gate for the quasi-static engine.

A deliberately short slice of the E8 comparison (one hour, all nine
techniques, all three scenarios) run through the precompute fast path.
It asserts a steps-per-second floor — set far below what the optimised
engine achieves but well above the original per-step path — so a
regression that silently disables the condition cache or the batch
solver fails loudly, and it appends the measurement to the
``BENCH_perf.json`` ledger for cross-PR tracking.

``test_obs_overhead`` is the companion gate for the observability
layer: the same slice with :mod:`repro.obs` enabled must stay within
10 % of the disabled run (min-of-rounds on both sides to shave timing
noise), and the enabled measurement lands in the ledger with its
counters attached so the trajectory records *why* throughput moved.

On top of the static floor, each run is checked against the *ledger*:
if throughput drops below 50 % of the last entry recorded for the same
experiment key on the same host fingerprint, the smoke test fails
before the regressed figure is appended.  Entries from other machines
(or from before fingerprints existed) are skipped, so the gate never
trips on a fresh runner.
"""

import time

import repro.obs as obs
from repro.env.profiles import HOURS
from repro.experiments import comparison
from repro.obs import export
from repro.sim.telemetry import (
    check_throughput_regression,
    latest,
    measure,
    record_perf,
)

# The seed engine managed ~2 100 steps/s on the reference container; the
# precompute+batch path exceeds 20 000.  The floor splits the difference
# with generous headroom for slower CI machines.
STEPS_PER_S_FLOOR = 4000.0

# Ledger gate: fail when throughput halves relative to the last entry
# recorded for the same experiment key on this host.
REGRESSION_FLOOR_FRACTION = 0.5


def test_perf_smoke(benchmark, save_result):
    duration = 1.0 * HOURS
    dt = 10.0
    steps = 9 * 3 * int(duration / dt)

    def timed_run():
        with measure("perf_smoke_1h_dt10", steps=steps) as perf:
            results = comparison.run_comparison(duration=duration, dt=dt)
        regression = check_throughput_regression(
            perf, floor_fraction=REGRESSION_FLOOR_FRACTION
        )
        record_perf(perf, note="bench_perf_smoke")
        return results, perf, regression

    results, perf, regression = benchmark.pedantic(timed_run, rounds=1, iterations=1)

    assert regression is None, regression

    assert len(results) == 27
    assert all(r.summary.duration == duration for r in results)
    assert perf.steps_per_s > STEPS_PER_S_FLOOR, (
        f"engine throughput regressed: {perf.steps_per_s:.0f} steps/s "
        f"< floor {STEPS_PER_S_FLOOR:.0f}"
    )

    entry = latest("perf_smoke_1h_dt10")
    assert entry is not None and entry["steps"] == steps

    save_result(
        "perf_smoke",
        f"perf smoke: {steps} steps in {perf.wall_s:.2f} s "
        f"({perf.steps_per_s:.0f} steps/s; floor {STEPS_PER_S_FLOOR:.0f})",
    )


# Compiled-tier smoke: the same one-hour slice through the fused-kernel
# + LUT engine.  The cold pass (program build: precompute, LUT fit and
# validation, lane compilation, JIT when numba is present) is recorded
# under its own ledger key and never floor-gated; the warm pass must
# clear a floor an order of magnitude above the scalar gate.  The full
# 215 k steps/s acceptance gate lives in bench_compiled_comparison.py
# on the 24 h workload, where per-call overhead amortises out.
COMPILED_SMOKE_FLOOR = 50_000.0


def test_perf_smoke_compiled(save_result):
    from repro.sim.compiled import HAVE_NUMBA, clear_program_cache

    duration = 1.0 * HOURS
    dt = 10.0
    steps = 9 * 3 * int(duration / dt)
    backend = "numba-jitted" if HAVE_NUMBA else "interpreted fallback"

    clear_program_cache()
    with measure("perf_smoke_compiled_1h_dt10_cold", steps=steps) as cold:
        cold_results = comparison.run_comparison(
            duration=duration, dt=dt, engine="compiled"
        )
    record_perf(cold, note=f"cold: program build ({backend})")

    with measure("perf_smoke_compiled_1h_dt10", steps=steps) as warm:
        results = comparison.run_comparison(
            duration=duration, dt=dt, engine="compiled"
        )
    regression = check_throughput_regression(
        warm, floor_fraction=REGRESSION_FLOOR_FRACTION
    )
    record_perf(warm, note=f"warm kernels ({backend})")
    assert regression is None, regression

    assert len(cold_results) == len(results) == 27
    for a, b in zip(cold_results, results):
        assert a.summary.energy_delivered == b.summary.energy_delivered

    assert warm.steps_per_s > COMPILED_SMOKE_FLOOR, (
        f"compiled tier smoke regressed: {warm.steps_per_s:.0f} steps/s "
        f"< floor {COMPILED_SMOKE_FLOOR:.0f} ({backend})"
    )
    save_result(
        "perf_smoke_compiled",
        f"compiled perf smoke ({backend}): {steps} steps — "
        f"cold {cold.wall_s:.3f} s ({cold.steps_per_s:.0f}/s), "
        f"warm {warm.wall_s:.3f} s ({warm.steps_per_s:.0f}/s; "
        f"floor {COMPILED_SMOKE_FLOOR:.0f})",
    )


# Instrumentation budget: enabled-vs-disabled wall time on the smoke
# slice.  The hooks pattern costs one attribute load + None test per
# site when disabled and the tracer samples ~16 steps per run when
# enabled (true cost measured ≈4 %), so 10 % is generous — a regression
# here means someone put per-step work on the hot path.
OBS_OVERHEAD_CEILING = 1.10
_ROUNDS = 4


def _one_run(duration: float, dt: float) -> float:
    t0 = time.perf_counter()
    comparison.run_comparison(duration=duration, dt=dt)
    return time.perf_counter() - t0


def test_obs_overhead(save_result):
    duration = 1.0 * HOURS
    dt = 10.0
    steps = 9 * 3 * int(duration / dt)

    assert not obs.is_enabled()
    _one_run(duration, dt)  # warm-up: imports, allocator, branch caches

    # Interleave the two modes and take min-of-rounds on both sides:
    # back-to-back A/A then B/B measurement folds machine-wide drift
    # (thermal, frequency scaling) straight into the ratio.
    disabled_s = enabled_s = float("inf")
    counters = {}
    try:
        for _ in range(_ROUNDS):
            obs.disable()
            disabled_s = min(disabled_s, _one_run(duration, dt))
            obs.reset()
            obs.enable()
            enabled_s = min(enabled_s, _one_run(duration, dt))
            counters = export.counters_dict()
    finally:
        obs.disable()
        obs.reset()

    with measure("perf_smoke_obs_1h_dt10", steps=steps) as perf:
        pass
    perf.wall_s = enabled_s
    regression = check_throughput_regression(
        perf, floor_fraction=REGRESSION_FLOOR_FRACTION
    )
    record_perf(perf, note="obs enabled (min of rounds)", counters=counters)
    assert regression is None, regression

    assert counters.get("solver.lambertw_calls", 0) > 0
    ratio = enabled_s / disabled_s
    save_result(
        "obs_overhead",
        f"obs overhead: enabled {enabled_s:.3f} s vs disabled {disabled_s:.3f} s "
        f"(x{ratio:.3f}; ceiling x{OBS_OVERHEAD_CEILING:.2f})",
    )
    assert ratio <= OBS_OVERHEAD_CEILING, (
        f"observability overhead too high: enabled/disabled = {ratio:.3f} "
        f"> {OBS_OVERHEAD_CEILING}"
    )
