"""E11 (extension) — component-tolerance Monte Carlo over the S&H chain.

Table I's k spread (59.2–60.1 %) is explainable by ordinary component
variation: 1 %-class divider resistors, millivolt-class buffer offsets,
charge-injection spread, and capacitor tolerance.  This bench samples a
production run of virtual boards and compares the population's k band
against the paper's measured band.
"""

from repro.analysis.montecarlo import render_montecarlo, run_sample_hold_montecarlo
from repro.sim.telemetry import measure, record_perf


def test_tolerance_montecarlo(benchmark, save_result):
    def timed_run():
        with measure("tolerance_montecarlo_500", steps=500) as perf:
            result = run_sample_hold_montecarlo(boards=500)
        record_perf(perf, note="bench_tolerance_montecarlo")
        return result

    result = benchmark.pedantic(timed_run, rounds=1, iterations=1)

    save_result("tolerance_montecarlo", render_montecarlo(result))

    # The population's 99 % band has the same width class as the paper's
    # measured 0.9-point band, centred on the design trim.
    lo, hi = result.k_band(0.99)
    assert 0.3 < hi - lo < 2.5, "band width should be Table-I class"
    assert abs(result.mean_k - 59.6) < 1.0, "population centred near the trim"
    # Most boards land inside (or near) the paper's band without any
    # per-board trimming — and R2's trimmer exists to fix the rest.
    assert result.yield_within(58.7, 60.6) > 0.9


def test_tolerance_sensitivity_offsets_dominate(benchmark, save_result):
    """Which tolerance dominates?  Re-run with each source isolated."""
    from repro.analysis.montecarlo import ToleranceSpec

    def isolated(**kwargs):
        base = dict(
            resistor_tolerance=0.0,
            offset_sigma_v=0.0,
            charge_injection_sigma=0.0,
            capacitor_tolerance=0.0,
        )
        base.update(kwargs)
        return run_sample_hold_montecarlo(
            boards=300, tolerances=ToleranceSpec(**base)
        ).sigma_k

    sigmas = benchmark.pedantic(
        lambda: {
            "resistors(1%)": isolated(resistor_tolerance=0.01 / 3.0),
            "offsets(1mV)": isolated(offset_sigma_v=1e-3),
            "injection(30%)": isolated(charge_injection_sigma=0.3),
            "capacitor(5%)": isolated(capacitor_tolerance=0.05 / 3.0),
        },
        rounds=1,
        iterations=1,
    )

    from repro.analysis.reporting import format_table

    rows = [[name, f"{sigma:.4f}"] for name, sigma in sorted(
        sigmas.items(), key=lambda kv: -kv[1]
    )]
    save_result(
        "tolerance_sensitivity",
        format_table(["tolerance source", "sigma_k (pp)"], rows,
                     title="E11 — which component tolerance dominates the k spread"),
    )

    # Divider resistors are the dominant term — the engineering reason
    # the paper replaces R2 with a trimmer.
    assert sigmas["resistors(1%)"] == max(sigmas.values())
