"""E2 / Fig. 2 — 24-hour open-circuit-voltage logs.

Regenerates both logged scenarios (office desk with blinds closed;
semi-mobile day with the lunchtime outdoor excursion) as hourly summary
rows, and checks the two human-visible events the paper points at:
sunrise and the end-of-day lights-off step.
"""

from repro.experiments import fig2


def test_fig2_desk_log(benchmark, save_result):
    log = benchmark.pedantic(lambda: fig2.run_log("desk", dt=10.0), rounds=1, iterations=1)

    save_result("fig2_desk_log", fig2.render(log))

    events = fig2.detect_events(log)
    assert events["sunrise"] is not None, "sunrise must be identifiable"
    assert events["lights_off"] is not None, "lights-off must be identifiable"


def test_fig2_semi_mobile_log(benchmark, save_result):
    log = benchmark.pedantic(
        lambda: fig2.run_log("semi-mobile", dt=10.0), rounds=1, iterations=1
    )

    save_result("fig2_semi_mobile_log", fig2.render(log))

    import numpy as np

    lunch = (log.times > 12.2 * 3600) & (log.times < 12.8 * 3600)
    morning = (log.times > 10.0 * 3600) & (log.times < 11.0 * 3600)
    assert np.mean(log.lux[lunch]) > 10.0 * np.mean(log.lux[morning]), (
        "the outdoor excursion must dominate indoor light by an order of magnitude"
    )
