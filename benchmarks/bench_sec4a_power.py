"""E6 / Sec. IV-A — astable timing and current-draw measurement.

Regenerates the bench measurements: 39 ms / 69 s astable timing, the
7.6 uA astable + S&H average draw, the ~8 uA total metrology draw, and
the "<18 % of the cell's 200-lux output" comparison — plus the itemised
budget behind the totals.
"""

import pytest

from repro.experiments import sec4a


def test_sec4a_power_measurement(benchmark, save_result):
    result = benchmark.pedantic(sec4a.run_power_measurement, rounds=1, iterations=1)

    save_result("sec4a_power", sec4a.render(result))

    assert result.t_on == pytest.approx(39e-3, rel=0.01), "astable 'on' period"
    assert result.t_off == pytest.approx(69.0, rel=0.01), "astable 'off' period"
    assert result.chain_current == pytest.approx(7.6e-6, rel=0.02), "7.6 uA chain"
    assert result.metrology_current == pytest.approx(8e-6, rel=0.08), "~8 uA total"
    assert result.cell_op_current_200lux == pytest.approx(42e-6, rel=0.02), "42 uA op point"
    assert result.overhead_fraction_200lux < 0.20, "<~18 % of the cell's current"


def test_sec4a_budget_breakdown(benchmark, save_result):
    from repro.analysis.power_budget import proposed_platform_budget

    budget = benchmark(proposed_platform_budget)
    save_result("sec4a_budget", budget.render())

    # The buffers dominate; the comparators come next; passives are noise.
    assert budget.total_current("sample-hold") > budget.total_current("astable")
    assert budget.total_current("astable") > 0.5e-6
