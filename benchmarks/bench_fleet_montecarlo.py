"""Fleet-engine gate — vectorized Monte Carlo vs the process pool.

The fleet engine's pitch is that one NumPy pass over a population beats
fanning per-board scalar circuits across a process pool: no pickling,
no worker start-up, no per-board Python interpreter time.  This bench
holds it to that pitch at the scale where the pool is supposed to shine
(256 boards, 4 workers): the fleet path must clear **5x** the pool's
boards-per-second, the two populations must agree to solver tolerance,
and both measurements land in ``BENCH_perf.json`` so the ratio is
tracked across PRs.
"""

import numpy as np

from repro.analysis.montecarlo import run_sample_hold_montecarlo
from repro.sim.telemetry import measure, record_perf

BOARDS = 256
POOL_WORKERS = 4
MIN_SPEEDUP = 5.0
_FLEET_ROUNDS = 3


def test_fleet_montecarlo_speedup(benchmark, save_result):
    # Warm both paths once: imports, the pool's worker spawn machinery,
    # NumPy's allocator.  The measured rounds then time steady state.
    run_sample_hold_montecarlo(boards=8, engine="fleet")
    run_sample_hold_montecarlo(boards=8, workers=2, engine="scalar")

    def timed_run():
        with measure("montecarlo_pool_256", steps=BOARDS) as pool_perf:
            pool_result = run_sample_hold_montecarlo(
                boards=BOARDS, workers=POOL_WORKERS, engine="scalar"
            )
        record_perf(pool_perf, note="process pool, 4 workers")

        fleet_result = None
        best = None
        for _ in range(_FLEET_ROUNDS):
            with measure("fleet_montecarlo_256", steps=BOARDS) as fleet_perf:
                fleet_result = run_sample_hold_montecarlo(
                    boards=BOARDS, engine="fleet"
                )
            if best is None or fleet_perf.wall_s < best.wall_s:
                best = fleet_perf
        record_perf(best, note=f"fleet engine (min of {_FLEET_ROUNDS})")
        return pool_result, pool_perf, fleet_result, best

    pool_result, pool_perf, fleet_result, fleet_perf = benchmark.pedantic(
        timed_run, rounds=1, iterations=1
    )

    # Same draw matrix, same physics: the populations agree to solver
    # tolerance (the fleet replaces the per-board MNA solve with a
    # vectorized bisection of the same load line).
    assert np.allclose(
        np.asarray(pool_result.ratios),
        np.asarray(fleet_result.ratios),
        rtol=1e-9,
        atol=1e-12,
    ), "fleet and pool populations diverged"

    speedup = fleet_perf.steps_per_s / pool_perf.steps_per_s
    save_result(
        "fleet_montecarlo",
        f"fleet MC: {BOARDS} boards in {fleet_perf.wall_s:.3f} s "
        f"({fleet_perf.steps_per_s:.0f} boards/s) vs pool "
        f"{pool_perf.wall_s:.3f} s ({pool_perf.steps_per_s:.0f} boards/s) "
        f"— x{speedup:.1f} (gate x{MIN_SPEEDUP:.0f})",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fleet engine speedup regressed: x{speedup:.2f} over the pool "
        f"< required x{MIN_SPEEDUP:.1f}"
    )
