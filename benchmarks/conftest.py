"""Shared infrastructure for the benchmark harness.

Each bench regenerates one of the paper's tables/figures, times the
computation with pytest-benchmark, prints the rendered rows, and saves
them under ``benchmarks/results/`` so EXPERIMENTS.md can reference a
durable artefact.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table and echo it to the console."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
