"""E9 — ablations of the design choices the paper argues for.

1. Hold period: Eq. (2) staleness vs per-sample overhead (the >60 s rule).
2. k trim: harvested-power sensitivity to the R2 potentiometer setting.
3. Hold-capacitor dielectric: why the paper names "low-leakage polyester".
4. Divider impedance: loading error vs settling vs quiescent current
   (why megohms and a 39 ms pulse).
"""

from repro.experiments import ablation, fig2


def test_ablation_hold_period(benchmark, save_result):
    log = fig2.run_log("semi-mobile", dt=10.0)
    points = benchmark.pedantic(
        lambda: ablation.hold_period_tradeoff(log), rounds=1, iterations=1
    )

    save_result("ablation_hold_period", ablation.render_hold_period(points))

    by_period = {p.period_seconds: p for p in points}
    # Staleness error grows with the period; sampling overhead shrinks.
    assert by_period[3600.0].voc_error_v > by_period[5.0].voc_error_v
    assert by_period[3600.0].overhead_energy_per_hour < by_period[5.0].overhead_energy_per_hour
    # At the paper's 69 s-class period the duty loss is already negligible.
    assert by_period[60.0].duty_loss < 1e-3


def test_ablation_k_trim(benchmark, save_result):
    points = benchmark.pedantic(ablation.k_trim_sweep, rounds=1, iterations=1)

    save_result("ablation_k_trim", ablation.render_k_trim(points))

    # The efficiency surface is a broad plateau: the best trim at 200 lux
    # and at 5000 lux differ, but both achieve >95 % somewhere in the
    # 0.5..0.8 trim range — the "easily trimmed to any desired k" claim.
    best_200 = max(p.efficiency_by_lux[200.0] for p in points)
    best_5000 = max(p.efficiency_by_lux[5000.0] for p in points)
    assert best_200 > 0.95
    assert best_5000 > 0.95


def test_ablation_dielectric(benchmark, save_result):
    points = benchmark.pedantic(ablation.dielectric_sweep, rounds=1, iterations=1)

    save_result("ablation_dielectric", ablation.render_dielectrics(points))

    by_name = {p.dielectric: p for p in points}
    # Polyester: sub-1 % droop over a hold.  Electrolytic: unusable.
    assert by_name["polyester-film"].droop_fraction < 0.01
    assert by_name["aluminium-electrolytic"].droop_fraction > 0.5
    assert (
        by_name["polyester-film"].droop_v
        < by_name["ceramic-X7R"].droop_v
        < by_name["aluminium-electrolytic"].droop_v
    )


def test_ablation_divider_impedance(benchmark, save_result):
    points = benchmark.pedantic(ablation.divider_impedance_sweep, rounds=1, iterations=1)

    save_result("ablation_divider", ablation.render_divider(points))

    by_total = {p.total_ohms: p for p in points}
    # Low impedance: loading error dominates.  High impedance: settling
    # outgrows the 39 ms pulse.  The paper's megohm class fits both.
    assert by_total[1e6].loading_error_v > by_total[100e6].loading_error_v
    assert by_total[10e6].sample_fits_pulse
    assert by_total[1e6].duty_weighted_current_a > by_total[100e6].duty_weighted_current_a


def test_ablation_step_response(benchmark, save_result):
    points = benchmark.pedantic(ablation.step_response_sweep, rounds=1, iterations=1)

    save_result("ablation_step_response", ablation.render_step_response(points))

    # The dynamic form of the Sec. II-B conclusion: even with half-hour
    # holds, a 300 lux -> 20 klux step costs only a few percent.
    for p in points:
        assert p.recovery_energy_fraction > 0.9, f"{p.hold_period} s"
    # And the spread across two decades of hold period is small.
    fractions = [p.recovery_energy_fraction for p in points]
    assert max(fractions) - min(fractions) < 0.08
