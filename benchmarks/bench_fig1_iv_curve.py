"""E1 / Fig. 1 — I-V curve of the Schott 1116929 under artificial light.

Regenerates the paper's figure as a printed (V, I, P) series with the
MPP located at 1000 lux, plus characteristic-point rows at the context
intensities.  Shape assertions: monotone current, unimodal power, a-Si
k band.
"""

import numpy as np

from repro.experiments import fig1


def test_fig1_iv_curve(benchmark, save_result):
    results = benchmark.pedantic(fig1.run_iv_curves, rounds=1, iterations=1)

    save_result("fig1_iv_curve", fig1.render(results))

    r = results[1000.0]
    assert np.all(np.diff(r.currents) <= 1e-12), "I-V must be monotone"
    peak = int(np.argmax(r.powers))
    assert 0 < peak < len(r.powers) - 1, "P-V must peak inside the sweep"
    assert 0.55 < r.mpp.k < 0.85, "a-Si fractional-Voc band"


def test_fig1_mpp_solve_speed(benchmark):
    """Microbenchmark: one MPP solve on the calibrated Schott curve."""
    from repro.pv.cells import schott_1116929

    model = schott_1116929().model_at(1000.0)
    mpp = benchmark(model.mpp)
    assert mpp.power > 0.0
