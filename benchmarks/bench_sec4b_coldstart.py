"""E7 / Sec. IV-B — cold-start evaluation.

Regenerates the cold-start milestones (metrology wake, first PULSE,
ACTIVE release) across intensities, including the paper's 200-lux
observation point, and reports the minimum intensity at which the
simulated circuit cold-starts at all (the paper's 200 lux was its
bench's floor, not the circuit's).
"""

from repro.experiments import sec4b


def test_sec4b_cold_start_sweep(benchmark, save_result):
    results = benchmark.pedantic(
        lambda: sec4b.run_sweep(lux_levels=(50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0),
                                dt=5e-4, timeout=90.0),
        rounds=1,
        iterations=1,
    )

    save_result("sec4b_coldstart", sec4b.render(results))

    by_lux = {r.lux: r for r in results}
    # The paper's observation: cold start at 200 lux, with PULSE soon after.
    assert by_lux[200.0].succeeded
    assert by_lux[200.0].t_powered < 5.0
    assert by_lux[200.0].t_first_pulse - by_lux[200.0].t_powered < 1.0
    # Brighter light starts faster.
    assert by_lux[5000.0].t_powered < by_lux[200.0].t_powered


def test_sec4b_minimum_coldstart_lux(benchmark, save_result):
    minimum = benchmark.pedantic(
        lambda: sec4b.minimum_cold_start_lux(lo=10.0, hi=400.0, timeout=90.0),
        rounds=1,
        iterations=1,
    )

    save_result(
        "sec4b_minimum_lux",
        f"Minimum cold-start intensity (simulated): {minimum:.0f} lux\n"
        f"(paper observed cold start down to its bench floor of 200 lux)",
    )

    # Must cold-start at or below the paper's observed floor.
    assert minimum <= 200.0
