"""E5 / Table I — test of tracking accuracy.

Regenerates the paper's table: Voc, HELD_SAMPLE, and k at twelve
intensities from 200 to 5000 lux (three repeats, means reported),
printed alongside the published columns.
"""

import pytest

from repro.experiments import table1


def test_table1_tracking_accuracy(benchmark, save_result):
    rows = benchmark.pedantic(table1.run_table1, rounds=1, iterations=1)

    save_result("table1_tracking", table1.render(rows))

    # Every Voc within 1 % and every HELD within 2 % of the paper.
    for row in rows:
        paper_voc, paper_held, paper_k = table1.PAPER_TABLE1[int(row.lux)]
        assert row.voc == pytest.approx(paper_voc, rel=0.01), f"Voc @ {row.lux} lux"
        assert row.held == pytest.approx(paper_held, rel=0.02), f"HELD @ {row.lux} lux"

    # The paper's headline: all k in 59.2..60.1 % (we allow the same
    # width shifted by our bench-noise realisation).
    lo, hi = table1.k_band(rows)
    assert lo > 58.7 and hi < 60.6, f"k band {lo:.1f}..{hi:.1f} outside tolerance"


def test_table1_single_point_speed(benchmark):
    """Microbenchmark: one full sample-and-measure at one intensity."""
    rows = benchmark(lambda: table1.run_table1(lux_levels=(1000.0,), repeats=1))
    assert len(rows) == 1
