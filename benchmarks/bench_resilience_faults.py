"""E15 (extension) — fault-injection resilience of the nine techniques.

Runs the comparison under the builtin fault campaigns (light dropouts,
flicker bursts, irradiance ramp, converter brownout, storage short,
component drift) plus the blackout-recovery and flicker cold-start
probes, and asserts the robustness shape the paper's architecture
implies: the S&H FOCV front-end rides through light faults with high
energy retention and recovers from a blackout within one sampling
period.
"""

from repro.env.profiles import HOURS
from repro.experiments import resilience

TECHNIQUES = [
    "ideal-oracle",
    "proposed-S&H-FOCV",
    "hill-climbing",
    "fixed-voltage",
    "no-MPPT-direct",
]


def test_resilience_faults(benchmark, save_result):
    report = benchmark.pedantic(
        lambda: resilience.run_resilience(
            duration=24.0 * HOURS,
            dt=60.0,
            techniques=TECHNIQUES,
            scenarios=["office-desk", "outdoor"],
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    save_result("resilience_faults", resilience.render(report))

    # Light dropouts cost energy — retention stays below 1 but the
    # tracking techniques keep the large majority of the clean harvest
    # (the faults are ~6 min/h worst case).
    for scenario in ("office-desk", "outdoor"):
        r = report.retention("light-dropout", scenario, "proposed-S&H-FOCV")
        assert 0.5 < r < 1.001, f"{scenario}: retention {r}"

    # A browned-out converter loses exactly the windows it is out —
    # bounded degradation, not collapse.
    assert report.retention("converter-brownout", "outdoor", "proposed-S&H-FOCV") > 0.8

    # The S&H holds its sample through a 10-minute blackout and is back
    # on the MPP within one astable period of the light returning.
    focv = next(r for r in report.recovery if r.technique == "proposed-S&H-FOCV")
    assert focv.recovered and focv.recovery_time < 120.0

    # The cold-start margin probe must stay discriminating: neither
    # total failure nor saturation at the deliberately-hard settings.
    assert report.coldstart is not None
    assert 0 < report.coldstart.successes < report.coldstart.attempts
