"""E15 (extension) — the title claim as a map: tracking efficiency over
the full (illuminance, cell-temperature) operating envelope."""

from repro.experiments import envelope


def test_operating_envelope(benchmark, save_result):
    result = benchmark.pedantic(envelope.run_envelope, rounds=1, iterations=1)

    save_result("operating_envelope", envelope.render(result))

    # "Indoor and outdoor": no cliff anywhere on the plane — the paper
    # trim keeps harvesting from 100 lux at 0 degC to full sun at 55 degC.
    assert result.worst > 0.7
    assert result.best > 0.98
    # Efficiency is finite and sane everywhere.
    import numpy as np

    assert np.all((result.efficiency > 0.0) & (result.efficiency <= 1.0))
