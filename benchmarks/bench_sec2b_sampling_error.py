"""E3 / Sec. II-B — Eq. (2) worst-case mean sampling error.

Regenerates the paper's two headline numbers (12.7 mV desk / 24.1 mV
semi-mobile at a 1-minute hold) over our synthetic logs, the MPP-error
mapping, the <1 % efficiency-loss conclusion, and the hold-period sweep
behind the ">60 s is fine" design decision.
"""

from repro.analysis.reporting import format_table
from repro.experiments import fig2, sec2b


def test_sec2b_paper_points(benchmark, save_result):
    desk_result, mobile_result = benchmark.pedantic(
        lambda: sec2b.run_paper_points(dt=10.0), rounds=1, iterations=1
    )

    save_result("sec2b_sampling_error", sec2b.render([desk_result, mobile_result]))

    # Shape: same order of magnitude as the paper's 12.7 / 24.1 mV,
    # mobile worse than desk, and both under 1 % efficiency loss.
    assert 3e-3 < desk_result.mean_error_v < 40e-3
    assert 8e-3 < mobile_result.mean_error_v < 80e-3
    assert mobile_result.mean_error_v > desk_result.mean_error_v
    assert desk_result.efficiency_loss < 0.01
    assert mobile_result.efficiency_loss < 0.01


def test_sec2b_period_sweep(benchmark, save_result):
    log = fig2.run_log("semi-mobile", dt=10.0)
    periods = (10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0)

    errors = benchmark.pedantic(
        lambda: sec2b.period_sweep(log, periods), rounds=1, iterations=1
    )

    rows = [
        [f"{p:.0f}", f"{e * 1e3:.1f}"] for p, e in zip(periods, errors)
    ]
    save_result(
        "sec2b_period_sweep",
        format_table(["period(s)", "E_voc(mV)"], rows,
                     title="Sec.II-B — Eq.(2) error vs hold period (semi-mobile log)"),
    )

    assert all(b >= a for a, b in zip(errors, errors[1:])), "error grows with period"
