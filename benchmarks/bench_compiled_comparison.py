"""Compiled-tier throughput gate: the full 24 h comparison at dt=10.

The ISSUE 6 acceptance target: the fused-kernel + LUT engine must
sustain **>= 215 000 quasi-static steps per second** on the canonical
E8 workload (9 techniques x 3 scenarios x 8 640 steps = 233 280 steps),
measured *warm* — i.e. with the per-scenario program cache populated.

Warm and cold are recorded as separate ledger entries because they
answer different questions:

* ``compiled_comparison_24h_dt10_cold`` — first run from an empty
  program cache: batch Lambert-W precompute, LUT build + validation
  gate, lane compilation (and Numba JIT when numba is importable).
  This is the fixed setup cost a user pays once per (cell, scenario,
  horizon) tuple.
* ``compiled_comparison_24h_dt10`` — the steady-state figure the
  215 k floor applies to, and the one the ledger-relative regression
  gate (same rules as bench_perf_smoke: fail under 50 % of the last
  same-host entry) tracks across PRs.

Folding the two into one number would let a JIT/cache regression hide
inside warm throughput headroom, or a kernel regression hide behind a
faster build.
"""

from repro.env.profiles import HOURS
from repro.experiments import comparison
from repro.sim.compiled import HAVE_NUMBA, clear_program_cache
from repro.sim.telemetry import (
    check_throughput_regression,
    latest,
    measure,
    record_perf,
)

DURATION = 24.0 * HOURS
DT = 10.0
STEPS = 9 * 3 * int(DURATION / DT)  # 233 280

# The ISSUE 6 acceptance floor.  The interpreted (no-numba) kernels
# clear it with ~4x headroom on the reference container; numba-jitted
# kernels clear it by far more.  A machine that cannot hold 215 k
# steps/s warm is a genuine regression, not timing noise.
COMPILED_STEPS_PER_S_FLOOR = 215_000.0

REGRESSION_FLOOR_FRACTION = 0.5


def _run():
    return comparison.run_comparison(duration=DURATION, dt=DT, engine="compiled")


def test_compiled_comparison_throughput(benchmark, save_result):
    backend = "numba-jitted" if HAVE_NUMBA else "interpreted fallback"

    def timed_run():
        # Cold: empty program cache -> precompute + LUT build +
        # validation (+ JIT).  Recorded, never floor-gated: setup cost
        # is machine- and backend-dependent by design.
        clear_program_cache()
        with measure("compiled_comparison_24h_dt10_cold", steps=STEPS) as cold:
            cold_results = _run()
        record_perf(cold, note=f"cold: precompute + LUT build ({backend})")

        # Warm: the cache hit path — pure kernel throughput.
        with measure("compiled_comparison_24h_dt10", steps=STEPS) as warm:
            results = _run()
        regression = check_throughput_regression(
            warm, floor_fraction=REGRESSION_FLOOR_FRACTION
        )
        record_perf(warm, note=f"warm kernels ({backend})")
        return cold_results, results, cold, warm, regression

    cold_results, results, cold, warm, regression = benchmark.pedantic(
        timed_run, rounds=1, iterations=1
    )

    assert regression is None, regression
    assert len(cold_results) == len(results) == 27
    assert all(r.summary.duration == DURATION for r in results)
    # Same cache state or not, the physics must not move a bit.
    for a, b in zip(cold_results, results):
        assert a.summary.energy_delivered == b.summary.energy_delivered

    assert warm.steps_per_s >= COMPILED_STEPS_PER_S_FLOOR, (
        f"compiled tier too slow: {warm.steps_per_s:.0f} steps/s warm "
        f"< floor {COMPILED_STEPS_PER_S_FLOOR:.0f} ({backend})"
    )

    entry = latest("compiled_comparison_24h_dt10")
    assert entry is not None and entry["steps"] == STEPS

    save_result(
        "compiled_comparison_perf",
        f"compiled comparison ({backend}): {STEPS} steps\n"
        f"  cold (build + first run): {cold.wall_s:.2f} s "
        f"({cold.steps_per_s:.0f} steps/s)\n"
        f"  warm (cached programs):   {warm.wall_s:.2f} s "
        f"({warm.steps_per_s:.0f} steps/s; floor "
        f"{COMPILED_STEPS_PER_S_FLOOR:.0f})",
    )
