"""E14 (extension) — cell-aging robustness of factory-tuned harvesters.

Ages the AM-1815 over a 20-year deployment (photocurrent loss + series-
resistance growth) and measures how much of the shrinking MPP each
factory-tuned technique keeps capturing, indoors and at high intensity.
"""

from repro.experiments import aging


def test_aging_robustness(benchmark, save_result):
    def run_both():
        indoor = aging.run_aging(lux=500.0, years=(0.0, 5.0, 10.0, 20.0))
        bright = aging.run_aging(
            lux=5000.0, rs_growth_per_year=0.08, years=(0.0, 5.0, 10.0, 20.0)
        )
        return indoor, bright

    indoor, bright = benchmark.pedantic(run_both, rounds=1, iterations=1)

    save_result(
        "aging_robustness",
        aging.render(indoor, lux=500.0) + "\n\n" + aging.render(bright, lux=5000.0),
    )

    # FOCV never falls meaningfully below the factory-fixed setpoint at
    # any age (at year 0 both are at the fresh MPP, modulo the S&H's
    # sub-0.01 % sampling non-idealities)...
    for point_set in (indoor, bright):
        for p in point_set:
            assert p.focv_efficiency >= p.fixed_efficiency - 1e-3, f"{p.years} yr"
    # ...and indoors the broad a-Si curve keeps both essentially perfect.
    assert all(p.focv_efficiency > 0.99 for p in indoor)
    # At high intensity, Rs-type aging costs real efficiency (the honest
    # finding: FOCV cannot see Rs-driven Vmpp shifts, only Voc shifts).
    assert bright[-1].focv_efficiency < 0.95
    # Available power itself shrinks with age.
    assert bright[-1].pmpp < 0.6 * bright[0].pmpp
