"""E10 — the TEG-applicability extension (paper Sec. I).

Drives the unmodified S&H chain (divider retrimmed to k*alpha = 0.25)
from a thermoelectric generator across a temperature-differential sweep.
For a Thevenin source FOCV with k = 0.5 is exact, so tracking efficiency
should approach 100 % once Voc clears the offset floor of the buffers.
"""

from repro.experiments import teg


def test_teg_extension_sweep(benchmark, save_result):
    points = benchmark.pedantic(teg.run_teg_sweep, rounds=1, iterations=1)

    save_result("teg_extension", teg.render(points))

    by_dt = {p.delta_t: p for p in points}
    # Above a few kelvin the S&H tracks the exact MPP almost perfectly.
    assert by_dt[10.0].tracking_efficiency > 0.99
    assert by_dt[40.0].tracking_efficiency > 0.999
    # Held value is half-of-half the open-circuit voltage.
    assert abs(by_dt[20.0].held - 0.25 * by_dt[20.0].voc) < 0.01
    # Efficiency grows with delta-T (offsets amortise).
    effs = [p.tracking_efficiency for p in sorted(points, key=lambda p: p.delta_t)]
    assert all(b >= a - 1e-9 for a, b in zip(effs, effs[1:]))
