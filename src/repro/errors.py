"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelParameterError(ReproError, ValueError):
    """A device or circuit model was constructed with invalid parameters."""


class ConvergenceError(ReproError, RuntimeError):
    """A numerical solve (Newton, bisection, MNA) failed to converge."""

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class OperatingPointError(ReproError, ValueError):
    """A requested electrical operating point is outside the device's range."""


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent or impossible state."""


class ColdStartError(SimulationError):
    """The system failed to cold-start within the allotted simulation window."""


class NumericalGuardError(SimulationError):
    """A simulated quantity went non-finite (NaN/Inf) — the engine stops
    instead of silently corrupting downstream energy accounting."""

    def __init__(self, message: str, signal: str = "", time: float = float("nan")):
        super().__init__(message)
        self.signal = signal
        self.time = time


class LUTValidationError(SimulationError):
    """A power interpolation table failed its pre-run validation gate:
    the worst-case error against exact solves exceeds the declared
    budget (the table is undersized for the requested accuracy)."""

    def __init__(self, message: str, max_rel_error: float = float("nan"),
                 rel_budget: float = float("nan")):
        super().__init__(message)
        self.max_rel_error = max_rel_error
        self.rel_budget = rel_budget


class TraceError(ReproError, KeyError):
    """A requested signal trace does not exist or is malformed."""


class ConfigurationError(ReproError, ValueError):
    """A system-level configuration is inconsistent (e.g. mismatched rails)."""


class FaultConfigError(ReproError, ValueError):
    """A fault schedule or fault wrapper was configured inconsistently."""


class ConfigError(ModelParameterError, ConfigurationError):
    """A physical parameter failed construction-time validation (NaN,
    Inf, wrong sign).  Carries the offending field name so a run that
    would otherwise die deep inside the engine with a
    :class:`NumericalGuardError` fails at the constructor instead.

    Subclasses both :class:`ModelParameterError` and
    :class:`ConfigurationError` so every pre-existing ``except``/
    ``pytest.raises`` site keeps catching what it always caught."""

    def __init__(self, message: str, field: str = ""):
        super().__init__(message)
        self.field = field


class TelemetryPathError(ReproError, RuntimeError):
    """The perf-telemetry ledger location could not be resolved (no repo
    root on the module's path and no ``REPRO_BENCH_PATH`` override)."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint could not be written, read, or applied."""


class StateFormatError(CheckpointError):
    """A serialized state blob does not match the schema the target
    object expects (wrong kind, wrong schema version, missing keys)."""


class LockTimeoutError(ReproError, RuntimeError):
    """An advisory file lock could not be acquired within its timeout."""


class RunDrainedError(CheckpointError):
    """A run was stopped cooperatively (SIGTERM / service drain) after
    writing one final checkpoint.  Not a failure: the checkpoint named
    here resumes the run to a bitwise-identical result.
    """

    def __init__(self, message: str, checkpoint_path: str = "", step: int = -1):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.step = step


class ServiceError(ReproError, RuntimeError):
    """Base class for simulation-service (job server) failures."""


class QueueFullError(ServiceError):
    """Admission refused: the job queue is at its bounded depth.

    ``retry_after`` is the suggested client backoff, seconds — the HTTP
    layer surfaces it as a 429 with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceDrainingError(ServiceError):
    """Admission refused: the server is draining (SIGTERM received)."""


class JobNotFoundError(ServiceError, KeyError):
    """No job with the requested id exists in the store."""


class JobTimeoutError(ServiceError):
    """A job attempt exceeded the service's per-job wall-clock budget,
    or its heartbeat went silent — the attempt is abandoned and the job
    retried/quarantined like any other failure."""

    def __init__(self, message: str, job_id: str = "", timeout: float = float("nan")):
        super().__init__(message)
        self.job_id = job_id
        self.timeout = timeout


class ServiceClientError(ServiceError):
    """The service answered a client request with an error status.

    ``status`` is the HTTP status code; ``payload`` the decoded error
    body (including ``field`` detail for 400 spec rejections and
    ``retry_after`` for 429 backpressure)."""

    def __init__(self, message: str, status: int = 0, payload: object = None):
        super().__init__(message)
        self.status = status
        self.payload = payload if payload is not None else {}


class JournalError(ReproError, RuntimeError):
    """A run journal could not be written or replayed (strict mode only:
    the default reader tolerates a crash-truncated final line)."""

    def __init__(self, message: str, line_number: int = -1):
        super().__init__(message)
        self.line_number = line_number


class ParallelExecutionError(ReproError, RuntimeError):
    """The parallel experiment runner could not complete a batch of specs."""


class WorkerCrashError(ParallelExecutionError):
    """A pool worker died (segfault, OOM kill) and recovery was disabled.

    ``spec_index`` names the spec the dead worker was running, or -1
    when the crash could not be attributed to a single spec (e.g. the
    pool itself failed to start).
    """

    def __init__(self, message: str, spec_index: int = -1):
        super().__init__(message)
        self.spec_index = spec_index


class WorkerTimeoutError(ParallelExecutionError):
    """A spec exceeded the runner's per-spec timeout."""

    def __init__(self, message: str, spec_index: int = -1, timeout: float = float("nan")):
        super().__init__(message)
        self.spec_index = spec_index
        self.timeout = timeout


class WorkerStallError(ParallelExecutionError):
    """A worker's heartbeat went silent — the process is hung or dead,
    as opposed to merely slow (a slow worker keeps beating)."""

    def __init__(self, message: str, spec_index: int = -1, silent_for: float = float("nan")):
        super().__init__(message)
        self.spec_index = spec_index
        self.silent_for = silent_for
