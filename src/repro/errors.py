"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelParameterError(ReproError, ValueError):
    """A device or circuit model was constructed with invalid parameters."""


class ConvergenceError(ReproError, RuntimeError):
    """A numerical solve (Newton, bisection, MNA) failed to converge."""

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class OperatingPointError(ReproError, ValueError):
    """A requested electrical operating point is outside the device's range."""


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent or impossible state."""


class ColdStartError(SimulationError):
    """The system failed to cold-start within the allotted simulation window."""


class TraceError(ReproError, KeyError):
    """A requested signal trace does not exist or is malformed."""


class ConfigurationError(ReproError, ValueError):
    """A system-level configuration is inconsistent (e.g. mismatched rails)."""
