"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelParameterError(ReproError, ValueError):
    """A device or circuit model was constructed with invalid parameters."""


class ConvergenceError(ReproError, RuntimeError):
    """A numerical solve (Newton, bisection, MNA) failed to converge."""

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class OperatingPointError(ReproError, ValueError):
    """A requested electrical operating point is outside the device's range."""


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent or impossible state."""


class ColdStartError(SimulationError):
    """The system failed to cold-start within the allotted simulation window."""


class NumericalGuardError(SimulationError):
    """A simulated quantity went non-finite (NaN/Inf) — the engine stops
    instead of silently corrupting downstream energy accounting."""

    def __init__(self, message: str, signal: str = "", time: float = float("nan")):
        super().__init__(message)
        self.signal = signal
        self.time = time


class TraceError(ReproError, KeyError):
    """A requested signal trace does not exist or is malformed."""


class ConfigurationError(ReproError, ValueError):
    """A system-level configuration is inconsistent (e.g. mismatched rails)."""


class FaultConfigError(ReproError, ValueError):
    """A fault schedule or fault wrapper was configured inconsistently."""


class TelemetryPathError(ReproError, RuntimeError):
    """The perf-telemetry ledger location could not be resolved (no repo
    root on the module's path and no ``REPRO_BENCH_PATH`` override)."""


class ParallelExecutionError(ReproError, RuntimeError):
    """The parallel experiment runner could not complete a batch of specs."""


class WorkerCrashError(ParallelExecutionError):
    """A pool worker died (segfault, OOM kill) and recovery was disabled."""


class WorkerTimeoutError(ParallelExecutionError):
    """A spec exceeded the runner's per-spec timeout."""

    def __init__(self, message: str, spec_index: int = -1, timeout: float = float("nan")):
        super().__init__(message)
        self.spec_index = spec_index
        self.timeout = timeout
