"""``repro.obs.journal`` — structured append-only run event journal.

Long campaigns (week-long endurance runs, 500-board Monte-Carlo sweeps,
multi-campaign resilience grids) used to be silent processes: the only
live signal was the eventual artifact.  The journal records the *run
lifecycle* as structured JSONL events — run-start with a spec
fingerprint, phase transitions, checkpoint saves/restores, worker
retries/quarantines/heartbeat stalls, fault-campaign boundaries, guard
errors, run-end with a summary and final counters — so a run can be
watched live (:mod:`repro.obs.progress`), replayed after a crash, or
streamed by the future control plane.

Like the metrics ``HOOKS``, the journal is **off by default and
zero-overhead when disabled**: every emit site costs one module
attribute load and an ``is None`` test.  Emission sites are coarse
(per run / phase / scenario / checkpoint — never per simulation step),
so even an enabled journal is far below the obs overhead gate.

Envelope (one JSON object per line, schema-versioned like
``repro.ckpt``'s checkpoint envelopes)::

    {"schema": 1, "run_id": "a1b2…", "seq": 7, "pid": 1234,
     "t": 1754550000.123456, "event": "progress", …payload…}

Appends go through :func:`repro.ckpt.atomic.locked_append_text` — a
single ``O_APPEND`` write under the advisory sidecar lock — so
concurrent writers (``parallel_map`` workers forked with the journal
enabled) interleave at line granularity.  A SIGKILL mid-append can
still truncate the *final* line; :func:`read_journal` tolerates that by
default (``strict=True`` raises :class:`~repro.errors.JournalError`).

Enable around a run::

    from repro.obs import journal

    journal.enable_journal("run.journal.jsonl")
    run_week(days=7)
    journal.disable_journal()

or export ``REPRO_JOURNAL=run.journal.jsonl`` to enable at import time
(the CLI's ``--journal PATH`` / ``--progress`` flags wrap the same
calls).  A path-less journal (``enable_journal()``) only notifies
in-process subscribers — what the ``--progress`` ticker uses.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.errors import JournalError, NumericalGuardError

JOURNAL_SCHEMA = 1
"""Version stamped into every event envelope; bumped on breaking
format changes so old journals are never misread silently."""

# --- event vocabulary -------------------------------------------------------
RUN_START = "run-start"
RUN_END = "run-end"
RUN_ERROR = "run-error"
GUARD_ERROR = "guard-error"
PHASE_START = "phase-start"
PHASE_END = "phase-end"
PROGRESS = "progress"
CHECKPOINT_SAVE = "checkpoint-save"
CHECKPOINT_RESTORE = "checkpoint-restore"
WORKER_RETRY = "worker-retry"
WORKER_QUARANTINE = "worker-quarantine"
WORKER_STALL = "worker-stall"
CAMPAIGN_START = "campaign-start"
CAMPAIGN_END = "campaign-end"
ENGINE_RUN = "engine-run"
JOB_SUBMIT = "job-submit"
JOB_START = "job-start"
JOB_RETRY = "job-retry"
JOB_QUARANTINE = "job-quarantine"
JOB_COMPLETE = "job-complete"

EVENTS = (
    RUN_START,
    RUN_END,
    RUN_ERROR,
    GUARD_ERROR,
    PHASE_START,
    PHASE_END,
    PROGRESS,
    CHECKPOINT_SAVE,
    CHECKPOINT_RESTORE,
    WORKER_RETRY,
    WORKER_QUARANTINE,
    WORKER_STALL,
    CAMPAIGN_START,
    CAMPAIGN_END,
    ENGINE_RUN,
    JOB_SUBMIT,
    JOB_START,
    JOB_RETRY,
    JOB_QUARANTINE,
    JOB_COMPLETE,
)
"""Every event name the library emits (payloads may carry more keys)."""


def spec_fingerprint(spec: Any) -> str:
    """Short stable fingerprint of a run spec (12 hex chars).

    Canonical-JSON SHA-256, truncated: enough to tell two specs apart in
    a journal at a glance, stable across processes and Python versions.
    Non-JSON-serializable leaves are fingerprinted via ``repr``.
    """
    text = json.dumps(spec, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


class RunJournal:
    """One journal: an event sink with optional JSONL persistence.

    Args:
        path: JSONL destination; ``None`` keeps the journal in-process
            only (subscribers still fire — the ``--progress`` ticker's
            mode).
        fsync: flush each append to disk before releasing the lock.
            Off by default — the journal is advisory telemetry; a
            checkpoint, not the journal, is the durability story.
        run_id: override the generated id (tests); one id spans a
            parent and its forked workers.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        fsync: bool = False,
        run_id: Optional[str] = None,
    ):
        self.path = Path(path) if path is not None else None
        self.fsync = bool(fsync)
        if run_id is None:
            run_id = f"{int(time.time() * 1e3):x}-{os.getpid():x}"
        self.run_id = str(run_id)
        self.subscriber_errors = 0
        self._seq = 0
        self._run_depth = 0
        self._mutex = threading.Lock()
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []

    # --- subscribers --------------------------------------------------------

    def subscribe(self, callback: Callable[[Dict[str, Any]], None]) -> Callable[[], None]:
        """Register ``callback(event_dict)`` for every emitted event.

        Returns an unsubscribe function.  Callbacks run synchronously in
        the emitting thread/process; exceptions they raise are swallowed
        (counted in :attr:`subscriber_errors`) so a broken observer can
        never kill a week-long run.
        """
        with self._mutex:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._mutex:
                try:
                    self._subscribers.remove(callback)
                except ValueError:
                    pass

        return unsubscribe

    # --- emission -----------------------------------------------------------

    def emit(self, event: str, **payload: Any) -> Dict[str, Any]:
        """Emit one event: envelope it, notify subscribers, append.

        Returns the full envelope (mostly for tests)."""
        with self._mutex:
            seq = self._seq
            self._seq += 1
            subscribers = tuple(self._subscribers)
        record: Dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "run_id": self.run_id,
            "seq": seq,
            "pid": os.getpid(),
            "t": round(time.time(), 6),
            "event": event,
        }
        for key, value in payload.items():
            record.setdefault(key, value)
        for callback in subscribers:
            try:
                callback(record)
            except Exception:
                self.subscriber_errors += 1
        if self.path is not None:
            from repro.ckpt.atomic import locked_append_text

            line = json.dumps(record, sort_keys=True, default=repr) + "\n"
            locked_append_text(self.path, line, fsync=self.fsync)
        return record


# --- module-level journal slot (the HOOKS pattern) --------------------------

JOURNAL: Optional[RunJournal] = None
"""The process-wide journal, or ``None`` when disabled.  Emit sites do
``j = journal.JOURNAL`` / ``if j is not None: j.emit(...)`` — or call
:func:`emit`, which wraps exactly that."""


def get_journal() -> Optional[RunJournal]:
    """The active journal, or ``None`` when journaling is disabled."""
    return JOURNAL


def enable_journal(
    path: Optional[Union[str, Path]] = None,
    fsync: bool = False,
    run_id: Optional[str] = None,
) -> RunJournal:
    """Install a process-wide journal (replacing any active one).

    With ``path=None`` the journal is in-process only: events reach
    subscribers but nothing is written.
    """
    global JOURNAL
    JOURNAL = RunJournal(path=path, fsync=fsync, run_id=run_id)
    return JOURNAL


def disable_journal() -> None:
    """Remove the process-wide journal; emit sites go back to no-ops."""
    global JOURNAL
    JOURNAL = None


def emit(event: str, **payload: Any) -> Optional[Dict[str, Any]]:
    """Emit through the process-wide journal; no-op when disabled."""
    j = JOURNAL
    if j is None:
        return None
    return j.emit(event, **payload)


def emit_guard_error(exc: BaseException) -> None:
    """Record a numerical-guard (or any engine) error; no-op when disabled."""
    j = JOURNAL
    if j is None:
        return
    event = GUARD_ERROR if isinstance(exc, NumericalGuardError) else RUN_ERROR
    j.emit(
        event,
        error=type(exc).__name__,
        message=str(exc),
        signal=getattr(exc, "signal", None),
        sim_time=getattr(exc, "time", None),
    )


# --- reading / replay -------------------------------------------------------

def iter_journal(
    path: Union[str, Path], strict: bool = False
) -> Iterator[Dict[str, Any]]:
    """Yield events from a JSONL journal file in file order.

    A crash mid-append (the writer is ``O_APPEND``, not
    write-temp-rename) can leave a torn final line; by default torn or
    otherwise unparseable lines are skipped.  ``strict=True`` raises
    :class:`~repro.errors.JournalError` naming the offending line.
    A journal that was never written (no file) reads as empty.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if strict:
                    raise JournalError(
                        f"unparseable journal line {number} in {path}",
                        line_number=number,
                    ) from None
                continue
            if not isinstance(record, dict):
                if strict:
                    raise JournalError(
                        f"journal line {number} in {path} is not an object",
                        line_number=number,
                    )
                continue
            yield record


def read_journal(path: Union[str, Path], strict: bool = False) -> List[Dict[str, Any]]:
    """All events from a journal file as a list (see :func:`iter_journal`)."""
    return list(iter_journal(path, strict=strict))


# --- run lifecycle scope ----------------------------------------------------

class RunScope:
    """Lifecycle helper an experiment drives: phases + progress.

    Produced by :func:`run_scope`; experiments call :meth:`phase`,
    :meth:`advance` / :meth:`advance_to`, and :meth:`campaign` without
    checking whether journaling is on — the disabled variant
    (:class:`NullRunScope`) makes every method a no-op.
    """

    __slots__ = ("journal", "kind", "total_steps", "steps_done", "_phase")

    def __init__(self, journal: RunJournal, kind: str, total_steps: Optional[int], resumed_steps: int):
        self.journal = journal
        self.kind = kind
        self.total_steps = total_steps
        self.steps_done = int(resumed_steps)
        self._phase: Optional[str] = None

    def phase(self, name: str) -> "_PhaseScope":
        """Context manager emitting ``phase-start`` / ``phase-end``."""
        return _PhaseScope(self, name)

    def advance(self, steps: int) -> None:
        """Record ``steps`` more units of work done (emits ``progress``)."""
        self.advance_to(self.steps_done + int(steps))

    def advance_to(self, steps_done: int) -> None:
        """Record cumulative progress (resume-aware absolute counter)."""
        self.steps_done = int(steps_done)
        self.journal.emit(
            PROGRESS,
            kind=self.kind,
            steps_done=self.steps_done,
            total_steps=self.total_steps,
            phase=self._phase,
        )

    def campaign_start(self, name: str, **payload: Any) -> None:
        """Mark a fault-campaign boundary (resilience grids)."""
        self.journal.emit(CAMPAIGN_START, kind=self.kind, campaign=name, **payload)

    def campaign_end(self, name: str, **payload: Any) -> None:
        self.journal.emit(CAMPAIGN_END, kind=self.kind, campaign=name, **payload)

    def event(self, event: str, **payload: Any) -> None:
        """Escape hatch: emit an arbitrary event inside this run."""
        self.journal.emit(event, kind=self.kind, **payload)


class _PhaseScope:
    __slots__ = ("scope", "name", "_t0")

    def __init__(self, scope: RunScope, name: str):
        self.scope = scope
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseScope":
        self._t0 = time.perf_counter()
        self.scope._phase = self.name
        self.scope.journal.emit(PHASE_START, kind=self.scope.kind, phase=self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.scope._phase = None
        self.scope.journal.emit(
            PHASE_END,
            kind=self.scope.kind,
            phase=self.name,
            wall_s=round(time.perf_counter() - self._t0, 6),
            failed=exc is not None,
        )


class NullRunScope:
    """No-op twin of :class:`RunScope` used while journaling is off."""

    __slots__ = ()
    steps_done = 0
    total_steps = None

    def phase(self, name: str) -> "NullRunScope":
        return self

    def advance(self, steps: int) -> None:
        pass

    def advance_to(self, steps_done: int) -> None:
        pass

    def campaign_start(self, name: str, **payload: Any) -> None:
        pass

    def campaign_end(self, name: str, **payload: Any) -> None:
        pass

    def event(self, event: str, **payload: Any) -> None:
        pass

    def __enter__(self) -> "NullRunScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SCOPE = NullRunScope()


class _NestedRunScope(RunScope):
    """A run scope opened while another run is active.

    Emits no ``run-start`` / ``run-end`` — the enclosing run owns the
    lifecycle — but its progress, phase and campaign events still reach
    the journal (tagged with this scope's own ``kind``).
    """

    __slots__ = ()

    def __enter__(self) -> "RunScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _ActiveRunScope:
    """The enabled run_scope context manager (kept out of the hot path)."""

    __slots__ = ("_journal", "_scope", "_spec", "_summary")

    def __init__(self, journal: RunJournal, kind: str, spec: Any, total_steps: Optional[int], resumed_steps: int):
        self._journal = journal
        self._spec = spec
        self._scope = RunScope(journal, kind, total_steps, resumed_steps)
        self._summary: Callable[[], Any] = lambda: None

    def __enter__(self) -> RunScope:
        scope = self._scope
        self._journal._run_depth += 1
        self._journal.emit(
            RUN_START,
            kind=scope.kind,
            fingerprint=spec_fingerprint(self._spec),
            total_steps=scope.total_steps,
            resumed_steps=scope.steps_done,
        )
        return scope

    def __exit__(self, exc_type, exc, tb) -> None:
        scope = self._scope
        self._journal._run_depth = max(0, self._journal._run_depth - 1)
        if exc is not None:
            emit_guard_error(exc)
            return
        counters = None
        try:
            from repro import obs
            from repro.obs.export import counters_dict

            if obs.is_enabled():
                counters = counters_dict()
        except Exception:
            counters = None
        self._journal.emit(
            RUN_END,
            kind=scope.kind,
            steps_done=scope.steps_done,
            total_steps=scope.total_steps,
            counters=counters,
        )


def run_scope(
    kind: str,
    spec: Any = None,
    total_steps: Optional[int] = None,
    resumed_steps: int = 0,
):
    """Bracket a run with ``run-start`` … ``run-end`` journal events.

    Usage (every long-running experiment entry point)::

        with journal.run_scope("endurance", spec, total_steps=N,
                               resumed_steps=start) as scope:
            with scope.phase("day-1"):
                ...
            scope.advance_to(step)

    With journaling disabled this returns the shared
    :class:`NullRunScope` and costs one ``is None`` test.  On an
    exception the run emits ``guard-error`` (for
    :class:`~repro.errors.NumericalGuardError`) or ``run-error`` and
    **no** ``run-end`` — replay counts run-end events to tell completed
    runs from killed ones.
    """
    j = JOURNAL
    if j is None:
        return NULL_SCOPE
    if j._run_depth > 0:
        # Nested inside another run (e.g. strings drives comparison):
        # the enclosing run owns the lifecycle.  Progress and phases
        # still flow, tagged with this scope's kind so estimators can
        # tell inner work from the outer run's own counters.
        return _NestedRunScope(j, kind, total_steps, resumed_steps)
    return _ActiveRunScope(j, kind, spec, total_steps, resumed_steps)


# ``REPRO_JOURNAL=<path>`` enables journaling at import time — the knob
# spawned workers and CLI smoke subprocesses inherit through the
# environment (mirrors ``REPRO_OBS``).
_env_path = os.environ.get("REPRO_JOURNAL", "").strip()
if _env_path:
    enable_journal(_env_path)
del _env_path


__all__ = [
    "JOURNAL_SCHEMA",
    "EVENTS",
    "RunJournal",
    "RunScope",
    "NullRunScope",
    "JOURNAL",
    "get_journal",
    "enable_journal",
    "disable_journal",
    "emit",
    "emit_guard_error",
    "spec_fingerprint",
    "iter_journal",
    "read_journal",
    "run_scope",
    "RUN_START",
    "RUN_END",
    "RUN_ERROR",
    "GUARD_ERROR",
    "PHASE_START",
    "PHASE_END",
    "PROGRESS",
    "CHECKPOINT_SAVE",
    "CHECKPOINT_RESTORE",
    "WORKER_RETRY",
    "WORKER_QUARANTINE",
    "WORKER_STALL",
    "CAMPAIGN_START",
    "CAMPAIGN_END",
    "ENGINE_RUN",
    "JOB_SUBMIT",
    "JOB_START",
    "JOB_RETRY",
    "JOB_QUARANTINE",
    "JOB_COMPLETE",
]
