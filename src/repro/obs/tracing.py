"""Hierarchical run tracing: aggregating spans with monotonic timing.

The second half of the observability layer (the first is
:mod:`repro.obs.metrics`).  A trace is a tree of named spans —

    trace("comparison")
      └─ span("scenario:office-desk")
           └─ span("technique:proposed-S&H-FOCV")
                └─ span("step")            # sampled

— but unlike an event tracer, which would record one entry per span
occurrence (hopeless at 100 k steps/s), each tree node *aggregates* its
occurrences: count, total/min/max wall time, measured with
``time.perf_counter`` (monotonic).  The collapsed tree is exactly what
a flamegraph wants (:func:`repro.obs.export.collapsed_stacks`).

Sampling is decided at the call site: hot loops open a ``"step"`` span
for one in N iterations (the quasi-static engine samples ~16 steps per
run) and report exact step counts through a counter instead.  The tree
then carries *timing shape* while counters carry *exact totals*.

Worker traces
-------------

:meth:`Tracer.capture` redirects recording into a fresh, detached root
for the duration of a block — that subtree is what a
:func:`repro.sim.parallel.parallel_map` worker ships back, and
:meth:`Tracer.merge_subtree` grafts it under the parent's current span
on join, so a fanned-out run reassembles into one coherent trace.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import ModelParameterError


class TraceNode:
    """One name in the span tree, aggregated over its occurrences.

    Attributes:
        name: span name (``"technique:focv"``, ``"step"``, ...).
        count: recorded occurrences.
        total_s: summed wall time, seconds.
        min_s / max_s: extremes over occurrences, seconds.
        children: child spans by name.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.children: "Dict[str, TraceNode]" = {}

    def child(self, name: str) -> "TraceNode":
        """Get-or-create the child span ``name``."""
        node = self.children.get(name)
        if node is None:
            node = TraceNode(name)
            self.children[name] = node
        return node

    def add(self, duration_s: float) -> None:
        """Fold one occurrence of ``duration_s`` seconds into the node."""
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    @property
    def self_s(self) -> float:
        """Wall time not attributed to children (floored at zero)."""
        child_total = sum(c.total_s for c in self.children.values())
        return max(0.0, self.total_s - child_total)

    def to_dict(self) -> dict:
        """Plain-data (picklable, JSON-able) form of the subtree."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceNode":
        """Rebuild a subtree from :meth:`to_dict` output."""
        node = cls(data["name"])
        node.count = data["count"]
        node.total_s = data["total_s"]
        node.min_s = data["min_s"] if data["count"] else float("inf")
        node.max_s = data["max_s"]
        for child in data.get("children", ()):
            node.children[child["name"]] = cls.from_dict(child)
        return node

    def merge(self, other: "TraceNode") -> None:
        """Fold ``other``'s aggregates (and subtree) into this node."""
        self.count += other.count
        self.total_s += other.total_s
        if other.count:
            self.min_s = min(self.min_s, other.min_s)
            self.max_s = max(self.max_s, other.max_s)
        for name, theirs in other.children.items():
            self.child(name).merge(theirs)


class _NullSpan:
    """The no-op context manager handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """A live span: times the block and pushes itself on the tracer stack."""

    __slots__ = ("_tracer", "_name", "_node", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self):
        stack = self._tracer._stack
        self._node = stack[-1].child(self._name)
        stack.append(self._node)
        self._t0 = time.perf_counter()
        return self._node

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._t0
        self._node.add(duration)
        stack = self._tracer._stack
        if stack and stack[-1] is self._node:
            stack.pop()
        return False


class _CaptureContext:
    """Redirects recording into a detached root for the block's duration."""

    __slots__ = ("_tracer", "_saved_root", "_saved_stack", "root")

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self) -> TraceNode:
        self.root = TraceNode("capture")
        self._saved_root = self._tracer.root
        self._saved_stack = self._tracer._stack
        self._tracer.root = self.root
        self._tracer._stack = [self.root]
        return self.root

    def __exit__(self, exc_type, exc, tb):
        self._tracer.root = self._saved_root
        self._tracer._stack = self._saved_stack
        return False


class Tracer:
    """The span recorder: a root tree plus the currently-open span stack.

    Disabled by default; :func:`repro.obs.enable` flips ``enabled``.
    While disabled, :meth:`span` returns a shared no-op context, so an
    un-instrumented run pays one attribute test per span site.
    """

    def __init__(self):
        self.enabled = False
        self.root = TraceNode("root")
        self._stack = [self.root]

    def span(self, name: str):
        """Context manager timing one occurrence of span ``name``.

        Nested calls build the hierarchy: the span opens as a child of
        whatever span is innermost on entry.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name)

    # ``trace`` is the readability alias for opening a root-level phase:
    # trace("comparison") > span("technique:focv") > span("step").
    trace = span

    def add(self, name: str, duration_s: float) -> None:
        """Record one pre-timed occurrence of ``name`` under the current span.

        The hot-loop alternative to :meth:`span` when the caller already
        holds the duration (saves a context-manager round trip).
        """
        if not self.enabled:
            return
        self._stack[-1].child(name).add(duration_s)

    def capture(self) -> _CaptureContext:
        """Record the block into a detached subtree (worker-side buffer).

        Returns a context manager yielding the detached root; the
        ambient trace is untouched and restored on exit.
        """
        return _CaptureContext(self)

    def merge_subtree(self, data, under: Optional[str] = None) -> None:
        """Graft a worker's captured subtree under the current span.

        Args:
            data: a :class:`TraceNode` or its :meth:`~TraceNode.to_dict`
                form (what travels back over the process boundary).
            under: optional intermediate span name to group the graft
                (e.g. ``"worker"``); children merge directly when None.
        """
        node = data if isinstance(data, TraceNode) else TraceNode.from_dict(data)
        target = self._stack[-1]
        if under is not None:
            target = target.child(under)
        for child in node.children.values():
            target.child(child.name).merge(child)

    def reset(self) -> None:
        """Drop the recorded tree (open spans would dangle — reset between runs)."""
        if len(self._stack) > 1:
            raise ModelParameterError(
                f"cannot reset tracer with {len(self._stack) - 1} span(s) still open"
            )
        self.root = TraceNode("root")
        self._stack = [self.root]

    def snapshot(self) -> dict:
        """Plain-data form of the whole recorded tree."""
        return self.root.to_dict()


TRACER = Tracer()
"""The process-wide tracer the engines and runners record into."""


__all__ = ["TraceNode", "Tracer", "TRACER"]
