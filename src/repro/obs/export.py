"""Exporters for the observability layer's collected state.

Three formats, one source of truth (:data:`~repro.obs.metrics.REGISTRY`
plus :data:`~repro.obs.tracing.TRACER`):

* :func:`run_report` — a JSON-able dict with every instrument and the
  full span tree; what CI uploads per run.
* :func:`prometheus_text` — Prometheus text exposition (``# HELP`` /
  ``# TYPE`` + samples, histograms as cumulative ``_bucket`` series),
  scrape-ready if a node ever serves it over HTTP.
* :func:`collapsed_stacks` — Brendan-Gregg collapsed-stack lines
  (``root;child;leaf <self-time-µs>``), directly consumable by
  ``flamegraph.pl`` or speedscope.

:func:`write_profile` writes all three next to each other, which is
what ``python -m repro profile <experiment>`` calls.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, REGISTRY
from repro.obs.tracing import TraceNode, Tracer, TRACER

_PROM_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    """Sanitize an instrument name into Prometheus' ``[a-zA-Z0-9_]`` charset."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return _PROM_PREFIX + cleaned


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def run_report(
    registry: MetricsRegistry = REGISTRY,
    tracer: Tracer = TRACER,
    note: str = "",
) -> dict:
    """The JSON run-report: all instruments plus the span tree.

    Args:
        registry: metrics source (default: the process-wide one).
        tracer: trace source (default: the process-wide one).
        note: free-form context stored in the report header.
    """
    metrics: List[dict] = []
    for inst in registry.instruments():
        entry = {"name": inst.name, "labels": dict(inst.labels),
                 "description": inst.description}
        if isinstance(inst, Counter):
            entry.update(kind="counter", value=inst.value)
        elif isinstance(inst, Gauge):
            entry.update(kind="gauge", value=inst.value)
        elif isinstance(inst, Histogram):
            entry.update(
                kind="histogram",
                buckets=list(inst.buckets),
                counts=list(inst.counts),
                sum=inst.sum,
                count=inst.count,
            )
        metrics.append(entry)
    return {
        "schema": 1,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "note": note,
        "metrics": metrics,
        "trace": tracer.snapshot(),
    }


def prometheus_text(registry: MetricsRegistry = REGISTRY) -> str:
    """Prometheus text exposition of every registered instrument."""
    lines: List[str] = []
    seen_headers = set()
    for inst in registry.instruments():
        if isinstance(inst, Counter):
            base = _prom_name(inst.name) + "_total"
            kind = "counter"
        elif isinstance(inst, Gauge):
            base = _prom_name(inst.name)
            kind = "gauge"
        else:
            base = _prom_name(inst.name)
            kind = "histogram"
        if base not in seen_headers:
            seen_headers.add(base)
            if inst.description:
                lines.append(f"# HELP {base} {inst.description}")
            lines.append(f"# TYPE {base} {kind}")
        if isinstance(inst, (Counter, Gauge)):
            lines.append(f"{base}{_prom_labels(inst.labels)} {_fmt(inst.value)}")
        else:
            cumulative = 0
            for bound, count in zip(inst.buckets, inst.counts):
                cumulative += count
                le = 'le="' + repr(bound) + '"'
                lines.append(f"{base}_bucket{_prom_labels(inst.labels, le)} {cumulative}")
            cumulative += inst.counts[-1]
            inf = 'le="+Inf"'
            lines.append(f"{base}_bucket{_prom_labels(inst.labels, inf)} {cumulative}")
            lines.append(f"{base}_sum{_prom_labels(inst.labels)} {repr(inst.sum)}")
            lines.append(f"{base}_count{_prom_labels(inst.labels)} {inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def collapsed_stacks(tracer: Tracer = TRACER) -> str:
    """Flamegraph-compatible collapsed stacks from the span tree.

    One line per tree node: the semicolon-joined path from a root span
    down to the node, then the node's *self* time in integer
    microseconds (total minus children, so a flamegraph's widths add up
    correctly).  Zero-self-time interior nodes are omitted — their time
    lives in their children.
    """
    lines: List[str] = []

    def walk(node: TraceNode, path: str) -> None:
        here = f"{path};{node.name}" if path else node.name
        self_us = int(round(node.self_s * 1e6))
        if self_us > 0:
            lines.append(f"{here} {self_us}")
        for child in node.children.values():
            walk(child, here)

    for top in tracer.root.children.values():
        walk(top, "")
    return "\n".join(lines) + ("\n" if lines else "")


def render_summary(
    registry: MetricsRegistry = REGISTRY,
    tracer: Tracer = TRACER,
    top: int = 12,
) -> str:
    """A terminal-friendly digest: busiest counters and slowest spans."""
    lines = ["observability summary", "---------------------"]
    counters = [i for i in registry.instruments() if isinstance(i, Counter) and i.value]
    counters.sort(key=lambda c: c.value, reverse=True)
    for c in counters[:top]:
        label = c.name
        if c.labels:
            label += "{" + ",".join(f"{k}={v}" for k, v in c.labels) + "}"
        lines.append(f"  {label:<56} {_fmt(c.value):>14}")

    spans: List[tuple] = []

    def walk(node: TraceNode, path: str) -> None:
        here = f"{path};{node.name}" if path else node.name
        spans.append((node.total_s, here, node.count))
        for child in node.children.values():
            walk(child, here)

    for child in tracer.root.children.values():
        walk(child, "")
    spans.sort(reverse=True)
    if spans:
        lines.append("  spans (total s / count):")
        for total_s, path, count in spans[:top]:
            lines.append(f"    {path:<54} {total_s:>10.4f} / {count}")
    return "\n".join(lines)


def write_profile(
    directory, prefix: str,
    registry: MetricsRegistry = REGISTRY,
    tracer: Tracer = TRACER,
    note: str = "",
) -> "dict[str, Path]":
    """Write the JSON report, Prometheus text, and collapsed stacks.

    Args:
        directory: output directory (created if missing).
        prefix: filename stem — produces ``<prefix>.json``,
            ``<prefix>.prom``, ``<prefix>.folded``.

    Returns:
        ``{"json": ..., "prom": ..., "folded": ...}`` paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "json": directory / f"{prefix}.json",
        "prom": directory / f"{prefix}.prom",
        "folded": directory / f"{prefix}.folded",
    }
    # Atomic writes: profile artifacts are uploaded by CI and read by
    # dashboards mid-run; a crash must not leave a torn export.
    from repro.ckpt.atomic import atomic_write_json, atomic_write_text

    atomic_write_json(
        paths["json"], run_report(registry, tracer, note=note), sort_keys=False
    )
    atomic_write_text(paths["prom"], prometheus_text(registry))
    atomic_write_text(paths["folded"], collapsed_stacks(tracer))
    return paths


def counters_dict(registry: MetricsRegistry = REGISTRY) -> "dict[str, float]":
    """Flat ``{name: value}`` of nonzero counters (labels folded into the name).

    The compact form :func:`repro.sim.telemetry.record_perf` embeds in
    the ``BENCH_perf.json`` ledger alongside ``steps_per_s``.
    """
    out = {}
    for inst in registry.instruments():
        if isinstance(inst, Counter) and inst.value:
            name = inst.name
            if inst.labels:
                name += "{" + ",".join(f"{k}={v}" for k, v in inst.labels) + "}"
            out[name] = inst.value
    return out


__all__ = [
    "run_report",
    "prometheus_text",
    "collapsed_stacks",
    "render_summary",
    "write_profile",
    "counters_dict",
]
