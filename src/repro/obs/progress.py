"""``repro.obs.progress`` — progress/ETA estimation over journal events.

A :class:`ProgressEstimator` consumes :mod:`repro.obs.journal` events —
live through ``journal.subscribe(estimator.observe)``, or after the
fact through :func:`replay_journal` — and maintains steps done / total,
a per-phase throughput EWMA, and an ETA.  It is checkpoint-aware: a
resumed run's ``run-start`` carries ``resumed_steps``, and progress
counters are monotonic, so a kill-and-resume journal replays to
*cumulative* progress (never less than the pre-kill value).

All arithmetic uses the wall-clock stamps carried **inside** the
events, not the observer's clock, so replaying a journal file
reconstructs exactly the rates the live run saw.

:class:`ProgressTicker` is the opt-in stderr surface behind the CLI's
``--progress`` flag: a single self-overwriting line, throttled to a
minimum repaint interval, final state flushed with a newline.  The
future control plane attaches the same way — ``subscribe(callback)`` on
the journal — and turns events into SSE instead of ANSI.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.obs import journal as journal_mod

EWMA_ALPHA = 0.3
"""Weight of the newest throughput observation (higher = twitchier)."""


def _format_duration(seconds: float) -> str:
    """``H:MM:SS`` (or ``D d H:MM:SS``) for human eyes."""
    seconds = max(0.0, float(seconds))
    whole = int(round(seconds))
    days, rem = divmod(whole, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    core = f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{days} d {core}" if days else core


class ProgressEstimator:
    """Replayable run-progress state machine over journal events.

    Feed it every event (order matters only for rates, not for the
    monotonic counters) and read :attr:`fraction`, :attr:`eta_s`,
    :attr:`steps_per_s`, or :meth:`render`.
    """

    def __init__(self, alpha: float = EWMA_ALPHA):
        self.alpha = float(alpha)
        self.kind: Optional[str] = None
        self.run_id: Optional[str] = None
        self.total_steps: Optional[int] = None
        self.steps_done = 0
        self.phase: Optional[str] = None
        self.started_t: Optional[float] = None
        self.last_event_t: Optional[float] = None
        self.finished = False
        # Event tallies (cumulative across resumes in one journal).
        self.run_start_count = 0
        self.run_end_count = 0
        self.guard_errors = 0
        self.worker_retries = 0
        self.worker_quarantines = 0
        self.worker_stalls = 0
        self.checkpoint_saves = 0
        self.checkpoint_restores = 0
        # Throughput EWMAs, overall and per phase.
        self.rate: Optional[float] = None
        self.phase_rates: Dict[str, float] = {}
        self._last_progress_t: Optional[float] = None
        self._last_progress_steps: Optional[int] = None

    # --- event intake -------------------------------------------------------

    def observe(self, event: Dict[str, Any]) -> None:
        """Consume one journal event (subscriber-callback compatible)."""
        name = event.get("event")
        t = event.get("t")
        if isinstance(t, (int, float)):
            self.last_event_t = float(t)
        if name == journal_mod.RUN_START:
            self.run_start_count += 1
            self.kind = event.get("kind", self.kind)
            self.run_id = event.get("run_id", self.run_id)
            total = event.get("total_steps")
            if total is not None:
                self.total_steps = int(total)
            elif self.finished:
                self.total_steps = None
            resumed = int(event.get("resumed_steps") or 0)
            if self.finished:
                # The previous run completed: this run-start opens a NEW
                # run (a sequential journal), not a resume of a killed
                # one — count it from its own baseline.  A run-start
                # after a run with no run-end is a crash resume, where
                # the monotonic max preserves cumulative progress.
                self.steps_done = resumed
                self.phase = None
            else:
                self.steps_done = max(self.steps_done, resumed)
            if self.started_t is None and isinstance(t, (int, float)):
                self.started_t = float(t)
            self.finished = False
            # A fresh (or resumed) process: its first progress delta
            # must not be rated against the previous run's clock.
            self._last_progress_t = None
            self._last_progress_steps = None
        elif name == journal_mod.PROGRESS:
            if self._is_inner(event):
                return
            self._observe_progress(event)
        elif name == journal_mod.PHASE_START:
            if self._is_inner(event):
                return
            self.phase = event.get("phase")
        elif name == journal_mod.PHASE_END:
            if self._is_inner(event):
                return
            self.phase = None
        elif name == journal_mod.RUN_END:
            self.run_end_count += 1
            self.finished = True
            done = event.get("steps_done")
            if done is not None:
                self.steps_done = max(self.steps_done, int(done))
        elif name == journal_mod.GUARD_ERROR:
            self.guard_errors += 1
        elif name == journal_mod.WORKER_RETRY:
            self.worker_retries += 1
        elif name == journal_mod.WORKER_QUARANTINE:
            self.worker_quarantines += 1
        elif name == journal_mod.WORKER_STALL:
            self.worker_stalls += 1
        elif name == journal_mod.CHECKPOINT_SAVE:
            self.checkpoint_saves += 1
        elif name == journal_mod.CHECKPOINT_RESTORE:
            self.checkpoint_restores += 1

    def _is_inner(self, event: Dict[str, Any]) -> bool:
        """True when the event came from a nested run scope (e.g. the
        strings experiment driving comparison sub-runs): its counters
        describe inner work, not the run this estimator tracks."""
        kind = event.get("kind")
        return bool(self.kind) and bool(kind) and kind != self.kind

    def _observe_progress(self, event: Dict[str, Any]) -> None:
        t = event.get("t")
        done = event.get("steps_done")
        total = event.get("total_steps")
        phase = event.get("phase")
        if total is not None:
            self.total_steps = int(total)
        if done is None:
            return
        done = int(done)
        prev_t, prev_steps = self._last_progress_t, self._last_progress_steps
        if (
            isinstance(t, (int, float))
            and prev_t is not None
            and prev_steps is not None
            and float(t) > prev_t
            and done >= prev_steps
        ):
            inst = (done - prev_steps) / (float(t) - prev_t)
            self.rate = (
                inst
                if self.rate is None
                else self.alpha * inst + (1.0 - self.alpha) * self.rate
            )
            if phase:
                old = self.phase_rates.get(phase)
                self.phase_rates[phase] = (
                    inst if old is None else self.alpha * inst + (1.0 - self.alpha) * old
                )
        if isinstance(t, (int, float)):
            self._last_progress_t = float(t)
        self._last_progress_steps = done
        self.steps_done = max(self.steps_done, done)

    # --- derived state ------------------------------------------------------

    @property
    def fraction(self) -> Optional[float]:
        """Completed fraction in [0, 1], or ``None`` when total unknown."""
        if not self.total_steps:
            return None
        return min(1.0, self.steps_done / self.total_steps)

    @property
    def steps_per_s(self) -> Optional[float]:
        """Smoothed overall throughput, or ``None`` before two samples."""
        return self.rate

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion at the smoothed rate."""
        if self.finished:
            return 0.0
        if not self.total_steps or not self.rate or self.rate <= 0.0:
            return None
        return max(0, self.total_steps - self.steps_done) / self.rate

    @property
    def elapsed_s(self) -> Optional[float]:
        """Wall time between first and latest observed event."""
        if self.started_t is None or self.last_event_t is None:
            return None
        return max(0.0, self.last_event_t - self.started_t)

    def render(self) -> str:
        """One human-readable status line (what the ticker prints)."""
        parts = [self.kind or "run"]
        frac = self.fraction
        if frac is not None:
            parts.append(f"{frac * 100.0:5.1f} % ({self.steps_done}/{self.total_steps})")
        elif self.steps_done:
            parts.append(f"{self.steps_done} steps")
        if self.rate:
            parts.append(f"{self.rate:,.0f} steps/s")
        eta = self.eta_s
        if self.finished:
            parts.append("done")
        elif eta is not None:
            parts.append(f"ETA {_format_duration(eta)}")
        elif self.elapsed_s is not None:
            parts.append(f"elapsed {_format_duration(self.elapsed_s)}")
        if self.phase:
            parts.append(f"[{self.phase}]")
        return " · ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (what an SSE control plane would send)."""
        return {
            "kind": self.kind,
            "run_id": self.run_id,
            "steps_done": self.steps_done,
            "total_steps": self.total_steps,
            "fraction": self.fraction,
            "steps_per_s": self.rate,
            "eta_s": self.eta_s,
            "phase": self.phase,
            "phase_rates": dict(self.phase_rates),
            "finished": self.finished,
            "run_start_count": self.run_start_count,
            "run_end_count": self.run_end_count,
            "guard_errors": self.guard_errors,
            "worker_retries": self.worker_retries,
            "worker_quarantines": self.worker_quarantines,
            "worker_stalls": self.worker_stalls,
            "checkpoint_saves": self.checkpoint_saves,
            "checkpoint_restores": self.checkpoint_restores,
        }


def replay_journal(
    path: Union[str, Path], strict: bool = False, alpha: float = EWMA_ALPHA
) -> ProgressEstimator:
    """Reconstruct run progress from a journal file.

    The resume contract: replaying a journal holding a killed run plus
    its resumed continuation yields cumulative ``steps_done`` at least
    the pre-kill value (monotonic counters + ``resumed_steps``) and
    ``run_end_count == 1`` — the killed attempt never reached run-end.
    """
    estimator = ProgressEstimator(alpha=alpha)
    for event in journal_mod.iter_journal(path, strict=strict):
        estimator.observe(event)
    return estimator


class ProgressTicker:
    """Self-overwriting stderr status line driven by journal events.

    Attach with ``journal.subscribe(ticker.on_event)``.  Repaints are
    throttled to ``min_interval_s`` (terminal I/O must never become the
    run's bottleneck); run-end always repaints; :meth:`close` ends the
    line so subsequent output starts clean.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.5,
        estimator: Optional[ProgressEstimator] = None,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = float(min_interval_s)
        self.estimator = estimator if estimator is not None else ProgressEstimator()
        self._last_paint = 0.0
        self._last_width = 0
        self._painted = False

    def on_event(self, event: Dict[str, Any]) -> None:
        self.estimator.observe(event)
        now = time.monotonic()
        final = event.get("event") in (
            journal_mod.RUN_END,
            journal_mod.RUN_ERROR,
            journal_mod.GUARD_ERROR,
        )
        if not final and self._painted and now - self._last_paint < self.min_interval_s:
            return
        self._paint()
        self._last_paint = now

    def _paint(self) -> None:
        line = self.estimator.render()
        pad = max(0, self._last_width - len(line))
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go silent
            return
        self._last_width = len(line)
        self._painted = True

    def close(self) -> None:
        """Finish the ticker line (newline) if anything was painted."""
        if self._painted:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self._painted = False


__all__ = [
    "EWMA_ALPHA",
    "ProgressEstimator",
    "ProgressTicker",
    "replay_journal",
]
