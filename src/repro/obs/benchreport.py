"""``repro.obs.benchreport`` — trend analysis over the perf ledger.

``BENCH_perf.json`` accumulates per-experiment throughput history
across PRs, but history alone is write-only telemetry: nothing *reads*
the trend.  This module is the reader — ``python -m repro bench
report`` groups each experiment's entries by
:func:`~repro.sim.telemetry.host_fingerprint`, computes the same-host
median throughput, and flags any experiment whose newest same-host
entry fell below ``threshold × median``.  Cross-host and
pre-fingerprint entries are *ignored*, never compared: throughput on an
unknown machine says nothing about throughput here (the same contract
as :func:`~repro.sim.telemetry.latest_comparable`).

The report renders as markdown (for humans and CI step summaries) or
JSON (for dashboards), and CI uploads it as an artifact next to the
perf-smoke gates.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ModelParameterError
from repro.sim import telemetry

DEFAULT_THRESHOLD = 0.5
"""Regression floor: flag when latest < threshold × same-host median."""

MIN_HISTORY = 2
"""Minimum same-host entries before a trend is meaningful (one entry
has no median to regress against)."""


def host_key(host: Optional[dict]) -> str:
    """Stable short label for a host fingerprint (report row key)."""
    if not isinstance(host, dict) or not host:
        return "unknown-host"
    python = host.get("python", "?")
    numpy_v = host.get("numpy", "?")
    cpus = host.get("cpu_count", "?")
    return f"py{python}-numpy{numpy_v}-{cpus}cpu"


@dataclass
class ExperimentTrend:
    """Per-experiment same-host throughput trend.

    Attributes:
        experiment: ledger key, e.g. ``"comparison_24h_dt10"``.
        host: short host label the trend was computed for.
        entries: number of same-host entries backing the trend.
        ignored: entries skipped as cross-host or pre-fingerprint.
        median_steps_per_s: median of the same-host history *excluding*
            the newest entry (so the suspect never shifts its own bar).
        latest_steps_per_s: the newest same-host entry's throughput.
        latest_note / latest_recorded: provenance of that entry.
        ratio: latest / median (``None`` with insufficient history).
        regressed: ``ratio < threshold``.
    """

    experiment: str
    host: str
    entries: int
    ignored: int
    median_steps_per_s: Optional[float]
    latest_steps_per_s: Optional[float]
    latest_note: str = ""
    latest_recorded: str = ""
    ratio: Optional[float] = None
    regressed: bool = False


@dataclass
class BenchReport:
    """The full analyzer output for one host view of the ledger."""

    host: str
    threshold: float
    ledger_path: str
    trends: List[ExperimentTrend] = field(default_factory=list)

    @property
    def regressions(self) -> List[ExperimentTrend]:
        """Trends flagged below the threshold, worst ratio first."""
        flagged = [t for t in self.trends if t.regressed]
        return sorted(flagged, key=lambda t: (t.ratio if t.ratio is not None else 0.0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "host": self.host,
            "threshold": self.threshold,
            "ledger_path": self.ledger_path,
            "regressions": [t.experiment for t in self.regressions],
            "trends": [
                {
                    "experiment": t.experiment,
                    "host": t.host,
                    "entries": t.entries,
                    "ignored": t.ignored,
                    "median_steps_per_s": t.median_steps_per_s,
                    "latest_steps_per_s": t.latest_steps_per_s,
                    "latest_note": t.latest_note,
                    "latest_recorded": t.latest_recorded,
                    "ratio": t.ratio,
                    "regressed": t.regressed,
                }
                for t in self.trends
            ],
        }


def analyze_ledger(
    path: Optional[Path] = None,
    host: Optional[dict] = None,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = MIN_HISTORY,
) -> BenchReport:
    """Compute per-experiment same-host throughput trends.

    Args:
        path: ledger location (default:
            :func:`~repro.sim.telemetry.bench_path`).
        host: fingerprint whose entries to analyze (default: the
            current machine's).  Entries from any other host — or with
            no fingerprint at all — are counted as ignored.
        threshold: flag when ``latest < threshold × median`` of the
            prior same-host history.
        min_history: same-host entries required before flagging (below
            it the trend is reported but never marked regressed).

    Returns:
        A :class:`BenchReport`; experiments with zero same-host entries
        still appear (all-ignored rows) so the report shows *why* an
        experiment has no trend.
    """
    if not 0.0 < threshold <= 1.0:
        raise ModelParameterError(f"threshold must be in (0, 1], got {threshold!r}")
    if min_history < 2:
        raise ModelParameterError(f"min_history must be >= 2, got {min_history!r}")
    ledger_path = path if path is not None else telemetry.bench_path()
    host = host if host is not None else telemetry.host_fingerprint()
    ledger = telemetry.load_ledger(ledger_path)
    report = BenchReport(
        host=host_key(host), threshold=float(threshold), ledger_path=str(ledger_path)
    )
    for experiment in sorted(ledger["experiments"]):
        history = ledger["experiments"][experiment] or []
        comparable = [
            e
            for e in history
            if isinstance(e, dict) and e.get("host") == host
            and isinstance(e.get("steps_per_s"), (int, float))
        ]
        ignored = len(history) - len(comparable)
        trend = ExperimentTrend(
            experiment=experiment,
            host=report.host,
            entries=len(comparable),
            ignored=ignored,
            median_steps_per_s=None,
            latest_steps_per_s=None,
        )
        if comparable:
            newest = comparable[-1]
            trend.latest_steps_per_s = float(newest["steps_per_s"])
            trend.latest_note = str(newest.get("note", ""))
            trend.latest_recorded = str(newest.get("recorded", ""))
        if len(comparable) >= min_history:
            baseline = [float(e["steps_per_s"]) for e in comparable[:-1]]
            median = statistics.median(baseline)
            trend.median_steps_per_s = median
            if median > 0.0:
                trend.ratio = trend.latest_steps_per_s / median
                trend.regressed = trend.ratio < threshold
        report.trends.append(trend)
    return report


def render_markdown(report: BenchReport) -> str:
    """The report as a markdown document (CI step-summary friendly)."""
    lines = [
        "# Bench trend report",
        "",
        f"- host: `{report.host}`",
        f"- ledger: `{report.ledger_path}`",
        f"- regression threshold: latest < {report.threshold:.0%} of same-host median",
        "",
    ]
    if report.regressions:
        lines.append(f"**{len(report.regressions)} regression(s) flagged:**")
        for t in report.regressions:
            lines.append(
                f"- `{t.experiment}`: {t.latest_steps_per_s:,.1f} steps/s is "
                f"{t.ratio:.0%} of the same-host median "
                f"{t.median_steps_per_s:,.1f} (note: {t.latest_note!r})"
            )
        lines.append("")
    else:
        lines.append("No regressions flagged.")
        lines.append("")
    lines.append(
        "| experiment | same-host entries | ignored | median steps/s "
        "| latest steps/s | latest/median | flag |"
    )
    lines.append("|---|---:|---:|---:|---:|---:|---|")

    def num(value: Optional[float]) -> str:
        return f"{value:,.1f}" if value is not None else "—"

    for t in report.trends:
        ratio = f"{t.ratio:.2f}" if t.ratio is not None else "—"
        flag = "**REGRESSED**" if t.regressed else ""
        lines.append(
            f"| `{t.experiment}` | {t.entries} | {t.ignored} "
            f"| {num(t.median_steps_per_s)} | {num(t.latest_steps_per_s)} "
            f"| {ratio} | {flag} |"
        )
    lines.append("")
    return "\n".join(lines)


def write_report(
    report: BenchReport,
    directory: Path,
    prefix: str = "bench_report",
) -> Dict[str, Path]:
    """Write the markdown + JSON renderings atomically.

    Returns ``{"markdown": path, "json": path}``.
    """
    from repro.ckpt.atomic import atomic_write_json, atomic_write_text

    directory = Path(directory)
    md_path = directory / f"{prefix}.md"
    json_path = directory / f"{prefix}.json"
    atomic_write_text(md_path, render_markdown(report))
    atomic_write_json(json_path, report.to_dict())
    return {"markdown": md_path, "json": json_path}


__all__ = [
    "DEFAULT_THRESHOLD",
    "MIN_HISTORY",
    "ExperimentTrend",
    "BenchReport",
    "analyze_ledger",
    "host_key",
    "render_markdown",
    "write_report",
]
