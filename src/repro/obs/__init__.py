"""``repro.obs`` — zero-overhead-when-disabled observability.

The engine's counters/span infrastructure: a process-wide metrics
registry (:mod:`repro.obs.metrics`), a hierarchical aggregating span
tracer (:mod:`repro.obs.tracing`), and exporters for JSON run-reports,
Prometheus text, and flamegraph collapsed stacks
(:mod:`repro.obs.export`).

The subsystem is **off by default** and bitwise-neutral: with it
disabled, every instrumented hot path costs one attribute load and an
``is None`` test (golden traces are unchanged, the perf smoke gate
stays within its budget).  Enable it around a run you want to see
inside::

    from repro import obs

    obs.enable()
    run_comparison(duration=HOURS, dt=10.0)
    obs.disable()

    from repro.obs import export
    print(export.render_summary())
    export.write_profile("results", "profile_comparison")

or use the CLI wrapper: ``python -m repro profile comparison``.

``enable``/``disable`` only wire/unwire the instrumentation; collected
state survives ``disable`` (so exporters can read it) and is cleared
with :func:`reset`.  ``REPRO_OBS=1`` in the environment enables the
subsystem at import time — handy for profiling a run without touching
its code.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.obs import export, journal, metrics, progress, tracing
from repro.obs.journal import RunJournal, disable_journal, enable_journal, get_journal
from repro.obs.metrics import HOOKS, REGISTRY, MetricsRegistry
from repro.obs.progress import ProgressEstimator, ProgressTicker, replay_journal
from repro.obs.tracing import TRACER, Tracer

_enabled = False


def is_enabled() -> bool:
    """Whether instrumentation is currently wired in."""
    return _enabled


def enable() -> None:
    """Wire the hot-path hooks and the tracer in (idempotent)."""
    global _enabled
    metrics.install_hooks(REGISTRY)
    TRACER.enabled = True
    _enabled = True


def disable() -> None:
    """Unwire all instrumentation; collected state is kept (idempotent)."""
    global _enabled
    metrics.uninstall_hooks()
    TRACER.enabled = False
    _enabled = False


def reset() -> None:
    """Clear all collected metrics and traces (keeps the enabled state)."""
    REGISTRY.reset()
    TRACER.reset()
    if _enabled:
        # Hook slots point at instruments the reset just dropped.
        metrics.install_hooks(REGISTRY)


@contextmanager
def enabled():
    """Context manager: observability on inside the block, restored after."""
    was = _enabled
    enable()
    try:
        yield
    finally:
        if not was:
            disable()


if os.environ.get("REPRO_OBS", "").strip() in ("1", "true", "yes", "on"):
    enable()


__all__ = [
    "enable",
    "disable",
    "enabled",
    "is_enabled",
    "reset",
    "metrics",
    "tracing",
    "export",
    "journal",
    "progress",
    "REGISTRY",
    "TRACER",
    "HOOKS",
    "MetricsRegistry",
    "Tracer",
    "RunJournal",
    "enable_journal",
    "disable_journal",
    "get_journal",
    "ProgressEstimator",
    "ProgressTicker",
    "replay_journal",
]
