"""Process-wide metrics registry: counters, gauges, histograms.

The observability layer's first half (the second is
:mod:`repro.obs.tracing`).  A :class:`MetricsRegistry` owns named
instruments; the module-level :data:`REGISTRY` is the process-wide one
every hot path reports into.  Three instrument kinds cover everything
the engine needs:

* :class:`Counter` — monotone accumulator (solver iterations, cache
  hits, fault-window activations, per-technique energy totals).
* :class:`Gauge` — last-value instrument (cache size, current report
  period).
* :class:`Histogram` — bucketed distribution (sampled step durations,
  per-spec worker wall time).

Zero-overhead-when-disabled contract
------------------------------------

Hot paths (the scalar Lambert-W solver runs millions of times per
24-hour run) must not pay for instrumentation they are not using.  They
therefore do **not** call the registry directly; they read a slot on the
module-level :data:`HOOKS` struct, which is ``None`` until
:func:`repro.obs.enable` wires real counters in:

    h = HOOKS.lambertw_calls
    if h is not None:
        h.inc()

Disabled cost is one attribute load and an ``is None`` test — far below
the 5 % perf-smoke budget.  Direct ``REGISTRY.counter(...)`` use always
works regardless of the enabled flag; the flag only controls the hook
wiring and the engines' instrumented code paths.

Cross-process aggregation
-------------------------

:func:`MetricsRegistry.snapshot` / :func:`diff_snapshots` /
:func:`MetricsRegistry.merge` implement the worker-side protocol used
by :func:`repro.sim.parallel.parallel_map`: a worker snapshots before a
spec, runs it, and ships back the *delta*, which the parent merges
exactly once.  Deltas (not absolute snapshots) make the scheme correct
under ``fork`` start methods, where a worker inherits the parent's
pre-fork counts.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ModelParameterError

DEFAULT_TIME_BUCKETS = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0,
)
"""Latency buckets (seconds) spanning sub-microsecond steps to 1 s specs."""


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone accumulator (floats allowed: joules, seconds, counts)."""

    __slots__ = ("name", "description", "labels", "value")

    def __init__(self, name: str, description: str = "", labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.description = description
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0 — counters only go up)."""
        if amount < 0.0:
            raise ModelParameterError(f"counter increment must be >= 0, got {amount!r}")
        self.value += amount


class Gauge:
    """A last-value instrument."""

    __slots__ = ("name", "description", "labels", "value")

    def __init__(self, name: str, description: str = "", labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.description = description
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics).

    Args:
        name: instrument name.
        description: one-line help text.
        buckets: ascending upper bounds; an implicit +Inf bucket is
            always present.
    """

    __slots__ = ("name", "description", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        labels: Tuple[Tuple[str, str], ...] = (),
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ModelParameterError("histogram needs at least one bucket bound")
        self.name = name
        self.description = description
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.sum += v
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Named-instrument store with get-or-create accessors.

    Thread-safe for instrument creation (hot-path increments are plain
    attribute updates on the instrument, which is the GIL-atomic pattern
    CPython counters rely on).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: "Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object]" = {}

    def _get_or_create(self, kind, name, description, labels, **kwargs):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    inst = kind(name, description=description, labels=key[1], **kwargs)
                    self._instruments[key] = inst
        if not isinstance(inst, kind):
            raise ModelParameterError(
                f"instrument {name!r} already registered as {type(inst).__name__}, "
                f"not {kind.__name__}"
            )
        return inst

    def counter(self, name: str, description: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        """Get or create the counter ``name`` (+ optional labels)."""
        return self._get_or_create(Counter, name, description, labels)

    def gauge(self, name: str, description: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, description, labels)

    def histogram(self, name: str, description: str = "",
                  buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                  labels: Optional[Mapping[str, str]] = None) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(Histogram, name, description, labels, buckets=buckets)

    def instruments(self):
        """All registered instruments, sorted by (name, labels)."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def reset(self) -> None:
        """Drop every instrument (names and values)."""
        with self._lock:
            self._instruments.clear()

    # --- cross-process aggregation protocol -----------------------------------

    def snapshot(self) -> dict:
        """A plain-data copy of every instrument's state (picklable)."""
        out = {}
        for (name, labels), inst in self._instruments.items():
            key = (name, labels)
            if isinstance(inst, Counter):
                out[key] = {"kind": "counter", "description": inst.description,
                            "value": inst.value}
            elif isinstance(inst, Gauge):
                out[key] = {"kind": "gauge", "description": inst.description,
                            "value": inst.value}
            elif isinstance(inst, Histogram):
                out[key] = {"kind": "histogram", "description": inst.description,
                            "buckets": inst.buckets, "counts": list(inst.counts),
                            "sum": inst.sum, "count": inst.count}
        return out

    def merge(self, delta: Mapping) -> None:
        """Fold a snapshot/delta (from :func:`diff_snapshots`) into this registry.

        Counters and histogram contents add; gauges take the incoming
        value (last writer wins).
        """
        for (name, labels), data in delta.items():
            label_map = dict(labels)
            kind = data["kind"]
            if kind == "counter":
                if data["value"] != 0.0:
                    self.counter(name, data.get("description", ""), label_map).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name, data.get("description", ""), label_map).set(data["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    name, data.get("description", ""), buckets=data["buckets"], labels=label_map
                )
                if hist.buckets != tuple(data["buckets"]):
                    raise ModelParameterError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                for i, c in enumerate(data["counts"]):
                    hist.counts[i] += c
                hist.sum += data["sum"]
                hist.count += data["count"]


def diff_snapshots(before: Mapping, after: Mapping) -> dict:
    """The instrument-state delta between two :meth:`~MetricsRegistry.snapshot` calls.

    Counters/histograms subtract; gauges carry the ``after`` value.
    Instruments absent from ``before`` contribute their full ``after``
    state.
    """
    delta = {}
    for key, data in after.items():
        base = before.get(key)
        kind = data["kind"]
        if base is None:
            delta[key] = data
            continue
        if kind == "counter":
            d = data["value"] - base["value"]
            if d != 0.0:
                delta[key] = {**data, "value": d}
        elif kind == "gauge":
            delta[key] = data
        elif kind == "histogram":
            counts = [a - b for a, b in zip(data["counts"], base["counts"])]
            if any(counts):
                delta[key] = {**data, "counts": counts,
                              "sum": data["sum"] - base["sum"],
                              "count": data["count"] - base["count"]}
    return delta


REGISTRY = MetricsRegistry()
"""The process-wide registry every instrumented path reports into."""


class Hooks:
    """Hot-path instrument slots, ``None`` until observability is enabled.

    Call sites load one slot, test ``is None``, and increment — the
    cheapest conditional instrumentation CPython allows.  Slots:

    * ``lambertw_calls`` / ``lambertw_newton_iters`` — explicit solver
      invocations and asymptotic-Newton iterations
      (:mod:`repro.pv.single_diode`).
    * ``mpp_solves`` / ``mpp_iters`` — golden-section MPP searches
      and the section-narrowing iterations they took.
    * ``batch_solves`` / ``batch_conditions`` — vectorized solve passes
      and the conditions they covered (:mod:`repro.pv.batch`).
    * ``cache_hits`` / ``cache_misses`` / ``cache_evictions`` —
      :class:`repro.pv.cache.SolveCache` traffic.
    * ``cache_quantized`` — :class:`~repro.pv.cache.CachedPVCell`
      lookups answered through a quantized (snapped-condition) key.
    * ``scheduler_clamps`` — report periods clamped at the min/max
      bound (:mod:`repro.node.scheduler`).
    * ``fault_activations`` — fault-window queries that found a window
      active (:mod:`repro.faults.schedule`).
    * ``converter_gated`` / ``converter_transitions`` — quasi-static
      steps where the converter refused power, and hysteretic
      run/idle mode flips (:mod:`repro.converter.buck_boost`).
    * ``ckpt_saves`` / ``ckpt_restores`` — checkpoint envelopes written
      and loaded (:mod:`repro.ckpt.checkpoint`).
    * ``parallel_retries`` / ``parallel_quarantines`` /
      ``parallel_stalls`` — hardened-runner events: per-spec retries,
      poison specs quarantined after exhausting retries, and heartbeat
      watchdog stall detections (:mod:`repro.sim.parallel`).
    * ``fleet_nodes`` / ``fleet_steps`` — population sizes taken on by
      the vectorized fleet engine and node-steps it advanced
      (:mod:`repro.sim.fleet`).
    * ``lut_builds`` / ``lut_validations`` — power-LUT tables built and
      pre-run validation gates executed (:mod:`repro.pv.lut`) — the
      compiled tier's dominant cold-start costs.
    * ``compiled_program_hits`` / ``compiled_program_misses`` — compiled
      comparison-program cache traffic (:mod:`repro.sim.compiled`); a
      miss pays LUT build + validation + lane compilation.
    * ``service_submitted`` / ``service_coalesced`` /
      ``service_rejected`` / ``service_retries`` /
      ``service_quarantined`` / ``service_completed`` /
      ``service_recovered`` — job-server lifecycle traffic
      (:mod:`repro.service`): admissions, duplicate specs coalesced
      onto a live run or served from the result cache, 429
      backpressure rejections, per-job retry attempts, poison jobs
      dead-lettered, jobs finished, and jobs re-admitted from the
      store after a crash.
    """

    __slots__ = (
        "lambertw_calls",
        "lambertw_newton_iters",
        "mpp_solves",
        "mpp_iters",
        "batch_solves",
        "batch_conditions",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "cache_quantized",
        "scheduler_clamps",
        "fault_activations",
        "converter_gated",
        "converter_transitions",
        "ckpt_saves",
        "ckpt_restores",
        "parallel_retries",
        "parallel_quarantines",
        "parallel_stalls",
        "fleet_nodes",
        "fleet_steps",
        "lut_builds",
        "lut_validations",
        "compiled_program_hits",
        "compiled_program_misses",
        "service_submitted",
        "service_coalesced",
        "service_rejected",
        "service_retries",
        "service_quarantined",
        "service_completed",
        "service_recovered",
    )

    def __init__(self):
        for slot in self.__slots__:
            setattr(self, slot, None)


HOOKS = Hooks()
"""The module-level hook struct hot paths consult."""

_HOOK_INSTRUMENTS = {
    "lambertw_calls": ("solver.lambertw_calls", "explicit Lambert-W solver invocations"),
    "lambertw_newton_iters": (
        "solver.lambertw_newton_iterations",
        "Newton iterations taken on the asymptotic (overflow-safe) W branch",
    ),
    "mpp_solves": ("solver.mpp_solves", "golden-section MPP searches"),
    "mpp_iters": ("solver.mpp_iterations", "golden-section narrowing iterations"),
    "batch_solves": ("solver.batch_solves", "vectorized batch solve passes"),
    "batch_conditions": ("solver.batch_conditions", "conditions covered by batch solves"),
    "cache_hits": ("pv.cache.hits", "PV solve-cache lookups answered from cache"),
    "cache_misses": ("pv.cache.misses", "PV solve-cache lookups that had to solve"),
    "cache_evictions": ("pv.cache.evictions", "PV solve-cache LRU evictions"),
    "cache_quantized": (
        "pv.cache.quantized_lookups",
        "cached-cell lookups answered through a quantized (snapped) condition key",
    ),
    "scheduler_clamps": (
        "node.scheduler_clamps",
        "report periods clamped at the min/max period bound",
    ),
    "fault_activations": (
        "faults.window_activations",
        "fault-schedule queries that found a window active",
    ),
    "converter_gated": (
        "converter.gated_steps",
        "quasi-static steps where the converter refused incoming power",
    ),
    "converter_transitions": (
        "converter.mode_transitions",
        "hysteretic regulator run/idle mode flips",
    ),
    "ckpt_saves": ("ckpt.saves", "checkpoint envelopes written"),
    "ckpt_restores": ("ckpt.restores", "checkpoint envelopes loaded"),
    "parallel_retries": ("parallel.retries", "per-spec retry attempts in parallel_map"),
    "parallel_quarantines": (
        "parallel.quarantined_specs",
        "specs quarantined after exhausting their retry budget",
    ),
    "parallel_stalls": (
        "parallel.heartbeat_stalls",
        "workers declared hung by the heartbeat watchdog",
    ),
    "fleet_nodes": ("fleet.nodes", "nodes taken on by vectorized fleet runs"),
    "fleet_steps": ("fleet.steps", "node-steps advanced by the fleet engine"),
    "lut_builds": ("pv.lut.builds", "power-LUT tables built (compiled-tier cold start)"),
    "lut_validations": (
        "pv.lut.validations",
        "pre-run LUT validation gates executed against exact solves",
    ),
    "compiled_program_hits": (
        "compiled.program_cache_hits",
        "compiled comparison programs served from the program cache",
    ),
    "compiled_program_misses": (
        "compiled.program_cache_misses",
        "compiled comparison programs built from scratch (LUT + lanes)",
    ),
    "service_submitted": ("service.jobs_submitted", "jobs admitted into the service queue"),
    "service_coalesced": (
        "service.jobs_coalesced",
        "duplicate specs coalesced onto a live job or the TTL result cache",
    ),
    "service_rejected": (
        "service.jobs_rejected",
        "submissions refused with 429 backpressure (queue at bounded depth)",
    ),
    "service_retries": ("service.job_retries", "failed job attempts scheduled for retry"),
    "service_quarantined": (
        "service.jobs_quarantined",
        "poison jobs dead-lettered after exhausting their retry budget",
    ),
    "service_completed": ("service.jobs_completed", "jobs that finished with a result"),
    "service_recovered": (
        "service.jobs_recovered",
        "jobs re-admitted from the crash-safe store after a server restart",
    ),
}


def install_hooks(registry: MetricsRegistry = REGISTRY) -> None:
    """Wire real counters into :data:`HOOKS` (idempotent)."""
    for slot, (name, description) in _HOOK_INSTRUMENTS.items():
        setattr(HOOKS, slot, registry.counter(name, description))


def uninstall_hooks() -> None:
    """Return every :data:`HOOKS` slot to ``None`` (the disabled state)."""
    for slot in Hooks.__slots__:
        setattr(HOOKS, slot, None)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Hooks",
    "HOOKS",
    "install_hooks",
    "uninstall_hooks",
    "diff_snapshots",
    "DEFAULT_TIME_BUCKETS",
]
