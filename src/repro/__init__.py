"""repro — reproduction of Weddell, Merrett & Al-Hashimi, "Ultra
Low-Power Photovoltaic MPPT Technique for Indoor and Outdoor Wireless
Sensor Nodes" (DATE 2011).

The package builds the paper's whole stack in simulation: calibrated
amorphous-silicon PV cells (:mod:`repro.pv`), a behavioural analog
substrate (:mod:`repro.analog`), the proposed sample-and-hold FOCV MPPT
platform (:mod:`repro.core`), its switching converter and energy stores
(:mod:`repro.converter`, :mod:`repro.storage`), indoor/outdoor light
environments (:mod:`repro.env`), the baseline techniques it is compared
against (:mod:`repro.baselines`), sensor-node loads (:mod:`repro.node`),
simulation engines (:mod:`repro.sim`), the paper's quantitative analyses
(:mod:`repro.analysis`), and one driver per published table/figure
(:mod:`repro.experiments`).

Quick taste::

    from repro import am_1815, SampleHoldMPPT, QuasiStaticSimulator
    from repro.env import constant_bench
    from repro.converter import BuckBoostConverter

    sim = QuasiStaticSimulator(
        am_1815(), SampleHoldMPPT(assume_started=True),
        constant_bench(1000.0), converter=BuckBoostConverter(),
    )
    summary = sim.run(duration=3600.0)
    print(summary.tracking_efficiency)
"""

from repro.pv import (
    PVCell,
    CellParameters,
    SingleDiodeModel,
    MPPResult,
    ThermoelectricGenerator,
    am_1815,
    schott_1116929,
    generic_asi,
    generic_csi,
)
from repro.core import (
    AstableMultivibrator,
    SampleHoldCircuit,
    ColdStartCircuit,
    ActiveMonitor,
    PlatformConfig,
    SampleHoldMPPT,
    TransientPlatform,
)
from repro.converter import BuckBoostConverter, ConverterLossModel
from repro.storage import Supercapacitor, IdealBattery
from repro.sim import QuasiStaticSimulator, TransientSimulator, TraceSet
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "PVCell",
    "CellParameters",
    "SingleDiodeModel",
    "MPPResult",
    "ThermoelectricGenerator",
    "am_1815",
    "schott_1116929",
    "generic_asi",
    "generic_csi",
    "AstableMultivibrator",
    "SampleHoldCircuit",
    "ColdStartCircuit",
    "ActiveMonitor",
    "PlatformConfig",
    "SampleHoldMPPT",
    "TransientPlatform",
    "BuckBoostConverter",
    "ConverterLossModel",
    "Supercapacitor",
    "IdealBattery",
    "QuasiStaticSimulator",
    "TransientSimulator",
    "TraceSet",
    "ReproError",
    "__version__",
]
