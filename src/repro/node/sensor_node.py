"""A composed wireless sensor node: MCU + sensor + radio duty cycle."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError
from repro.node.loads import DutyCycledLoad, NodeState
from repro.node.radio import LOW_POWER_RADIO, RadioModel


@dataclass
class SensorNode:
    """A periodic sense-process-transmit sensor node.

    Builds its :class:`~repro.node.loads.DutyCycledLoad` from part-level
    parameters, so examples can ask "what report period is energy-neutral
    at 300 lux?" with honest numbers.

    Attributes:
        report_period: seconds between measurement reports.
        payload_bytes: bytes of sensor payload per report.
        radio: the radio model.
        mcu_active_current: MCU run current, amps.
        mcu_supply: MCU rail, volts.
        sense_time: sensor acquisition time, seconds.
        sense_power: sensor acquisition power, watts.
        process_time: MCU processing time per report, seconds.
        sleep_power: whole-node sleep floor, watts.
    """

    report_period: float = 60.0
    payload_bytes: int = 12
    radio: RadioModel = field(default_factory=lambda: LOW_POWER_RADIO)
    mcu_active_current: float = 1.8e-3
    mcu_supply: float = 3.0
    sense_time: float = 5e-3
    sense_power: float = 1.2e-3
    process_time: float = 2e-3
    sleep_power: float = 4e-6

    def __post_init__(self) -> None:
        if self.report_period <= 0.0:
            raise ModelParameterError(f"report_period must be positive, got {self.report_period!r}")
        if self.payload_bytes < 0:
            raise ModelParameterError(f"payload_bytes must be >= 0, got {self.payload_bytes!r}")

    def load(self) -> DutyCycledLoad:
        """The node's electrical load profile."""
        mcu_power = self.mcu_active_current * self.mcu_supply
        tx_time = self.radio.transaction_time(self.payload_bytes)
        tx_energy = self.radio.transmit_energy(self.payload_bytes)
        tx_power = tx_energy / tx_time
        return DutyCycledLoad(
            period=self.report_period,
            phases=[
                (NodeState.SENSE, self.sense_time, self.sense_power + mcu_power),
                (NodeState.PROCESS, self.process_time, mcu_power),
                (NodeState.TRANSMIT, tx_time, tx_power + mcu_power),
            ],
            sleep_power=self.sleep_power,
        )

    def average_power(self) -> float:
        """Cycle-average node power, watts."""
        return self.load().average_power()

    def energy_per_report(self) -> float:
        """Active energy (joules) spent per report, excluding sleep floor."""
        mcu_power = self.mcu_active_current * self.mcu_supply
        energy = self.sense_time * (self.sense_power + mcu_power)
        energy += self.process_time * mcu_power
        energy += self.radio.transmit_energy(self.payload_bytes)
        energy += self.radio.transaction_time(self.payload_bytes) * mcu_power
        return energy

    def neutral_report_period(self, harvest_power: float) -> float:
        """Report period at which the node is energy-neutral for a given
        average harvested power (watts).

        Raises:
            ModelParameterError: if even pure sleep exceeds the budget.
        """
        if harvest_power <= self.sleep_power:
            raise ModelParameterError(
                f"harvest power {harvest_power!r} W cannot cover the sleep floor "
                f"{self.sleep_power!r} W"
            )
        return self.energy_per_report() / (harvest_power - self.sleep_power)
