"""Duty-cycled electrical load profiles."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ModelParameterError


class NodeState(enum.Enum):
    """Operating states of a duty-cycled sensor node."""

    SLEEP = "sleep"
    SENSE = "sense"
    PROCESS = "process"
    TRANSMIT = "transmit"


@dataclass
class DutyCycledLoad:
    """A periodic state-sequence load.

    Each cycle runs the given (state, duration, power) phases and then
    sleeps for the remainder of the period.  Evaluating ``power(t)``
    is exact (no averaging), so fine-grained storage simulations see the
    real spikes; :meth:`average_power` gives the budget number.

    Attributes:
        period: full cycle period, seconds.
        phases: active phases as (state, duration_s, power_w).
        sleep_power: power during the sleep remainder, watts.
    """

    period: float
    phases: List[Tuple[NodeState, float, float]]
    sleep_power: float = 3e-6

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ModelParameterError(f"period must be positive, got {self.period!r}")
        active = sum(duration for _, duration, _ in self.phases)
        if active > self.period:
            raise ModelParameterError(
                f"active phases ({active}s) exceed the period ({self.period}s)"
            )
        for state, duration, power in self.phases:
            if duration < 0.0 or power < 0.0:
                raise ModelParameterError(
                    f"phase {state} has negative duration or power"
                )
        if self.sleep_power < 0.0:
            raise ModelParameterError(f"sleep_power must be >= 0, got {self.sleep_power!r}")

    def state_at(self, t: float) -> NodeState:
        """The node state at time ``t``."""
        offset = t % self.period
        for state, duration, _ in self.phases:
            if offset < duration:
                return state
            offset -= duration
        return NodeState.SLEEP

    def power(self, t: float) -> float:
        """Instantaneous load power (watts) at time ``t``."""
        offset = t % self.period
        for _, duration, phase_power in self.phases:
            if offset < duration:
                return phase_power
            offset -= duration
        return self.sleep_power

    __call__ = power

    def average_power(self) -> float:
        """Cycle-average load power, watts."""
        active_energy = sum(duration * power for _, duration, power in self.phases)
        active_time = sum(duration for _, duration, _ in self.phases)
        sleep_energy = (self.period - active_time) * self.sleep_power
        return (active_energy + sleep_energy) / self.period

    def duty_cycle(self) -> float:
        """Fraction of the period spent out of sleep."""
        return sum(duration for _, duration, _ in self.phases) / self.period
