"""Radio energy model for a low-power wireless sensor node."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class RadioModel:
    """An 802.15.4-class radio's energy behaviour.

    Attributes:
        name: part designation.
        tx_current: transmit current, amps.
        rx_current: receive/listen current, amps.
        startup_time: crystal/PLL startup before each exchange, seconds.
        startup_current: current during startup, amps.
        bitrate: over-the-air bitrate, bits/second.
        supply: radio rail, volts.
    """

    name: str
    tx_current: float
    rx_current: float
    startup_time: float = 1.5e-3
    startup_current: float = 6e-3
    bitrate: float = 250e3
    supply: float = 3.0

    def __post_init__(self) -> None:
        if self.tx_current <= 0.0 or self.rx_current <= 0.0:
            raise ModelParameterError("tx and rx currents must be positive")
        if self.bitrate <= 0.0:
            raise ModelParameterError(f"bitrate must be positive, got {self.bitrate!r}")
        if self.supply <= 0.0:
            raise ModelParameterError(f"supply must be positive, got {self.supply!r}")

    def packet_airtime(self, payload_bytes: int, overhead_bytes: int = 23) -> float:
        """Seconds on air for one packet (payload + PHY/MAC overhead)."""
        if payload_bytes < 0:
            raise ModelParameterError(f"payload_bytes must be >= 0, got {payload_bytes!r}")
        bits = 8 * (payload_bytes + overhead_bytes)
        return bits / self.bitrate

    def transmit_energy(self, payload_bytes: int, ack_listen_time: float = 2e-3) -> float:
        """Energy (joules) for one transmit: startup + TX + ACK listen."""
        airtime = self.packet_airtime(payload_bytes)
        energy = self.startup_time * self.startup_current * self.supply
        energy += airtime * self.tx_current * self.supply
        energy += ack_listen_time * self.rx_current * self.supply
        return energy

    def transaction_time(self, payload_bytes: int, ack_listen_time: float = 2e-3) -> float:
        """Wall-clock time (seconds) for one transmit transaction."""
        return self.startup_time + self.packet_airtime(payload_bytes) + ack_listen_time


LOW_POWER_RADIO = RadioModel(
    name="802.15.4-class",
    tx_current=11e-3,
    rx_current=13e-3,
    startup_time=1.5e-3,
    startup_current=6e-3,
    bitrate=250e3,
    supply=3.0,
)
"""A CC2420/AT86RF231-class low-power radio."""
