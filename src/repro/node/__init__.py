"""Wireless sensor node load models.

The harvesting platform exists to power a duty-cycled sensor node; the
examples and the energy-neutrality analyses need a realistic load.  The
model is state-machine based: sleep / sense / process / transmit states
with per-state currents, a radio energy model for packets, and a
composed :class:`SensorNode` usable as the quasi-static engine's
``load`` callable.
"""

from repro.node.radio import RadioModel, LOW_POWER_RADIO
from repro.node.loads import DutyCycledLoad, NodeState
from repro.node.sensor_node import SensorNode
from repro.node.scheduler import EnergyAwareScheduler

__all__ = [
    "RadioModel",
    "LOW_POWER_RADIO",
    "DutyCycledLoad",
    "NodeState",
    "SensorNode",
    "EnergyAwareScheduler",
]
