"""Energy-aware duty-cycle adaptation for the harvesting-powered node.

The point of an energy-harvesting WSN node is perpetual operation: the
node must spend, on average, no more than it harvests.  This scheduler
implements the standard storage-referenced control: the report period
stretches or shrinks with the energy store's state of charge, bounded by
application limits, so the node rides through nights and dark days and
spends surplus when the store is comfortable.

It composes with the quasi-static engine as a ``load`` callable, and the
``adaptive_node.py`` example runs it through the office-desk day.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ModelParameterError, NumericalGuardError
from repro.node.sensor_node import SensorNode
from repro.obs.metrics import HOOKS as _OBS


@dataclass
class EnergyAwareScheduler:
    """Storage-referenced report-period controller.

    The controller maps the store's voltage onto a report period:

    * below ``v_survival`` — hibernate (sleep floor only);
    * between ``v_survival`` and ``v_comfort`` — period interpolates
      (logarithmically) from ``max_period`` down to ``min_period``;
    * above ``v_comfort`` — run at ``min_period`` (spend the surplus).

    Attributes:
        node: the sensor node whose duty cycle is controlled.
        storage: the energy store observed (anything with ``.voltage``).
        v_survival: hibernation threshold, volts.
        v_comfort: full-rate threshold, volts.
        min_period: fastest report period, seconds.
        max_period: slowest report period, seconds.
        update_interval: how often the period is re-evaluated, seconds.
    """

    node: SensorNode
    storage: object
    v_survival: float = 2.2
    v_comfort: float = 4.0
    min_period: float = 30.0
    max_period: float = 1800.0
    update_interval: float = 60.0

    _current_period: float = field(default=0.0, repr=False)
    _next_update: float = field(default=0.0, repr=False)
    _hibernating: bool = field(default=False, repr=False)
    _reports_sent: int = field(default=0, repr=False)
    _next_report: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        from repro.validation import require_finite

        for name in ("v_survival", "v_comfort", "min_period", "max_period", "update_interval"):
            require_finite(getattr(self, name), name)
        if self.v_survival >= self.v_comfort:
            raise ModelParameterError("v_survival must be below v_comfort")
        if self.min_period >= self.max_period:
            raise ModelParameterError("min_period must be below max_period")
        if self.update_interval <= 0.0:
            raise ModelParameterError("update_interval must be positive")
        self._current_period = self.max_period

    # --- policy ------------------------------------------------------------------

    def period_for_voltage(self, voltage: float) -> Optional[float]:
        """The report period commanded at a given store voltage.

        Returns None for hibernation.
        """
        if voltage != voltage:
            # NaN compares false against both thresholds and would fall
            # through to min_period — the *fastest* reporting rate on a
            # store whose state is unknown.  Surface it instead.
            raise NumericalGuardError(
                "storage voltage is NaN; refusing to schedule on it", signal="v_storage"
            )
        if voltage < self.v_survival:
            return None
        if voltage >= self.v_comfort:
            return self.min_period
        # Logarithmic interpolation: period shrinks fast once the store
        # is demonstrably above survival.  The exp/log round trip can
        # land a hair outside the bounds at the endpoints, so clamp.
        fraction = (voltage - self.v_survival) / (self.v_comfort - self.v_survival)
        log_period = math.log(self.max_period) + fraction * (
            math.log(self.min_period) - math.log(self.max_period)
        )
        period = math.exp(log_period)
        if period < self.min_period or period > self.max_period:
            clamps = _OBS.scheduler_clamps
            if clamps is not None:
                clamps.inc()
            period = min(self.max_period, max(self.min_period, period))
        return period

    # --- observables --------------------------------------------------------------

    @property
    def current_period(self) -> float:
        """The report period currently in force, seconds."""
        return self._current_period

    @property
    def hibernating(self) -> bool:
        """Whether the node is in survival hibernation."""
        return self._hibernating

    @property
    def reports_sent(self) -> int:
        """Reports transmitted so far."""
        return self._reports_sent

    # --- load interface --------------------------------------------------------------

    def power(self, t: float) -> float:
        """Instantaneous node power (watts) — the simulator's load hook.

        Re-evaluates the policy every ``update_interval``; between
        reports the node sleeps; each report costs the node's per-report
        energy spread over its active time.
        """
        if t >= self._next_update:
            voltage = getattr(self.storage, "voltage", self.v_comfort)
            period = self.period_for_voltage(voltage)
            if period is None:
                self._hibernating = True
            else:
                was_hibernating = self._hibernating
                self._hibernating = False
                self._current_period = period
                if was_hibernating:
                    self._next_report = t + period
            self._next_update = t + self.update_interval

        if self._hibernating:
            return self.node.sleep_power

        if t >= self._next_report:
            self._reports_sent += 1
            self._next_report = t + self._current_period
            # Report energy as an impulse spread over the update tick the
            # quasi-static engine will integrate (dt-scale accuracy).
            return self.node.sleep_power + self.node.energy_per_report() / self.update_interval

        return self.node.sleep_power

    __call__ = power

    # --- checkpoint protocol --------------------------------------------------------

    _STATE_FIELDS = (
        "_current_period",
        "_next_update",
        "_hibernating",
        "_reports_sent",
        "_next_report",
    )

    def state_dict(self) -> dict:
        """Snapshot the scheduler's mutable state (checkpoint protocol)."""
        from repro.ckpt.state import capture_fields

        return capture_fields(self, self._STATE_FIELDS)

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, self._STATE_FIELDS)

    def average_power_at(self, voltage: float) -> float:
        """Steady-state average power if the store sat at ``voltage``."""
        period = self.period_for_voltage(voltage)
        if period is None:
            return self.node.sleep_power
        return self.node.sleep_power + self.node.energy_per_report() / period
