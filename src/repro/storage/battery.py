"""Ideal rechargeable battery model.

A fixed-voltage store with coulomb-count state of charge and a round-
trip efficiency.  Useful as the "fixed rail sufficiently close to the
MPP" scenario the paper cites for indoor systems that skip MPPT [7] —
the store voltage doesn't move, so direct-connection operating points
stay put.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass
class IdealBattery:
    """A constant-voltage battery with finite capacity.

    Attributes:
        nominal_voltage: terminal voltage, volts (constant).
        capacity_joules: full-charge energy, joules.
        charge_efficiency: fraction of charging energy retained.
        state_of_charge: fraction full (state), 0..1.
    """

    nominal_voltage: float = 3.0
    capacity_joules: float = 1000.0
    charge_efficiency: float = 0.95
    state_of_charge: float = 0.5

    def __post_init__(self) -> None:
        from repro.validation import require_finite

        for name in (
            "nominal_voltage",
            "capacity_joules",
            "charge_efficiency",
            "state_of_charge",
        ):
            require_finite(getattr(self, name), name)
        if self.nominal_voltage <= 0.0:
            raise ModelParameterError(f"nominal_voltage must be positive, got {self.nominal_voltage!r}")
        if self.capacity_joules <= 0.0:
            raise ModelParameterError(f"capacity_joules must be positive, got {self.capacity_joules!r}")
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise ModelParameterError(
                f"charge_efficiency must be in (0, 1], got {self.charge_efficiency!r}"
            )
        if not 0.0 <= self.state_of_charge <= 1.0:
            raise ModelParameterError(
                f"state_of_charge must be in [0, 1], got {self.state_of_charge!r}"
            )

    @property
    def voltage(self) -> float:
        """Terminal voltage, volts (constant while any charge remains)."""
        return self.nominal_voltage if self.state_of_charge > 0.0 else 0.0

    def state_dict(self) -> dict:
        """Snapshot the store's mutable state (checkpoint protocol)."""
        return {"state_of_charge": self.state_of_charge}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, ("state_of_charge",))

    @property
    def stored_energy(self) -> float:
        """Remaining energy, joules."""
        return self.state_of_charge * self.capacity_joules

    def exchange(self, power: float, dt: float) -> float:
        """Add (+) or draw (-) ``power`` watts for ``dt`` seconds.

        Returns the power actually exchanged (clamped at full/empty).
        """
        if dt <= 0.0:
            raise ModelParameterError(f"dt must be positive, got {dt!r}")
        if power >= 0.0:
            energy_in = power * dt * self.charge_efficiency
            space = (1.0 - self.state_of_charge) * self.capacity_joules
            accepted = min(energy_in, space)
            self.state_of_charge += accepted / self.capacity_joules
            return accepted / (dt * self.charge_efficiency)
        energy_out = -power * dt
        available = self.stored_energy
        drawn = min(energy_out, available)
        self.state_of_charge -= drawn / self.capacity_joules
        return -drawn / dt
