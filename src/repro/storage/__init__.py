"""Energy-storage substrate: supercapacitors and batteries.

The harvesting platform charges an energy store through the switching
converter; the store in turn powers the MPPT circuitry and the sensor
node.  Supercapacitors (the common choice in the cited systems, e.g.
Simjee & Chou [4]) are modelled with ESR and leakage; an ideal battery
model covers the fixed-rail alternative.
"""

from repro.storage.supercap import Supercapacitor
from repro.storage.battery import IdealBattery

__all__ = ["Supercapacitor", "IdealBattery"]
