"""Supercapacitor energy store.

Energy-based model with ESR charge/discharge loss and self-leakage,
suitable for the quasi-static engine's second-class steps.  The store
clamps at its rated voltage (a real harvester sheds or regulates there)
and cannot be driven below zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ModelParameterError


@dataclass
class Supercapacitor:
    """A supercapacitor with ESR and leakage.

    Attributes:
        capacitance: farads.
        rated_voltage: maximum terminal voltage, volts.
        esr: equivalent series resistance, ohms.
        leakage_current: self-discharge current, amps.
        voltage: current terminal voltage (state), volts.
    """

    capacitance: float
    rated_voltage: float = 5.5
    esr: float = 0.5
    leakage_current: float = 1e-6
    voltage: float = 0.0

    def __post_init__(self) -> None:
        from repro.validation import require_finite

        for name in ("capacitance", "rated_voltage", "esr", "leakage_current", "voltage"):
            require_finite(getattr(self, name), name)
        if self.capacitance <= 0.0:
            raise ModelParameterError(f"capacitance must be positive, got {self.capacitance!r}")
        if self.rated_voltage <= 0.0:
            raise ModelParameterError(f"rated_voltage must be positive, got {self.rated_voltage!r}")
        if self.esr < 0.0 or self.leakage_current < 0.0:
            raise ModelParameterError("esr and leakage_current must be >= 0")
        if not 0.0 <= self.voltage <= self.rated_voltage:
            raise ModelParameterError(
                f"initial voltage {self.voltage!r} outside [0, {self.rated_voltage}]"
            )

    @property
    def stored_energy(self) -> float:
        """Stored energy, joules."""
        return 0.5 * self.capacitance * self.voltage * self.voltage

    @property
    def headroom_energy(self) -> float:
        """Energy acceptable before hitting the voltage clamp, joules."""
        full = 0.5 * self.capacitance * self.rated_voltage * self.rated_voltage
        return max(0.0, full - self.stored_energy)

    def _esr_loss(self, power: float) -> float:
        """ESR dissipation (watts) while exchanging ``power`` at the terminal.

        Capped at |power|: the averaged model cannot dissipate more than
        it moves (a real charger would simply fail to push that current).
        """
        if self.voltage <= 1e-9:
            return 0.0
        current = abs(power) / self.voltage
        return min(current * current * self.esr, abs(power))

    def exchange(self, power: float, dt: float) -> float:
        """Exchange ``power`` watts with the store for ``dt`` seconds.

        Positive power charges, negative discharges.  Self-leakage is
        applied on every call with ``power >= 0`` exactly once per step
        convention: callers exchanging both a charge and a draw in one
        step should make the charge call first (leakage rides on it).

        Returns:
            The power actually exchanged at the terminal (may be less
            than requested when the store clamps full or runs empty).
        """
        if dt <= 0.0:
            raise ModelParameterError(f"dt must be positive, got {dt!r}")

        loss = self._esr_loss(power)
        leak = self.leakage_current * self.voltage
        full = 0.5 * self.capacitance * self.rated_voltage * self.rated_voltage

        if power >= 0.0:
            requested = power
            stored_delta = max(0.0, power - loss) - leak
            energy = max(0.0, self.stored_energy + stored_delta * dt)
            if energy > full:
                # Clamp: report the terminal power pro-rated to what fit.
                fitted = full - self.stored_energy
                if stored_delta > 0.0:
                    requested = power * fitted / (stored_delta * dt)
                energy = full
            self.voltage = math.sqrt(2.0 * energy / self.capacitance)
            return requested

        # Discharge: the store cannot deliver more terminal energy than
        # it holds, regardless of loss bookkeeping.
        drawn_internal = (-power + loss + leak) * dt
        available = self.stored_energy
        if drawn_internal <= available:
            energy = available - drawn_internal
            requested = power
        else:
            energy = 0.0
            # Terminal share of what was actually available.
            fraction = available / drawn_internal if drawn_internal > 0.0 else 0.0
            requested = power * fraction
        self.voltage = math.sqrt(2.0 * energy / self.capacitance)
        return requested

    def state_dict(self) -> dict:
        """Snapshot the store's mutable state (checkpoint protocol)."""
        return {"voltage": self.voltage}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, ("voltage",))

    def time_to_voltage(self, target: float, power: float) -> float:
        """Seconds of constant ``power`` charging needed to reach ``target`` volts.

        Ignores leakage and ESR (an estimate for sizing and tests).
        """
        if target < self.voltage:
            raise ModelParameterError(f"target {target!r} below current voltage {self.voltage!r}")
        if power <= 0.0:
            raise ModelParameterError(f"power must be positive, got {power!r}")
        needed = 0.5 * self.capacitance * (target * target - self.voltage * self.voltage)
        return needed / power
