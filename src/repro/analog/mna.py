"""Modified nodal analysis (MNA) DC solver.

A compact circuit solver for the resistive operating-point problems that
come up in the MPPT front-end: divider ratios under buffer-bias loading,
the PV cell's sampled voltage through the analog switch, cold-start
threshold networks.  Supports resistors, independent current and voltage
sources, and two-terminal nonlinear current elements (the PV cell),
solved by damped Newton iteration on the MNA equations.

Nodes are referred to by name; ``"0"`` and ``"gnd"`` are the reference.

Example::

    c = Circuit()
    c.add_resistor("a", "b", 1e6)
    c.add_voltage_source("a", "0", 5.0)
    c.add_resistor("b", "0", 1e6)
    v = c.solve_dc()
    v["b"]  # 2.5
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.errors import ConvergenceError, ModelParameterError

GROUND_NAMES = ("0", "gnd", "GND")


@dataclass(frozen=True)
class _Resistor:
    node_a: str
    node_b: str
    ohms: float


@dataclass(frozen=True)
class _CurrentSource:
    node_from: str
    node_to: str
    amps: float


@dataclass(frozen=True)
class _VoltageSource:
    node_plus: str
    node_minus: str
    volts: float
    name: str


@dataclass(frozen=True)
class _Nonlinear:
    """Two-terminal element: current ``i(v)`` flows from node_plus to
    node_minus *through the element* when ``v = v(node_plus) - v(node_minus)``.

    For a PV cell wired to deliver current into node_plus, use
    ``orientation=-1`` (the cell pushes current out of its positive
    terminal).
    """

    node_plus: str
    node_minus: str
    current: Callable[[float], float]
    conductance: Callable[[float], float]
    orientation: int = 1


class DCSolution(Mapping[str, float]):
    """Solved DC operating point: node voltages and voltage-source currents."""

    def __init__(self, voltages: Dict[str, float], source_currents: Dict[str, float]):
        self._voltages = dict(voltages)
        self._source_currents = dict(source_currents)

    def __getitem__(self, node: str) -> float:
        if node in GROUND_NAMES:
            return 0.0
        return self._voltages[node]

    def __iter__(self):
        return iter(self._voltages)

    def __len__(self) -> int:
        return len(self._voltages)

    def source_current(self, name: str) -> float:
        """Current (amps) delivered by the named voltage source."""
        return self._source_currents[name]

    def __repr__(self) -> str:
        parts = ", ".join(f"{node}={volts:.6g}V" for node, volts in sorted(self._voltages.items()))
        return f"DCSolution({parts})"


class Circuit:
    """A small DC circuit assembled element by element, solved by MNA."""

    def __init__(self) -> None:
        self._resistors: List[_Resistor] = []
        self._current_sources: List[_CurrentSource] = []
        self._voltage_sources: List[_VoltageSource] = []
        self._nonlinears: List[_Nonlinear] = []
        self._nodes: Dict[str, int] = {}

    # --- construction ----------------------------------------------------------

    def _node_index(self, name: str) -> int:
        """Index of a non-ground node, creating it on first use; -1 for ground."""
        if name in GROUND_NAMES:
            return -1
        if name not in self._nodes:
            self._nodes[name] = len(self._nodes)
        return self._nodes[name]

    def add_resistor(self, node_a: str, node_b: str, ohms: float) -> None:
        """Add a resistor between two nodes."""
        if not ohms > 0.0:
            raise ModelParameterError(f"resistance must be positive, got {ohms!r}")
        self._node_index(node_a)
        self._node_index(node_b)
        self._resistors.append(_Resistor(node_a, node_b, ohms))

    def add_current_source(self, node_from: str, node_to: str, amps: float) -> None:
        """Add an ideal current source pushing ``amps`` from node_from to node_to."""
        self._node_index(node_from)
        self._node_index(node_to)
        self._current_sources.append(_CurrentSource(node_from, node_to, amps))

    def add_voltage_source(self, node_plus: str, node_minus: str, volts: float, name: str | None = None) -> None:
        """Add an ideal voltage source; its current becomes an MNA unknown."""
        self._node_index(node_plus)
        self._node_index(node_minus)
        label = name if name is not None else f"V{len(self._voltage_sources)}"
        if any(vs.name == label for vs in self._voltage_sources):
            raise ModelParameterError(f"duplicate voltage source name {label!r}")
        self._voltage_sources.append(_VoltageSource(node_plus, node_minus, volts, label))

    def add_nonlinear(
        self,
        node_plus: str,
        node_minus: str,
        current: Callable[[float], float],
        conductance: Callable[[float], float],
        source: bool = False,
    ) -> None:
        """Add a two-terminal nonlinear element defined by ``i(v)`` and ``di/dv``.

        With ``source=False`` the element *sinks* ``i(v)`` from node_plus
        to node_minus (diode convention).  With ``source=True`` it
        *delivers* ``i(v)`` into node_plus (PV cell convention: ``i(v)``
        is the cell's output current at terminal voltage ``v``).
        """
        self._node_index(node_plus)
        self._node_index(node_minus)
        self._nonlinears.append(
            _Nonlinear(node_plus, node_minus, current, conductance, orientation=-1 if source else 1)
        )

    def add_pv_cell(self, node_plus: str, node_minus: str, model) -> None:
        """Wire a :class:`~repro.pv.single_diode.SingleDiodeModel` between nodes.

        The cell delivers its terminal current into ``node_plus``.  A
        centred finite difference supplies the Newton conductance; the
        curve is smooth so this is accurate and keeps the solver
        independent of the model internals.
        """

        def current(v: float) -> float:
            return float(model.current_at(v))

        def conductance(v: float) -> float:
            h = 1e-6 * max(1.0, abs(v))
            return float((model.current_at(v + h) - model.current_at(v - h)) / (2.0 * h))

        self.add_nonlinear(node_plus, node_minus, current, conductance, source=True)

    # --- solving ----------------------------------------------------------------

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All non-ground node names, in creation order."""
        return tuple(sorted(self._nodes, key=self._nodes.get))

    def _assemble_linear(self) -> Tuple[np.ndarray, np.ndarray]:
        n = len(self._nodes)
        m = len(self._voltage_sources)
        a = np.zeros((n + m, n + m))
        z = np.zeros(n + m)

        for r in self._resistors:
            g = 1.0 / r.ohms
            ia, ib = self._nodes.get(r.node_a, -1), self._nodes.get(r.node_b, -1)
            ia = -1 if r.node_a in GROUND_NAMES else ia
            ib = -1 if r.node_b in GROUND_NAMES else ib
            if ia >= 0:
                a[ia, ia] += g
            if ib >= 0:
                a[ib, ib] += g
            if ia >= 0 and ib >= 0:
                a[ia, ib] -= g
                a[ib, ia] -= g

        for s in self._current_sources:
            i_from = -1 if s.node_from in GROUND_NAMES else self._nodes[s.node_from]
            i_to = -1 if s.node_to in GROUND_NAMES else self._nodes[s.node_to]
            if i_from >= 0:
                z[i_from] -= s.amps
            if i_to >= 0:
                z[i_to] += s.amps

        for k, vs in enumerate(self._voltage_sources):
            row = n + k
            ip = -1 if vs.node_plus in GROUND_NAMES else self._nodes[vs.node_plus]
            im = -1 if vs.node_minus in GROUND_NAMES else self._nodes[vs.node_minus]
            if ip >= 0:
                a[row, ip] = 1.0
                a[ip, row] = 1.0
            if im >= 0:
                a[row, im] = -1.0
                a[im, row] = -1.0
            z[row] = vs.volts

        return a, z

    def solve_dc(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-12,
        initial_guess: Mapping[str, float] | None = None,
    ) -> DCSolution:
        """Solve the DC operating point.

        Linear circuits solve in one step; nonlinear elements trigger a
        damped Newton iteration.

        Raises:
            ConvergenceError: if Newton fails to converge.
            ModelParameterError: if the circuit is empty or singular.
        """
        n = len(self._nodes)
        if n == 0:
            raise ModelParameterError("circuit has no nodes")
        m = len(self._voltage_sources)
        a0, z0 = self._assemble_linear()

        x = np.zeros(n + m)
        if initial_guess:
            for node, volts in initial_guess.items():
                if node not in GROUND_NAMES and node in self._nodes:
                    x[self._nodes[node]] = volts

        if not self._nonlinears:
            try:
                x = np.linalg.solve(a0, z0)
            except np.linalg.LinAlgError as exc:
                raise ModelParameterError(f"singular circuit matrix: {exc}") from exc
            return self._package(x)

        def node_voltage(vector: np.ndarray, name: str) -> float:
            return 0.0 if name in GROUND_NAMES else vector[self._nodes[name]]

        for iteration in range(max_iterations):
            a = a0.copy()
            z = z0.copy()
            for nl in self._nonlinears:
                vp = node_voltage(x, nl.node_plus)
                vm = node_voltage(x, nl.node_minus)
                v = vp - vm
                i_val = nl.orientation * nl.current(v)
                g_val = nl.orientation * nl.conductance(v)
                # Companion model: i(v) ~ i0 + g*(v - v0) -> conductance g
                # in parallel with current source (i0 - g*v0).
                ieq = i_val - g_val * v
                ip = -1 if nl.node_plus in GROUND_NAMES else self._nodes[nl.node_plus]
                im = -1 if nl.node_minus in GROUND_NAMES else self._nodes[nl.node_minus]
                if ip >= 0:
                    a[ip, ip] += g_val
                    z[ip] -= ieq
                if im >= 0:
                    a[im, im] += g_val
                    z[im] += ieq
                if ip >= 0 and im >= 0:
                    a[ip, im] -= g_val
                    a[im, ip] -= g_val

            try:
                x_new = np.linalg.solve(a, z)
            except np.linalg.LinAlgError as exc:
                raise ModelParameterError(f"singular circuit matrix: {exc}") from exc

            step = x_new - x
            # Damp big voltage steps to keep exponential elements stable.
            max_step = float(np.max(np.abs(step[:n]))) if n else 0.0
            if max_step > 1.0:
                x = x + step * (1.0 / max_step)
            else:
                x = x_new
            if max_step <= tolerance:
                return self._package(x)

        raise ConvergenceError(
            f"MNA Newton failed to converge after {max_iterations} iterations",
            iterations=max_iterations,
            residual=max_step,
        )

    def _package(self, x: np.ndarray) -> DCSolution:
        n = len(self._nodes)
        voltages = {name: float(x[index]) for name, index in self._nodes.items()}
        currents = {vs.name: float(x[n + k]) for k, vs in enumerate(self._voltage_sources)}
        return DCSolution(voltages, currents)
