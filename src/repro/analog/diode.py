"""Junction diode model (D1's real behaviour).

The cold-start path charges C1 through diode D1; the bootstrap paths of
the baseline systems use a series diode too.  The fixed-drop
approximation used in the system-level models is adequate there, but
the MNA solver can carry the real exponential element — this module
provides it, with the standard Shockley law plus series resistance, and
the companion-model callables the solver needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class DiodeSpec:
    """Datasheet-level junction diode description.

    Attributes:
        name: part designation.
        saturation_current: Shockley I_s, amps.
        ideality: emission coefficient n.
        series_resistance: ohmic series term, ohms.
        temperature: junction temperature, kelvin.
    """

    name: str
    saturation_current: float = 1e-9
    ideality: float = 1.9
    series_resistance: float = 0.5
    temperature: float = 298.15

    def __post_init__(self) -> None:
        if self.saturation_current <= 0.0:
            raise ModelParameterError(
                f"saturation_current must be positive, got {self.saturation_current!r}"
            )
        if self.ideality <= 0.0:
            raise ModelParameterError(f"ideality must be positive, got {self.ideality!r}")
        if self.series_resistance < 0.0:
            raise ModelParameterError(
                f"series_resistance must be >= 0, got {self.series_resistance!r}"
            )


SCHOTTKY_SMALL_SIGNAL = DiodeSpec(
    name="schottky-small-signal",
    saturation_current=2e-7,
    ideality=1.1,
    series_resistance=0.6,
)
"""A BAT54-class Schottky — the natural D1 choice (low forward drop)."""

SILICON_SMALL_SIGNAL = DiodeSpec(
    name="silicon-small-signal",
    saturation_current=3e-9,
    ideality=1.9,
    series_resistance=0.6,
)
"""A 1N4148-class silicon diode."""


class Diode:
    """A junction diode usable standalone or as an MNA nonlinear element.

    Args:
        spec: datasheet parameters.
    """

    def __init__(self, spec: DiodeSpec = SILICON_SMALL_SIGNAL):
        self.spec = spec

    @property
    def thermal_voltage(self) -> float:
        """n·kT/q, volts — the exponential scale."""
        from repro.units import thermal_voltage

        return self.spec.ideality * thermal_voltage(self.spec.temperature)

    def current(self, voltage: float) -> float:
        """Diode current (amps) at a terminal voltage (anode - cathode).

        Solves the implicit Shockley + Rs equation by Newton iteration
        (a handful of steps; the exponent is clamped for stability).
        """
        vt = self.thermal_voltage
        i_s = self.spec.saturation_current
        rs = self.spec.series_resistance
        if rs == 0.0:
            return i_s * math.expm1(min(voltage / vt, 80.0))
        # Solve i = Is*(exp((v - i*rs)/vt) - 1).
        i = max(0.0, (voltage - 0.5) / rs) if voltage > 0.5 else 0.0
        for _ in range(60):
            exponent = min((voltage - i * rs) / vt, 80.0)
            f = i_s * math.expm1(exponent) - i
            dfdi = -i_s * math.exp(exponent) * rs / vt - 1.0
            step = f / dfdi
            i -= step
            if abs(step) < 1e-15 + 1e-12 * abs(i):
                break
        return i

    def conductance(self, voltage: float) -> float:
        """Small-signal dI/dV at a terminal voltage (for Newton solvers)."""
        h = 1e-6
        return (self.current(voltage + h) - self.current(voltage - h)) / (2.0 * h)

    def forward_drop(self, current: float) -> float:
        """Terminal voltage (volts) carrying ``current`` forward.

        Raises:
            ModelParameterError: for non-positive current.
        """
        if current <= 0.0:
            raise ModelParameterError(f"current must be positive, got {current!r}")
        vt = self.thermal_voltage
        v_junction = vt * math.log1p(current / self.spec.saturation_current)
        return v_junction + current * self.spec.series_resistance

    def add_to_circuit(self, circuit, anode: str, cathode: str) -> None:
        """Attach this diode between two nodes of an MNA circuit."""
        circuit.add_nonlinear(anode, cathode, self.current, self.conductance)
