"""IEC 60063 E-series standard component values.

The prototype is built from catalogue parts, so every synthesised
design (astable timing network, divider trim, hold capacitor) must land
on standard E-series values — and the rounding error is a real term in
the accuracy budget (it is part of why the paper fits a trimmer in place
of R2).  This module provides the preferred-number series, nearest-value
selection, and ratio approximation with value pairs.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ModelParameterError

E12 = (1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2)
"""E12 series (10 % tolerance class)."""

E24 = (
    1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0,
    3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6, 6.2, 6.8, 7.5, 8.2, 9.1,
)
"""E24 series (5 % tolerance class)."""

E96 = tuple(round(10 ** (i / 96.0), 2) for i in range(96))
"""E96 series (1 % tolerance class), generated per IEC 60063."""

_SERIES = {"E12": E12, "E24": E24, "E96": E96}


def series_values(name: str) -> Tuple[float, ...]:
    """The decade mantissas of a named series ('E12', 'E24', 'E96')."""
    try:
        return _SERIES[name]
    except KeyError:
        raise ModelParameterError(
            f"unknown series {name!r}; available: {sorted(_SERIES)}"
        ) from None


def nearest_value(target: float, series: str = "E24") -> float:
    """The standard value closest (log-distance) to ``target``.

    Args:
        target: desired value (ohms, farads, ... unit-agnostic).
        series: which E-series to draw from.

    Returns:
        The nearest preferred value.
    """
    if target <= 0.0:
        raise ModelParameterError(f"target must be positive, got {target!r}")
    mantissas = series_values(series)
    exponent = math.floor(math.log10(target))
    best = None
    best_error = float("inf")
    for exp in (exponent - 1, exponent, exponent + 1):
        for m in mantissas:
            value = m * 10.0**exp
            error = abs(math.log(value / target))
            if error < best_error:
                best_error = error
                best = value
    return best


def round_to_series(values: Sequence[float], series: str = "E24") -> List[float]:
    """Nearest standard value for each entry of ``values``."""
    return [nearest_value(v, series) for v in values]


def rounding_error(target: float, series: str = "E24") -> float:
    """Fractional error committed by snapping ``target`` to the series."""
    return nearest_value(target, series) / target - 1.0


def best_ratio_pair(
    ratio: float,
    total: float,
    series: str = "E24",
) -> Tuple[float, float]:
    """Standard (top, bottom) resistor pair approximating a divider.

    Searches value pairs near the ideal split for the pair whose
    ``bottom / (top + bottom)`` is closest to ``ratio`` while keeping the
    end-to-end resistance within a factor ~2 of ``total`` (the impedance
    class matters more loosely than the ratio).

    Args:
        ratio: target division ratio in (0, 1).
        total: target end-to-end resistance.
        series: E-series to draw from.

    Returns:
        (top_value, bottom_value).
    """
    if not 0.0 < ratio < 1.0:
        raise ModelParameterError(f"ratio must be in (0, 1), got {ratio!r}")
    if total <= 0.0:
        raise ModelParameterError(f"total must be positive, got {total!r}")
    mantissas = series_values(series)
    ideal_bottom = ratio * total
    ideal_top = total - ideal_bottom

    def candidates(ideal: float) -> List[float]:
        exponent = math.floor(math.log10(ideal))
        out = []
        for exp in (exponent - 1, exponent, exponent + 1):
            out.extend(m * 10.0**exp for m in mantissas)
        return out

    best_pair = None
    best_cost = float("inf")
    for top in candidates(ideal_top):
        for bottom in candidates(ideal_bottom):
            achieved = bottom / (top + bottom)
            ratio_error = abs(achieved - ratio) / ratio
            impedance_error = abs(math.log((top + bottom) / total))
            cost = ratio_error + 0.05 * impedance_error
            if cost < best_cost:
                best_cost = cost
                best_pair = (top, bottom)
    return best_pair
