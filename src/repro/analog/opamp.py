"""Micropower op-amp / unity-gain buffer model.

The S&H uses two unity-gain buffers: U2 isolates the divider tap from
the sampling switch, U4 isolates the hold capacitor from the converter's
reference input.  Their *input bias current* is a first-order term in
the droop budget (it discharges the hold cap for the whole 69-second
hold), and their quiescent currents dominate the 7.6 uA system budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class OpAmpSpec:
    """Datasheet-level op-amp description.

    Attributes:
        name: part designation.
        quiescent_current: supply current, amps.
        input_bias_current: input bias current, amps (CMOS parts: pA).
        input_offset: input offset voltage, volts.
        slew_rate: output slew rate, volts/second.
        output_resistance: closed-loop output resistance, ohms.
        min_supply: minimum operating supply, volts.
    """

    name: str
    quiescent_current: float
    input_bias_current: float = 1e-12
    input_offset: float = 0.0
    slew_rate: float = 2e4
    output_resistance: float = 2000.0
    min_supply: float = 1.8

    def __post_init__(self) -> None:
        if self.quiescent_current < 0.0:
            raise ModelParameterError(f"quiescent_current must be >= 0, got {self.quiescent_current!r}")
        if self.slew_rate <= 0.0:
            raise ModelParameterError(f"slew_rate must be positive, got {self.slew_rate!r}")
        if self.output_resistance < 0.0:
            raise ModelParameterError(f"output_resistance must be >= 0, got {self.output_resistance!r}")


MICROPOWER_BUFFER = OpAmpSpec(
    name="micropower-cmos-buffer",
    quiescent_current=3.4e-6,
    input_bias_current=2e-12,
    input_offset=1.5e-3,
    slew_rate=2.5e4,
    output_resistance=1500.0,
    min_supply=1.8,
)
"""A CMOS micropower rail-to-rail op-amp of the class used in the prototype."""


@dataclass
class UnityGainBuffer:
    """A voltage follower with offset, slew limiting, and bias current.

    The buffer's output tracks its input exactly (plus offset) in steady
    state; :meth:`step` advances the output with slew limiting for
    transient simulation.

    Args:
        spec: datasheet parameters.
        supply: supply rail, volts — output clamps to [0, supply].
    """

    spec: OpAmpSpec = field(default_factory=lambda: MICROPOWER_BUFFER)
    supply: float = 3.3
    _output: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.supply <= 0.0:
            raise ModelParameterError(f"supply must be positive, got {self.supply!r}")

    @property
    def output(self) -> float:
        """Current output voltage."""
        return self._output

    @property
    def alive(self) -> bool:
        """Whether the supply is above the part's minimum operating voltage."""
        return self.supply >= self.spec.min_supply

    def settle(self, v_in: float) -> float:
        """Snap the output to its steady-state value for input ``v_in``."""
        if not self.alive:
            self._output = 0.0
            return self._output
        self._output = min(self.supply, max(0.0, v_in + self.spec.input_offset))
        return self._output

    def step(self, v_in: float, dt: float) -> float:
        """Advance the output by ``dt`` seconds toward ``v_in`` with slew limiting."""
        if dt < 0.0:
            raise ModelParameterError(f"dt must be >= 0, got {dt!r}")
        if not self.alive:
            self._output = 0.0
            return self._output
        target = min(self.supply, max(0.0, v_in + self.spec.input_offset))
        max_delta = self.spec.slew_rate * dt
        delta = target - self._output
        if abs(delta) > max_delta:
            delta = max_delta if delta > 0.0 else -max_delta
        self._output += delta
        return self._output

    def supply_current(self) -> float:
        """Instantaneous supply current, amps (zero if below min supply)."""
        return self.spec.quiescent_current if self.alive else 0.0

    def bias_current(self) -> float:
        """Input bias current, amps — the hold-cap discharge term."""
        return self.spec.input_bias_current if self.alive else 0.0

    # --- checkpoint protocol -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the buffer's mutable state (the output voltage)."""
        return {"output": self._output}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if "output" not in state:
            from repro.errors import StateFormatError

            raise StateFormatError("UnityGainBuffer state missing 'output'")
        self._output = state["output"]
