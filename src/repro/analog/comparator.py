"""Micropower comparator model (LMC7215 class).

Two comparators appear in the paper's platform: one wired as the astable
multivibrator that times the sampling, and one (U5) generating the
ACTIVE output that stops the converter starting on an invalid held
sample.  What matters at system level is quiescent current, offset,
optional built-in hysteresis, propagation delay, and the rail-to-rail
output drive — all captured here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class ComparatorSpec:
    """Datasheet-level comparator description.

    Attributes:
        name: part designation.
        quiescent_current: supply current, amps.
        input_offset: worst-case input offset voltage, volts.
        hysteresis: built-in input hysteresis (total width), volts.
        propagation_delay: low-to-high propagation delay, seconds.
        min_supply: minimum operating supply, volts — relevant to
            cold-start, where the comparator must wake on a barely
            charged reservoir.
        input_bias_current: input bias current, amps.
    """

    name: str
    quiescent_current: float
    input_offset: float = 0.0
    hysteresis: float = 0.0
    propagation_delay: float = 0.0
    min_supply: float = 1.6
    input_bias_current: float = 0.0

    def __post_init__(self) -> None:
        if self.quiescent_current < 0.0:
            raise ModelParameterError(f"quiescent_current must be >= 0, got {self.quiescent_current!r}")
        if self.hysteresis < 0.0:
            raise ModelParameterError(f"hysteresis must be >= 0, got {self.hysteresis!r}")
        if self.min_supply <= 0.0:
            raise ModelParameterError(f"min_supply must be positive, got {self.min_supply!r}")


LMC7215 = ComparatorSpec(
    name="LMC7215",
    quiescent_current=0.7e-6,
    input_offset=3e-3,
    hysteresis=0.0,
    propagation_delay=25e-6,
    min_supply=2.0,
    input_bias_current=4e-12,
)
"""National Semiconductor LMC7215 — the paper's micropower comparator."""


@dataclass
class Comparator:
    """A comparator instance with state (for hysteresis and delay modelling).

    Args:
        spec: datasheet parameters.
        supply: supply-rail voltage the output swings to, volts.
        inverting: swap the input sense.
    """

    spec: ComparatorSpec = field(default_factory=lambda: LMC7215)
    supply: float = 3.3
    inverting: bool = False
    _output_high: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.supply <= 0.0:
            raise ModelParameterError(f"supply must be positive, got {self.supply!r}")

    @property
    def output_high(self) -> bool:
        """Current logical output state."""
        return self._output_high

    @property
    def output_voltage(self) -> float:
        """Current output voltage (rail-to-rail drive)."""
        return self.supply if self._output_high else 0.0

    @property
    def alive(self) -> bool:
        """Whether the supply is above the part's minimum operating voltage."""
        return self.supply >= self.spec.min_supply

    def evaluate(self, v_plus: float, v_minus: float) -> bool:
        """Update and return the output for the given input pair.

        Includes input offset and hysteresis centred on the switching
        threshold; with the supply below ``min_supply`` the output is
        forced (and held) low, which is what lets the cold-start chain
        rely on a dead comparator staying quiet.
        """
        self.supply = float(self.supply)
        if not self.alive:
            self._output_high = False
            return False
        differential = (v_plus - v_minus) + self.spec.input_offset
        if self.inverting:
            differential = -differential
        half_band = self.spec.hysteresis / 2.0
        if self._output_high:
            if differential < -half_band:
                self._output_high = False
        else:
            if differential > half_band:
                self._output_high = True
        return self._output_high

    def supply_current(self) -> float:
        """Instantaneous supply current, amps (zero if below min supply)."""
        return self.spec.quiescent_current if self.alive else 0.0
