"""Behavioural analog-circuit substrate.

The paper's prototype is a handful of micropower parts around the PV
cell: an LMC7215-class comparator wired as an astable, an analog switch,
a low-leakage polyester sampling capacitor, two unity-gain op-amp
buffers, a second comparator for the ACTIVE sanity check, and MOSFET
switches.  This package models each part behaviourally at datasheet
fidelity (on-resistance, leakage, bias current, offset, hysteresis,
quiescent current) and provides a small modified-nodal-analysis DC
solver (:mod:`repro.analog.mna`) used to compute loaded operating
points — e.g. what voltage actually lands on the hold capacitor when
the divider loads the PV cell during a sample.
"""

from repro.analog.components import Resistor, Capacitor, ResistiveDivider, POLYESTER_FILM, CERAMIC_X7R, ELECTROLYTIC
from repro.analog.comparator import Comparator, LMC7215
from repro.analog.opamp import UnityGainBuffer, MICROPOWER_BUFFER
from repro.analog.mosfet import MosfetSwitch, LOW_THRESHOLD_NFET, LOW_THRESHOLD_PFET
from repro.analog.switch import AnalogSwitch, MICROPOWER_ANALOG_SWITCH
from repro.analog.mna import Circuit, DCSolution
from repro.analog.eseries import E12, E24, E96, nearest_value, best_ratio_pair, rounding_error
from repro.analog.diode import Diode, DiodeSpec, SILICON_SMALL_SIGNAL, SCHOTTKY_SMALL_SIGNAL

__all__ = [
    "Resistor",
    "Capacitor",
    "ResistiveDivider",
    "POLYESTER_FILM",
    "CERAMIC_X7R",
    "ELECTROLYTIC",
    "Comparator",
    "LMC7215",
    "UnityGainBuffer",
    "MICROPOWER_BUFFER",
    "MosfetSwitch",
    "LOW_THRESHOLD_NFET",
    "LOW_THRESHOLD_PFET",
    "AnalogSwitch",
    "MICROPOWER_ANALOG_SWITCH",
    "Circuit",
    "DCSolution",
    "E12",
    "E24",
    "E96",
    "nearest_value",
    "best_ratio_pair",
    "rounding_error",
    "Diode",
    "DiodeSpec",
    "SILICON_SMALL_SIGNAL",
    "SCHOTTKY_SMALL_SIGNAL",
]
