"""Passive components with the non-idealities the paper designs around.

The S&H accuracy budget is dominated by passives: the divider resistors
set the sampled fraction (and the sampling current stolen from the
cell), and the hold capacitor's *leakage* sets how fast HELD_SAMPLE
droops over the 69-second hold — the reason the authors call out a
"low-leakage polyester capacitor" specifically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class Resistor:
    """A resistor with tolerance and optional temperature coefficient.

    Attributes:
        ohms: nominal resistance.
        tolerance: fractional tolerance (0.01 = 1 %).
        temp_coeff_ppm: temperature coefficient, ppm/K.
    """

    ohms: float
    tolerance: float = 0.01
    temp_coeff_ppm: float = 100.0

    def __post_init__(self) -> None:
        if self.ohms <= 0.0:
            raise ModelParameterError(f"resistance must be positive, got {self.ohms!r}")
        if not 0.0 <= self.tolerance < 1.0:
            raise ModelParameterError(f"tolerance must be in [0, 1), got {self.tolerance!r}")

    def at_temperature(self, delta_k: float) -> float:
        """Resistance (ohms) at ``delta_k`` kelvin away from nominal."""
        return self.ohms * (1.0 + self.temp_coeff_ppm * 1e-6 * delta_k)

    def current(self, volts: float) -> float:
        """Ohm's law current (amps) for a voltage across the part."""
        return volts / self.ohms

    def power(self, volts: float) -> float:
        """Dissipated power (watts) for a voltage across the part."""
        return volts * volts / self.ohms


@dataclass(frozen=True)
class DielectricClass:
    """Capacitor dielectric characteristics relevant to holding a sample.

    Attributes:
        name: dielectric family name.
        insulation_ohm_farads: insulation-resistance quality factor,
            ohm-farads — ``R_leak = insulation_ohm_farads / C``.  The
            standard figure of merit film/ceramic datasheets quote.
        dielectric_absorption: fractional voltage rebound after a
            sample step (soakage), dimensionless.
    """

    name: str
    insulation_ohm_farads: float
    dielectric_absorption: float

    def __post_init__(self) -> None:
        if self.insulation_ohm_farads <= 0.0:
            raise ModelParameterError(
                f"insulation_ohm_farads must be positive, got {self.insulation_ohm_farads!r}"
            )
        if not 0.0 <= self.dielectric_absorption < 0.2:
            raise ModelParameterError(
                f"dielectric_absorption must be in [0, 0.2), got {self.dielectric_absorption!r}"
            )


POLYESTER_FILM = DielectricClass(
    name="polyester-film",
    insulation_ohm_farads=25_000.0,
    dielectric_absorption=0.003,
)
"""Polyester (PET) film — the paper's hold-capacitor choice; R*C ~ 25 kOhmF."""

CERAMIC_X7R = DielectricClass(
    name="ceramic-X7R",
    insulation_ohm_farads=1_000.0,
    dielectric_absorption=0.025,
)
"""X7R ceramic — compact but leakier and with worse soakage."""

ELECTROLYTIC = DielectricClass(
    name="aluminium-electrolytic",
    insulation_ohm_farads=30.0,
    dielectric_absorption=0.1,
)
"""Aluminium electrolytic — unusable as a hold cap; included for the ablation."""


@dataclass(frozen=True)
class Capacitor:
    """A capacitor with dielectric-dependent leakage.

    Attributes:
        farads: nominal capacitance.
        dielectric: dielectric family (sets leakage and soakage).
    """

    farads: float
    dielectric: DielectricClass = POLYESTER_FILM

    def __post_init__(self) -> None:
        if self.farads <= 0.0:
            raise ModelParameterError(f"capacitance must be positive, got {self.farads!r}")

    @property
    def leakage_resistance(self) -> float:
        """Self-leakage resistance, ohms (``R_iso*C / C``)."""
        return self.dielectric.insulation_ohm_farads / self.farads

    def leakage_current(self, volts: float) -> float:
        """Self-leakage current (amps) at a hold voltage."""
        return volts / self.leakage_resistance

    def droop(self, volts: float, hold_seconds: float, external_bias_a: float = 0.0) -> float:
        """Voltage remaining after holding for ``hold_seconds``.

        Self-leakage discharges exponentially through the insulation
        resistance; an external constant bias current (e.g. buffer input
        bias) discharges linearly on top.

        Args:
            volts: initial held voltage.
            hold_seconds: hold duration, seconds.
            external_bias_a: constant external discharge current, amps.

        Returns:
            The held voltage after the interval, floored at 0 for a
            positive initial voltage.
        """
        if hold_seconds < 0.0:
            raise ModelParameterError(f"hold_seconds must be >= 0, got {hold_seconds!r}")
        tau = self.leakage_resistance * self.farads
        v = volts * math.exp(-hold_seconds / tau)
        v -= external_bias_a * hold_seconds / self.farads
        if volts >= 0.0:
            return max(0.0, v)
        return v

    def stored_energy(self, volts: float) -> float:
        """Stored energy (joules) at a terminal voltage."""
        return 0.5 * self.farads * volts * volts

    def settle_time(self, source_ohms: float, settle_fraction: float = 1e-3) -> float:
        """Time to charge within ``settle_fraction`` of final value through ``source_ohms``."""
        if source_ohms <= 0.0:
            raise ModelParameterError(f"source_ohms must be positive, got {source_ohms!r}")
        if not 0.0 < settle_fraction < 1.0:
            raise ModelParameterError(f"settle_fraction must be in (0, 1), got {settle_fraction!r}")
        return source_ohms * self.farads * math.log(1.0 / settle_fraction)


@dataclass(frozen=True)
class ResistiveDivider:
    """Two-resistor divider: output tap between ``top`` and ``bottom``.

    The S&H front-end divides Voc by ``k * alpha`` with this network
    (R1 = top, R2 = bottom in the paper's schematic; R2 is the trimmable
    element).

    Attributes:
        top: resistor from input to tap.
        bottom: resistor from tap to ground.
    """

    top: Resistor
    bottom: Resistor

    @property
    def ratio(self) -> float:
        """Unloaded division ratio ``R_bottom / (R_top + R_bottom)``."""
        return self.bottom.ohms / (self.top.ohms + self.bottom.ohms)

    @property
    def total_resistance(self) -> float:
        """End-to-end resistance, ohms (the current the divider steals)."""
        return self.top.ohms + self.bottom.ohms

    @property
    def output_resistance(self) -> float:
        """Thevenin output resistance at the tap, ohms."""
        return self.top.ohms * self.bottom.ohms / (self.top.ohms + self.bottom.ohms)

    def loaded_ratio(self, load_ohms: float) -> float:
        """Division ratio with a resistive load on the tap."""
        if load_ohms <= 0.0:
            raise ModelParameterError(f"load_ohms must be positive, got {load_ohms!r}")
        bottom_parallel = self.bottom.ohms * load_ohms / (self.bottom.ohms + load_ohms)
        return bottom_parallel / (self.top.ohms + bottom_parallel)

    def input_current(self, volts: float) -> float:
        """Current drawn from the source at input voltage ``volts`` (unloaded tap)."""
        return volts / self.total_resistance

    @staticmethod
    def from_ratio(ratio: float, total_ohms: float) -> "ResistiveDivider":
        """Build a divider with a given unloaded ratio and end-to-end resistance."""
        if not 0.0 < ratio < 1.0:
            raise ModelParameterError(f"ratio must be in (0, 1), got {ratio!r}")
        if total_ohms <= 0.0:
            raise ModelParameterError(f"total_ohms must be positive, got {total_ohms!r}")
        bottom = ratio * total_ohms
        top = total_ohms - bottom
        return ResistiveDivider(top=Resistor(top), bottom=Resistor(bottom))
