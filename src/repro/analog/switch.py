"""Analog (transmission-gate) switch model.

The sampling element of the S&H: when PULSE is high, the switch connects
the divider tap to the hold capacitor.  Its on-resistance (with the
divider's output resistance) sets the settling time that the 39 ms pulse
must cover; its *charge injection* kicks the held voltage at switch-off
(part of the small ripple visible in Fig. 4); its off-leakage joins the
droop budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class AnalogSwitchSpec:
    """Datasheet-level analog switch description.

    Attributes:
        name: part designation.
        on_resistance: closed-channel resistance, ohms.
        charge_injection: charge kicked into the signal path at
            switch-off, coulombs.
        off_leakage: channel leakage when open, amps.
        quiescent_current: supply current of the switch's logic, amps.
        turn_on_time: control-to-closed delay, seconds.
    """

    name: str
    on_resistance: float
    charge_injection: float = 1e-12
    off_leakage: float = 1e-12
    quiescent_current: float = 1e-8
    turn_on_time: float = 1e-7

    def __post_init__(self) -> None:
        if self.on_resistance <= 0.0:
            raise ModelParameterError(f"on_resistance must be positive, got {self.on_resistance!r}")
        if self.off_leakage < 0.0 or self.quiescent_current < 0.0:
            raise ModelParameterError("leakage and quiescent currents must be >= 0")


MICROPOWER_ANALOG_SWITCH = AnalogSwitchSpec(
    name="micropower-cmos-switch",
    on_resistance=120.0,
    charge_injection=2e-12,
    off_leakage=1e-12,
    quiescent_current=1e-8,
    turn_on_time=1e-7,
)
"""A small CMOS transmission gate of the class used in the prototype."""


@dataclass
class AnalogSwitch:
    """An analog switch instance with open/closed state.

    Args:
        spec: datasheet parameters.
    """

    spec: AnalogSwitchSpec = field(default_factory=lambda: MICROPOWER_ANALOG_SWITCH)
    _closed: bool = field(default=False, repr=False)

    @property
    def closed(self) -> bool:
        """Whether the channel currently conducts."""
        return self._closed

    @property
    def resistance(self) -> float:
        """Channel resistance, ohms (``inf`` when open)."""
        return self.spec.on_resistance if self._closed else float("inf")

    def close(self) -> None:
        """Close the switch (PULSE asserted)."""
        self._closed = True

    def open(self, hold_capacitance: float | None = None) -> float:
        """Open the switch; returns the charge-injection voltage kick.

        Args:
            hold_capacitance: capacitance on the signal side, farads.
                If given, the returned value is the voltage step
                ``Q_inj / C_hold`` the hold node suffers; otherwise 0.

        Returns:
            The voltage perturbation (volts) injected onto the hold node.
        """
        was_closed = self._closed
        self._closed = False
        if not was_closed or hold_capacitance is None:
            return 0.0
        if hold_capacitance <= 0.0:
            raise ModelParameterError(f"hold_capacitance must be positive, got {hold_capacitance!r}")
        return self.spec.charge_injection / hold_capacitance

    def leakage_current(self) -> float:
        """Off-state channel leakage, amps (0 when closed — it's a short)."""
        return 0.0 if self._closed else self.spec.off_leakage

    def state_dict(self) -> dict:
        """Snapshot the switch's mutable state (checkpoint protocol)."""
        return {"closed": self._closed}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if "closed" not in state:
            from repro.errors import StateFormatError

            raise StateFormatError("AnalogSwitch state missing 'closed'")
        self._closed = bool(state["closed"])

    def supply_current(self) -> float:
        """Control-logic supply current, amps."""
        return self.spec.quiescent_current
