"""MOSFET switch model.

The platform (Fig. 3) uses MOSFETs as load-disconnect switches (M1-M5)
and as the converter-inhibit pulldown (M8).  The paper stresses that the
parts were "selected for their low on-resistance for relatively small
gate voltages" and that with "only one low on-resistance MOSFET in the
line between the PV cell and the switching converter ... there is a
negligible impact on the overall efficiency".  The model is a
threshold-gated triode-region resistance with off-state leakage — the
terms that matter for conduction loss and droop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class MosfetSpec:
    """Datasheet-level MOSFET switch description.

    Attributes:
        name: part designation.
        threshold: gate-source threshold voltage magnitude, volts.
        on_resistance: fully-enhanced channel resistance, ohms.
        full_enhancement_vgs: |Vgs| at which on_resistance is reached.
        off_leakage: drain-source leakage when off, amps.
        gate_charge: total gate charge, coulombs — costs energy per
            switching event.
        p_channel: True for a PFET (thresholds interpreted as magnitudes).
    """

    name: str
    threshold: float
    on_resistance: float
    full_enhancement_vgs: float = 2.5
    off_leakage: float = 1e-9
    gate_charge: float = 1e-9
    p_channel: bool = False

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ModelParameterError(f"threshold must be positive, got {self.threshold!r}")
        if self.on_resistance <= 0.0:
            raise ModelParameterError(f"on_resistance must be positive, got {self.on_resistance!r}")
        if self.full_enhancement_vgs <= self.threshold:
            raise ModelParameterError(
                "full_enhancement_vgs must exceed threshold "
                f"({self.full_enhancement_vgs!r} <= {self.threshold!r})"
            )


LOW_THRESHOLD_NFET = MosfetSpec(
    name="low-vth-nfet",
    threshold=0.65,
    on_resistance=1.2,
    full_enhancement_vgs=2.2,
    off_leakage=5e-10,
    gate_charge=1.2e-9,
)
"""A small logic-level NFET of the class used for M1-M5/M8."""

LOW_THRESHOLD_PFET = MosfetSpec(
    name="low-vth-pfet",
    threshold=0.75,
    on_resistance=2.0,
    full_enhancement_vgs=2.5,
    off_leakage=5e-10,
    gate_charge=1.5e-9,
    p_channel=True,
)
"""A complementary PFET for high-side disconnect duty."""


@dataclass
class MosfetSwitch:
    """A MOSFET operated as a switch.

    Args:
        spec: datasheet parameters.
    """

    spec: MosfetSpec = field(default_factory=lambda: LOW_THRESHOLD_NFET)

    def channel_resistance(self, vgs: float) -> float:
        """Channel resistance (ohms) at a gate drive |Vgs|.

        Below threshold the channel is open (returns ``inf``); between
        threshold and full enhancement the resistance interpolates as
        ``Ron / (overdrive fraction)``, the standard triode-region
        scaling; beyond full enhancement it is ``Ron``.
        """
        drive = abs(vgs)
        if drive <= self.spec.threshold:
            return float("inf")
        full_overdrive = self.spec.full_enhancement_vgs - self.spec.threshold
        fraction = min(1.0, (drive - self.spec.threshold) / full_overdrive)
        return self.spec.on_resistance / fraction

    def is_on(self, vgs: float) -> bool:
        """Whether the switch conducts at gate drive |Vgs|."""
        return abs(vgs) > self.spec.threshold

    def conduction_loss(self, current: float, vgs: float) -> float:
        """I^2*R loss (watts) carrying ``current`` at gate drive |Vgs|.

        Returns ``inf`` if the device is off but asked to carry current —
        a configuration error the caller should treat as such.
        """
        r = self.channel_resistance(vgs)
        return current * current * r

    def off_state_leakage(self) -> float:
        """Drain-source leakage when off, amps."""
        return self.spec.off_leakage

    def switching_energy(self, gate_voltage: float) -> float:
        """Gate-drive energy (joules) for one on/off cycle at ``gate_voltage``."""
        return self.spec.gate_charge * abs(gate_voltage)
