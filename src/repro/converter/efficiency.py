"""Converter loss / efficiency model.

A three-term loss model standard for micropower switching converters::

    P_loss = P_fixed + k_prop * P_in + (P_in / V_in)^2 * R_cond

* ``P_fixed`` — controller quiescent + gate-drive floor; dominates at
  microwatt input (it is why indoor converters must be designed for
  ultra-low quiescent draw).
* ``k_prop`` — switching losses proportional to throughput.
* ``R_cond`` — lumped conduction resistance (inductor + switches),
  quadratic in input current; dominates at high power.

The resulting efficiency curve has the familiar rise-plateau-droop shape
against load, peaking where fixed and conduction losses cross.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class ConverterLossModel:
    """Loss parameters for an averaged switching converter.

    Attributes:
        fixed_power: constant loss while running, watts.
        proportional_loss: fraction of input power lost to switching.
        conduction_resistance: lumped series resistance, ohms.
    """

    fixed_power: float = 2e-6
    proportional_loss: float = 0.08
    conduction_resistance: float = 2.0

    def __post_init__(self) -> None:
        if self.fixed_power < 0.0:
            raise ModelParameterError(f"fixed_power must be >= 0, got {self.fixed_power!r}")
        if not 0.0 <= self.proportional_loss < 1.0:
            raise ModelParameterError(
                f"proportional_loss must be in [0, 1), got {self.proportional_loss!r}"
            )
        if self.conduction_resistance < 0.0:
            raise ModelParameterError(
                f"conduction_resistance must be >= 0, got {self.conduction_resistance!r}"
            )

    def loss(self, p_in: float, v_in: float) -> float:
        """Total loss (watts) transferring ``p_in`` watts from ``v_in`` volts."""
        if p_in < 0.0:
            raise ModelParameterError(f"p_in must be >= 0, got {p_in!r}")
        if p_in == 0.0:
            return 0.0
        if v_in <= 0.0:
            raise ModelParameterError(f"v_in must be positive for nonzero power, got {v_in!r}")
        i_in = p_in / v_in
        return self.fixed_power + self.proportional_loss * p_in + i_in * i_in * self.conduction_resistance

    def efficiency(self, p_in: float, v_in: float) -> float:
        """Transfer efficiency at an operating point, clamped to [0, 1]."""
        if p_in <= 0.0:
            return 0.0
        eta = 1.0 - self.loss(p_in, v_in) / p_in
        return min(1.0, max(0.0, eta))
