"""Averaged buck-boost converter with hysteretic input-voltage regulation.

Models the "[8]-style modified buck-boost" of the paper's Fig. 3 at the
level the MPPT analysis needs:

* **Input regulation** — the converter draws whatever current holds its
  input (the PV node, buffered by C2) at the reference derived from
  HELD_SAMPLE.  In the quasi-static engine that collapses to "the PV
  cell operates at v_ref"; in the transient engine the hysteretic
  behaviour (run when v_in > ref + h/2, idle when below ref - h/2)
  produces the input ripple seen around sampling events.
* **Transfer efficiency** — via :class:`~repro.converter.efficiency.ConverterLossModel`.
* **Gating** — the converter only runs when enabled (ACTIVE high and not
  inhibited by M8 during sampling) and when its input exceeds a minimum
  operating voltage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.converter.efficiency import ConverterLossModel
from repro.errors import ModelParameterError
from repro.obs.metrics import HOOKS as _OBS


@dataclass
class BuckBoostConverter:
    """Averaged input-regulated buck-boost converter.

    Attributes:
        losses: the loss model shaping the efficiency curve.
        min_input_voltage: below this input the converter cannot run, volts.
        hysteresis: input-regulation band width, volts (transient model).
        max_input_current: converter current limit, amps.
        enabled: gate from ACTIVE / M8 logic (state).
    """

    losses: ConverterLossModel = field(default_factory=ConverterLossModel)
    min_input_voltage: float = 0.8
    hysteresis: float = 0.05
    max_input_current: float = 2e-3
    enabled: bool = True
    _running: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.min_input_voltage <= 0.0:
            raise ModelParameterError(
                f"min_input_voltage must be positive, got {self.min_input_voltage!r}"
            )
        if self.hysteresis < 0.0:
            raise ModelParameterError(f"hysteresis must be >= 0, got {self.hysteresis!r}")
        if self.max_input_current <= 0.0:
            raise ModelParameterError(
                f"max_input_current must be positive, got {self.max_input_current!r}"
            )

    # --- averaged (quasi-static) interface --------------------------------------

    def output_power(self, p_in: float, v_in: float, v_out: float) -> float:
        """Power delivered to the store for ``p_in`` arriving at ``v_in``.

        Returns 0 when disabled or below the minimum input voltage —
        energy arriving then is simply not transferred (the PV node
        would rise toward Voc, which the quasi-static engine represents
        as a non-harvesting step).
        """
        if p_in < 0.0:
            raise ModelParameterError(f"p_in must be >= 0, got {p_in!r}")
        if not self.enabled or p_in == 0.0 or v_in < self.min_input_voltage:
            if p_in > 0.0:
                gated = _OBS.converter_gated
                if gated is not None:
                    gated.inc()
            return 0.0
        return p_in * self.losses.efficiency(p_in, v_in)

    def efficiency(self, p_in: float, v_in: float) -> float:
        """Transfer efficiency at an operating point (0 when not running)."""
        if not self.enabled or v_in < self.min_input_voltage:
            return 0.0
        return self.losses.efficiency(p_in, v_in)

    # --- hysteretic (transient) interface ----------------------------------------

    def input_current(self, v_in: float, v_ref: float) -> float:
        """Instantaneous current (amps) the converter pulls from the PV node.

        Input regulation: the sunk current ramps from zero at
        ``v_ref - hysteresis/2`` to the converter's current limit at
        ``v_ref + hysteresis/2``.  With the cell charging the input
        capacitor from below and this law discharging it from above, the
        node settles into the shallow ripple band around the reference —
        the averaged equivalent of the prototype's burst regulation.
        """
        if not self.enabled or v_in < self.min_input_voltage:
            self._set_running(False)
            return 0.0
        lower = v_ref - self.hysteresis / 2.0
        fraction = (v_in - lower) / self.hysteresis
        fraction = min(1.0, max(0.0, fraction))
        self._set_running(fraction > 0.0)
        return self.max_input_current * fraction

    def _set_running(self, running: bool) -> None:
        if running != self._running:
            transitions = _OBS.converter_transitions
            if transitions is not None:
                transitions.inc()
        self._running = running

    @property
    def running(self) -> bool:
        """Whether the hysteretic regulator is currently sinking current."""
        return self._running
