"""Switching-converter substrate.

The paper's platform hands the PV cell to "a modified buck-boost
converter ... based on the circuit presented in [8]" that regulates its
*input* voltage to the value on HELD_SAMPLE.  The converter design is
explicitly not the paper's focus, so the model here is an averaged one:
a hysteretic input-voltage regulator with a physically-shaped efficiency
curve (fixed losses + conduction losses), which is all the MPPT analysis
needs.
"""

from repro.converter.efficiency import ConverterLossModel
from repro.converter.buck_boost import BuckBoostConverter

__all__ = ["ConverterLossModel", "BuckBoostConverter"]
