"""Node-level transient model of the full platform (Fig. 3 -> Fig. 4).

Integrates the actual node dynamics the oscilloscope saw on the bench:

* ``PV_IN`` — the PV module's terminal across the converter input
  capacitor C2.  Between samples the hysteretic converter gnaws it into
  a shallow sawtooth around the regulation point; when PULSE rises the
  loads disconnect and the node relaxes up to (nearly) Voc at a rate set
  by the cell's current into C2 — which is exactly why the 39 ms pulse
  width matters at low lux.
* ``HELD_SAMPLE`` — the hold capacitor through U4 and the R3/C3 ripple
  filter, updating during the pulse and drooping between.
* ``PULSE`` / ``ACTIVE`` — the astable output and U5's converter gate.
* ``V_C1`` — the cold-start reservoir, charged from the PV node through
  D1; in ``self_powered`` mode the metrology rail *is* this node, which
  is how the platform cold-starts and then sustains itself.

The model implements the :class:`~repro.sim.transient.TransientSystem`
protocol; drive it with :class:`~repro.sim.transient.TransientSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.config import PlatformConfig
from repro.errors import ModelParameterError
from repro.pv.cells import PVCell
from repro.pv.irradiance import FLUORESCENT, LightSource
from repro.units import T_STC


@dataclass
class TransientPlatform:
    """Transient (waveform-level) simulation of the whole platform.

    Args:
        cell: the PV cell.
        lux: illuminance — constant, or a callable ``lux(t)``.
        config: platform build (paper prototype by default).
        input_capacitance: converter input capacitor C2, farads.
        self_powered: if True the metrology rail is the C1 node (cold
            start physics); if False it is ``config.supply`` (the bench
            condition of Fig. 4 / the current-draw measurement).
        diode_series_resistance: D1's series resistance, ohms.
        source: light-source spectrum.
        temperature: cell temperature, kelvin.
    """

    cell: PVCell
    lux: float | Callable[[float], float] = 1000.0
    config: PlatformConfig = field(default_factory=PlatformConfig.paper_prototype)
    input_capacitance: float = 330e-9
    self_powered: bool = False
    diode_series_resistance: float = 1000.0
    source: LightSource = field(default_factory=lambda: FLUORESCENT)
    temperature: float = T_STC

    # node states
    v_pv: float = 0.0
    v_hold_line: float = 0.0  # after R3/C3 filter
    energy_delivered: float = 0.0

    _model_cache_lux: float = field(default=-1.0, repr=False)
    _model: object = field(default=None, repr=False)
    _pulse: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.input_capacitance <= 0.0:
            raise ModelParameterError(
                f"input_capacitance must be positive, got {self.input_capacitance!r}"
            )
        if self.diode_series_resistance <= 0.0:
            raise ModelParameterError(
                f"diode_series_resistance must be positive, got {self.diode_series_resistance!r}"
            )

    # --- helpers ---------------------------------------------------------------

    def _lux_at(self, t: float) -> float:
        if callable(self.lux):
            return max(0.0, float(self.lux(t)))
        return max(0.0, float(self.lux))

    def _cell_model(self, t: float):
        lux_now = self._lux_at(t)
        if self._model is None or abs(lux_now - self._model_cache_lux) > max(
            0.001, 0.001 * lux_now
        ):
            self._model = self.cell.model_at(lux_now, source=self.source, temperature=self.temperature)
            self._model_cache_lux = lux_now
        return self._model

    def warm_start(self, t_to_next_pulse: float = 0.2) -> None:
        """Analytically pre-position the platform in steady state.

        Waveform captures (Fig. 4) want the system mid-hold, just before
        the next sampling pulse; integrating the whole 69 s hold at
        microsecond steps would be wasteful.  This performs one
        quasi-static sample, droops it through the hold, places the PV
        node at its regulation point, and phases the astable so the next
        PULSE fires in ``t_to_next_pulse`` seconds.
        """
        import math

        if t_to_next_pulse < 0.0:
            raise ModelParameterError(
                f"t_to_next_pulse must be >= 0, got {t_to_next_pulse!r}"
            )
        cfg = self.config
        model = self._cell_model(0.0)
        cfg.sample_hold.sample(model, cfg.astable.t_on)
        cfg.sample_hold.droop(max(0.0, cfg.astable.t_off - t_to_next_pulse))
        held = cfg.sample_hold.held_sample
        cfg.sample_hold.output_buffer.settle(cfg.sample_hold.held_voltage)
        self.v_hold_line = held
        self.v_pv = cfg.operating_point_from_held(held)
        if not self.self_powered:
            cfg.coldstart._powered = True
            cfg.coldstart.voltage = cfg.supply
        # Phase the astable: output low, capacitor discharging toward the
        # lower threshold, arriving there in t_to_next_pulse seconds.
        rail = self.supply_rail
        lower = rail * (1.0 - cfg.astable.beta) / 2.0
        tau_off = cfg.astable.r_off * cfg.astable.capacitance
        cfg.astable._v_cap = lower * math.exp(t_to_next_pulse / tau_off)
        cfg.astable._output_high = False
        cfg.astable._started = True
        self._pulse = False

    @property
    def supply_rail(self) -> float:
        """The metrology supply right now, volts."""
        return self.config.coldstart.voltage if self.self_powered else self.config.supply

    @property
    def metrology_alive(self) -> bool:
        """Whether the rail is high enough for the parts to run."""
        if not self.self_powered:
            return True
        cfg = self.config
        if cfg.coldstart.powered:
            return True
        # ColdStartCircuit's hysteresis decides; mirror its state machine.
        return False

    # --- TransientSystem protocol ---------------------------------------------------

    def advance(self, t: float, dt: float) -> None:
        """Integrate every node by ``dt`` seconds."""
        cfg = self.config
        model = self._cell_model(t)
        sh = cfg.sample_hold

        # Cold-start reservoir state machine (also the self-powered rail).
        if self.self_powered:
            # D1 conducts from the PV node.
            headroom = self.v_pv - cfg.coldstart.voltage - cfg.coldstart.diode_drop
            i_d1 = max(0.0, headroom / self.diode_series_resistance)
            load = cfg.metrology_current() if cfg.coldstart.powered else 0.0
            bleed = cfg.coldstart.voltage / cfg.coldstart.bleed_resistance
            cfg.coldstart.voltage = max(
                0.0, cfg.coldstart.voltage + (i_d1 - load - bleed) * dt / cfg.coldstart.reservoir
            )
            if cfg.coldstart.powered:
                if cfg.coldstart.voltage < cfg.coldstart.turn_off_voltage:
                    cfg.coldstart._powered = False
            else:
                if cfg.coldstart.voltage >= cfg.coldstart.turn_on_voltage:
                    cfg.coldstart._powered = True
        else:
            i_d1 = 0.0
            cfg.coldstart._powered = True
            cfg.coldstart.voltage = max(cfg.coldstart.voltage, cfg.supply)

        rail = self.supply_rail
        alive = cfg.coldstart.powered if self.self_powered else True

        # Astable runs from the rail.
        pulse = cfg.astable.advance(dt, rail) if alive else False
        pulse_edge_falling = self._pulse and not pulse
        self._pulse = pulse

        # --- PV node currents ------------------------------------------------------
        i_cell = float(model.current_at(self.v_pv)) if self._lux_at(t) > 0.0 else 0.0
        i_divider = 0.0
        i_converter = 0.0

        if pulse and alive:
            # Loads disconnected; divider samples the node.
            i_divider = self.v_pv / sh.divider.total_resistance
            tap = self.v_pv * sh.divider.ratio
            sh.input_buffer.step(tap, dt)
            if not sh.switch.closed:
                sh.switch.close()
            # Hold capacitor charges through U2's output and the switch.
            tau = sh.settle_time_constant()
            import math

            target = sh.input_buffer.output
            sh._held += (target - sh._held) * (1.0 - math.exp(-dt / tau))
        else:
            if sh.switch.closed:
                kick = sh.switch.open(sh.hold_capacitor.farads)
                sh._held = min(rail, max(0.0, sh._held + kick))
            if alive:
                sh.droop(dt)
            held = sh.held_sample if alive else 0.0
            enabled = alive and cfg.active.converter_enabled(held, pulse_high=False)
            cfg.converter.enabled = enabled
            v_ref = cfg.operating_point_from_held(held)
            i_converter = cfg.converter.input_current(self.v_pv, v_ref)
            if i_converter > 0.0:
                p_in = self.v_pv * i_converter
                self.energy_delivered += cfg.converter.output_power(p_in, self.v_pv, 3.0) * dt

        if pulse_edge_falling:
            pass  # charge-injection handled at the open() above

        dv = (i_cell - i_divider - i_converter - i_d1) * dt / self.input_capacitance
        self.v_pv = max(0.0, self.v_pv + dv)

        # Output buffer and R3/C3 filter shape the HELD_SAMPLE line.
        if alive:
            sh.output_buffer.step(sh._held, dt)
            import math

            tau_f = sh.ripple_filter_r * sh.ripple_filter_c
            blend = 1.0 - math.exp(-dt / tau_f)
            self.v_hold_line += (sh.output_buffer.output - self.v_hold_line) * blend
        else:
            self.v_hold_line = 0.0

    def signals(self) -> Dict[str, float]:
        """Current observable signal values (the 'scope channels')."""
        cfg = self.config
        alive = cfg.coldstart.powered if self.self_powered else True
        held = self.v_hold_line
        active = alive and cfg.active.active(held)
        return {
            "PULSE": self.supply_rail if self._pulse else 0.0,
            "PV_IN": self.v_pv,
            "HELD_SAMPLE": held,
            "ACTIVE": self.supply_rail if active else 0.0,
            "V_C1": cfg.coldstart.voltage,
            "CONVERTER_RUNNING": 1.0 if cfg.converter.running else 0.0,
        }
