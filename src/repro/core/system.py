"""The complete Fig. 3 platform as a quasi-static harvesting controller.

:class:`SampleHoldMPPT` wires the astable, sample-and-hold, cold-start
chain, ACTIVE monitor and converter model into one object implementing
the :class:`~repro.sim.quasistatic.HarvestingController` protocol, so it
drops into the same simulation loop as every baseline technique.

Operating cycle (steady state):

1. The astable raises PULSE for ``t_on`` every ``t_on + t_off`` seconds.
2. During PULSE the loads are disconnected (harvest pauses — accounted
   as a duty loss), the S&H samples the loaded Voc, and M8 keeps the
   converter inhibited.
3. Between pulses the converter regulates the PV module at
   ``HELD_SAMPLE / alpha`` while the hold capacitor droops slowly.

Cold start: from a dead store, the PV cell charges C1; once the
threshold is crossed the metrology wakes, the first PULSE fires almost
immediately, and ACTIVE releases the converter only after a valid
sample is held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import PlatformConfig
from repro.errors import ModelParameterError
from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class SampleHoldMPPT:
    """The proposed ultra low-power S&H FOCV MPPT system.

    Args:
        config: the platform build; defaults to the paper prototype.
        assume_started: skip cold-start (bench tests with a powered rail).
        name: report label.
    """

    config: PlatformConfig = field(default_factory=PlatformConfig.paper_prototype)
    assume_started: bool = False
    name: str = "proposed-S&H-FOCV"

    _powered: bool = field(default=False, repr=False)
    _next_pulse: float = field(default=0.0, repr=False)
    _sample_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.assume_started:
            self._powered = True

    # --- observables -----------------------------------------------------------

    @property
    def powered(self) -> bool:
        """Whether the metrology is energised (cold start complete)."""
        return self._powered

    @property
    def held_sample(self) -> float:
        """Current HELD_SAMPLE output, volts."""
        return self.config.sample_hold.held_sample

    @property
    def sample_count(self) -> int:
        """Sampling operations performed so far."""
        return self._sample_count

    def reset(self) -> None:
        """Return to the fully-dead state."""
        self._powered = self.assume_started
        self._next_pulse = 0.0
        self._sample_count = 0
        self.config.sample_hold.reset()
        self.config.coldstart.reset()
        self.config.astable.reset()

    # --- controller protocol ------------------------------------------------------

    def decide(self, obs: Observation) -> ControlDecision:
        """One quasi-static step of the whole platform."""
        cfg = self.config

        if not self._powered:
            return self._cold_start_step(obs)

        # Brown-out: if the rail powering the metrology collapses, the
        # system is dead and must cold-start again.
        if obs.storage_voltage < cfg.min_operating_voltage and not self.assume_started:
            has_coldstart_rail = cfg.coldstart.voltage >= cfg.coldstart.turn_off_voltage
            if not has_coldstart_rail:
                self._powered = False
                cfg.sample_hold.reset()
                return self._cold_start_step(obs)

        # --- sampling operations that fall inside this step -----------------------
        t_end = obs.time + obs.dt
        sampling_time = 0.0
        cursor = obs.time
        while self._next_pulse < t_end:
            pulse_at = max(self._next_pulse, obs.time)
            # Droop from the cursor up to the pulse, then sample.
            cfg.sample_hold.droop(max(0.0, pulse_at - cursor))
            cfg.sample_hold.sample(obs.cell_model, cfg.astable.t_on)
            self._sample_count += 1
            sampling_time += cfg.astable.t_on
            cursor = pulse_at
            self._next_pulse += cfg.astable.period
        cfg.sample_hold.droop(max(0.0, t_end - cursor))

        held = cfg.sample_hold.held_sample
        duty = max(0.0, 1.0 - sampling_time / obs.dt)

        overhead = cfg.metrology_current()
        # Divider current while PULSE is high, averaged over the step.
        if sampling_time > 0.0:
            overhead += (
                cfg.sample_hold.sampling_extra_current(obs.cell_model.voc())
                * sampling_time
                / obs.dt
            )

        # ACTIVE gate and converter minimum input.
        if not cfg.active.active(held):
            return ControlDecision(
                operating_voltage=None,
                harvest_duty=0.0,
                overhead_current=overhead,
                note="ACTIVE low",
            )
        v_op = cfg.operating_point_from_held(held)
        if v_op < cfg.converter.min_input_voltage:
            return ControlDecision(
                operating_voltage=None,
                harvest_duty=0.0,
                overhead_current=overhead,
                note="below converter minimum",
            )
        # The cell cannot be regulated above its open-circuit voltage —
        # the converter just idles at (near) zero current there.
        if v_op >= obs.cell_model.voc():
            return ControlDecision(
                operating_voltage=None,
                harvest_duty=0.0,
                overhead_current=overhead,
                note="setpoint above Voc",
            )
        return ControlDecision(
            operating_voltage=v_op,
            harvest_duty=duty,
            overhead_current=overhead,
        )

    def _cold_start_step(self, obs: Observation) -> ControlDecision:
        """Charge C1 from the cell; wake the metrology on threshold."""
        cfg = self.config
        powered = cfg.coldstart.charge_step(
            obs.cell_model,
            obs.dt,
            metrology_current=cfg.metrology_current(),
        )
        if powered:
            self._powered = True
            # "The system has been shown to cold-start and quickly
            # generate a signal on the PULSE line": first sample fires on
            # the next step boundary.
            self._next_pulse = obs.time + obs.dt
        # All PV energy goes into C1 during cold start; nothing is
        # harvested into storage and nothing is drawn from it.
        return ControlDecision(
            operating_voltage=None,
            harvest_duty=0.0,
            overhead_current=0.0,
            note="cold-starting",
        )

    # --- checkpoint protocol ------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the platform's mutable state: the controller's own
        counters plus the S&H chain, cold-start circuit and astable."""
        from repro.ckpt.state import capture_fields

        state = capture_fields(self, ("_powered", "_next_pulse", "_sample_count"))
        state["sample_hold"] = self.config.sample_hold.state_dict()
        state["coldstart"] = self.config.coldstart.state_dict()
        state["astable"] = self.config.astable.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields
        from repro.errors import StateFormatError

        restore_fields(self, state, ("_powered", "_next_pulse", "_sample_count"))
        for key in ("sample_hold", "coldstart", "astable"):
            if key not in state:
                raise StateFormatError(f"SampleHoldMPPT state missing {key!r}")
        self.config.sample_hold.load_state(state["sample_hold"])
        self.config.coldstart.load_state(state["coldstart"])
        self.config.astable.load_state(state["astable"])

    # --- introspection helpers (benches/tests) --------------------------------------

    def steady_state_operating_voltage(self, cell_model) -> Optional[float]:
        """Where the platform would regulate the given curve after one sample.

        A pure function used by the Table I bench: performs a sample on a
        scratch copy of the S&H and returns the resulting setpoint.
        """
        import copy

        scratch = copy.deepcopy(self.config.sample_hold)
        scratch.sample(cell_model, self.config.astable.t_on)
        held = scratch.held_sample
        if not self.config.active.active(held):
            return None
        return self.config.operating_point_from_held(held)
