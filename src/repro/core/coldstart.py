"""Cold-start chain and the ACTIVE sanity comparator (paper Sec. III).

Cold start: with the energy store flat, the PV module trickle-charges a
small reservoir capacitor C1 through diode D1.  When C1 reaches a
threshold, the MPPT circuitry (astable + S&H) switches on; the first
PULSE samples Voc; only once HELD_SAMPLE is valid does the ACTIVE
comparator let the switching converter start.  "The cold-start of the
system has been observed down to light levels of 200 lux."

Two small state machines model this:

* :class:`ColdStartCircuit` — C1/D1 charging and the hysteretic INIT
  threshold that gates power to the metrology.
* :class:`ActiveMonitor` — U5, comparing HELD_SAMPLE against a divided
  supply rail; plus the M8 inhibit that forces the converter off while
  a sample is in progress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analog.comparator import LMC7215, Comparator, ComparatorSpec
from repro.errors import ModelParameterError
from repro.pv.single_diode import SingleDiodeModel


@dataclass
class ColdStartCircuit:
    """Reservoir capacitor + diode + hysteretic enable threshold.

    Attributes:
        reservoir: C1 capacitance, farads.
        diode_drop: D1 forward drop, volts.
        turn_on_voltage: C1 voltage at which the MPPT circuitry powers
            up, volts.
        turn_off_voltage: C1 voltage at which it powers back down
            (hysteresis below turn-on), volts.
        bleed_resistance: total leakage load on C1 while the metrology
            is off, ohms.
        voltage: current C1 voltage (state), volts.
    """

    reservoir: float = 10e-6
    diode_drop: float = 0.25
    turn_on_voltage: float = 2.4
    turn_off_voltage: float = 1.9
    bleed_resistance: float = 50e6
    voltage: float = 0.0

    _powered: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.reservoir <= 0.0:
            raise ModelParameterError(f"reservoir must be positive, got {self.reservoir!r}")
        if self.diode_drop < 0.0:
            raise ModelParameterError(f"diode_drop must be >= 0, got {self.diode_drop!r}")
        if not 0.0 < self.turn_off_voltage < self.turn_on_voltage:
            raise ModelParameterError(
                "need 0 < turn_off_voltage < turn_on_voltage, got "
                f"{self.turn_off_voltage!r} / {self.turn_on_voltage!r}"
            )
        if self.bleed_resistance <= 0.0:
            raise ModelParameterError(
                f"bleed_resistance must be positive, got {self.bleed_resistance!r}"
            )

    @property
    def powered(self) -> bool:
        """Whether the MPPT circuitry is currently energised."""
        return self._powered

    def charge_step(
        self,
        cell_model: SingleDiodeModel,
        dt: float,
        metrology_current: float = 0.0,
    ) -> bool:
        """Advance C1 by ``dt`` seconds fed from the PV cell through D1.

        The cell sees C1 (plus drop) as its load; the charging current is
        the cell's output current at ``v_c1 + diode_drop``, zero once the
        cell can't overcome the diode.  While powered, the metrology's
        supply current discharges C1 — at very low light the system can
        brown out again, which the hysteresis handles.

        Args:
            cell_model: the cell's curve at the current light level.
            dt: step, seconds.
            metrology_current: load on C1 while powered, amps.

        Returns:
            The powered state after the step.
        """
        if dt < 0.0:
            raise ModelParameterError(f"dt must be >= 0, got {dt!r}")
        terminal = self.voltage + self.diode_drop
        if terminal < cell_model.voc():
            charge_current = max(0.0, float(cell_model.current_at(terminal)))
        else:
            charge_current = 0.0

        bleed = self.voltage / self.bleed_resistance
        load = metrology_current if self._powered else 0.0
        net = charge_current - bleed - load
        self.voltage = max(0.0, self.voltage + net * dt / self.reservoir)

        if self._powered:
            if self.voltage < self.turn_off_voltage:
                self._powered = False
        else:
            if self.voltage >= self.turn_on_voltage:
                self._powered = True
        return self._powered

    def estimated_cold_start_time(self, cell_model: SingleDiodeModel) -> float:
        """Closed-form estimate of the time to reach turn-on from empty.

        Treats the cell as a constant-current source at its short-circuit
        level minus the exponential taper near Voc — adequate because C1
        charges far below Voc for most of the ramp.  Returns ``inf`` if
        the cell cannot reach the threshold at all.

        Used by tests as an independent check on the transient result.
        """
        if cell_model.voc() <= self.turn_on_voltage + self.diode_drop:
            return float("inf")
        steps = 200
        total = 0.0
        v = 0.0
        dv = self.turn_on_voltage / steps
        for _ in range(steps):
            current = float(cell_model.current_at(v + self.diode_drop)) - v / self.bleed_resistance
            if current <= 0.0:
                return float("inf")
            total += self.reservoir * dv / current
            v += dv
        return total

    def reset(self) -> None:
        """Discharge C1 (fully dead system)."""
        self.voltage = 0.0
        self._powered = False

    def state_dict(self) -> dict:
        """Snapshot the mutable state (checkpoint protocol)."""
        from repro.ckpt.state import capture_fields

        return capture_fields(self, ("voltage", "_powered"))

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, ("voltage", "_powered"))


@dataclass
class ActiveMonitor:
    """U5 + M8: gate the converter on a valid held sample.

    The ACTIVE output goes high when HELD_SAMPLE exceeds a threshold
    derived by dividing the supply rail ("an arbitrary threshold voltage
    provided by dividing the supply rail voltage by two" — here the
    *divided* rail, i.e. ``threshold_fraction * supply * alpha`` scaled
    so a held sample from any plausible Voc passes while a discharged
    hold capacitor does not).  M8 pulls the converter's IN+ low during
    sampling so the converter is always off while the PV module is
    disconnected.

    Attributes:
        comparator: the U5 part.
        threshold_fraction: ACTIVE threshold as a fraction of supply.
        supply: rail, volts.
    """

    comparator: ComparatorSpec = field(default_factory=lambda: LMC7215)
    threshold_fraction: float = 0.25
    supply: float = 3.3
    _u5: Comparator = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold_fraction < 1.0:
            raise ModelParameterError(
                f"threshold_fraction must be in (0, 1), got {self.threshold_fraction!r}"
            )
        if self.supply <= 0.0:
            raise ModelParameterError(f"supply must be positive, got {self.supply!r}")
        self._u5 = Comparator(spec=self.comparator, supply=self.supply)

    @property
    def threshold(self) -> float:
        """ACTIVE threshold voltage, volts."""
        return self.threshold_fraction * self.supply

    def active(self, held_sample: float) -> bool:
        """Evaluate ACTIVE for the current HELD_SAMPLE."""
        return self._u5.evaluate(held_sample, self.threshold)

    def converter_enabled(self, held_sample: float, pulse_high: bool) -> bool:
        """Whether the converter may run: ACTIVE high and not sampling (M8)."""
        return self.active(held_sample) and not pulse_high

    def supply_current(self) -> float:
        """U5 quiescent current plus its threshold divider, amps.

        The threshold divider is sized at the same impedance class as
        the feedback strings (tens of megohms).
        """
        divider_current = self.supply / 40e6
        return self._u5.supply_current() + divider_current
