"""Design synthesis: from specification to catalogue parts.

The paper reports a built prototype (39 ms / 69 s timing, a trimmed
divider, a polyester hold capacitor).  This module closes the loop the
authors walked manually: given a *specification* — hold period, pulse
width, target k, droop budget, a cell to serve — synthesise component
values, snap them to E-series catalogue parts, and verify the resulting
design against the analysis rules (settling inside the pulse, droop
inside the budget, loading error, current budget).

The output is a :class:`DesignReport` whose ``config`` drops straight
into :class:`~repro.core.system.SampleHoldMPPT`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analog.components import Capacitor, POLYESTER_FILM, ResistiveDivider, Resistor
from repro.analog.eseries import best_ratio_pair, nearest_value
from repro.core.astable import AstableMultivibrator
from repro.core.config import PlatformConfig
from repro.core.sample_hold import SampleHoldCircuit
from repro.errors import ConfigurationError, ModelParameterError
from repro.pv.cells import PVCell


@dataclass(frozen=True)
class DesignSpec:
    """What the harvester must do.

    Attributes:
        hold_period: time between Voc samples, seconds (paper: 69 s).
        pulse_width: sampling pulse width, seconds (paper: 39 ms).
        k_target: fractional-Voc operating ratio to realise; None means
            "trim to the cell's own k at ``design_lux``".
        design_lux: the trim/verification intensity.
        alpha: representation scaling of Eq. (3).
        max_droop_fraction: allowed HELD droop per hold period.
        divider_resistance: divider end-to-end impedance class, ohms.
        series: E-series to buy parts from.
    """

    hold_period: float = 69.0
    pulse_width: float = 39e-3
    k_target: Optional[float] = None
    design_lux: float = 1000.0
    alpha: float = 0.5
    max_droop_fraction: float = 0.005
    divider_resistance: float = 10e6
    series: str = "E24"

    def __post_init__(self) -> None:
        if self.hold_period <= 0.0 or self.pulse_width <= 0.0:
            raise ModelParameterError("hold_period and pulse_width must be positive")
        if self.pulse_width >= self.hold_period:
            raise ModelParameterError("pulse_width must be below hold_period")
        if not 0.0 < self.alpha <= 1.0:
            raise ModelParameterError(f"alpha must be in (0, 1], got {self.alpha!r}")
        if not 0.0 < self.max_droop_fraction < 1.0:
            raise ModelParameterError("max_droop_fraction must be in (0, 1)")


@dataclass
class DesignCheck:
    """One verification rule's outcome."""

    name: str
    passed: bool
    detail: str


@dataclass
class DesignReport:
    """A synthesised design plus its verification results.

    Attributes:
        spec: the input specification.
        config: the buildable platform configuration.
        divider_top: chosen catalogue value for R1, ohms.
        divider_bottom: chosen catalogue value for R2, ohms.
        astable_r_on: chosen catalogue value for the pulse resistor, ohms.
        astable_r_off: chosen catalogue value for the hold resistor, ohms.
        astable_c: chosen timing capacitor, farads.
        hold_capacitance: chosen hold capacitor, farads.
        checks: the verification rules and their outcomes.
    """

    spec: DesignSpec
    config: PlatformConfig
    divider_top: float
    divider_bottom: float
    astable_r_on: float
    astable_r_off: float
    astable_c: float
    hold_capacitance: float
    checks: List[DesignCheck] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        """Whether every verification rule passed."""
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        """Printable bill of materials + verification table."""
        from repro.analysis.reporting import format_table
        from repro.units import si_format

        bom = [
            ["R1 (divider top)", si_format(self.divider_top, "ohm")],
            ["R2 (divider bottom, trim here)", si_format(self.divider_bottom, "ohm")],
            ["R_on (astable pulse)", si_format(self.astable_r_on, "ohm")],
            ["R_off (astable hold)", si_format(self.astable_r_off, "ohm")],
            ["C_timing", si_format(self.astable_c, "F")],
            ["C_hold (polyester)", si_format(self.hold_capacitance, "F")],
        ]
        text = format_table(["part", "value"], bom, title="Synthesised design", align_right=False)
        rows = [
            [c.name, "PASS" if c.passed else "FAIL", c.detail] for c in self.checks
        ]
        text += "\n\n" + format_table(
            ["check", "result", "detail"], rows, title="Verification", align_right=False
        )
        return text


def synthesise_platform(cell: PVCell, spec: DesignSpec = DesignSpec()) -> DesignReport:
    """Design a complete S&H MPPT platform for a cell from a specification.

    Steps:

    1. Trim target: ``k_target`` (or the cell's measured k at the design
       intensity), scaled by alpha, realised as an E-series divider pair.
    2. Astable: timing resistors from the RC design equations, snapped
       to catalogue values (the timing error of the snap is reported —
       sampling timing is uncritical, which is why the paper tolerates
       an RC oscillator at all).
    3. Hold capacitor: smallest standard value whose droop (self-leakage
       + bias current) stays inside the budget, checked against settling
       within the pulse.
    4. Verification: settle-in-pulse, droop-in-budget, loading error,
       metrology current vs the cell's output at 200 lux.

    Returns:
        A :class:`DesignReport`; inspect ``all_checks_pass``.
    """
    k = spec.k_target if spec.k_target is not None else cell.mpp(spec.design_lux).k
    if not 0.0 < k < 1.0:
        raise ConfigurationError(f"cell k {k!r} outside (0, 1); bad design intensity?")
    ratio = k * spec.alpha

    # --- divider --------------------------------------------------------------
    top_value, bottom_value = best_ratio_pair(ratio, spec.divider_resistance, spec.series)
    divider = ResistiveDivider(top=Resistor(top_value), bottom=Resistor(bottom_value))

    # --- astable ----------------------------------------------------------------
    ideal = AstableMultivibrator.from_timing(
        t_on=spec.pulse_width, t_off=spec.hold_period
    )
    r_on = nearest_value(ideal.r_on, spec.series)
    r_off = nearest_value(ideal.r_off, spec.series)
    astable = AstableMultivibrator(
        r_on=r_on, r_off=r_off, capacitance=ideal.capacitance, beta=ideal.beta
    )

    # --- hold capacitor ------------------------------------------------------------
    # Droop sources: insulation leakage (independent of C as a *fraction*)
    # plus bias current (improves with larger C); settling worsens with C.
    hold_c = None
    for candidate in (100e-9, 220e-9, 470e-9, 1e-6, 2.2e-6, 4.7e-6):
        cap = Capacitor(candidate, dielectric=POLYESTER_FILM)
        sh_try = SampleHoldCircuit(divider=divider, hold_capacitor=cap)
        droop_v = 1.0 - cap.droop(1.0, spec.hold_period, external_bias_a=2e-12)
        settles = 7.0 * sh_try.settle_time_constant() < spec.pulse_width
        if droop_v <= spec.max_droop_fraction and settles:
            hold_c = candidate
            break
    if hold_c is None:
        hold_c = 1e-6  # fall back to the paper's value; checks will flag it

    sample_hold = SampleHoldCircuit(divider=divider, hold_capacitor=Capacitor(hold_c))
    config = PlatformConfig(astable=astable, sample_hold=sample_hold, alpha=spec.alpha)

    # --- verification ---------------------------------------------------------------
    checks: List[DesignCheck] = []

    tau = sample_hold.settle_time_constant()
    checks.append(
        DesignCheck(
            name="settling inside pulse",
            passed=7.0 * tau < spec.pulse_width,
            detail=f"7*tau = {7.0 * tau * 1e3:.1f} ms vs pulse {spec.pulse_width * 1e3:.0f} ms",
        )
    )

    cap = sample_hold.hold_capacitor
    droop_fraction = 1.0 - cap.droop(1.0, spec.hold_period, external_bias_a=2e-12)
    checks.append(
        DesignCheck(
            name="droop inside budget",
            passed=droop_fraction <= spec.max_droop_fraction,
            detail=f"{droop_fraction * 100:.2f} % vs budget {spec.max_droop_fraction * 100:.2f} %",
        )
    )

    model = cell.model_at(spec.design_lux)
    pv_loaded, tap = sample_hold.loaded_sample_point(model)
    loading_error = (model.voc() - pv_loaded) * divider.ratio
    checks.append(
        DesignCheck(
            name="divider loading error",
            passed=loading_error < 5e-3,
            detail=f"{loading_error * 1e3:.2f} mV at {spec.design_lux:.0f} lux",
        )
    )

    achieved = tap / model.voc()
    checks.append(
        DesignCheck(
            name="trim accuracy (E-series snap)",
            passed=abs(achieved - ratio) / ratio < 0.02,
            detail=f"achieved {achieved:.4f} vs target {ratio:.4f}",
        )
    )

    timing_error = abs(astable.t_off - spec.hold_period) / spec.hold_period
    checks.append(
        DesignCheck(
            name="hold-period snap error",
            passed=timing_error < 0.15,
            detail=f"{astable.t_off:.1f} s vs {spec.hold_period:.1f} s ({timing_error * 100:.0f} %)",
        )
    )

    low_light = cell.mpp(200.0)
    metrology = config.metrology_current()
    checks.append(
        DesignCheck(
            name="metrology current vs 200-lux cell output",
            passed=metrology < 0.25 * low_light.current,
            detail=f"{metrology * 1e6:.1f} uA vs cell {low_light.current * 1e6:.1f} uA",
        )
    )

    return DesignReport(
        spec=spec,
        config=config,
        divider_top=top_value,
        divider_bottom=bottom_value,
        astable_r_on=r_on,
        astable_r_off=r_off,
        astable_c=astable.capacitance,
        hold_capacitance=hold_c,
        checks=checks,
    )
