"""Platform configuration: everything that defines one built system.

:class:`PlatformConfig` bundles the paper's component choices — astable
timing, divider ratio (``k * alpha``), hold capacitor, comparator and
buffer parts, cold-start thresholds, converter — and derives the
aggregate numbers the paper reports (the 7.6 uA astable+S&H budget, the
~8 uA total metrology draw).  :meth:`PlatformConfig.paper_prototype`
reproduces the published design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.converter.buck_boost import BuckBoostConverter
from repro.core.astable import AstableMultivibrator
from repro.core.coldstart import ActiveMonitor, ColdStartCircuit
from repro.core.sample_hold import SampleHoldCircuit
from repro.errors import ConfigurationError


@dataclass
class PlatformConfig:
    """One complete Fig. 3 platform configuration.

    Attributes:
        astable: the sampling clock.
        sample_hold: the S&H chain.
        coldstart: the C1/D1 cold-start circuit.
        active: the U5/M8 converter gate.
        converter: the buck-boost converter model.
        alpha: the representation-scaling factor of Eq. (3)
            (HELD_SAMPLE = Voc * k * alpha); the converter multiplies it
            back out when regulating PV_IN.  The prototype divides by
            two (alpha = 0.5) so HELD_SAMPLE stays within rails.
        supply: metrology rail, volts.
        min_operating_voltage: storage voltage below which the metrology
            browns out and the system must cold-start again, volts.
    """

    astable: AstableMultivibrator = field(
        default_factory=lambda: AstableMultivibrator.from_timing(t_on=39e-3, t_off=69.0)
    )
    sample_hold: SampleHoldCircuit = field(default_factory=SampleHoldCircuit)
    coldstart: ColdStartCircuit = field(default_factory=ColdStartCircuit)
    active: ActiveMonitor = field(default_factory=ActiveMonitor)
    converter: BuckBoostConverter = field(default_factory=BuckBoostConverter)
    alpha: float = 0.5
    supply: float = 3.3
    min_operating_voltage: float = 2.0

    def __post_init__(self) -> None:
        from repro.validation import require_finite

        # Typed non-finite rejection first: nan slips through every
        # comparison below (nan <= 0 is False) and would only surface
        # hours into a run.
        for name in ("alpha", "supply", "min_operating_voltage"):
            require_finite(getattr(self, name), name)
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha!r}")
        if self.supply <= 0.0:
            raise ConfigurationError(f"supply must be positive, got {self.supply!r}")
        if self.min_operating_voltage <= 0.0:
            raise ConfigurationError(
                f"min_operating_voltage must be positive, got {self.min_operating_voltage!r}"
            )
        if self.sample_hold.nominal_ratio >= 1.0:
            raise ConfigurationError("divider ratio must be below 1")

    @classmethod
    def paper_prototype(cls) -> "PlatformConfig":
        """The published design point: 39 ms / 69 s timing, k*alpha ~ 0.298.

        Table I's mean measured ratio is HELD/Voc = 0.2978 (k = 59.56 %
        at alpha = 0.5); the divider here is trimmed to that value, as
        the paper notes R2 would be trimmed in practice.
        """
        return cls()

    @classmethod
    def trimmed_for_cell(cls, cell, lux: float = 1000.0, **kwargs) -> "PlatformConfig":
        """A prototype with R2 trimmed to the cell's own k, as the paper
        prescribes ("trimmed by means of a variable potentiometer in
        place of R2 in order to bring it to any desired value of k").

        Args:
            cell: the :class:`~repro.pv.cells.PVCell` to trim against.
            lux: the trim condition's intensity.
            **kwargs: forwarded to the constructor.
        """
        from repro.analog.components import ResistiveDivider
        from repro.core.sample_hold import SampleHoldCircuit

        config = cls(**kwargs)
        k_cell = cell.mpp(lux).k
        total = config.sample_hold.divider.total_resistance
        config.sample_hold = SampleHoldCircuit(
            divider=ResistiveDivider.from_ratio(k_cell * config.alpha, total),
            hold_capacitor=config.sample_hold.hold_capacitor,
            supply=config.supply,
        )
        return config

    # --- derived quantities --------------------------------------------------------

    @property
    def k_target(self) -> float:
        """The k the divider realises (``ratio / alpha``) — Table I's k."""
        return self.sample_hold.nominal_ratio / self.alpha

    def metrology_current(self) -> float:
        """Average supply current of astable + S&H + ACTIVE monitor, amps.

        This is the paper's "additional current draw of the sample-and-
        hold circuitry" — everything the MPPT adds beyond the converter.
        """
        return self.sampling_chain_current() + self.active.supply_current()

    def sampling_chain_current(self) -> float:
        """Average current of astable + S&H only, amps (the 7.6 uA figure)."""
        return self.astable.average_current() + self.sample_hold.quiescent_current()

    def sampling_duty(self) -> float:
        """Fraction of time spent sampling (PV disconnected)."""
        return self.astable.duty_cycle

    def operating_point_from_held(self, held_sample: float) -> float:
        """PV regulation setpoint (volts) for a given HELD_SAMPLE.

        The converter's input divider scales PV_IN by ``alpha`` before
        comparing with HELD_SAMPLE, so the node regulates to
        ``held / alpha``.
        """
        return held_sample / self.alpha
