"""The sample-and-hold arrangement (paper Sec. III-B).

Signal chain, gated by PULSE from the astable::

    PV_IN --[divider R1/R2]-- tap --[U2 buffer]--[analog switch]-- C_hold --[U4 buffer]--[R3/C3]-- HELD_SAMPLE

During a PULSE the loads are disconnected from the PV module, the
divider reads a fraction ``k * alpha`` of the (nearly) open-circuit
voltage, and the buffered tap charges the hold capacitor through the
switch.  Between pulses the capacitor holds that value for the ~69 s
hold period, drooping only through its own insulation resistance, the
switch's off-leakage and U4's input bias current — the budget that makes
the "low-leakage polyester capacitor" a named design choice.

Every non-ideality in the accuracy budget is modelled:

* divider loading of the PV cell (solved with the MNA DC solver against
  the cell's real curve — the source of the lux-dependent k deviation),
* buffer offsets,
* incomplete settling within the pulse width,
* switch charge injection at PULSE release,
* dielectric absorption of the hold capacitor,
* droop over the hold period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analog.components import Capacitor, ResistiveDivider
from repro.analog.mna import Circuit
from repro.analog.opamp import MICROPOWER_BUFFER, UnityGainBuffer
from repro.analog.switch import MICROPOWER_ANALOG_SWITCH, AnalogSwitch
from repro.errors import ModelParameterError
from repro.pv.single_diode import SingleDiodeModel


@dataclass(frozen=True)
class SampleResult:
    """Outcome of one sampling operation.

    Attributes:
        held_voltage: the voltage left on the hold capacitor, volts.
        tap_voltage: the divider tap voltage during the sample, volts.
        loaded_pv_voltage: the PV terminal voltage while loaded by the
            divider (slightly below true Voc), volts.
        true_voc: the cell's unloaded open-circuit voltage, volts.
        settle_fraction: how much of the step toward the target the hold
            capacitor completed within the pulse.
    """

    held_voltage: float
    tap_voltage: float
    loaded_pv_voltage: float
    true_voc: float
    settle_fraction: float

    @property
    def effective_ratio(self) -> float:
        """Achieved ``held / true_voc`` — the quantity behind Table I's k."""
        if self.true_voc <= 0.0:
            return 0.0
        return self.held_voltage / self.true_voc


@dataclass
class SampleHoldCircuit:
    """The divider / switch / hold-cap / buffer sampling chain.

    Attributes:
        divider: the R1/R2 ladder setting ``k * alpha`` (paper: trimmed
            so HELD/Voc is ~0.298, i.e. k ~ 0.596 at alpha = 0.5).
        hold_capacitor: the low-leakage sampling capacitor.
        input_buffer: U2, isolating the divider from the switch.
        output_buffer: U4, presenting HELD_SAMPLE to the converter.
        switch: the PULSE-gated analog switch.
        ripple_filter_r: R3, ohms (with C3 smooths HELD_SAMPLE ripple).
        ripple_filter_c: C3, farads.
        supply: rail, volts.
    """

    divider: ResistiveDivider = field(
        default_factory=lambda: ResistiveDivider.from_ratio(0.298, 10e6)
    )
    hold_capacitor: Capacitor = field(default_factory=lambda: Capacitor(1e-6))
    input_buffer: UnityGainBuffer = field(
        default_factory=lambda: UnityGainBuffer(spec=MICROPOWER_BUFFER)
    )
    output_buffer: UnityGainBuffer = field(
        default_factory=lambda: UnityGainBuffer(spec=MICROPOWER_BUFFER)
    )
    switch: AnalogSwitch = field(default_factory=lambda: AnalogSwitch(spec=MICROPOWER_ANALOG_SWITCH))
    ripple_filter_r: float = 100e3
    ripple_filter_c: float = 100e-9
    supply: float = 3.3
    _held: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.ripple_filter_r <= 0.0 or self.ripple_filter_c <= 0.0:
            raise ModelParameterError("ripple filter R and C must be positive")
        if self.supply <= 0.0:
            raise ModelParameterError(f"supply must be positive, got {self.supply!r}")

    # --- observables ------------------------------------------------------------

    @property
    def held_voltage(self) -> float:
        """Voltage currently on the hold capacitor, volts."""
        return self._held

    @property
    def held_sample(self) -> float:
        """The HELD_SAMPLE output (hold voltage through U4), volts."""
        if not self.output_buffer.alive:
            return 0.0
        return min(self.supply, max(0.0, self._held + self.output_buffer.spec.input_offset))

    @property
    def nominal_ratio(self) -> float:
        """Unloaded design ratio ``k * alpha`` of the divider."""
        return self.divider.ratio

    def quiescent_current(self) -> float:
        """Hold-phase supply current of the S&H block, amps.

        Both buffers and the switch logic run continuously; the divider
        is PULSE-gated so it contributes only during samples (see
        :meth:`sampling_extra_current`).
        """
        return (
            self.input_buffer.supply_current()
            + self.output_buffer.supply_current()
            + self.switch.supply_current()
        )

    def sampling_extra_current(self, pv_voltage: float) -> float:
        """Extra current while PULSE is high: the divider string, amps."""
        return self.divider.input_current(pv_voltage)

    def settle_time_constant(self) -> float:
        """Charging time constant of the hold capacitor, seconds."""
        source = self.input_buffer.spec.output_resistance + self.switch.spec.on_resistance
        return source * self.hold_capacitor.farads

    # --- operations ----------------------------------------------------------------

    def loaded_sample_point(self, cell_model: SingleDiodeModel) -> tuple:
        """Solve the PV + divider operating point during a sample.

        Returns:
            (pv_voltage, tap_voltage): the cell terminal voltage loaded
            by the divider, and the divider tap voltage.
        """
        loaded_point = getattr(cell_model, "loaded_point", None)
        if loaded_point is not None:
            # String models solve the divider load directly (bisection on
            # the same kernels the fleet tier runs), skipping the MNA
            # Newton walk; single cells keep the MNA path so the existing
            # golden traces stay bitwise.
            total = self.divider.top.ohms + self.divider.bottom.ohms
            pv_voltage = loaded_point(total)
            tap_voltage = pv_voltage * self.divider.bottom.ohms / total
            return pv_voltage, tap_voltage
        circuit = Circuit()
        circuit.add_pv_cell("pv", "0", cell_model)
        circuit.add_resistor("pv", "tap", self.divider.top.ohms)
        circuit.add_resistor("tap", "0", self.divider.bottom.ohms)
        solution = circuit.solve_dc(initial_guess={"pv": cell_model.voc()})
        return solution["pv"], solution["tap"]

    def sample(self, cell_model: SingleDiodeModel, pulse_width: float) -> SampleResult:
        """Perform one PULSE-gated sampling operation.

        Args:
            cell_model: the cell's curve at the current light level.
            pulse_width: how long PULSE holds the switch closed, seconds.

        Returns:
            A :class:`SampleResult`; the internal held voltage updates.
        """
        if pulse_width <= 0.0:
            raise ModelParameterError(f"pulse_width must be positive, got {pulse_width!r}")
        true_voc = cell_model.voc()
        pv_voltage, tap_voltage = self.loaded_sample_point(cell_model)
        target = self.input_buffer.settle(tap_voltage)

        # Charge through the switch for the effective pulse width.
        self.switch.close()
        effective = max(0.0, pulse_width - self.switch.spec.turn_on_time)
        tau = self.settle_time_constant()
        import math

        settle_fraction = 1.0 - math.exp(-effective / tau) if tau > 0.0 else 1.0
        previous = self._held
        new_held = previous + (target - previous) * settle_fraction

        # PULSE releases: charge injection kicks the hold node.
        kick = self.switch.open(self.hold_capacitor.farads)
        new_held += kick

        # Dielectric absorption: the film creeps back toward its history.
        soak = self.hold_capacitor.dielectric.dielectric_absorption
        new_held += soak * (previous - new_held)

        self._held = min(self.supply, max(0.0, new_held))
        return SampleResult(
            held_voltage=self._held,
            tap_voltage=tap_voltage,
            loaded_pv_voltage=pv_voltage,
            true_voc=true_voc,
            settle_fraction=settle_fraction,
        )

    def droop(self, dt: float) -> float:
        """Let the hold capacitor droop for ``dt`` seconds of hold time.

        Returns the held voltage afterwards.
        """
        bias = self.output_buffer.bias_current() + self.switch.leakage_current()
        self._held = self.hold_capacitor.droop(self._held, dt, external_bias_a=bias)
        return self._held

    def droop_rate(self) -> float:
        """Instantaneous droop rate at the current held voltage, volts/second."""
        leak = self.hold_capacitor.leakage_current(self._held)
        bias = self.output_buffer.bias_current() + self.switch.leakage_current()
        return (leak + bias) / self.hold_capacitor.farads

    def reset(self) -> None:
        """Discharge the hold capacitor (power-off state)."""
        self._held = 0.0
        self.input_buffer.settle(0.0)
        self.output_buffer.settle(0.0)

    # --- checkpoint protocol -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the chain's mutable state: hold node, buffers, switch."""
        return {
            "held": self._held,
            "input_buffer": self.input_buffer.state_dict(),
            "output_buffer": self.output_buffer.state_dict(),
            "switch": self.switch.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        for key in ("held", "input_buffer", "output_buffer", "switch"):
            if key not in state:
                from repro.errors import StateFormatError

                raise StateFormatError(f"SampleHoldCircuit state missing {key!r}")
        self._held = state["held"]
        self.input_buffer.load_state(state["input_buffer"])
        self.output_buffer.load_state(state["output_buffer"])
        self.switch.load_state(state["switch"])
