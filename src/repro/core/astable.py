"""Astable multivibrator — the sampling clock of the MPPT front-end.

The paper adapts the square-wave generator from the LMC7215/LMC6772
datasheet: a micropower comparator with a positive-feedback divider
(hysteresis fraction ``beta``) and an RC timing network.  Diode steering
gives the two half-periods independent resistors, so the prototype's
wildly asymmetric timing — a 39 ms 'on' (sampling) period and a 69 s
'off' (hold) period — comes from one capacitor and two resistors.

Timing follows from the RC charge equation between the hysteresis
thresholds ``Vdd*(1 -/+ beta)/2``::

    t_high = R_on  * C * ln((1 + beta) / (1 - beta))
    t_low  = R_off * C * ln((1 + beta) / (1 - beta))

Both a stateless phase API (for the quasi-static engine) and a stateful
capacitor-integration API (for transient/cold-start simulation) are
provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analog.comparator import LMC7215, ComparatorSpec
from repro.errors import ModelParameterError


@dataclass
class AstableMultivibrator:
    """Comparator relaxation oscillator with diode-steered asymmetric timing.

    Attributes:
        r_on: timing resistance during the high (PULSE) phase, ohms.
        r_off: timing resistance during the low (hold) phase, ohms.
        capacitance: timing capacitor, farads.
        beta: positive-feedback (hysteresis) fraction, 0..1.
        feedback_resistance: total resistance of the feedback divider
            string, ohms (a quiescent drain on the supply).
        comparator: the comparator part used.
        supply: supply rail, volts.
    """

    r_on: float
    r_off: float
    capacitance: float
    beta: float = 0.9
    feedback_resistance: float = 60e6
    comparator: ComparatorSpec = field(default_factory=lambda: LMC7215)
    supply: float = 3.3

    # transient state
    _v_cap: float = field(default=0.0, repr=False)
    _output_high: bool = field(default=False, repr=False)
    _started: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.r_on <= 0.0 or self.r_off <= 0.0:
            raise ModelParameterError("timing resistances must be positive")
        if self.capacitance <= 0.0:
            raise ModelParameterError(f"capacitance must be positive, got {self.capacitance!r}")
        if not 0.0 < self.beta < 1.0:
            raise ModelParameterError(f"beta must be in (0, 1), got {self.beta!r}")
        if self.feedback_resistance <= 0.0:
            raise ModelParameterError(
                f"feedback_resistance must be positive, got {self.feedback_resistance!r}"
            )
        if self.supply <= 0.0:
            raise ModelParameterError(f"supply must be positive, got {self.supply!r}")

    # --- design helpers -----------------------------------------------------------

    @classmethod
    def from_timing(
        cls,
        t_on: float,
        t_off: float,
        capacitance: float = 1e-6,
        beta: float = 0.9,
        **kwargs,
    ) -> "AstableMultivibrator":
        """Design the RC network for a requested on/off timing.

        Args:
            t_on: desired PULSE width, seconds (paper: 39 ms).
            t_off: desired hold period, seconds (paper: 69 s).
            capacitance: chosen timing capacitor, farads.
            beta: hysteresis fraction.
            **kwargs: forwarded to the constructor.
        """
        if t_on <= 0.0 or t_off <= 0.0:
            raise ModelParameterError("t_on and t_off must be positive")
        log_term = math.log((1.0 + beta) / (1.0 - beta))
        r_on = t_on / (capacitance * log_term)
        r_off = t_off / (capacitance * log_term)
        return cls(r_on=r_on, r_off=r_off, capacitance=capacitance, beta=beta, **kwargs)

    @property
    def _log_term(self) -> float:
        return math.log((1.0 + self.beta) / (1.0 - self.beta))

    @property
    def t_on(self) -> float:
        """Steady-state PULSE width, seconds."""
        return self.r_on * self.capacitance * self._log_term

    @property
    def t_off(self) -> float:
        """Steady-state hold (low) period, seconds."""
        return self.r_off * self.capacitance * self._log_term

    @property
    def period(self) -> float:
        """Full oscillation period, seconds."""
        return self.t_on + self.t_off

    @property
    def duty_cycle(self) -> float:
        """Fraction of time PULSE is high."""
        return self.t_on / self.period

    @property
    def thresholds(self) -> tuple:
        """(lower, upper) hysteresis thresholds, volts."""
        return (
            self.supply * (1.0 - self.beta) / 2.0,
            self.supply * (1.0 + self.beta) / 2.0,
        )

    # --- stateless phase API (quasi-static engine) ----------------------------------

    def is_pulse_high(self, t: float) -> bool:
        """Whether PULSE is high at time ``t`` (steady-state phase, t_on first).

        The cycle is referenced so a pulse begins at t = 0 — matching the
        observed behaviour that the prototype "quickly generates a signal
        on the PULSE line" after starting.
        """
        phase = t % self.period
        return phase < self.t_on

    def pulse_count_in(self, t_start: float, t_end: float) -> int:
        """Number of pulse *starts* in the half-open interval [t_start, t_end)."""
        if t_end < t_start:
            raise ModelParameterError(f"t_end {t_end} before t_start {t_start}")
        # Pulse starts are at integer multiples k of the period; count the
        # integers with t_start <= k*period < t_end.
        k_min = math.ceil(t_start / self.period - 1e-12)
        k_max = math.ceil(t_end / self.period - 1e-12) - 1
        return max(0, k_max - k_min + 1)

    def next_pulse_start(self, t: float) -> float:
        """Time of the first pulse start at or after ``t``."""
        cycles = math.ceil(t / self.period)
        candidate = cycles * self.period
        if candidate < t:
            candidate += self.period
        return candidate

    # --- current budget -----------------------------------------------------------

    def timing_network_current(self) -> float:
        """Cycle-average current through the timing RC, amps.

        Each half-cycle moves ``C * beta * Vdd`` of charge through the
        timing resistor, so the average is ``2 C beta Vdd / period``.
        """
        return 2.0 * self.capacitance * self.beta * self.supply / self.period

    def feedback_divider_current(self) -> float:
        """Average current through the positive-feedback divider, amps.

        The divider string hangs between the output rail and ground, so
        it conducts whenever the output is high; weighted by duty.
        """
        return (self.supply / self.feedback_resistance) * self.duty_cycle

    def average_current(self) -> float:
        """Total average supply current of the astable block, amps."""
        return (
            self.comparator.quiescent_current
            + self.timing_network_current()
            + self.feedback_divider_current()
        )

    # --- stateful transient API ------------------------------------------------------

    @property
    def output_high(self) -> bool:
        """Current transient output state."""
        return self._output_high

    @property
    def capacitor_voltage(self) -> float:
        """Current timing-capacitor voltage (transient state), volts."""
        return self._v_cap

    def reset(self) -> None:
        """Return the transient state to power-off."""
        self._v_cap = 0.0
        self._output_high = False
        self._started = False

    def state_dict(self) -> dict:
        """Snapshot the transient state (checkpoint protocol)."""
        from repro.ckpt.state import capture_fields

        return capture_fields(self, ("_v_cap", "_output_high", "_started"))

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, ("_v_cap", "_output_high", "_started"))

    def advance(self, dt: float, supply: float | None = None) -> bool:
        """Integrate the oscillator by ``dt`` seconds; returns PULSE state.

        With the supply below the comparator's minimum the oscillator is
        dead (output low, capacitor bleeding to zero).  On power-up the
        capacitor sits below the lower threshold, so the output goes high
        immediately — the fast first PULSE the paper reports.

        Uses the exact RC exponential within the step, with threshold
        crossings handled by state switching per step (dt should be well
        below t_on for waveform accuracy).
        """
        if dt < 0.0:
            raise ModelParameterError(f"dt must be >= 0, got {dt!r}")
        vdd = self.supply if supply is None else supply
        if vdd < self.comparator.min_supply:
            self._v_cap *= math.exp(-dt / (self.r_off * self.capacitance))
            self._output_high = False
            self._started = False
            return False

        lower = vdd * (1.0 - self.beta) / 2.0
        upper = vdd * (1.0 + self.beta) / 2.0

        if not self._started:
            # Comparator wakes: cap below lower threshold forces output high.
            self._output_high = self._v_cap < upper
            self._started = True

        if self._output_high:
            target, tau = vdd, self.r_on * self.capacitance
        else:
            target, tau = 0.0, self.r_off * self.capacitance
        self._v_cap = target + (self._v_cap - target) * math.exp(-dt / tau)

        if self._output_high and self._v_cap >= upper:
            self._output_high = False
        elif not self._output_high and self._v_cap <= lower:
            self._output_high = True
        return self._output_high
