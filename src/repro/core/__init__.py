"""The paper's primary contribution: the ultra low-power S&H MPPT system.

* :mod:`repro.core.astable` — the comparator relaxation oscillator that
  times the sampling (39 ms PULSE every 69 s in the prototype).
* :mod:`repro.core.sample_hold` — the divider / switch / hold-capacitor /
  buffer chain producing HELD_SAMPLE = Voc * k * alpha.
* :mod:`repro.core.coldstart` — the reservoir-capacitor cold-start chain
  and the ACTIVE sanity comparator.
* :mod:`repro.core.system` — :class:`SampleHoldMPPT`, the Fig. 3 platform
  as a quasi-static harvesting controller.
* :mod:`repro.core.platform_transient` — the same platform as a
  node-level transient model for waveform reproduction (Fig. 4,
  cold-start ramps).
"""

from repro.core.astable import AstableMultivibrator
from repro.core.sample_hold import SampleHoldCircuit, SampleResult
from repro.core.coldstart import ColdStartCircuit, ActiveMonitor
from repro.core.config import PlatformConfig
from repro.core.system import SampleHoldMPPT
from repro.core.platform_transient import TransientPlatform
from repro.core.design import DesignSpec, DesignReport, synthesise_platform

__all__ = [
    "AstableMultivibrator",
    "SampleHoldCircuit",
    "SampleResult",
    "ColdStartCircuit",
    "ActiveMonitor",
    "PlatformConfig",
    "SampleHoldMPPT",
    "TransientPlatform",
    "DesignSpec",
    "DesignReport",
    "synthesise_platform",
]
