"""Fixed-voltage operation (Weddell et al., Eurosensors'08 [8]).

The state of the art for *indoor* harvesting before this paper: operate
the PV cell at a constant voltage from a reference IC, chosen to sit
near the MPP for the expected (indoor) light level.  No tracking at all
— the point is that the reference IC alone draws more current than the
whole proposed S&H chain, and the fixed point goes badly wrong when the
lighting leaves its design range (the mobile/body-worn scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.baselines.bootstrap import bootstrap_decision
from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class FixedVoltage:
    """Constant-voltage operation from a reference IC.

    Attributes:
        setpoint: the fixed PV operating voltage, volts (default: the
            AM-1815's 200-lux MPP, the natural indoor design point).
        reference_current: the reference IC's supply current, amps —
            the paper notes its S&H draws *less* than this part alone.
        min_supply: below this rail the reference cannot run, volts.
    """

    setpoint: float = 3.1
    reference_current: float = 12e-6
    min_supply: float = 1.8
    name: str = "fixed-voltage"

    def __post_init__(self) -> None:
        if self.setpoint <= 0.0:
            raise ModelParameterError(f"setpoint must be positive, got {self.setpoint!r}")
        if self.reference_current < 0.0:
            raise ModelParameterError(
                f"reference_current must be >= 0, got {self.reference_current!r}"
            )

    def decide(self, obs: Observation) -> ControlDecision:
        """Hold the fixed setpoint whenever the cell can reach it."""
        if obs.supply_voltage < self.min_supply:
            return bootstrap_decision(obs)
        overhead = self.reference_current
        if obs.lux <= 0.0 or self.setpoint >= obs.cell_model.voc():
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=overhead
            )
        return ControlDecision(operating_voltage=self.setpoint, overhead_current=overhead)
