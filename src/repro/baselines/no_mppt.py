"""Direct connection: no MPPT at all (Wang et al. [7]).

The module feeds the energy store through nothing but a diode; the cell
operates wherever the store's voltage sits.  The paper calls this "a
valid assumption for cases where the energy store voltage is always
sufficiently close to the MPP voltage of the PV module" — and the E8
comparison shows exactly when that assumption collapses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class NoMPPT:
    """Diode-coupled direct connection to the store.

    Attributes:
        diode_drop: series diode forward voltage, volts.
    """

    diode_drop: float = 0.25
    name: str = "no-MPPT-direct"

    def __post_init__(self) -> None:
        if self.diode_drop < 0.0:
            raise ModelParameterError(f"diode_drop must be >= 0, got {self.diode_drop!r}")

    def decide(self, obs: Observation) -> ControlDecision:
        """Operate at the store voltage plus the diode drop (if reachable)."""
        if obs.lux <= 0.0:
            return ControlDecision(operating_voltage=None, harvest_duty=0.0)
        v_op = obs.storage_voltage + self.diode_drop
        if v_op <= 0.0 or v_op >= obs.cell_model.voc():
            return ControlDecision(operating_voltage=None, harvest_duty=0.0)
        return ControlDecision(operating_voltage=v_op)
