"""Oracle MPPT: the upper bound every technique is measured against."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class IdealMPPT:
    """A zero-overhead tracker that sits exactly on the MPP every step.

    Physically unrealisable (it knows the curve without measuring it),
    but it defines the ``energy_ideal`` denominator of every tracking-
    efficiency figure.
    """

    name: str = "ideal-oracle"

    def decide(self, obs: Observation) -> ControlDecision:
        """Operate at the true MPP with no overhead and full duty."""
        if obs.lux <= 0.0:
            return ControlDecision(operating_voltage=None, harvest_duty=0.0)
        mpp = obs.cell_model.mpp()
        if mpp.power <= 0.0:
            return ControlDecision(operating_voltage=None, harvest_duty=0.0)
        return ControlDecision(operating_voltage=mpp.voltage)
