"""Hill-climbing (perturb & observe) MPPT [2][3].

The classic outdoor technique: continually nudge the operating point,
keep going if power rose, reverse if it fell.  It converges to the true
MPP without any model of the cell — but it "requires fine-grained
control of the system, normally necessitating the use of a
microcontroller" (paper Sec. I), whose supply current is fatal at indoor
light levels.  The overhead model is a duty-cycled MCU + ADC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError
from repro.baselines.bootstrap import bootstrap_decision
from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class HillClimbing:
    """Perturb & observe with a microcontroller power model.

    Attributes:
        step_voltage: perturbation size, volts.
        update_period: time between perturbations, seconds.
        mcu_active_current: MCU+ADC current while measuring/deciding, amps.
        mcu_active_time: awake time per update, seconds.
        mcu_sleep_current: sleep current between updates, amps.
        min_supply: below this rail the MCU cannot run, volts.
        initial_fraction: initial operating point as a fraction of Voc.
    """

    step_voltage: float = 0.05
    update_period: float = 1.0
    mcu_active_current: float = 2.2e-3
    mcu_active_time: float = 0.15
    mcu_sleep_current: float = 5e-6
    min_supply: float = 1.8
    initial_fraction: float = 0.7
    name: str = "hill-climbing"

    _v_op: float = field(default=0.0, repr=False)
    _prev_power: float = field(default=0.0, repr=False)
    _direction: float = field(default=-1.0, repr=False)
    _next_update: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.step_voltage <= 0.0:
            raise ModelParameterError(f"step_voltage must be positive, got {self.step_voltage!r}")
        if self.update_period <= 0.0:
            raise ModelParameterError(f"update_period must be positive, got {self.update_period!r}")
        if not 0.0 < self.initial_fraction < 1.0:
            raise ModelParameterError(
                f"initial_fraction must be in (0, 1), got {self.initial_fraction!r}"
            )

    _STATE_FIELDS = ("_v_op", "_prev_power", "_direction", "_next_update")

    def state_dict(self) -> dict:
        """Snapshot the climb state (checkpoint protocol)."""
        from repro.ckpt.state import capture_fields

        return capture_fields(self, self._STATE_FIELDS)

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, self._STATE_FIELDS)

    def average_overhead_current(self) -> float:
        """Duty-cycled MCU current, amps."""
        duty = min(1.0, self.mcu_active_time / self.update_period)
        return self.mcu_active_current * duty + self.mcu_sleep_current * (1.0 - duty)

    def decide(self, obs: Observation) -> ControlDecision:
        """Measure power at the present point; perturb in the winning direction."""
        overhead = self.average_overhead_current()
        if obs.supply_voltage < self.min_supply:
            # MCU brown-out: fall back to the bootstrap diode path.
            return bootstrap_decision(obs)
        if obs.lux <= 0.0:
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=overhead
            )

        voc = obs.cell_model.voc()
        if self._v_op <= 0.0 or self._v_op >= voc:
            self._v_op = self.initial_fraction * voc

        if obs.time >= self._next_update:
            power = float(obs.cell_model.power_at(self._v_op))
            if power < self._prev_power:
                self._direction = -self._direction
            self._prev_power = power
            self._v_op = min(max(self._v_op + self._direction * self.step_voltage, 0.05), voc * 0.999)
            self._next_update = obs.time + self.update_period

        return ControlDecision(operating_voltage=self._v_op, overhead_current=overhead)
