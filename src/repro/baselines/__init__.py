"""Baseline MPPT techniques the paper positions itself against.

Each implements the :class:`~repro.sim.quasistatic.HarvestingController`
protocol, so the E8 comparison runs them through the identical
simulation loop as the proposed system:

* :class:`IdealMPPT` — zero-cost oracle at the true MPP (upper bound).
* :class:`HillClimbing` — perturb & observe [2][3]: accurate but needs a
  microcontroller-class power budget.
* :class:`PeriodicFOCV` — microcontroller FOCV sampling every 100 ms
  (Simjee & Chou [4], ~2 mW overall consumption).
* :class:`PilotCell` — a dedicated pilot solar cell provides the
  reference (Brunelli et al. [5], ~300 uW when 'off', plus lost area).
* :class:`PhotodiodeReference` — a photodetector proxy (Park & Chou's
  AmbiMax [6], ~500 uA).
* :class:`FixedVoltage` — operate at a constant voltage assumed near the
  MPP (Weddell et al. [8]; the reference IC draws more than this
  paper's whole S&H).
* :class:`NoMPPT` — direct connection to the energy store [7].
"""

from repro.baselines.ideal import IdealMPPT
from repro.baselines.hill_climbing import HillClimbing
from repro.baselines.periodic_focv import PeriodicFOCV
from repro.baselines.pilot_cell import PilotCell
from repro.baselines.photodiode import PhotodiodeReference
from repro.baselines.fixed_voltage import FixedVoltage
from repro.baselines.no_mppt import NoMPPT

__all__ = [
    "IdealMPPT",
    "HillClimbing",
    "PeriodicFOCV",
    "PilotCell",
    "PhotodiodeReference",
    "FixedVoltage",
    "NoMPPT",
]
