"""Pilot-cell FOCV (Brunelli et al., DATE'08 [5]).

A second, small 'pilot' PV cell is left permanently open-circuit; its
terminal voltage, scaled by k, drives the converter reference directly.
No sampling and no disconnection of the main module — but the pilot's
area is lost to harvesting, and the reference/control electronics of the
reported system consume ~300 uW even when 'off', which dwarfs an indoor
cell's entire output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.baselines.bootstrap import bootstrap_decision
from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class PilotCell:
    """Pilot-cell tracker with area and quiescent-power costs.

    The pilot is assumed to match the main cell's chemistry, so its Voc
    equals the main cell's — giving this technique a *continuously
    fresh* k*Voc reference (its accuracy advantage over any sampled
    scheme).

    Attributes:
        k: fractional-Voc setpoint applied to the pilot's Voc.
        pilot_area_fraction: fraction of total PV area given to the
            pilot (lost to harvesting).
        overhead_power: control-electronics consumption, watts
            ([5]: ~300 uW when off).
        min_supply: below this rail the control cannot run, volts.
    """

    k: float = 0.6
    pilot_area_fraction: float = 0.1
    overhead_power: float = 300e-6
    min_supply: float = 1.5
    name: str = "pilot-cell"

    def __post_init__(self) -> None:
        if not 0.0 < self.k < 1.0:
            raise ModelParameterError(f"k must be in (0, 1), got {self.k!r}")
        if not 0.0 <= self.pilot_area_fraction < 1.0:
            raise ModelParameterError(
                f"pilot_area_fraction must be in [0, 1), got {self.pilot_area_fraction!r}"
            )
        if self.overhead_power < 0.0:
            raise ModelParameterError(f"overhead_power must be >= 0, got {self.overhead_power!r}")

    def decide(self, obs: Observation) -> ControlDecision:
        """Track k * pilot-Voc continuously; pay area and power costs."""
        if obs.supply_voltage < self.min_supply:
            return bootstrap_decision(obs)
        overhead = self.overhead_power / max(obs.supply_voltage, 1e-9)
        if obs.lux <= 0.0:
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=overhead
            )
        v_op = self.k * obs.cell_model.voc()
        if v_op <= 0.0:
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=overhead
            )
        # The pilot's area produces nothing: model as a duty derating of
        # the main module (power scales linearly with active area).
        duty = 1.0 - self.pilot_area_fraction
        return ControlDecision(operating_voltage=v_op, harvest_duty=duty, overhead_current=overhead)
