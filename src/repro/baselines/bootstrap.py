"""Bootstrap (supply-dead) behaviour shared by the baseline trackers.

The cited systems ([4] Simjee & Chou, [5] Brunelli, [6] AmbiMax) all
include some bootstrap path that charges the store directly from the PV
module when the control electronics are unpowered — without one, a
single dark night would brick them.  (The *elegance* of the paper's
cold-start chain is that it needs no such extra path and wakes the full
MPPT; the baselines here get the dumb version: a diode into the store.)
"""

from __future__ import annotations

from repro.sim.quasistatic import ControlDecision, Observation

BOOTSTRAP_DIODE_DROP = 0.25
"""Forward drop of the bootstrap diode, volts."""


def bootstrap_decision(obs: Observation) -> ControlDecision:
    """Direct diode-coupled charging while the controller is unpowered.

    The module dumps into the store at ``V_store + diode drop`` with no
    control overhead; once the store recovers past the controller's
    minimum supply, normal tracking resumes on the next step.
    """
    if obs.lux <= 0.0:
        return ControlDecision(operating_voltage=None, harvest_duty=0.0, note="bootstrap-dark")
    v_op = obs.storage_voltage + BOOTSTRAP_DIODE_DROP
    if v_op >= obs.cell_model.voc():
        return ControlDecision(operating_voltage=None, harvest_duty=0.0, note="bootstrap-idle")
    return ControlDecision(operating_voltage=v_op, note="bootstrap")
