"""Microcontroller FOCV sampling every 100 ms (Simjee & Chou [4]).

The same fractional-Voc idea as the paper, realised conventionally: a
microcontroller periodically disconnects the module, digitises Voc, and
programs the converter reference.  [4] "samples the module every 100 ms
(and has an overall power consumption of 2 mW)" — three orders of
magnitude above the proposed S&H, and with a 1000x higher sampling rate
than the light dynamics require (the Sec. II-B analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError
from repro.baselines.bootstrap import bootstrap_decision
from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class PeriodicFOCV:
    """Conventional microcontroller-based FOCV tracker.

    Attributes:
        k: fractional-Voc setpoint.
        sample_period: time between Voc samples, seconds ([4]: 100 ms).
        sample_duration: module disconnection per sample, seconds.
        overhead_power: total controller consumption, watts ([4]: 2 mW).
        min_supply: below this rail the controller cannot run, volts.
    """

    k: float = 0.6
    sample_period: float = 0.1
    sample_duration: float = 5e-3
    overhead_power: float = 2e-3
    min_supply: float = 1.8
    name: str = "periodic-uC-FOCV"

    _held_voc: float = field(default=0.0, repr=False)
    _next_sample: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.k < 1.0:
            raise ModelParameterError(f"k must be in (0, 1), got {self.k!r}")
        if self.sample_duration >= self.sample_period:
            raise ModelParameterError("sample_duration must be below sample_period")
        if self.overhead_power < 0.0:
            raise ModelParameterError(f"overhead_power must be >= 0, got {self.overhead_power!r}")

    _STATE_FIELDS = ("_held_voc", "_next_sample")

    def state_dict(self) -> dict:
        """Snapshot the sampling state (checkpoint protocol)."""
        from repro.ckpt.state import capture_fields

        return capture_fields(self, self._STATE_FIELDS)

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, self._STATE_FIELDS)

    @property
    def disconnection_duty(self) -> float:
        """Fraction of time the module is disconnected for sampling."""
        return self.sample_duration / self.sample_period

    def decide(self, obs: Observation) -> ControlDecision:
        """Track k*Voc, resampling on the 100 ms grid."""
        if obs.supply_voltage < self.min_supply:
            return bootstrap_decision(obs)
        overhead = self.overhead_power / max(obs.supply_voltage, 1e-9)
        if obs.lux <= 0.0:
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=overhead
            )

        # With quasi-static steps >= the sample period, the held Voc is
        # simply refreshed every step; with finer steps, on the grid.
        if obs.time >= self._next_sample or obs.dt >= self.sample_period:
            self._held_voc = obs.cell_model.voc()
            self._next_sample = obs.time + self.sample_period

        if self._held_voc <= 0.0:
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=overhead
            )
        v_op = self.k * self._held_voc
        duty = 1.0 - self.disconnection_duty
        return ControlDecision(operating_voltage=v_op, harvest_duty=duty, overhead_current=overhead)
