"""Photodiode-referenced MPPT (Park & Chou's AmbiMax [6]).

A photodetector measures the light level directly and analog control
maps it onto the converter reference — continuous tracking with no
module disconnection, at the cost of a ~500 uA control-chain current.
The light-to-Vmpp map is calibrated (here: exact at the calibration
intensity, with a logarithmic-in-lux interpolation mirroring how such
analog maps are trimmed), so its tracking is good but not oracle-exact
away from calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelParameterError
from repro.baselines.bootstrap import bootstrap_decision
from repro.sim.quasistatic import ControlDecision, Observation


@dataclass
class PhotodiodeReference:
    """Photodetector-driven analog MPPT with a calibrated lux->Vmpp map.

    Attributes:
        overhead_current: control-chain supply current, amps ([6]: ~500 uA).
        calibration_lux: intensity at which the map is exact.
        volts_per_decade: slope of the Vmpp-vs-log10(lux) map, volts.
        min_supply: below this rail the control cannot run, volts.
    """

    overhead_current: float = 500e-6
    calibration_lux: float = 1000.0
    volts_per_decade: float = 0.05
    min_supply: float = 1.5
    name: str = "photodiode-ref"

    _cal_vmpp: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.overhead_current < 0.0:
            raise ModelParameterError(
                f"overhead_current must be >= 0, got {self.overhead_current!r}"
            )
        if self.calibration_lux <= 0.0:
            raise ModelParameterError(
                f"calibration_lux must be positive, got {self.calibration_lux!r}"
            )

    def state_dict(self) -> dict:
        """Snapshot the calibration state (checkpoint protocol)."""
        from repro.ckpt.state import capture_fields

        return capture_fields(self, ("_cal_vmpp",))

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import restore_fields

        restore_fields(self, state, ("_cal_vmpp",))

    def decide(self, obs: Observation) -> ControlDecision:
        """Map measured lux onto a Vmpp estimate; track it continuously."""
        if obs.supply_voltage < self.min_supply:
            return bootstrap_decision(obs)
        if obs.lux <= 0.0:
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=self.overhead_current
            )
        import math

        if self._cal_vmpp <= 0.0:
            # One-time factory calibration at the reference intensity.
            scale = self.calibration_lux / obs.lux
            cal_model = obs.cell_model.with_photocurrent(obs.cell_model.photocurrent * scale)
            self._cal_vmpp = cal_model.mpp().voltage

        decades = math.log10(obs.lux / self.calibration_lux)
        v_op = self._cal_vmpp + self.volts_per_decade * decades
        v_op = min(v_op, obs.cell_model.voc() * 0.999)
        if v_op <= 0.0:
            return ControlDecision(
                operating_voltage=None, harvest_duty=0.0, overhead_current=self.overhead_current
            )
        return ControlDecision(operating_voltage=v_op, overhead_current=self.overhead_current)
