"""``repro.ckpt`` — crash-safe experiments.

Three layers, used together by the long-running experiments:

* :mod:`repro.ckpt.atomic` — atomic artifact writes
  (write-temp → fsync → rename) and advisory file locking, so crashes
  never tear an artifact and concurrent runs never drop each other's
  ledger entries.
* :mod:`repro.ckpt.state` — the ``state_dict()/load_state()``
  protocol engines, controllers, storage, schedulers and fault
  wrappers implement, plus RNG-position serialization.
* :mod:`repro.ckpt.checkpoint` — the versioned JSON checkpoint
  envelope experiments save with ``checkpoint_every=`` and resume with
  ``python -m repro <experiment> --resume <ckpt>``.
* :mod:`repro.ckpt.drain` — cooperative SIGTERM shutdown: checkpoint-
  enabled loops poll the drain flag, write one final checkpoint, and
  raise :class:`~repro.errors.RunDrainedError` so the CLI and the job
  server exit 0 with nothing lost.

The hard guarantee (gated by ``tests/integration/test_crash_resume.py``
and the CI crash/resume smoke job): an interrupted-then-resumed run
produces a **bitwise-identical** summary to an uninterrupted one.
"""

from repro.ckpt.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    file_lock,
    locked_append_text,
    locked_update_json,
)
from repro.ckpt.checkpoint import (
    CHECKPOINT_SCHEMA,
    check_spec_match,
    load_checkpoint,
    save_checkpoint,
)
from repro.ckpt.drain import (
    RunDrainedError,
    clear_drain,
    drain_requested,
    request_drain,
    sigterm_drain,
)
from repro.ckpt.state import (
    Stateful,
    capture_fields,
    child_state,
    load_child_state,
    load_rng_state,
    restore_fields,
    rng_state_dict,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "file_lock",
    "locked_append_text",
    "locked_update_json",
    "CHECKPOINT_SCHEMA",
    "save_checkpoint",
    "load_checkpoint",
    "check_spec_match",
    "RunDrainedError",
    "request_drain",
    "clear_drain",
    "drain_requested",
    "sigterm_drain",
    "Stateful",
    "capture_fields",
    "restore_fields",
    "child_state",
    "load_child_state",
    "rng_state_dict",
    "load_rng_state",
]
