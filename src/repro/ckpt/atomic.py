"""Atomic artifact I/O: write-temp → fsync → rename, plus advisory locks.

Every durable artifact this repo produces — the ``BENCH_perf.json``
perf ledger, golden traces, profile exports, experiment checkpoints —
used to be written with a bare ``open(path, "w")``.  A crash (or a
SIGKILL from the parallel runner's watchdog) mid-write leaves a
truncated file, and two concurrent runs doing read-modify-write on the
same ledger silently drop each other's entries.  This module fixes both
failure modes:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` /
  :func:`atomic_write_json` — write to a same-directory temp file,
  ``fsync`` it, then ``os.replace`` onto the destination.  POSIX rename
  is atomic, so readers see either the old complete file or the new
  complete file, never a torn one.
* :func:`file_lock` — an advisory ``flock`` on a sidecar ``.lock``
  file, with a bounded spin so a dead holder cannot wedge callers
  forever (``flock`` locks die with their process, so the timeout only
  fires on genuine long holders).
* :func:`locked_update_json` — the read-modify-write pattern done
  right: lock, read, update, atomic-replace, unlock.  This is what
  :func:`repro.sim.telemetry.record_perf` appends through.

Locking degrades gracefully where ``fcntl`` is unavailable (non-POSIX):
the lock becomes a no-op and the atomic rename still guarantees
untorn files — only cross-process read-modify-write atomicity is lost.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Union

from repro.errors import LockTimeoutError

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


def atomic_write_bytes(path: Union[str, Path], data: bytes, fsync: bool = True) -> Path:
    """Atomically replace ``path`` with ``data``.

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems) and is cleaned up on any failure, so a
    crash never leaves a partial artifact at ``path``.

    Args:
        path: destination file.
        data: the full new contents.
        fsync: flush the temp file to disk before the rename; disable
            only for throwaway artifacts where torn-on-power-loss is
            acceptable (the rename itself is still atomic).

    Returns:
        The destination as a :class:`~pathlib.Path`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: Union[str, Path], text: str, fsync: bool = True) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    fsync: bool = True,
    indent: Optional[int] = 2,
    sort_keys: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    A trailing newline is appended so the artifact diffs cleanly.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text, fsync=fsync)


def _lock_path(path: Union[str, Path]) -> Path:
    """The sidecar lock file guarding ``path``.

    A sidecar (not the artifact itself) so the lock survives the
    ``os.replace`` that swaps the artifact out from under it.
    """
    path = Path(path)
    return path.parent / (path.name + ".lock")


@contextmanager
def file_lock(
    path: Union[str, Path],
    timeout: Optional[float] = 30.0,
    poll_interval: float = 0.02,
) -> Iterator[Path]:
    """Hold an exclusive advisory lock on ``path``'s sidecar lock file.

    Args:
        path: the artifact being guarded (the lock file is
            ``<path>.lock`` next to it).
        timeout: seconds to keep retrying before raising
            :class:`~repro.errors.LockTimeoutError`.  ``None`` blocks
            forever (a plain blocking ``flock``) — only safe when the
            caller can tolerate waiting on an arbitrarily long-held
            lock; the bounded default exists so a peer that *dies while
            holding* a lock (or wedges mid-update) surfaces as a typed
            error instead of hanging every future writer.
        poll_interval: sleep between acquisition attempts, seconds
            (bounded mode only).

    Yields:
        The lock-file path (mostly for tests).
    """
    lock_file = _lock_path(path)
    lock_file.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield lock_file
        return
    fd = os.open(str(lock_file), os.O_CREAT | os.O_RDWR, 0o644)
    try:
        if timeout is None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        else:
            deadline = time.monotonic() + timeout
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise LockTimeoutError(
                            f"could not acquire {lock_file} within {timeout} s "
                            "(another run holds the ledger?)"
                        ) from None
                    time.sleep(poll_interval)
        try:
            yield lock_file
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def locked_append_text(
    path: Union[str, Path],
    text: str,
    timeout: Optional[float] = 30.0,
    fsync: bool = False,
) -> Path:
    """Append ``text`` to ``path`` under the advisory lock.

    The append itself goes through a single ``O_APPEND`` write while
    holding the sidecar lock, so concurrent writers (e.g. journal
    emissions from ``parallel_map`` workers) interleave at line
    granularity instead of tearing mid-record.  A crash mid-write can
    still truncate the *final* line — append is not rename — which is
    why :func:`repro.obs.journal.read_journal` tolerates a partial
    trailing record.

    Args:
        path: destination file (created, with parents, if absent).
        text: the bytes to append, UTF-8 encoded.
        timeout: lock acquisition bound, seconds (``None``: block
            forever, see :func:`file_lock`).
        fsync: flush to disk before releasing the lock; off by default
            because journals are advisory telemetry, not checkpoints.

    Returns:
        The destination as a :class:`~pathlib.Path`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with file_lock(path, timeout=timeout):
        fd = os.open(str(path), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, text.encode("utf-8"))
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
    return path


def locked_update_json(
    path: Union[str, Path],
    update: Callable[[Any], Any],
    default: Callable[[], Any] = dict,
    timeout: Optional[float] = 30.0,
    fsync: bool = True,
) -> Any:
    """Read-modify-write a JSON artifact under the advisory lock.

    The whole cycle — read, ``update``, atomic replace — happens while
    holding the sidecar lock, so two concurrent writers serialize
    instead of dropping each other's changes.  A missing or corrupt
    file (e.g. truncated by a pre-atomic-era crash) is replaced by
    ``default()`` rather than aborting the run.

    Args:
        path: the JSON artifact.
        update: called with the current payload; its return value (or
            the mutated payload, if it returns None) is written back.
        default: factory for the payload when the file is absent or
            unreadable.
        timeout: lock acquisition bound, seconds (``None``: block
            forever, see :func:`file_lock`).
        fsync: forwarded to :func:`atomic_write_json`.

    Returns:
        The payload that was written.
    """
    path = Path(path)
    with file_lock(path, timeout=timeout):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = default()
        result = update(payload)
        if result is None:
            result = payload
        atomic_write_json(path, result, fsync=fsync)
    return result


__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "file_lock",
    "locked_append_text",
    "locked_update_json",
]
