"""Versioned, schema-checked checkpoint files.

A checkpoint is one JSON document written atomically
(:func:`repro.ckpt.atomic.atomic_write_json`), so a crash mid-save
leaves the previous checkpoint intact — the resume path never sees a
torn file.  The envelope is deliberately small::

    {
      "schema": 1,                  # format version, checked on load
      "kind": "endurance",          # which experiment wrote it
      "spec": {...},                # the run's construction arguments
      "state": {...},               # the state_dict() snapshot tree
      "meta": {"saved_at_s": 86400.0, ...}   # free-form context
    }

``spec`` lets the loader verify that a resume reconstructs the *same*
run the snapshot came from (same seed, same dt, same horizon) before
applying state — resuming a checkpoint against different arguments is
a :class:`~repro.errors.CheckpointError`, not a silently-wrong result.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.ckpt.atomic import atomic_write_json
from repro.errors import CheckpointError
from repro.obs import journal as _journal
from repro.obs.metrics import HOOKS as _OBS

CHECKPOINT_SCHEMA = 1
"""Current checkpoint envelope version."""


def save_checkpoint(
    path: Union[str, Path],
    kind: str,
    state: Dict[str, Any],
    spec: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
    fsync: bool = True,
) -> Path:
    """Atomically write a checkpoint envelope to ``path``.

    Args:
        path: destination file (conventionally ``*.ckpt.json``).
        kind: experiment identifier checked on load ("endurance",
            "resilience", "montecarlo", ...).
        state: the ``state_dict()`` snapshot tree.
        spec: the run's construction arguments, echoed for resume-time
            validation.
        meta: free-form context (simulated time, step counts).
        fsync: flush before rename (disable only in tight test loops).

    Returns:
        The checkpoint path.
    """
    envelope = {
        "schema": CHECKPOINT_SCHEMA,
        "kind": kind,
        "spec": spec or {},
        "state": state,
        "meta": meta or {},
    }
    written = atomic_write_json(path, envelope, fsync=fsync)
    h = _OBS.ckpt_saves
    if h is not None:
        h.inc()
    j = _journal.JOURNAL
    if j is not None:
        j.emit(_journal.CHECKPOINT_SAVE, path=str(written), kind=kind)
    return written


def load_checkpoint(path: Union[str, Path], kind: Optional[str] = None) -> Dict[str, Any]:
    """Read and validate a checkpoint envelope.

    Args:
        path: the checkpoint file.
        kind: when given, the envelope's ``kind`` must match.

    Returns:
        The full envelope dict.

    Raises:
        CheckpointError: missing/corrupt file, wrong schema version, or
            wrong kind.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            envelope = json.load(fh)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or "schema" not in envelope:
        raise CheckpointError(f"checkpoint {path} has no schema field")
    if envelope["schema"] != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has schema {envelope['schema']!r}; "
            f"this build reads schema {CHECKPOINT_SCHEMA}"
        )
    if kind is not None and envelope.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path} is kind {envelope.get('kind')!r}, expected {kind!r}"
        )
    for key in ("state", "spec", "meta"):
        if not isinstance(envelope.get(key), dict):
            raise CheckpointError(f"checkpoint {path} is missing its {key!r} tree")
    h = _OBS.ckpt_restores
    if h is not None:
        h.inc()
    j = _journal.JOURNAL
    if j is not None:
        j.emit(
            _journal.CHECKPOINT_RESTORE,
            path=str(path),
            kind=envelope.get("kind"),
        )
    return envelope


def check_spec_match(envelope: Dict[str, Any], spec: Dict[str, Any], path: Any = "") -> None:
    """Require the checkpoint's echoed spec to equal the resume's spec.

    Raises:
        CheckpointError: listing every differing field — resuming a
            snapshot under different run arguments would produce a
            result that matches neither run.
    """
    saved = envelope.get("spec", {})
    diffs = []
    for key in sorted(set(saved) | set(spec)):
        if saved.get(key) != spec.get(key):
            diffs.append(f"{key}: checkpoint={saved.get(key)!r} resume={spec.get(key)!r}")
    if diffs:
        raise CheckpointError(
            f"checkpoint {path} was written by a different run; refusing to "
            "resume with mismatched arguments (" + "; ".join(diffs) + ")"
        )


__all__ = [
    "CHECKPOINT_SCHEMA",
    "save_checkpoint",
    "load_checkpoint",
    "check_spec_match",
]
