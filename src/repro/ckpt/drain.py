"""Cooperative drain: stop long runs gracefully with one final checkpoint.

A SIGKILL is survivable (PR 4's crash-safe checkpoints resume bitwise),
but it throws away everything since the last periodic checkpoint.  A
SIGTERM — the polite shutdown every process supervisor sends first —
can do better: ask the run to stop *now*, write one final checkpoint,
and exit cleanly so the resume loses nothing.

The mechanism is a process-wide event.  Checkpoint-enabled experiment
loops poll :func:`drain_requested` once per step (an ``Event.is_set``,
nanoseconds); when it fires they write a final checkpoint through their
existing ``checkpoint_path`` plumbing and raise
:class:`~repro.errors.RunDrainedError` carrying the checkpoint path.
Two callers arm it:

* the CLI (``python -m repro <experiment> --checkpoint …``) installs a
  SIGTERM handler via :func:`sigterm_drain` and turns the raised
  :class:`RunDrainedError` into a clean exit 0 with a resume hint;
* the job server (:mod:`repro.service`) calls :func:`request_drain` on
  SIGTERM so every in-flight job checkpoints, then re-queues each job
  with ``resume_from`` set before the process exits 0.

The event is global by design: drain means "this *process* is going
away", never "stop one run of several".
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import RunDrainedError

__all__ = [
    "RunDrainedError",
    "request_drain",
    "clear_drain",
    "drain_requested",
    "check_drain",
    "sigterm_drain",
]

_DRAIN = threading.Event()


def request_drain() -> None:
    """Ask every drain-aware loop in this process to checkpoint and stop."""
    _DRAIN.set()


def clear_drain() -> None:
    """Reset the drain flag (tests, and server restart-in-process)."""
    _DRAIN.clear()


def drain_requested() -> bool:
    """Whether a drain has been requested (polled by experiment loops)."""
    return _DRAIN.is_set()


def check_drain(checkpoint_path, kind: str, done: int, total: int) -> None:
    """Batch-boundary drain point for chunked experiment loops.

    Call immediately *after* the loop's periodic checkpoint write: if a
    drain is pending the raise loses nothing — the checkpoint on disk
    already holds every completed batch.  No-op when checkpointing is
    off (a run that cannot resume is worth more finished than drained)
    or when no drain was requested.

    Raises:
        RunDrainedError: naming the checkpoint to resume from.
    """
    if checkpoint_path is None or not _DRAIN.is_set():
        return
    raise RunDrainedError(
        f"{kind} run drained after {done}/{total} completed batches; "
        f"resume from {checkpoint_path}",
        checkpoint_path=str(checkpoint_path),
        step=int(done),
    )


@contextmanager
def sigterm_drain() -> Iterator[None]:
    """Route SIGTERM to :func:`request_drain` for the enclosed block.

    The previous handler is restored (and the flag cleared) on exit.
    Outside the main thread — where CPython refuses ``signal.signal`` —
    this degrades to a no-op context so library callers can wrap
    unconditionally.
    """
    try:
        previous = signal.signal(signal.SIGTERM, lambda signum, frame: request_drain())
    except ValueError:  # not the main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
        clear_drain()
