"""The ``state_dict()`` / ``load_state()`` protocol and its helpers.

Deterministic resume requires every stateful link of the harvesting
chain — engine, controller, S&H internals, storage, scheduler, fault
wrappers, RNGs — to round-trip its mutable state through plain JSON
data.  The protocol is deliberately minimal:

* ``state_dict() -> dict`` — a JSON-serializable snapshot of the
  object's *mutable* state (configuration is not captured; a resume
  reconstructs the object from the same arguments and then loads
  state into it).
* ``load_state(state: dict) -> None`` — restore a snapshot produced by
  the same class.

Floats survive JSON exactly (CPython serializes ``repr`` shortest
round-trip), so a loaded object continues bitwise-identically to one
that was never snapshotted — the property
``tests/property/test_state_roundtrip.py`` pins with Hypothesis.

Helpers here keep the per-class implementations to a few lines each and
make missing-key errors uniform (:class:`~repro.errors.StateFormatError`
naming the class and the key).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Protocol, runtime_checkable

from repro.errors import StateFormatError


@runtime_checkable
class Stateful(Protocol):
    """Anything whose mutable state round-trips through plain data."""

    def state_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of the mutable state."""

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""


def capture_fields(obj: Any, fields: Iterable[str]) -> Dict[str, Any]:
    """Snapshot the named attributes of ``obj`` into a plain dict."""
    return {name: getattr(obj, name) for name in fields}


def restore_fields(obj: Any, state: Dict[str, Any], fields: Iterable[str]) -> None:
    """Set the named attributes of ``obj`` from ``state``.

    Raises:
        StateFormatError: when a required key is missing — the snapshot
            was produced by a different class or schema.
    """
    for name in fields:
        if name not in state:
            raise StateFormatError(
                f"state for {type(obj).__name__} is missing key {name!r} "
                f"(has: {sorted(state)})"
            )
    for name in fields:
        setattr(obj, name, state[name])


def child_state(obj: Any) -> Optional[Dict[str, Any]]:
    """``obj.state_dict()`` if ``obj`` speaks the protocol, else None.

    Lets containers (the quasi-static engine, fault wrappers) serialize
    heterogeneous children — stateless callables and profiles simply
    contribute nothing.
    """
    if obj is None:
        return None
    getter = getattr(obj, "state_dict", None)
    if getter is None:
        return None
    return getter()


def load_child_state(obj: Any, state: Optional[Dict[str, Any]], label: str) -> None:
    """Restore a child captured by :func:`child_state`.

    A snapshot for a child that cannot load it (or vice versa) means
    the resume reconstructed a different chain than the snapshot came
    from — surfaced as a :class:`~repro.errors.StateFormatError`
    instead of silently resuming half the state.
    """
    setter = getattr(obj, "load_state", None) if obj is not None else None
    if state is None:
        if setter is not None:
            raise StateFormatError(
                f"snapshot has no state for {label!r} but the reconstructed "
                f"object ({type(obj).__name__}) is stateful"
            )
        return
    if setter is None:
        raise StateFormatError(
            f"snapshot carries state for {label!r} but the reconstructed "
            f"object ({type(obj).__name__ if obj is not None else None}) "
            "cannot load it"
        )
    setter(state)


def rng_state_dict(rng) -> Dict[str, Any]:
    """Serialize a ``numpy.random.Generator``'s position to plain data.

    PCG64 state is a pair of (arbitrary-precision) Python ints plus two
    small fields — all JSON-exact — so a restored generator continues
    the stream bit-for-bit.
    """
    state = rng.bit_generator.state
    return {
        "bit_generator": state["bit_generator"],
        "state": {str(k): int(v) for k, v in state["state"].items()},
        "has_uint32": int(state.get("has_uint32", 0)),
        "uinteger": int(state.get("uinteger", 0)),
    }


def load_rng_state(rng, state: Dict[str, Any]) -> None:
    """Restore a generator position captured by :func:`rng_state_dict`."""
    current = rng.bit_generator.state
    if state.get("bit_generator") != current["bit_generator"]:
        raise StateFormatError(
            f"RNG snapshot is for {state.get('bit_generator')!r}, "
            f"generator uses {current['bit_generator']!r}"
        )
    rng.bit_generator.state = {
        "bit_generator": state["bit_generator"],
        "state": {k: int(v) for k, v in state["state"].items()},
        "has_uint32": int(state.get("has_uint32", 0)),
        "uinteger": int(state.get("uinteger", 0)),
    }


__all__ = [
    "Stateful",
    "capture_fields",
    "restore_fields",
    "child_state",
    "load_child_state",
    "rng_state_dict",
    "load_rng_state",
]
