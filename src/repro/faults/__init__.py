"""Deterministic fault injection for robustness experiments.

The paper's claim is not just "the S&H FOCV front-end tracks well" but
that it keeps tracking — and cold-starts — across the whole
indoor→outdoor envelope.  Real deployments see light dropouts, flicker
bursts, drifting components and browning-out converters; this package
injects those adversities *deterministically* so robustness can be
measured and regression-tested instead of assumed.

Three layers:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`, a seedable set
  of time windows during which a fault is active.  Same seed, same
  windows, every run.
* :mod:`repro.faults.light` — :class:`~repro.env.profiles.LightProfile`
  wrappers (dropout, flicker bursts, step/ramp irradiance transients)
  that compose with any existing scenario without modifying it.
* :mod:`repro.faults.components` — wrappers for the electrical chain:
  sampling-capacitor leakage spikes and setpoint drift on a controller,
  converter brownout, storage open/short.  Time-dependent wrappers
  implement a ``tick(t, dt)`` hook the quasi-static engine calls at the
  top of every step.

:mod:`repro.experiments.resilience` assembles these into named fault
suites and reports degradation metrics against the clean run.
"""

from repro.faults.schedule import FaultSchedule, FaultWindow
from repro.faults.light import (
    FlickerBurstFault,
    IrradianceRampFault,
    IrradianceStepFault,
    LightDropoutFault,
)
from repro.faults.components import (
    ConverterBrownoutFault,
    HoldLeakageFault,
    SetpointDriftFault,
    StorageFault,
)

__all__ = [
    "FaultSchedule",
    "FaultWindow",
    "LightDropoutFault",
    "FlickerBurstFault",
    "IrradianceStepFault",
    "IrradianceRampFault",
    "SetpointDriftFault",
    "HoldLeakageFault",
    "ConverterBrownoutFault",
    "StorageFault",
]
