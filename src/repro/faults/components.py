"""Electrical-chain fault wrappers: controller, converter, storage.

Controller faults wrap the :class:`~repro.sim.quasistatic.HarvestingController`
protocol — they see the observation (which carries the step time), so no
extra plumbing is needed.  Converter and storage faults are *time-aware*
wrappers: the quasi-static engine calls their ``tick(t, dt)`` hook at
the top of every step, after which the wrapped object's ordinary
interface behaves per the fault state.  The wrapped component itself is
never modified.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FaultConfigError
from repro.faults.schedule import FaultSchedule
from repro.sim.quasistatic import ControlDecision, HarvestingController, Observation


class SetpointDriftFault:
    """Comparator offset / reference drift on any controller's setpoint.

    Models an input-offset step (window-gated) plus a slow linear drift
    of the comparison chain — the paper's R1/R2 divider and U3
    comparator are exactly the components a robustness analysis expects
    to drift.  The commanded operating voltage is shifted; the cell then
    operates off-MPP by that much.

    Args:
        base: the controller under fault.
        schedule: when the offset step is applied (empty schedule with a
            nonzero ``drift_per_hour`` gives pure drift).
        offset_volts: setpoint shift during windows, volts.
        drift_per_hour: always-on linear setpoint drift, volts/hour.
    """

    def __init__(
        self,
        base: HarvestingController,
        schedule: FaultSchedule,
        offset_volts: float = 0.0,
        drift_per_hour: float = 0.0,
    ):
        self.base = base
        self.schedule = schedule
        self.offset_volts = offset_volts
        self.drift_per_hour = drift_per_hour
        self.name = f"{base.name}+drift"

    def state_dict(self) -> dict:
        """Snapshot the wrapped controller (the wrapper is stateless)."""
        from repro.ckpt.state import child_state

        return {"base": child_state(self.base)}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import load_child_state

        load_child_state(self.base, state.get("base"), "SetpointDriftFault.base")

    def decide(self, obs: Observation) -> ControlDecision:
        decision = self.base.decide(obs)
        if decision.operating_voltage is None:
            return decision
        shift = self.drift_per_hour * (obs.time / 3600.0)
        if self.schedule.active(obs.time):
            shift += self.offset_volts
        if shift == 0.0:
            return decision
        shifted = max(0.0, decision.operating_voltage + shift)
        return ControlDecision(
            operating_voltage=shifted,
            harvest_duty=decision.harvest_duty,
            overhead_current=decision.overhead_current,
            note=decision.note or "setpoint drift",
        )


class HoldLeakageFault:
    """Sampling-capacitor leakage spikes on a :class:`SampleHoldMPPT`.

    During fault windows the hold capacitor droops ``droop_multiplier``
    times faster than nominal — the "low-leakage polyester capacitor"
    temporarily behaving like a cheap electrolytic (humidity, board
    contamination).  Implemented by injecting extra droop time into the
    platform's own sample-and-hold model after each step, so the
    sampling dynamics themselves stay untouched.

    Args:
        base: the S&H platform under fault (must expose
            ``config.sample_hold``).
        schedule: when the leakage spike is active.
        droop_multiplier: droop-rate multiplier during windows (> 1).
    """

    def __init__(self, base, schedule: FaultSchedule, droop_multiplier: float = 50.0):
        sample_hold = getattr(getattr(base, "config", None), "sample_hold", None)
        if sample_hold is None:
            raise FaultConfigError(
                "HoldLeakageFault wraps a SampleHoldMPPT-style controller "
                "exposing config.sample_hold"
            )
        if droop_multiplier <= 1.0:
            raise FaultConfigError(
                f"droop_multiplier must be > 1, got {droop_multiplier!r}"
            )
        self.base = base
        self.schedule = schedule
        self.droop_multiplier = droop_multiplier
        self.name = f"{base.name}+leaky-hold"

    def state_dict(self) -> dict:
        """Snapshot the wrapped controller (the wrapper is stateless)."""
        from repro.ckpt.state import child_state

        return {"base": child_state(self.base)}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import load_child_state

        load_child_state(self.base, state.get("base"), "HoldLeakageFault.base")

    def decide(self, obs: Observation) -> ControlDecision:
        decision = self.base.decide(obs)
        if self.schedule.active(obs.time):
            # The platform already drooped obs.dt at nominal rate; add
            # the excess as extra hold time on the same capacitor model.
            self.base.config.sample_hold.droop(obs.dt * (self.droop_multiplier - 1.0))
        return decision


class ConverterBrownoutFault:
    """Converter disabled (no power transfer) during fault windows.

    Models supply brownout of the converter IC: while the fault is
    active the converter transfers nothing, and harvested energy for
    those steps is lost.  Needs the engine's ``tick`` hook to know the
    time; outside windows it is transparent.

    Args:
        base: the converter under fault (quasi-static interface).
        schedule: when the brownout is active.
    """

    def __init__(self, base, schedule: FaultSchedule):
        self.base = base
        self.schedule = schedule
        self._browned_out = False

    def state_dict(self) -> dict:
        """Snapshot the brownout latch and the wrapped converter."""
        from repro.ckpt.state import capture_fields, child_state

        state = capture_fields(self, ("_browned_out",))
        state["base"] = child_state(self.base)
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import load_child_state, restore_fields

        restore_fields(self, state, ("_browned_out",))
        load_child_state(self.base, state.get("base"), "ConverterBrownoutFault.base")

    def tick(self, t: float, dt: float) -> None:
        """Engine hook: update the fault state for the step starting at ``t``."""
        self._browned_out = self.schedule.active(t)

    @property
    def browned_out(self) -> bool:
        """Whether the converter is currently browned out."""
        return self._browned_out

    @property
    def min_input_voltage(self) -> float:
        return self.base.min_input_voltage

    def output_power(self, p_in: float, v_in: float, v_out: float) -> float:
        if self._browned_out:
            return 0.0
        return self.base.output_power(p_in, v_in, v_out)

    def efficiency(self, p_in: float, v_in: float) -> float:
        if self._browned_out:
            return 0.0
        return self.base.efficiency(p_in, v_in)


class StorageFault:
    """Open- or short-circuit faults on an energy store.

    * ``mode="open"`` — the storage terminal disconnects during windows:
      no charge goes in, no load is served from it (exchange moves
      nothing), the voltage floats where it was.
    * ``mode="short"`` — a parasitic resistance appears across the
      terminals during windows, bleeding the store at ``v²/R`` watts.

    Args:
        base: the energy store under fault.
        schedule: when the fault is active.
        mode: ``"open"`` or ``"short"``.
        short_resistance: the parasitic path, ohms (``"short"`` mode).
    """

    def __init__(
        self,
        base,
        schedule: FaultSchedule,
        mode: str = "open",
        short_resistance: float = 100.0,
    ):
        if mode not in ("open", "short"):
            raise FaultConfigError(f"mode must be open/short, got {mode!r}")
        if short_resistance <= 0.0:
            raise FaultConfigError(
                f"short_resistance must be positive, got {short_resistance!r}"
            )
        self.base = base
        self.schedule = schedule
        self.mode = mode
        self.short_resistance = short_resistance
        self._active = False

    def state_dict(self) -> dict:
        """Snapshot the fault latch and the wrapped store."""
        from repro.ckpt.state import capture_fields, child_state

        state = capture_fields(self, ("_active",))
        state["base"] = child_state(self.base)
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.ckpt.state import load_child_state, restore_fields

        restore_fields(self, state, ("_active",))
        load_child_state(self.base, state.get("base"), "StorageFault.base")

    def tick(self, t: float, dt: float) -> None:
        """Engine hook: update fault state; bleed the store in short mode."""
        self._active = self.schedule.active(t)
        if self._active and self.mode == "short":
            v = self.base.voltage
            if v > 0.0:
                self.base.exchange(-(v * v / self.short_resistance), dt)

    @property
    def fault_active(self) -> bool:
        """Whether the fault is active this step."""
        return self._active

    @property
    def voltage(self) -> float:
        return self.base.voltage

    def exchange(self, power: float, dt: float) -> float:
        if self._active and self.mode == "open":
            return 0.0
        return self.base.exchange(power, dt)


__all__ = [
    "SetpointDriftFault",
    "HoldLeakageFault",
    "ConverterBrownoutFault",
    "StorageFault",
]
