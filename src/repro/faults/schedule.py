"""Deterministic, seedable fault-activation schedules.

A :class:`FaultSchedule` is an immutable, time-sorted set of
:class:`FaultWindow` intervals.  Every fault wrapper in
:mod:`repro.faults` consults one to decide whether it is active at a
given simulation time, so a fault campaign is a pure function of its
construction arguments: the same seed produces the same windows, the
same run, the same degradation report.

Schedules are built three ways:

* explicitly (:meth:`FaultSchedule.from_windows`) — hand-placed windows
  for targeted tests (e.g. "drop the light at noon for ten minutes");
* periodically (:meth:`FaultSchedule.periodic`) — evenly spaced windows
  for flicker/chop campaigns;
* stochastically (:meth:`FaultSchedule.bursts`) — a seeded
  Poisson-process burst train, the shape Politi et al. report for real
  indoor lighting (intermittent, clustered interruptions).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import FaultConfigError
from repro.obs.metrics import HOOKS as _OBS


@dataclass(frozen=True)
class FaultWindow:
    """One contiguous interval during which a fault is active.

    Attributes:
        start: window start, seconds (inclusive).
        end: window end, seconds (exclusive).
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (self.end > self.start):
            raise FaultConfigError(
                f"fault window must have end > start, got [{self.start!r}, {self.end!r})"
            )

    @property
    def duration(self) -> float:
        """Window length, seconds."""
        return self.end - self.start

    def contains(self, t: float) -> bool:
        """Whether time ``t`` falls inside the window."""
        return self.start <= t < self.end


class FaultSchedule:
    """An immutable, sorted, non-overlapping set of fault windows.

    Args:
        windows: the activation intervals; overlapping or touching
            windows are merged so :meth:`active` is well defined.
    """

    def __init__(self, windows: Iterable[FaultWindow] = ()):
        merged: List[FaultWindow] = []
        for w in sorted(windows, key=lambda w: w.start):
            if merged and w.start <= merged[-1].end:
                last = merged[-1]
                merged[-1] = FaultWindow(last.start, max(last.end, w.end))
            else:
                merged.append(w)
        self.windows: Tuple[FaultWindow, ...] = tuple(merged)
        self._starts = [w.start for w in self.windows]

    # --- constructors ---------------------------------------------------------

    @classmethod
    def from_windows(cls, spans: Sequence[Tuple[float, float]]) -> "FaultSchedule":
        """Build from explicit ``(start, end)`` pairs."""
        return cls(FaultWindow(s, e) for s, e in spans)

    @classmethod
    def periodic(
        cls, first: float, period: float, width: float, count: int
    ) -> "FaultSchedule":
        """``count`` windows of ``width`` seconds, every ``period`` seconds.

        Args:
            first: start of the first window, seconds.
            period: spacing between window starts, seconds.
            width: each window's duration, seconds.
            count: number of windows.
        """
        if period <= 0.0 or width <= 0.0:
            raise FaultConfigError("period and width must be positive")
        if width >= period:
            raise FaultConfigError(
                f"width {width!r} must be below period {period!r} (else the fault is permanent)"
            )
        if count < 1:
            raise FaultConfigError(f"count must be >= 1, got {count!r}")
        return cls(
            FaultWindow(first + k * period, first + k * period + width) for k in range(count)
        )

    @classmethod
    def bursts(
        cls,
        duration: float,
        rate_per_hour: float,
        mean_width: float,
        seed: int = 0,
        earliest: float = 0.0,
    ) -> "FaultSchedule":
        """A seeded Poisson burst train over ``[earliest, duration)``.

        Burst arrivals are exponential with the given hourly rate; burst
        lengths are exponential with ``mean_width``.  Fully determined
        by the arguments — the same seed reproduces the same train.

        Args:
            duration: horizon over which bursts may occur, seconds.
            rate_per_hour: mean burst arrivals per hour.
            mean_width: mean burst duration, seconds.
            seed: RNG seed.
            earliest: no burst begins before this time, seconds.
        """
        if duration <= 0.0:
            raise FaultConfigError(f"duration must be positive, got {duration!r}")
        if rate_per_hour <= 0.0 or mean_width <= 0.0:
            raise FaultConfigError("rate_per_hour and mean_width must be positive")
        rng = np.random.default_rng(seed)
        windows: List[FaultWindow] = []
        t = earliest
        mean_gap = 3600.0 / rate_per_hour
        while True:
            t += float(rng.exponential(mean_gap))
            if t >= duration:
                break
            width = max(1.0, float(rng.exponential(mean_width)))
            windows.append(FaultWindow(t, min(duration, t + width)))
            t += width
        return cls(windows)

    # --- checkpoint protocol --------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the window set (checkpoint protocol).

        A schedule is immutable, but long-run checkpoints still embed
        it so a resumed fault campaign provably replays the same
        windows the interrupted run was using.
        """
        return {"windows": [[w.start, w.end] for w in self.windows]}

    @classmethod
    def from_state(cls, state: dict) -> "FaultSchedule":
        """Rebuild a schedule captured by :meth:`state_dict`."""
        if "windows" not in state:
            from repro.errors import StateFormatError

            raise StateFormatError("FaultSchedule state missing 'windows'")
        return cls.from_windows([(s, e) for s, e in state["windows"]])

    # --- queries --------------------------------------------------------------

    def active(self, t: float) -> bool:
        """Whether any fault window covers time ``t``."""
        index = bisect.bisect_right(self._starts, t) - 1
        is_active = index >= 0 and self.windows[index].contains(t)
        if is_active:
            h = _OBS.fault_activations
            if h is not None:
                h.inc()
        return is_active

    def window_at(self, t: float) -> FaultWindow | None:
        """The window covering ``t``, or None."""
        index = bisect.bisect_right(self._starts, t) - 1
        if index >= 0 and self.windows[index].contains(t):
            return self.windows[index]
        return None

    @property
    def total_active_time(self) -> float:
        """Summed window durations, seconds."""
        return sum(w.duration for w in self.windows)

    def __len__(self) -> int:
        return len(self.windows)

    def __bool__(self) -> bool:
        return bool(self.windows)

    def __repr__(self) -> str:
        return (
            f"FaultSchedule({len(self.windows)} windows, "
            f"{self.total_active_time:.0f} s active)"
        )


EMPTY_SCHEDULE = FaultSchedule()
"""The no-fault schedule (never active) — the clean-run sentinel."""

__all__ = ["FaultWindow", "FaultSchedule", "EMPTY_SCHEDULE"]
