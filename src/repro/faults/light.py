"""Light-path fault wrappers.

Each class here is a :class:`~repro.env.profiles.LightProfile` that
wraps another profile and perturbs it during its schedule's windows, so
any existing scenario — the Fig. 2 desk day, the semi-mobile excursion,
a constant bench level — can be subjected to dropouts, flicker or
irradiance transients without touching the scenario code.  All wrappers
are pure functions of time, so they compose with the precompute fast
path exactly like the profiles they wrap.
"""

from __future__ import annotations

import math

from repro.env.profiles import LightProfile
from repro.errors import FaultConfigError
from repro.faults.schedule import FaultSchedule


class LightDropoutFault(LightProfile):
    """Light loss during fault windows (lamp failure, occlusion, tunnel).

    Args:
        base: the profile under fault.
        schedule: when the dropout is active.
        residual: fraction of the base level that survives the dropout
            (0 = total darkness, 0.05 = deep shadow).
    """

    def __init__(self, base: LightProfile, schedule: FaultSchedule, residual: float = 0.0):
        if not 0.0 <= residual < 1.0:
            raise FaultConfigError(f"residual must be in [0, 1), got {residual!r}")
        self.base = base
        self.schedule = schedule
        self.residual = residual

    def lux(self, t: float) -> float:
        level = self.base(t)
        if self.schedule.active(t):
            return level * self.residual
        return level


class FlickerBurstFault(LightProfile):
    """Square-wave chop of the light during fault windows.

    Models the bursty flicker of a failing ballast or intermittent
    contact: inside a window the light alternates between the base level
    and ``depth`` times it at ``chop_period``.  Deterministic — the chop
    phase is referenced to each window's start.

    Args:
        base: the profile under fault.
        schedule: when the flicker bursts occur.
        chop_period: full on/off cycle length, seconds.
        depth: multiplier applied during the dark half-cycle.
        duty: fraction of each chop period spent bright.
    """

    def __init__(
        self,
        base: LightProfile,
        schedule: FaultSchedule,
        chop_period: float = 2.0,
        depth: float = 0.0,
        duty: float = 0.5,
    ):
        if chop_period <= 0.0:
            raise FaultConfigError(f"chop_period must be positive, got {chop_period!r}")
        if not 0.0 <= depth < 1.0:
            raise FaultConfigError(f"depth must be in [0, 1), got {depth!r}")
        if not 0.0 < duty < 1.0:
            raise FaultConfigError(f"duty must be in (0, 1), got {duty!r}")
        self.base = base
        self.schedule = schedule
        self.chop_period = chop_period
        self.depth = depth
        self.duty = duty

    def lux(self, t: float) -> float:
        level = self.base(t)
        window = self.schedule.window_at(t)
        if window is None:
            return level
        phase = math.fmod(t - window.start, self.chop_period) / self.chop_period
        if phase < self.duty:
            return level
        return level * self.depth


class IrradianceStepFault(LightProfile):
    """A persistent step change in irradiance from ``at`` onwards.

    Models a sudden, lasting environment change — a blind pulled, the
    cell knocked into shadow, a lamp swapped for a brighter one.

    Args:
        base: the profile under fault.
        at: step time, seconds.
        factor: multiplier applied from ``at`` onwards.
    """

    def __init__(self, base: LightProfile, at: float, factor: float):
        if factor < 0.0:
            raise FaultConfigError(f"factor must be >= 0, got {factor!r}")
        self.base = base
        self.at = at
        self.factor = factor

    def lux(self, t: float) -> float:
        level = self.base(t)
        if t >= self.at:
            return level * self.factor
        return level


class IrradianceRampFault(LightProfile):
    """A slow multiplicative ramp between two times (dust, fog bank).

    The multiplier moves linearly from 1 at ``start`` to ``factor`` at
    ``end`` and holds afterwards — the gradual transient that defeats a
    tracker with a too-long sampling period.

    Args:
        base: the profile under fault.
        start: ramp start, seconds.
        end: ramp end, seconds.
        factor: final multiplier.
    """

    def __init__(self, base: LightProfile, start: float, end: float, factor: float):
        if end <= start:
            raise FaultConfigError(f"ramp needs end > start, got [{start!r}, {end!r}]")
        if factor < 0.0:
            raise FaultConfigError(f"factor must be >= 0, got {factor!r}")
        self.base = base
        self.start = start
        self.end = end
        self.factor = factor

    def lux(self, t: float) -> float:
        level = self.base(t)
        if t <= self.start:
            return level
        if t >= self.end:
            return level * self.factor
        blend = (t - self.start) / (self.end - self.start)
        return level * (1.0 + blend * (self.factor - 1.0))


__all__ = [
    "LightDropoutFault",
    "FlickerBurstFault",
    "IrradianceStepFault",
    "IrradianceRampFault",
]
