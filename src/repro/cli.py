"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro table1               # Table I
    python -m repro fig4 [--lux 1000]    # the sampling transient
    python -m repro budget               # the 7.6 uA itemised budget
    python -m repro design               # synthesise a platform for the AM-1815
    python -m repro montecarlo           # E11 tolerance run
    python -m repro spectra              # E13 environment diversity
    python -m repro coldstart [--lux 200]
    python -m repro sec2b
    python -m repro comparison [--hours 24]   # E8 (slow)
    python -m repro resilience [--seed 0]     # E16 fault-injection (slow)
    python -m repro strings [--engine fleet]  # E18 shaded-string fleets (slow)
    python -m repro endurance                 # E12 (slow)
    python -m repro endurance --checkpoint ck.json          # crash-safe run
    python -m repro endurance --resume ck.json              # pick it back up
    python -m repro profile comparison [--hours 1] [--out DIR]
                                              # E17: any artefact, instrumented
    python -m repro endurance --progress --journal run.jsonl
                                              # live ETA + event journal
    python -m repro bench report [--threshold 0.5] [--fail-on-regression]
                                              # bench-ledger trend analysis
    python -m repro serve [--port 8765] [--workers 2]
                                              # fault-tolerant job service

Exit codes (see README "Exit codes"): 0 success (including a graceful
SIGTERM drain), 1 unexpected error, 2 usage error, 3 bench regression,
4 invalid configuration, 5 numerical guard trip, 6 checkpoint/lock
failure.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Callable, Dict

# --- exit codes (stable CLI contract; mirrored in README) -------------------
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2  # argparse's own code, listed for completeness
EXIT_BENCH_REGRESSION = 3
EXIT_CONFIG = 4
EXIT_GUARD = 5
EXIT_CHECKPOINT = 6


def classify_exit_code(exc: BaseException) -> int:
    """Map a typed repro error to the documented exit code.

    Order matters: :class:`RunDrainedError` *is a* CheckpointError but
    a graceful drain is a success, and :class:`ConfigError` is a
    ModelParameterError so the config bucket catches both.
    """
    from repro import errors

    if isinstance(exc, errors.RunDrainedError):
        return EXIT_OK
    if isinstance(exc, errors.NumericalGuardError):
        return EXIT_GUARD
    if isinstance(exc, (errors.ModelParameterError, errors.ConfigurationError,
                        errors.FaultConfigError)):
        return EXIT_CONFIG
    if isinstance(exc, (errors.CheckpointError, errors.LockTimeoutError)):
        return EXIT_CHECKPOINT
    return EXIT_ERROR


def _cmd_table1(args) -> str:
    from repro.experiments import table1

    return table1.render(table1.run_table1())


def _cmd_fig1(args) -> str:
    from repro.experiments import fig1

    return fig1.render(fig1.run_iv_curves())


def _cmd_fig2(args) -> str:
    from repro.experiments import fig2

    desk = fig2.run_log("desk", dt=10.0)
    mobile = fig2.run_log("semi-mobile", dt=10.0)
    return fig2.render(desk) + "\n\n" + fig2.render(mobile)


def _cmd_fig4(args) -> str:
    from repro.experiments import fig4

    return fig4.render(fig4.run_sampling_transient(lux=args.lux))


def _cmd_sec2b(args) -> str:
    from repro.experiments import sec2b

    desk, mobile = sec2b.run_paper_points(dt=10.0)
    return sec2b.render([desk, mobile])


def _cmd_budget(args) -> str:
    from repro.experiments import sec4a

    return sec4a.render(sec4a.run_power_measurement())


def _cmd_coldstart(args) -> str:
    from repro.experiments import sec4b

    result = sec4b.run_cold_start(args.lux, dt=5e-4, timeout=90.0)
    return sec4b.render([result])


def _cmd_design(args) -> str:
    from repro.core.design import synthesise_platform
    from repro.pv.cells import am_1815

    return synthesise_platform(am_1815()).render()


def _cmd_montecarlo(args) -> str:
    from repro.analysis.montecarlo import render_montecarlo, run_sample_hold_montecarlo

    return render_montecarlo(
        run_sample_hold_montecarlo(
            boards=args.boards,
            checkpoint_path=args.checkpoint,
            resume_from=args.resume,
            engine=args.engine,
        )
    )


def _cmd_spectra(args) -> str:
    from repro.experiments import spectra

    return spectra.render(spectra.run_spectra())


def _cmd_comparison(args) -> str:
    from repro.experiments import comparison

    cell = None
    shading = getattr(args, "shading", None)
    if shading is not None:
        # Shadow maps need per-cell granularity; shade a default string.
        from repro.experiments.strings import DEFAULT_MISMATCH_4S
        from repro.pv.cells import am_1815
        from repro.pv.string import CellString

        cell = CellString(am_1815(), 4, mismatch=DEFAULT_MISMATCH_4S)
    results = comparison.run_comparison(
        cell=cell,
        duration=args.hours * 3600.0,
        dt=10.0,
        engine=args.engine,
        shading=shading,
    )
    return comparison.render_quiescent() + "\n\n" + comparison.render(results)


def _cmd_resilience(args) -> str:
    from repro.experiments import resilience

    report = resilience.run_resilience(
        duration=args.hours * 3600.0,
        dt=args.dt,
        seed=args.seed,
        checkpoint_path=args.checkpoint,
        resume_from=args.resume,
        engine=args.engine,
    )
    return resilience.render(report)


def _cmd_strings(args) -> str:
    from repro.experiments import strings

    report = strings.run_strings(
        duration=args.hours * 3600.0,
        dt=args.dt,
        engine=args.engine,
        seed=args.seed,
    )
    return strings.render(report)


def _cmd_endurance(args) -> str:
    from repro.experiments import endurance

    checkpoint_every = args.checkpoint_every
    if args.checkpoint is not None and checkpoint_every is None:
        checkpoint_every = 3600.0  # one simulated hour between writes
    return endurance.render(
        endurance.run_week(
            dt=args.dt,
            seed=args.seed,
            days=args.days,
            checkpoint_path=args.checkpoint,
            checkpoint_every=checkpoint_every,
            resume_from=args.resume,
        )
    )


def _cmd_aging(args) -> str:
    from repro.experiments import aging

    indoor = aging.run_aging(lux=500.0)
    bright = aging.run_aging(lux=5000.0, rs_growth_per_year=0.08)
    return aging.render(indoor, lux=500.0) + "\n\n" + aging.render(bright, lux=5000.0)


def _cmd_envelope(args) -> str:
    from repro.experiments import envelope

    return envelope.render(envelope.run_envelope())


def _cmd_teg(args) -> str:
    from repro.experiments import teg

    return teg.render(teg.run_teg_sweep())


def _profile_target_argv(args) -> list:
    """The argv handed to the target subcommand, forwarding shared flags."""
    argv = [args.experiment]
    if args.hours is not None and args.experiment in ("comparison", "resilience", "strings"):
        argv += ["--hours", str(args.hours)]
    if args.lux is not None and args.experiment in ("fig4", "coldstart"):
        argv += ["--lux", str(args.lux)]
    if args.boards is not None and args.experiment == "montecarlo":
        argv += ["--boards", str(args.boards)]
    return argv


def _cmd_profile(args) -> str:
    """E17 — run any artefact with observability on and export the profile.

    Enables :mod:`repro.obs`, regenerates the requested artefact, then
    writes three exports next to the benchmark results: a JSON
    run-report, Prometheus text exposition, and a flamegraph-compatible
    collapsed-stack dump.
    """
    import pathlib

    from repro import obs
    from repro.obs import export

    target_args = build_parser().parse_args(_profile_target_argv(args))
    obs.reset()
    was_enabled = obs.is_enabled()
    obs.enable()
    try:
        with obs.TRACER.trace(f"profile:{args.experiment}"):
            text = COMMANDS[args.experiment](target_args)
    finally:
        if not was_enabled:
            obs.disable()

    out_dir = pathlib.Path(args.out)
    paths = export.write_profile(
        out_dir, f"profile_{args.experiment}", note=f"python -m repro profile {args.experiment}"
    )
    saved = "\n".join(f"[saved {kind}: {path}]" for kind, path in sorted(paths.items()))
    return f"{text}\n\n{export.render_summary()}\n{saved}"


def _cmd_bench(args) -> str:
    """Analyze the bench ledger: same-host throughput trends + regressions.

    ``--fail-on-regression`` makes the process exit non-zero when any
    experiment's newest same-host entry fell below ``threshold`` x the
    median of its history — the CI tripwire.
    """
    import json as json_mod

    from repro.obs import benchreport

    kwargs = {}
    if args.threshold is not None:
        kwargs["threshold"] = args.threshold
    report = benchreport.analyze_ledger(path=args.path, **kwargs)

    saved = []
    if args.out is not None:
        paths = benchreport.write_report(report, args.out)
        saved = [f"[saved {kind}: {path}]" for kind, path in sorted(paths.items())]
    if args.fail_on_regression and report.regressions:
        args.exit_code = 3

    if args.format == "json":
        text = json_mod.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = benchreport.render_markdown(report)
    return "\n".join([text, *saved]) if saved else text


def _cmd_serve(args) -> str:
    """Run the fault-tolerant simulation job service until drained.

    Blocks in ``serve_forever``; SIGTERM/SIGINT trigger the graceful
    drain (stop admissions, checkpoint running jobs, persist the store)
    after which this returns and the process exits 0.
    """
    from repro.service.server import JobServer

    server = JobServer(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_attempts=args.max_attempts,
        job_timeout=args.job_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        result_ttl=args.result_ttl,
        checkpoint_every=args.checkpoint_every,
    )
    server.install_signal_handlers()
    server.start()
    print(
        f"[repro-service] listening on {server.url} "
        f"(store: {args.data_dir}, workers: {args.workers}, "
        f"queue depth: {args.queue_depth})",
        flush=True,
    )
    if server.readmitted:
        ids = ", ".join(r.job_id for r in server.readmitted)
        print(f"[repro-service] recovered {len(server.readmitted)} "
              f"interrupted job(s): {ids}", flush=True)
    try:
        server.serve_forever()
    finally:
        server.drain(timeout=args.drain_timeout)
    return "[repro-service] drained cleanly; job store is consistent"


@contextlib.contextmanager
def _telemetry(args):
    """Arm the journal/ticker for one CLI invocation when asked.

    ``--journal PATH`` installs a process-wide event journal;
    ``--progress`` attaches a stderr ticker to it (creating an
    in-process-only journal when no path was given).  A journal already
    enabled through ``REPRO_JOURNAL`` is reused — and kept alive — so
    spawn-mode workers and smoke subprocesses behave identically.
    """
    journal_path = getattr(args, "journal", None)
    progress = bool(getattr(args, "progress", False))
    if journal_path is None and not progress:
        yield
        return

    from repro.obs import journal as journal_mod
    from repro.obs.progress import ProgressTicker

    j = journal_mod.JOURNAL
    created = False
    if j is None or (journal_path is not None and str(j.path) != str(journal_path)):
        j = journal_mod.enable_journal(journal_path)
        created = True
    ticker = None
    unsubscribe = None
    if progress:
        ticker = ProgressTicker()
        unsubscribe = j.subscribe(ticker.on_event)
    try:
        yield
    finally:
        if ticker is not None:
            ticker.close()
            unsubscribe()
        if created:
            journal_mod.disable_journal()


COMMANDS: Dict[str, Callable] = {
    "table1": _cmd_table1,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "sec2b": _cmd_sec2b,
    "budget": _cmd_budget,
    "coldstart": _cmd_coldstart,
    "design": _cmd_design,
    "montecarlo": _cmd_montecarlo,
    "spectra": _cmd_spectra,
    "comparison": _cmd_comparison,
    "resilience": _cmd_resilience,
    "strings": _cmd_strings,
    "endurance": _cmd_endurance,
    "teg": _cmd_teg,
    "aging": _cmd_aging,
    "envelope": _cmd_envelope,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts from Weddell et al., DATE 2011.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available artefacts")
    for name in COMMANDS:
        p = sub.add_parser(name, help=f"regenerate '{name}'")
        p.add_argument("--progress", action="store_true",
                       help="live progress/ETA line on stderr (journal-driven)")
        p.add_argument("--journal", default=None, metavar="PATH",
                       help="append structured run events to a JSONL journal")
        if name in ("fig4", "coldstart"):
            p.add_argument("--lux", type=float, default=1000.0 if name == "fig4" else 200.0)
        if name == "comparison":
            p.add_argument("--hours", type=float, default=24.0)
            p.add_argument("--engine", choices=("scalar", "fleet", "compiled", "auto"),
                           default="scalar",
                           help="engine tier: scalar reference (default), vectorized "
                           "fleet, fused+LUT compiled, or auto (fastest)")
            p.add_argument("--shading", default=None, metavar="SPEC",
                           help="shadow-map spec for string cells, e.g. "
                           "'edge-sweep' or 'blob:seed=3' or "
                           "'edge-sweep:depth=0.5,period=3600'")
        if name == "strings":
            p.add_argument("--hours", type=float, default=24.0)
            p.add_argument("--dt", type=float, default=60.0)
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--engine", choices=("scalar", "fleet", "compiled", "auto"),
                           default="scalar",
                           help="engine tier for every E18 harvest run")
        if name == "resilience":
            p.add_argument("--hours", type=float, default=24.0)
            p.add_argument("--dt", type=float, default=60.0)
            p.add_argument("--seed", type=int, default=0)
        if name == "montecarlo":
            p.add_argument("--boards", type=int, default=500)
        if name == "endurance":
            p.add_argument("--days", type=int, default=7)
            p.add_argument("--dt", type=float, default=20.0)
            p.add_argument("--seed", type=int, default=4)
            p.add_argument("--checkpoint-every", type=float, default=None,
                           help="simulated seconds between checkpoint writes")
        if name in ("resilience", "montecarlo"):
            p.add_argument("--engine", choices=("fleet", "scalar", "compiled", "auto"),
                           default="fleet",
                           help="vectorized fleet engine (default), scalar walk, "
                           "fused+LUT compiled tier, or auto (fastest)")
        if name in ("endurance", "resilience", "montecarlo"):
            p.add_argument("--checkpoint", default=None, metavar="PATH",
                           help="write crash-safe progress checkpoints to PATH")
            p.add_argument("--resume", default=None, metavar="PATH",
                           help="resume from a checkpoint written by --checkpoint")
    profile = sub.add_parser(
        "profile",
        help="regenerate any artefact with observability enabled and export "
        "JSON / Prometheus / flamegraph profiles",
    )
    profile.add_argument("experiment", choices=sorted(COMMANDS))
    profile.add_argument("--out", default="benchmarks/results",
                         help="directory for the exported profile files")
    profile.add_argument("--hours", type=float, default=None,
                         help="forwarded to comparison/resilience")
    profile.add_argument("--lux", type=float, default=None,
                         help="forwarded to fig4/coldstart")
    profile.add_argument("--boards", type=int, default=None,
                         help="forwarded to montecarlo")
    profile.set_defaults(_run=_cmd_profile)
    bench = sub.add_parser(
        "bench",
        help="analyze the BENCH_perf.json ledger: same-host throughput "
        "trends and regression flags",
    )
    bench.add_argument("action", choices=("report",))
    bench.add_argument("--path", default=None, metavar="LEDGER",
                       help="ledger file (default: the checkout's "
                       "BENCH_perf.json, or $REPRO_BENCH_PATH)")
    bench.add_argument("--threshold", type=float, default=None,
                       help="flag when latest < THRESHOLD x same-host "
                       "median (default 0.5)")
    bench.add_argument("--format", choices=("markdown", "json"),
                       default="markdown")
    bench.add_argument("--out", default=None, metavar="DIR",
                       help="also write markdown + JSON reports to DIR")
    bench.add_argument("--fail-on-regression", action="store_true",
                       help="exit non-zero when any regression is flagged")
    bench.set_defaults(_run=_cmd_bench)
    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant simulation job service over HTTP "
        "(crash-safe queue, retries, backpressure, graceful drain)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 binds an ephemeral port)")
    serve.add_argument("--data-dir", default="service-jobs", metavar="DIR",
                       help="crash-safe job store directory (survives restarts)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads executing jobs")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="bounded queue length; beyond it POST returns 429")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="attempts before a failing job is quarantined")
    serve.add_argument("--job-timeout", type=float, default=None, metavar="S",
                       help="wall-clock budget per attempt (default: none)")
    serve.add_argument("--heartbeat-timeout", type=float, default=None,
                       metavar="S",
                       help="abandon attempts silent for S seconds "
                       "(journal events are the heartbeat)")
    serve.add_argument("--result-ttl", type=float, default=300.0, metavar="S",
                       help="seconds completed results answer duplicate specs")
    serve.add_argument("--checkpoint-every", type=float, default=3600.0,
                       metavar="SIM_S",
                       help="simulated seconds between job checkpoints")
    serve.add_argument("--drain-timeout", type=float, default=30.0, metavar="S",
                       help="seconds to wait for running jobs on SIGTERM")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="append job/run events to a JSONL journal")
    serve.add_argument("--progress", action="store_true",
                       help="live progress line on stderr (journal-driven)")
    serve.set_defaults(_run=_cmd_serve)
    return parser


def _report_failure(args, exc: BaseException) -> int:
    """Typed-error epilogue: journal a ``run-error``, print, pick the code.

    Runs inside the ``_telemetry`` scope so the event reaches the
    journal the run was using.  A :class:`RunDrainedError` is the one
    "failure" that exits 0: the run already saved its final checkpoint,
    so the user just gets the resume hint.
    """
    from repro import errors
    from repro.obs import journal as journal_mod

    code = classify_exit_code(exc)
    journal_mod.emit(
        journal_mod.RUN_ERROR,
        source="cli",
        command=args.command,
        error=type(exc).__name__,
        message=str(exc),
        field=getattr(exc, "field", None) or None,
        exit_code=code,
    )
    if isinstance(exc, errors.RunDrainedError):
        print(f"[repro] drained: {exc}", file=sys.stderr)
        if exc.checkpoint_path:
            print(f"[repro] resume with: python -m repro {args.command} "
                  f"--resume {exc.checkpoint_path}", file=sys.stderr)
        return EXIT_OK
    field = getattr(exc, "field", "")
    where = f" (field: {field})" if field else ""
    print(f"[repro] {type(exc).__name__}{where}: {exc}", file=sys.stderr)
    return code


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code (see module docstring)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command is None or args.command == "list":
            print("available artefacts:")
            for name in sorted(COMMANDS):
                print(f"  {name}")
            return EXIT_OK
        handler = getattr(args, "_run", None) or COMMANDS[args.command]
        # A checkpointing run turns SIGTERM into a cooperative drain:
        # one final checkpoint, then RunDrainedError -> exit 0 below.
        # (The service installs its own SIGTERM handling.)
        if getattr(args, "checkpoint", None) is not None:
            from repro.ckpt.drain import sigterm_drain

            drain_ctx = sigterm_drain()
        else:
            drain_ctx = contextlib.nullcontext()
        with _telemetry(args), drain_ctx:
            try:
                text = handler(args)
            except Exception as exc:
                from repro.errors import ReproError

                if not isinstance(exc, ReproError):
                    raise  # unexpected: full traceback, exit 1
                return _report_failure(args, exc)
        print(text)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
    return int(getattr(args, "exit_code", EXIT_OK))


if __name__ == "__main__":
    sys.exit(main())
