"""Typed parameter validation for configs and engine constructors.

The existing sign checks (``value <= 0``) silently pass ``nan`` —
``nan <= 0`` is False — so a NaN smuggled into a physical parameter
surfaces hours later as a :class:`~repro.errors.NumericalGuardError`
deep inside a run, or worse, as a silently-wrong summary.  These
helpers reject non-finite and out-of-range values at construction with
a :class:`~repro.errors.ConfigError` that names the offending field, so
a bad sweep spec fails in milliseconds, not hours.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = [
    "require_finite",
    "require_positive",
    "require_non_negative",
    "require_in_range",
]


def require_finite(value: float, field: str) -> float:
    """Validate that ``value`` is a finite real number.

    Args:
        value: the parameter value.
        field: the parameter name, carried on the raised error.

    Returns:
        ``value``, unchanged, so the call can be used inline.

    Raises:
        ConfigError: if the value is NaN, infinite, or not a number.
    """
    try:
        ok = math.isfinite(value)
    except TypeError:
        ok = False
    if not ok:
        raise ConfigError(f"{field} must be a finite number, got {value!r}", field=field)
    return value


def require_positive(value: float, field: str) -> float:
    """Validate that ``value`` is finite and strictly positive."""
    require_finite(value, field)
    if value <= 0.0:
        raise ConfigError(f"{field} must be positive, got {value!r}", field=field)
    return value


def require_non_negative(value: float, field: str) -> float:
    """Validate that ``value`` is finite and >= 0."""
    require_finite(value, field)
    if value < 0.0:
        raise ConfigError(f"{field} must be >= 0, got {value!r}", field=field)
    return value


def require_in_range(
    value: float,
    field: str,
    low: float,
    high: float,
    low_open: bool = False,
    high_open: bool = False,
) -> float:
    """Validate that ``value`` is finite and inside ``[low, high]``.

    Args:
        value: the parameter value.
        field: the parameter name, carried on the raised error.
        low: lower bound.
        high: upper bound.
        low_open: exclude the lower bound.
        high_open: exclude the upper bound.
    """
    require_finite(value, field)
    below = value <= low if low_open else value < low
    above = value >= high if high_open else value > high
    if below or above:
        lo = "(" if low_open else "["
        hi = ")" if high_open else "]"
        raise ConfigError(
            f"{field} must be in {lo}{low!r}, {high!r}{hi}, got {value!r}", field=field
        )
    return value
