"""Engine-tier registry: ``scalar`` | ``fleet`` | ``compiled`` selection.

Three tiers advance the same physics at different throughput:

* ``scalar`` — one :class:`~repro.sim.quasistatic.QuasiStaticSimulator`
  per chain.  The bitwise reference; the golden traces encode its bits.
* ``fleet`` — :class:`~repro.sim.fleet.FleetSimulator`, the population
  as a NumPy axis.  Matches scalar to a-few-ulp tolerance.
* ``compiled`` — :mod:`repro.sim.compiled`: fused per-step kernels
  (Numba-jitted when numba is importable, pure-Python otherwise) over
  a validated power LUT (:mod:`repro.pv.lut`).  Matches fleet/scalar
  within the table's declared error budget.

``engine="auto"`` resolves to the fastest tier an experiment supports.
The compiled tier is *always* available — the import-time numba probe
only decides whether its kernels are jitted or interpreted — so auto
never depends on the environment and results never silently change
with it.

Every experiment entry point funnels its ``engine=`` argument through
:func:`resolve_engine`, so unknown names fail identically everywhere.
"""

from __future__ import annotations

from typing import Sequence, Type

from repro.errors import ModelParameterError

KNOWN_ENGINES = ("scalar", "fleet", "compiled")
"""All engine tiers, slowest to fastest."""

AUTO = "auto"
"""Sentinel: pick the fastest allowed tier."""

_SPEED_ORDER = ("compiled", "fleet", "scalar")


def available_engines() -> tuple:
    """Engine names accepted by the experiment entry points."""
    return KNOWN_ENGINES


def have_numba() -> bool:
    """Whether the compiled tier's kernels are jitted (vs interpreted)."""
    from repro.sim.compiled import HAVE_NUMBA

    return HAVE_NUMBA


def resolve_engine(
    engine: str,
    allowed: Sequence[str] = KNOWN_ENGINES,
    context: str = "experiment",
) -> str:
    """Validate an ``engine=`` argument and resolve ``"auto"``.

    Args:
        engine: requested tier name, or ``"auto"``.
        allowed: the tiers this experiment implements.
        context: label used in the rejection message.

    Returns:
        A concrete tier name from ``allowed``.

    Raises:
        ModelParameterError: unknown name, or a known tier the
            experiment does not implement.
    """
    if not isinstance(engine, str):
        raise ModelParameterError(
            f"engine must be a string, got {type(engine).__name__}"
        )
    if engine == AUTO:
        for candidate in _SPEED_ORDER:
            if candidate in allowed:
                return candidate
        raise ModelParameterError(f"no engine tiers enabled for {context}")
    if engine not in allowed:
        raise ModelParameterError(
            f"unknown engine {engine!r} for {context}; expected one of "
            f"{', '.join(repr(e) for e in allowed)} or 'auto'"
        )
    return engine


def fleet_class(engine: str) -> Type:
    """The fleet-shaped simulator class backing a tier.

    ``"fleet"`` maps to :class:`~repro.sim.fleet.FleetSimulator`;
    ``"compiled"`` to its LUT-accelerated subclass
    :class:`~repro.sim.compiled.CompiledFleetSimulator` (same
    constructor, same checkpoint protocol).
    """
    if engine == "compiled":
        from repro.sim.compiled import CompiledFleetSimulator

        return CompiledFleetSimulator
    if engine == "fleet":
        from repro.sim.fleet import FleetSimulator

        return FleetSimulator
    raise ModelParameterError(f"engine {engine!r} has no fleet-shaped simulator")
