"""Whole-run condition precomputation for the quasi-static engine.

A :class:`~repro.sim.quasistatic.QuasiStaticSimulator` spends most of a
24-hour run re-deriving things that do not depend on the controller:
the environment's lux at each step, the thermal state that follows it,
the single-diode model for each condition, and that model's Voc/MPP.
All of it is a pure function of ``(cell, environment, thermal, dt)`` —
so the nine-controller comparison recomputes the identical trace nine
times.

:func:`precompute_conditions` walks the run once, builds the per-step
model list (deduplicated on exact ``(lux, temperature)`` — plus the
shadow-map factors tuple when a :mod:`repro.env.shading` map drives a
string), and solves every unique condition's Voc/Isc/MPP in one
vectorized pass (:func:`repro.pv.batch.solve_models` for cells,
:func:`repro.pv.string.solve_string_models` for strings).  The
resulting :class:`PrecomputedConditions` plugs into the simulator's
``precomputed=`` argument; controllers then see exactly the models they
would have seen live, with the solves already memoised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

import time

from repro.errors import ModelParameterError
from repro.obs.tracing import TRACER
from repro.pv.batch import solve_models
from repro.pv.cells import PVCell
from repro.pv.irradiance import FLUORESCENT, LightSource
from repro.pv.single_diode import SingleDiodeModel
from repro.units import T_STC


@dataclass
class PrecomputedConditions:
    """Per-step operating conditions for one (environment, cell) run.

    Attributes:
        dt: the step the trace was sampled at, seconds.
        times: step start times, seconds (length = step count).
        lux: illuminance per step (already clamped at zero).
        temperature: cell temperature per step, kelvin.
        models: per-step single-diode models; repeated conditions share
            one instance, whose characteristic points are pre-solved.
        source: the light-source spectrum the models were built for.
        unique_conditions: number of distinct ``(lux, temperature)``
            pairs the run visits (the batch-solve workload).
    """

    dt: float
    times: np.ndarray
    lux: np.ndarray
    temperature: np.ndarray
    models: List[SingleDiodeModel]
    source: LightSource = FLUORESCENT
    unique_conditions: int = 0

    def __len__(self) -> int:
        return len(self.models)


def precompute_conditions(
    cell: PVCell,
    environment: Callable[[float], float],
    duration: float,
    dt: float,
    source: LightSource = FLUORESCENT,
    thermal=None,
    temperature: float = T_STC,
    start_time: float = 0.0,
    solve: bool = True,
    shading=None,
) -> PrecomputedConditions:
    """Sample a run's conditions once and batch-solve the unique ones.

    The walk replicates the live simulator exactly: the environment is
    evaluated at the same accumulated times, and a supplied thermal
    model is stepped through the same sequence (it is *consumed* — pass
    a fresh instance, not one shared with a live simulator).

    Args:
        cell: the harvesting cell.
        environment: callable ``lux(t)``.
        duration: run length, seconds.
        dt: quasi-static step, seconds.
        source: light-source spectrum.
        thermal: optional :class:`~repro.pv.thermal.CellThermalModel`
            driven by the lux trace (its state is advanced here).
        temperature: fixed cell temperature when ``thermal`` is None.
        start_time: trace start, seconds.
        solve: batch-solve Voc/Isc/MPP of the unique conditions and
            memoise them on the shared model instances.
        shading: optional :class:`~repro.env.shading.ShadowMap`; its
            per-cell factors join the dedup key and are forwarded to the
            cell's ``model_at`` (requires a string-style cell such as
            :class:`~repro.pv.string.CellString`).

    Returns:
        A :class:`PrecomputedConditions` covering ``duration``.
    """
    if dt <= 0.0:
        raise ModelParameterError(f"dt must be positive, got {dt!r}")
    t_start = time.perf_counter()
    steps = int(round(duration / dt))

    times = np.empty(steps)
    lux = np.empty(steps)
    temps = np.empty(steps)
    t = start_time
    for i in range(steps):
        times[i] = t
        level = max(0.0, float(environment(t)))
        lux[i] = level
        if thermal is not None:
            temps[i] = thermal.step(level, dt, source.efficacy_lm_per_w)
        else:
            temps[i] = temperature
        t += dt

    models: List[SingleDiodeModel] = []
    index: Dict[tuple, SingleDiodeModel] = {}
    for i in range(steps):
        if shading is not None:
            factors = shading.factors_at(float(times[i]))
            key = (lux[i], temps[i], factors)
        else:
            factors = None
            key = (lux[i], temps[i])
        model = index.get(key)
        if model is None:
            if factors is not None:
                model = cell.model_at(
                    float(lux[i]),
                    source=source,
                    temperature=float(temps[i]),
                    factors=factors,
                )
            else:
                model = cell.model_at(
                    float(lux[i]), source=source, temperature=float(temps[i])
                )
            index[key] = model
        models.append(model)

    if solve and index:
        from repro.pv.string import StringModel, solve_string_models

        unique = list(index.values())
        plain = [m for m in unique if isinstance(m, SingleDiodeModel)]
        strings = [m for m in unique if isinstance(m, StringModel)]
        if plain:
            solve_models(plain, memoize=True)
        if strings:
            solve_string_models(strings)

    # One pre-timed span per scenario precompute; no-op while disabled.
    TRACER.add("precompute", time.perf_counter() - t_start)
    return PrecomputedConditions(
        dt=dt,
        times=times,
        lux=lux,
        temperature=temps,
        models=models,
        source=source,
        unique_conditions=len(index),
    )
