"""Quasi-static long-horizon harvesting simulation.

The MPPT dynamics in this paper are slow — one 39 ms sample every ~69 s —
so 24-hour runs treat each step (default 1 s) as an electrical
equilibrium: the controller picks an operating point for the current
light level, the converter transfers the resulting power into storage at
its efficiency, the controller's own supply current is debited, and any
node load is drawn.  Energy totals and tracking efficiencies accumulate
exactly the quantities the paper's evaluation (and our E8 comparison)
reports.

Controllers implement a two-method protocol:

* ``decide(obs) -> ControlDecision`` — pick the PV operating voltage (or
  None for disconnected), the fraction of the step spent harvesting, and
  the controller's supply current for the step.
* ``name`` — a label for reports.

Both the paper's S&H system (:class:`repro.core.system.SampleHoldMPPT`)
and every baseline in :mod:`repro.baselines` satisfy it, so one loop
compares them all.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

import repro.obs as obs
from repro.errors import ModelParameterError, NumericalGuardError
from repro.obs import journal as _journal
from repro.pv.cache import CachedPVCell
from repro.pv.cells import PVCell
from repro.pv.irradiance import FLUORESCENT, LightSource
from repro.pv.single_diode import SingleDiodeModel
from repro.sim.precompute import PrecomputedConditions
from repro.sim.traces import TraceSet
from repro.units import T_STC


@dataclass(frozen=True)
class Observation:
    """Everything a controller may look at for one quasi-static step.

    Attributes:
        time: step start time, seconds.
        dt: step duration, seconds.
        cell_model: the PV cell's single-diode curve for this condition.
        lux: illuminance during the step.
        storage_voltage: energy-store terminal voltage, volts.
        supply_voltage: rail available to power the controller, volts.
    """

    time: float
    dt: float
    cell_model: SingleDiodeModel
    lux: float
    storage_voltage: float
    supply_voltage: float


@dataclass(frozen=True)
class ControlDecision:
    """A controller's output for one step.

    Attributes:
        operating_voltage: PV terminal voltage commanded for the step,
            volts; None means the cell is disconnected (no harvest).
        harvest_duty: fraction of the step actually spent harvesting
            (sampling operations disconnect the cell; hill-climbing
            measurement dwell, etc.).
        overhead_current: controller supply current for the step, amps,
            drawn at the observation's supply voltage.
        note: free-form diagnostic tag.
    """

    operating_voltage: Optional[float]
    harvest_duty: float = 1.0
    overhead_current: float = 0.0
    note: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.harvest_duty <= 1.0:
            raise ModelParameterError(f"harvest_duty must be in [0, 1], got {self.harvest_duty!r}")
        if self.overhead_current < 0.0:
            raise ModelParameterError(
                f"overhead_current must be >= 0, got {self.overhead_current!r}"
            )


@runtime_checkable
class HarvestingController(Protocol):
    """The controller protocol shared by the proposed system and baselines."""

    name: str

    def decide(self, obs: Observation) -> ControlDecision:
        """Choose the operating point and account overheads for one step."""


@runtime_checkable
class EnergyStore(Protocol):
    """What the simulator needs from an energy store."""

    @property
    def voltage(self) -> float: ...

    def exchange(self, power: float, dt: float) -> float:
        """Add (+) or draw (-) ``power`` watts for ``dt``; returns the
        power actually exchanged (storage may be full or empty)."""


@dataclass
class StepResult:
    """Per-step telemetry (mostly for tests and debugging)."""

    time: float
    lux: float
    operating_voltage: Optional[float]
    pv_power: float
    delivered_power: float
    overhead_power: float
    storage_voltage: float


@dataclass
class HarvestSummary:
    """Accumulated energy accounting for one run.

    Attributes:
        duration: simulated time, seconds.
        energy_ideal: integral of the true MPP power — what a zero-cost
            perfect tracker could have extracted, joules.
        energy_at_cell: what the controller's operating points actually
            extracted from the cell, joules.
        energy_delivered: post-converter energy into storage, joules.
        energy_overhead: controller supply energy, joules.
        energy_load: energy delivered to the node load, joules.
        final_storage_voltage: storage voltage at the end, volts.
    """

    duration: float = 0.0
    energy_ideal: float = 0.0
    energy_at_cell: float = 0.0
    energy_delivered: float = 0.0
    energy_overhead: float = 0.0
    energy_load: float = 0.0
    final_storage_voltage: float = 0.0

    @property
    def tracking_efficiency(self) -> float:
        """Fraction of the ideal-MPP energy extracted at the cell."""
        if self.energy_ideal <= 0.0:
            return 0.0
        return self.energy_at_cell / self.energy_ideal

    @property
    def net_harvest_ratio(self) -> float:
        """(delivered - overhead) / ideal — the figure that decides whether
        MPPT circuitry pays for itself at a given light level."""
        if self.energy_ideal <= 0.0:
            return 0.0
        return (self.energy_delivered - self.energy_overhead) / self.energy_ideal

    @property
    def net_energy(self) -> float:
        """Delivered energy net of controller overhead, joules."""
        return self.energy_delivered - self.energy_overhead

    _FIELDS = (
        "duration",
        "energy_ideal",
        "energy_at_cell",
        "energy_delivered",
        "energy_overhead",
        "energy_load",
        "final_storage_voltage",
    )

    def to_dict(self) -> dict:
        """Serialise the accumulators (checkpoint protocol).

        JSON round-trips Python floats exactly (shortest-repr), so a
        summary restored from a checkpoint is bitwise-identical.
        """
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, state: dict) -> "HarvestSummary":
        """Rebuild a summary serialised by :meth:`to_dict`."""
        missing = [name for name in cls._FIELDS if name not in state]
        if missing:
            from repro.errors import StateFormatError

            raise StateFormatError(f"HarvestSummary state missing {missing}")
        return cls(**{name: state[name] for name in cls._FIELDS})


class QuasiStaticSimulator:
    """Run a harvesting controller against a light environment.

    Args:
        cell: the PV cell (or any object with ``model_at``/``mpp``).
        controller: the MPPT controller under test.
        environment: callable ``lux(t)`` giving illuminance at time t.
        converter: optional converter with
            ``output_power(p_in, v_in, v_out) -> float``; identity if None.
        storage: optional energy store; if None an ideal infinite sink at
            ``supply_voltage`` is assumed.
        load: optional callable ``p_load(t)`` drawn from storage, watts.
        source: light-source spectrum for lux-to-photocurrent conversion.
        supply_voltage: rail powering the controller when no storage is
            modelled (with storage, its terminal voltage is used).
        temperature: fixed cell temperature, kelvin (ignored if a
            thermal model is supplied).
        thermal: optional :class:`~repro.pv.thermal.CellThermalModel`;
            when given, the cell temperature follows the light level —
            which is what separates FOCV from fixed-voltage operation on
            a sun-heated outdoor cell.
        record: whether to record traces.
        precomputed: optional
            :class:`~repro.sim.precompute.PrecomputedConditions` for
            this (cell, environment) pair: steps aligned with the trace
            skip the environment/thermal/model solves entirely and
            consume the pre-solved operating points (identical
            numerics).  Mutually exclusive with ``thermal`` — the
            precompute owns the thermal stepping.
        cache: wrap the cell in a
            :class:`~repro.pv.cache.CachedPVCell` (exact keying) so
            repeated conditions are solved once.  Ignored when the cell
            is already cached.
        shading: optional :class:`~repro.env.shading.ShadowMap`; its
            per-cell factors are forwarded to the cell's ``model_at``
            each step (requires a string-style cell such as
            :class:`~repro.pv.string.CellString`).  Precomputed traces
            bake the shading in, so this only drives the live path.
    """

    def __init__(
        self,
        cell: PVCell,
        controller: HarvestingController,
        environment: Callable[[float], float],
        converter=None,
        storage: Optional[EnergyStore] = None,
        load: Optional[Callable[[float], float]] = None,
        source: LightSource = FLUORESCENT,
        supply_voltage: float = 3.3,
        temperature: float = T_STC,
        thermal=None,
        record: bool = True,
        precomputed: Optional[PrecomputedConditions] = None,
        cache: bool = False,
        shading=None,
    ):
        from repro.validation import require_finite, require_positive

        require_finite(supply_voltage, "supply_voltage")
        require_positive(temperature, "temperature")
        if precomputed is not None and thermal is not None:
            raise ModelParameterError(
                "pass the thermal model to precompute_conditions, not the simulator, "
                "when running from a precomputed trace"
            )
        if cache and not isinstance(cell, CachedPVCell):
            cell = CachedPVCell(cell)
        self.cell = cell
        self.controller = controller
        self.environment = environment
        self.converter = converter
        self.storage = storage
        self.load = load
        self.source = source
        self.supply_voltage = supply_voltage
        self.temperature = temperature
        self.thermal = thermal
        self.record = record
        self.precomputed = precomputed
        self.shading = shading
        self.traces = TraceSet()
        self.summary = HarvestSummary()
        self.time = 0.0
        self._step_index = 0
        # Fault wrappers (repro.faults.components) are time-aware but
        # present the ordinary converter/storage interfaces; they expose
        # a tick(t, dt) hook the engine calls at the top of each step.
        self._converter_tick = getattr(converter, "tick", None)
        self._storage_tick = getattr(storage, "tick", None)
        # MPP solves are the cost centre of long runs; light levels are
        # smooth, so cache the ideal-MPP power on a quantised
        # photocurrent grid (0.25 % bins -> well under 0.1 % power error).
        self._mpp_cache: dict = {}

    def _storage_voltage(self) -> float:
        if self.storage is not None:
            return self.storage.voltage
        return self.supply_voltage

    # --- checkpoint protocol --------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot everything needed to resume this run bitwise-identically.

        Captures the clock, step index, energy accumulators, the
        quantised MPP cache, and the mutable children (controller,
        storage, converter, thermal) via their own ``state_dict``.  The
        environment, cell, and precompute are pure functions of the
        run's construction arguments, so a resumed run rebuilds them
        from the spec instead of serialising them.

        The MPP cache *must* travel with the checkpoint: its keys are
        quantised, so colliding conditions reuse the first-computed
        value — an empty cache on resume could recompute a subtly
        different ideal power for a later step and break bitwise
        equality.

        Recorded traces are not captured; run checkpointed simulations
        with ``record=False`` (the long-run drivers already do).
        """
        from repro.ckpt.state import child_state

        return {
            "time": self.time,
            "step_index": self._step_index,
            "summary": self.summary.to_dict(),
            "mpp_cache": [[*k, v] for k, v in self._mpp_cache.items()],
            "controller": child_state(self.controller),
            "storage": child_state(self.storage),
            "converter": child_state(self.converter),
            "thermal": child_state(self.thermal),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a freshly built run.

        The simulator must have been constructed with the same spec
        (cell, environment, controller type, ...) as the checkpointed
        one; only the mutable state is restored here.
        """
        from repro.ckpt.state import load_child_state
        from repro.errors import StateFormatError

        missing = [
            key
            for key in ("time", "step_index", "summary", "mpp_cache")
            if key not in state
        ]
        if missing:
            raise StateFormatError(f"QuasiStaticSimulator state missing {missing}")
        self.time = state["time"]
        self._step_index = state["step_index"]
        self.summary = HarvestSummary.from_dict(state["summary"])
        # Keys are variable-length tuples (2 for cells, 3 with nested
        # per-cell tuples for strings); JSON stores them as lists, so
        # rebuild the hashable form recursively.
        def _tuplify(value):
            if isinstance(value, list):
                return tuple(_tuplify(item) for item in value)
            return value

        self._mpp_cache = {
            _tuplify(entry[:-1]): entry[-1] for entry in state["mpp_cache"]
        }
        load_child_state(self.controller, state.get("controller"), "controller")
        load_child_state(self.storage, state.get("storage"), "storage")
        load_child_state(self.converter, state.get("converter"), "converter")
        load_child_state(self.thermal, state.get("thermal"), "thermal")

    def _ideal_power(self, model) -> float:
        """True-MPP power for the step's curve, cached on quantised
        (photocurrent, temperature) — or the model's own richer key.

        String models publish ``ideal_cache_key`` covering every cell:
        two shading patterns can share a headline photocurrent while
        having very different MPPs, so the single-cell key would collide.
        """
        if model.photocurrent <= 0.0:
            return 0.0
        key = getattr(model, "ideal_cache_key", None)
        if key is None:
            key = (
                round(math.log(model.photocurrent) * 400.0),
                round(model.temperature * 2.0),
            )
        cached = self._mpp_cache.get(key)
        if cached is None:
            h = obs.HOOKS.cache_misses
            if h is not None:
                h.inc()
            cached = model.mpp().power
            self._mpp_cache[key] = cached
        else:
            h = obs.HOOKS.cache_hits
            if h is not None:
                h.inc()
        return cached

    def step(self, dt: float) -> StepResult:
        """Advance one quasi-static step of ``dt`` seconds."""
        if dt <= 0.0:
            raise ModelParameterError(f"dt must be positive, got {dt!r}")
        t = self.time
        if self._converter_tick is not None:
            self._converter_tick(t, dt)
        if self._storage_tick is not None:
            self._storage_tick(t, dt)
        pc = self.precomputed
        index = self._step_index
        if (
            pc is not None
            and index < len(pc.models)
            and dt == pc.dt
            and t == pc.times[index]
        ):
            # Fast path: the whole condition chain (environment, thermal,
            # model, Voc/MPP) was computed once for this trace — steps
            # that stay aligned with it just consume the results.
            lux = float(pc.lux[index])
            model = pc.models[index]
        else:
            raw_lux = float(self.environment(t))
            if raw_lux != raw_lux:
                # max(0.0, nan) silently yields 0.0 — surface it instead.
                raise NumericalGuardError(
                    f"environment produced NaN lux at t={t:.6g} s", signal="lux", time=t
                )
            lux = max(0.0, raw_lux)
            if self.thermal is not None:
                temperature = self.thermal.step(lux, dt, self.source.efficacy_lm_per_w)
            else:
                temperature = self.temperature
            if self.shading is not None:
                model = self.cell.model_at(
                    lux,
                    source=self.source,
                    temperature=temperature,
                    factors=self.shading.factors_at(t),
                )
            else:
                model = self.cell.model_at(
                    lux, source=self.source, temperature=temperature
                )
        storage_v = self._storage_voltage()
        supply_v = storage_v if self.storage is not None else self.supply_voltage

        obs = Observation(
            time=t,
            dt=dt,
            cell_model=model,
            lux=lux,
            storage_voltage=storage_v,
            supply_voltage=supply_v,
        )
        decision = self.controller.decide(obs)

        # Power extracted from the cell at the commanded operating point.
        if decision.operating_voltage is None or lux <= 0.0:
            pv_power = 0.0
        else:
            v = decision.operating_voltage
            current = float(model.current_at(v)) if v > 0.0 else 0.0
            pv_power = max(0.0, v * current) * decision.harvest_duty

        # Converter transfer.
        if self.converter is not None and pv_power > 0.0:
            delivered = self.converter.output_power(
                pv_power, decision.operating_voltage or 0.0, storage_v
            )
        else:
            delivered = pv_power

        if delivered < 0.0 or delivered != delivered or pv_power != pv_power:
            raise NumericalGuardError(
                f"power went invalid at t={t:.6g} s "
                f"(pv={pv_power!r} W, delivered={delivered!r} W)",
                signal="p_delivered",
                time=t,
            )

        overhead = decision.overhead_current * supply_v
        load_power = self.load(t) if self.load is not None else 0.0

        # Ideal benchmark for the same step (cached on quantised Iph).
        ideal = self._ideal_power(model) if lux > 0.0 else 0.0

        # Storage bookkeeping.
        if self.storage is not None:
            accepted = self.storage.exchange(delivered, dt)
            self.storage.exchange(-(overhead + load_power), dt)
        else:
            accepted = delivered

        final_storage_v = self._storage_voltage()
        if not math.isfinite(final_storage_v):
            raise NumericalGuardError(
                f"storage voltage went non-finite ({final_storage_v!r}) at t={t:.6g} s",
                signal="v_storage",
                time=t,
            )

        self.summary.duration += dt
        self.summary.energy_ideal += ideal * dt
        self.summary.energy_at_cell += pv_power * dt
        self.summary.energy_delivered += accepted * dt
        self.summary.energy_overhead += overhead * dt
        self.summary.energy_load += load_power * dt
        self.summary.final_storage_voltage = self._storage_voltage()

        if self.record:
            self.traces.record("lux", t, lux)
            self.traces.record(
                "v_pv", t, decision.operating_voltage if decision.operating_voltage is not None else 0.0
            )
            self.traces.record("p_pv", t, pv_power)
            self.traces.record("p_delivered", t, delivered)
            self.traces.record("p_overhead", t, overhead)
            self.traces.record("v_storage", t, self._storage_voltage())

        self.time += dt
        self._step_index += 1
        return StepResult(
            time=t,
            lux=lux,
            operating_voltage=decision.operating_voltage,
            pv_power=pv_power,
            delivered_power=delivered,
            overhead_power=overhead,
            storage_voltage=self._storage_voltage(),
        )

    def run(self, duration: float, dt: float = 1.0) -> HarvestSummary:
        """Run for ``duration`` seconds in steps of ``dt``; returns the summary.

        With observability enabled (:func:`repro.obs.enable`) the run is
        wrapped in a ``technique:<name>`` span, step timing is sampled
        into ``step`` child spans and the ``sim.step_seconds`` histogram,
        and per-technique step/energy counters are flushed at the end.
        The disabled path is byte-for-byte the original loop.
        """
        steps = int(round(duration / dt))
        j = _journal.JOURNAL
        if j is not None:
            j.emit(
                _journal.ENGINE_RUN,
                engine="scalar",
                steps=steps,
                technique=getattr(
                    self.controller, "name", type(self.controller).__name__
                ),
            )
        if not obs.is_enabled():
            for _ in range(steps):
                self.step(dt)
            return self.summary
        return self._run_instrumented(steps, dt)

    def _run_instrumented(self, steps: int, dt: float) -> HarvestSummary:
        """The observed run loop: identical numerics, sampled span timing.

        Counters are accumulated locally and flushed to the registry
        once per run, so the enabled overhead stays within the perf
        gate's 10 % budget even at ~100 k steps/s.
        """
        from time import perf_counter

        name = getattr(self.controller, "name", type(self.controller).__name__)
        registry = obs.REGISTRY
        tracer = obs.TRACER
        delivered_before = self.summary.energy_delivered
        overhead_before = self.summary.energy_overhead
        step_hist = registry.histogram(
            "sim.step_seconds", "sampled quasi-static step wall time"
        )
        # ~16 timed steps per run keeps the timing shape without paying
        # two clock reads on every step (an equality test per step is
        # all the untimed majority spends on sampling).
        sample_every = max(1, steps // 16)
        next_sample = 0
        with tracer.span(f"technique:{name}"):
            for i in range(steps):
                if i == next_sample:
                    next_sample += sample_every
                    t0 = perf_counter()
                    self.step(dt)
                    elapsed = perf_counter() - t0
                    tracer.add("step", elapsed)
                    step_hist.observe(elapsed)
                else:
                    self.step(dt)
        labels = {"technique": name}
        registry.counter("sim.steps", "quasi-static steps simulated", labels).inc(steps)
        delivered = self.summary.energy_delivered - delivered_before
        overhead = self.summary.energy_overhead - overhead_before
        if delivered > 0.0:
            registry.counter(
                "sim.energy_delivered_j", "post-converter energy into storage", labels
            ).inc(delivered)
        if overhead > 0.0:
            registry.counter(
                "sim.energy_overhead_j", "controller supply energy", labels
            ).inc(overhead)
        return self.summary
