"""Fixed-timestep transient engine.

Drives any object satisfying the tiny ``TransientSystem`` protocol —
``advance(t, dt)`` to integrate one step and ``signals()`` returning a
mapping of named observable values — and records selected signals into a
:class:`~repro.sim.traces.TraceSet`.  The Fig. 4 sampling-transient and
cold-start reproductions run on this engine with microsecond-class
steps.
"""

from __future__ import annotations

import math

from typing import Iterable, Mapping, Optional, Protocol, runtime_checkable

import repro.obs as obs
from repro.errors import ModelParameterError, NumericalGuardError, SimulationError
from repro.sim.traces import TraceSet


@runtime_checkable
class TransientSystem(Protocol):
    """What the transient engine needs from a simulated system."""

    def advance(self, t: float, dt: float) -> None:
        """Integrate the system state from ``t`` to ``t + dt``."""

    def signals(self) -> Mapping[str, float]:
        """Current values of the system's observable signals."""


class TransientSimulator:
    """Fixed-step transient simulation with decimated trace recording.

    Args:
        system: the system under simulation.
        dt: integration timestep, seconds.
        record: names of signals to record (default: everything the
            system exposes on its first ``signals()`` call).
        record_every: record one sample per this many steps (decimation),
            keeping multi-second runs at microsecond steps tractable.
    """

    def __init__(
        self,
        system: TransientSystem,
        dt: float,
        record: Optional[Iterable[str]] = None,
        record_every: int = 1,
    ):
        if dt <= 0.0:
            raise ModelParameterError(f"dt must be positive, got {dt!r}")
        if record_every < 1:
            raise ModelParameterError(f"record_every must be >= 1, got {record_every!r}")
        self.system = system
        self.dt = dt
        self.record_names = None if record is None else tuple(record)
        self.record_every = record_every
        self.traces = TraceSet()
        self.time = 0.0
        self._step_count = 0
        self._resolved_names: Optional[tuple] = None

    def _record(self, t: float) -> None:
        signals = self.system.signals()
        names = self._resolved_names
        if names is None:
            # Resolve and validate the selection once against the first
            # signals() mapping; recording happens every step (possibly
            # decimated) of a microsecond-step run, so the per-name
            # membership check must not be in the hot path.
            requested = self.record_names if self.record_names is not None else signals.keys()
            for name in requested:
                if name not in signals:
                    raise SimulationError(
                        f"requested signal {name!r} not provided by system; "
                        f"available: {sorted(signals)}"
                    )
            names = self._resolved_names = tuple(requested)
        record = self.traces.record
        for name in names:
            value = float(signals[name])
            if not math.isfinite(value):
                # A NaN/Inf here means an integration blew up; recording
                # it would quietly poison every downstream statistic.
                raise NumericalGuardError(
                    f"signal {name!r} went non-finite ({value!r}) at t={t:.6g} s",
                    signal=name,
                    time=t,
                )
            record(name, t, value)

    def run(self, duration: float) -> TraceSet:
        """Simulate for ``duration`` seconds (continuing from current time).

        Returns the accumulated trace set (also available as
        ``self.traces``).
        """
        if duration < 0.0:
            raise ModelParameterError(f"duration must be >= 0, got {duration!r}")
        steps = int(round(duration / self.dt))
        if not obs.is_enabled():
            return self._run_steps(steps)
        system_name = type(self.system).__name__
        with obs.TRACER.span(f"transient:{system_name}"):
            traces = self._run_steps(steps)
        obs.REGISTRY.counter(
            "sim.transient_steps",
            "fixed-timestep transient integration steps",
            {"system": system_name},
        ).inc(steps)
        return traces

    def _run_steps(self, steps: int) -> TraceSet:
        if self._step_count == 0:
            self._record(self.time)
        for _ in range(steps):
            self.system.advance(self.time, self.dt)
            self.time += self.dt
            self._step_count += 1
            if self._step_count % self.record_every == 0:
                self._record(self.time)
        return self.traces

    def run_until(self, predicate, timeout: float, check_every: int = 1) -> float:
        """Simulate until ``predicate(system)`` is true; returns the time.

        Args:
            predicate: callable evaluated on the system after each step.
            timeout: give-up horizon, seconds (from current time).
            check_every: evaluate the predicate once per this many steps.

        Raises:
            SimulationError: if the predicate stays false past ``timeout``.
        """
        deadline = self.time + timeout
        if self._step_count == 0:
            self._record(self.time)
        steps = 0
        while self.time < deadline:
            self.system.advance(self.time, self.dt)
            self.time += self.dt
            self._step_count += 1
            steps += 1
            if self._step_count % self.record_every == 0:
                self._record(self.time)
            if steps % check_every == 0 and predicate(self.system):
                return self.time
        raise SimulationError(
            f"predicate not satisfied within {timeout} s (reached t={self.time:.6g})"
        )
