"""Signal traces: named time series recorded during simulation.

A :class:`Trace` is an append-friendly (time, value) series with numpy
views and the handful of reductions the experiment harnesses need
(min/max/mean over windows, crossing detection).  A :class:`TraceSet`
is a dictionary of traces with a shared recording interface — the
simulated equivalent of the bench oscilloscope the authors pointed at
PULSE and HELD_SAMPLE.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import TraceError


class Trace:
    """One named time series.

    Args:
        name: signal name, e.g. ``"HELD_SAMPLE"``.
        unit: unit label for reports, e.g. ``"V"``.
    """

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time: float, value: float) -> None:
        """Record one sample.  Times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise TraceError(
                f"trace {self.name!r}: non-monotonic time {time} after {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> np.ndarray:
        """Sample times as a numpy array (copy-on-read view)."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a numpy array (copy-on-read view)."""
        return np.asarray(self._values)

    def at(self, time: float) -> float:
        """Linearly-interpolated value at ``time``.

        Raises:
            TraceError: if the trace is empty.
        """
        if not self._times:
            raise TraceError(f"trace {self.name!r} is empty")
        return float(np.interp(time, self._times, self._values))

    def window(self, t_start: float, t_end: float) -> "Trace":
        """Sub-trace restricted to ``t_start <= t <= t_end``."""
        if t_end < t_start:
            raise TraceError(f"window end {t_end} before start {t_start}")
        out = Trace(self.name, self.unit)
        t = self.times
        v = self.values
        mask = (t >= t_start) & (t <= t_end)
        out._times = list(t[mask])
        out._values = list(v[mask])
        return out

    def minimum(self) -> float:
        """Smallest recorded value."""
        self._require_data()
        return float(np.min(self.values))

    def maximum(self) -> float:
        """Largest recorded value."""
        self._require_data()
        return float(np.max(self.values))

    def mean(self) -> float:
        """Time-weighted mean value (trapezoidal over the record)."""
        self._require_data()
        t = self.times
        v = self.values
        if len(t) == 1 or t[-1] == t[0]:
            return float(np.mean(v))
        return float(np.trapezoid(v, t) / (t[-1] - t[0]))

    def final(self) -> float:
        """Last recorded value."""
        self._require_data()
        return self._values[-1]

    def first_crossing(self, level: float, rising: bool = True) -> float | None:
        """Time of first crossing through ``level`` (interpolated), or None.

        Args:
            level: threshold value.
            rising: detect upward crossings if True, downward otherwise.
        """
        self._require_data()
        t = self.times
        v = self.values
        if rising:
            hits = np.nonzero((v[:-1] < level) & (v[1:] >= level))[0]
        else:
            hits = np.nonzero((v[:-1] > level) & (v[1:] <= level))[0]
        if hits.size == 0:
            return None
        i = int(hits[0])
        if v[i + 1] == v[i]:
            return float(t[i + 1])
        frac = (level - v[i]) / (v[i + 1] - v[i])
        return float(t[i] + frac * (t[i + 1] - t[i]))

    def _require_data(self) -> None:
        if not self._times:
            raise TraceError(f"trace {self.name!r} is empty")

    def __repr__(self) -> str:
        if self._times:
            span = f"{self._times[0]:g}..{self._times[-1]:g}s"
        else:
            span = "empty"
        return f"Trace({self.name!r}, {len(self)} samples, {span})"


class TraceSet:
    """A recorder holding many named traces."""

    def __init__(self) -> None:
        self._traces: Dict[str, Trace] = {}

    def declare(self, name: str, unit: str = "") -> Trace:
        """Create (or fetch) a trace by name."""
        if name not in self._traces:
            self._traces[name] = Trace(name, unit)
        return self._traces[name]

    def record(self, name: str, time: float, value: float) -> None:
        """Append a sample to the named trace, creating it if needed."""
        self.declare(name).append(time, value)

    def __getitem__(self, name: str) -> Trace:
        try:
            return self._traces[name]
        except KeyError:
            raise TraceError(f"no trace named {name!r}; have {sorted(self._traces)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __iter__(self) -> Iterator[str]:
        return iter(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def names(self) -> List[str]:
        """All trace names, sorted."""
        return sorted(self._traces)

    def to_csv(self, path, names: List[str] | None = None) -> None:
        """Write selected traces to a CSV file on a merged time base.

        Traces recorded on different grids are linearly interpolated
        onto the union of all their sample times — the format external
        plotting tools expect.

        Args:
            path: output file path.
            names: traces to export (default: all, sorted).
        """
        selected = names if names is not None else self.names()
        if not selected:
            raise TraceError("no traces to export")
        for name in selected:
            if name not in self._traces:
                raise TraceError(f"no trace named {name!r}")
            self._traces[name]._require_data()
        merged = np.unique(np.concatenate([self._traces[n].times for n in selected]))
        columns = [np.interp(merged, self._traces[n].times, self._traces[n].values)
                   for n in selected]
        from repro.ckpt.atomic import atomic_write_text

        lines = ["time," + ",".join(selected)]
        for i, t in enumerate(merged):
            row = ",".join(f"{col[i]:.9g}" for col in columns)
            lines.append(f"{t:.9g},{row}")
        atomic_write_text(path, "\n".join(lines) + "\n")
