"""Structure-of-arrays fleet engine: N nodes advanced in lockstep NumPy.

Population workloads — tolerance Monte-Carlo boards, endurance
ensembles, resilience campaign grids — are embarrassingly parallel over
*nodes*, but the scalar path pays for that parallelism with one
:class:`~repro.sim.quasistatic.QuasiStaticSimulator` per node plus
process-pool pickling.  This module turns the population into a NumPy
axis instead: one Python-level time loop, with every per-step quantity
(S&H held voltage, comparator latch, converter transfer, supercap state,
scheduler bookkeeping, fault masks) held in arrays of shape ``(n,)``.

The engine is built *from* the scalar objects: a
:class:`FleetMember` carries the same controller / converter / storage /
load instances the scalar engine would step, and the fleet extracts
their constants and initial state.  That construction rule is what makes
the equivalence gate meaningful — both engines consume identical
parameters, so any disagreement is numerics, not configuration.

Numerics contract (mirrors ``QuasiStaticSimulator.step`` order):

* ``energy_ideal`` and per-step ``Voc`` replay the scalar path's
  batch-solver memos and quantised MPP cache exactly — bitwise equal.
* The sample-and-hold chain replaces the per-sample MNA Newton solve
  with a vectorized bisection of the identical load line
  (``I_cell(v) = v / R_divider``), agreeing to solver tolerance
  (~1e-12 V); everything downstream is the same IEEE arithmetic
  evaluated elementwise, so summaries match to tight tolerance.
* All array operations are elementwise across the population, so fleet
  results are invariant to node ordering (a property test holds this).

Supported member shape: a :class:`~repro.core.system.SampleHoldMPPT`
controller (optionally wrapped in
:class:`~repro.faults.components.HoldLeakageFault`), optional
:class:`~repro.converter.buck_boost.BuckBoostConverter` (optionally
brownout-wrapped), optional
:class:`~repro.storage.supercap.Supercapacitor` (optionally
open/short-wrapped), and an optional
:class:`~repro.node.scheduler.EnergyAwareScheduler` load — exactly the
combinations the population experiments build.  ``fleet_supported``
reports whether a combination qualifies; callers fall back to the
scalar engine otherwise.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.converter.buck_boost import BuckBoostConverter
from repro.core.system import SampleHoldMPPT
from repro.errors import ModelParameterError, NumericalGuardError, StateFormatError
from repro.faults.components import (
    ConverterBrownoutFault,
    HoldLeakageFault,
    StorageFault,
)
from repro.node.scheduler import EnergyAwareScheduler
from repro.obs import journal as _journal
from repro.obs.metrics import HOOKS as _OBS
from repro.obs.tracing import TRACER
from repro.pv.batch import (
    batch_current_at,
    batch_loaded_point,
    stack_model_params,
    stack_string_params,
    string_current_at,
    string_loaded_point,
    take_params,
)
from repro.sim.precompute import PrecomputedConditions
from repro.sim.quasistatic import HarvestSummary
from repro.storage.supercap import Supercapacitor

__all__ = [
    "FleetMember",
    "FleetSimulator",
    "evaluate_sample_hold_boards",
    "fleet_supported",
]


# --------------------------------------------------------------------------
# Vectorized Monte-Carlo board kernel
# --------------------------------------------------------------------------


def evaluate_sample_hold_boards(
    model,
    voc: float,
    *,
    top: np.ndarray,
    bottom: np.ndarray,
    u2_offset: np.ndarray,
    u4_offset: np.ndarray,
    injection: np.ndarray,
    hold_c: np.ndarray,
    pulse_width: float,
    hold_time: float,
    supply: float = 3.3,
    output_resistance: float = 1500.0,
    on_resistance: float = 120.0,
    turn_on_time: float = 1e-7,
    bias_current: float = 2e-12,
    off_leakage: float = 1e-12,
    soak: float = 0.003,
    insulation_ohm_farads: float = 25000.0,
) -> np.ndarray:
    """HELD_SAMPLE for a whole population of toleranced S&H boards.

    One vectorized pass over the same chain
    :meth:`~repro.core.sample_hold.SampleHoldCircuit.sample` walks per
    board: loaded operating point, input-buffer settle, RC charge for
    the effective pulse, charge-injection kick, dielectric soak, a
    ``hold_time`` droop, and the output buffer's offset — each expression
    kept in the scalar model's form so the arithmetic matches.

    Args:
        model: the (shared) cell curve being sampled.
        voc: the model's open-circuit voltage, volts.
        top / bottom: per-board divider resistances, ohms.
        u2_offset / u4_offset: per-board buffer input offsets, volts.
        injection: per-board switch charge injection, coulombs.
        hold_c: per-board hold capacitance, farads.
        pulse_width: PULSE width, seconds.
        hold_time: droop interval after the sample, seconds.

    Returns:
        Per-board HELD_SAMPLE voltages after the droop, volts.
    """
    top = np.asarray(top, dtype=float)
    n = top.shape[0]
    rtot = top + bottom
    ratio = bottom / rtot

    t0 = _time.perf_counter()
    cells = getattr(model, "cells", None)
    if cells is not None:
        # Series-string model: same loaded-point bisection the string
        # scalar path runs, one row per toleranced board.
        sp = stack_string_params([cells] * n, [model.bypass_drop] * n)
        v_pv = string_loaded_point(sp, np.full(n, float(voc)), rtot)
    else:
        params = stack_model_params([model] * n)
        v_pv = batch_loaded_point(params, np.full(n, float(voc)), rtot)
    TRACER.add("fleet:vector-solve", _time.perf_counter() - t0)

    h = _OBS.fleet_nodes
    if h is not None:
        h.inc(n)
    h = _OBS.fleet_steps
    if h is not None:
        h.inc(n)

    tap = v_pv * ratio
    target = np.minimum(supply, np.maximum(0.0, tap + u2_offset))

    tau = (output_resistance + on_resistance) * hold_c
    effective = max(0.0, pulse_width - turn_on_time)
    settle_fraction = 1.0 - np.exp(-effective / tau)
    new_held = target * settle_fraction  # previous held voltage is 0
    new_held = new_held + injection / hold_c
    new_held = new_held + soak * (0.0 - new_held)
    held = np.minimum(supply, np.maximum(0.0, new_held))

    # Droop: same τ expression as Capacitor.droop (leakage_resistance·C).
    leak_tau = (insulation_ohm_farads / hold_c) * hold_c
    bias = bias_current + off_leakage
    held = held * np.exp(-hold_time / leak_tau)
    held = held - bias * hold_time / hold_c
    held = np.maximum(0.0, held)

    return np.minimum(supply, np.maximum(0.0, held + u4_offset))


# --------------------------------------------------------------------------
# Member description and support predicate
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetMember:
    """One node of a fleet: the scalar objects the node would be built from.

    Attributes:
        controller: a :class:`SampleHoldMPPT` (optionally wrapped in
            :class:`HoldLeakageFault`).
        precomputed: the node's condition trace; every member of a fleet
            must share one time base (``dt`` and ``times``).
        converter: optional :class:`BuckBoostConverter` (optionally
            brownout-wrapped).
        storage: optional :class:`Supercapacitor` (optionally
            :class:`StorageFault`-wrapped).
        load: optional :class:`EnergyAwareScheduler`.
        supply_voltage: rail used when no storage is attached, volts.
    """

    controller: object
    precomputed: PrecomputedConditions
    converter: Optional[object] = None
    storage: Optional[object] = None
    load: Optional[object] = None
    supply_voltage: float = 3.3


def _unwrap_controller(controller):
    """Split an (optionally leakage-faulted) controller into (base, schedule, multiplier)."""
    if isinstance(controller, HoldLeakageFault):
        return controller.base, controller.schedule, controller.droop_multiplier
    return controller, None, 1.0


def _unwrap_converter(converter):
    """Split an (optionally brownout-faulted) converter into (base, schedule)."""
    if isinstance(converter, ConverterBrownoutFault):
        return converter.base, converter.schedule
    return converter, None


def _unwrap_storage(storage):
    """Split an (optionally faulted) store into (base, schedule, mode, short_resistance)."""
    if isinstance(storage, StorageFault):
        return storage.base, storage.schedule, storage.mode, storage.short_resistance
    return storage, None, None, 0.0


def fleet_supported(
    controller,
    converter=None,
    storage=None,
    load=None,
) -> bool:
    """Whether this node combination can run on the vectorized fleet engine.

    The fleet covers the proposed-S&H platform (already started, so no
    cold-start chain) with the converter / storage / scheduler shapes
    the population experiments build.  Anything else — baseline
    controllers, setpoint-drift wrappers, cold-start studies — takes
    the scalar engine.
    """
    base, _, _ = _unwrap_controller(controller)
    if not isinstance(base, SampleHoldMPPT) or not base.powered or not base.assume_started:
        return False
    conv, _ = _unwrap_converter(converter)
    if conv is not None and type(conv) is not BuckBoostConverter:
        return False
    store, _, _, _ = _unwrap_storage(storage)
    if store is not None and type(store) is not Supercapacitor:
        return False
    if load is not None and not isinstance(load, EnergyAwareScheduler):
        return False
    return True


def _schedule_mask(schedule, times: np.ndarray) -> np.ndarray:
    """Boolean per-step activity of a FaultSchedule over ``times``."""
    mask = np.zeros(times.shape[0], dtype=bool)
    if schedule is not None:
        for window in schedule.windows:
            mask |= (times >= window.start) & (times < window.end)
    return mask


# --------------------------------------------------------------------------
# The fleet engine
# --------------------------------------------------------------------------


class FleetSimulator:
    """Advance N independent harvesting nodes per step with array ops.

    Args:
        members: the fleet's nodes; all must share one time base and
            satisfy :func:`fleet_supported`.
    """

    engine_name = "fleet"
    """Tier label stamped into journal ``engine-run`` events."""

    def __init__(self, members: Sequence[FleetMember]):
        members = list(members)
        if not members:
            raise ModelParameterError("a fleet needs at least one member")
        self.members = members
        n = len(members)
        self.n = n

        pc0 = members[0].precomputed
        self.dt = float(pc0.dt)
        self.times = np.asarray(pc0.times, dtype=float)
        steps = self.times.shape[0]
        self.steps = steps
        for m in members[1:]:
            pc = m.precomputed
            if float(pc.dt) != self.dt or not np.array_equal(
                np.asarray(pc.times, dtype=float), self.times
            ):
                raise ModelParameterError("fleet members must share one time base")

        # --- controller / S&H constants -----------------------------------
        self._alpha = np.empty(n)
        self._t_on = np.empty(n)
        self._period = np.empty(n)
        self._metrology = np.empty(n)
        self._min_vin_cfg = np.empty(n)
        self._sh_supply = np.empty(n)
        self._rtot = np.empty(n)
        self._sf = np.empty(n)
        self._kick = np.empty(n)
        self._soak = np.empty(n)
        self._droop_tau = np.empty(n)
        self._droop_bias_c = np.empty(n)  # (bias A) / C, volts per second
        self._u4_off = np.empty(n)
        self._u4_alive = np.empty(n, dtype=bool)
        self._cmp_thresh = np.empty(n)
        self._cmp_off = np.empty(n)
        self._cmp_half = np.empty(n)
        self._cmp_alive = np.empty(n, dtype=bool)
        self._supply_voltage = np.empty(n)

        # --- controller / S&H state ---------------------------------------
        self._held = np.empty(n)
        self._next_pulse = np.empty(n)
        self._sample_count = np.zeros(n, dtype=np.int64)
        self._cmp_high = np.empty(n, dtype=bool)

        # --- fault masks ---------------------------------------------------
        leak_masks = []
        self._leak_mult = np.ones(n)
        brown_masks = []
        open_masks = []
        short_masks = []
        self._short_res = np.ones(n)

        # --- converter -----------------------------------------------------
        self._has_conv = np.zeros(n, dtype=bool)
        self._conv_enabled = np.zeros(n, dtype=bool)
        self._conv_min_vin = np.zeros(n)
        self._conv_fixed = np.zeros(n)
        self._conv_prop = np.zeros(n)
        self._conv_rcond = np.zeros(n)

        # --- storage -------------------------------------------------------
        self._has_store = np.zeros(n, dtype=bool)
        self._cap_c = np.ones(n)
        self._cap_rated = np.ones(n)
        self._cap_esr = np.zeros(n)
        self._cap_leak = np.zeros(n)
        self._v_store = np.zeros(n)

        # --- scheduler load ------------------------------------------------
        self._has_load = np.zeros(n, dtype=bool)
        self._scheds: List[Optional[EnergyAwareScheduler]] = [None] * n
        self._sleep_power = np.zeros(n)
        self._report_energy = np.zeros(n)
        self._upd_int = np.ones(n)
        self._v_surv = np.zeros(n)
        self._v_comf = np.ones(n)
        self._min_per = np.ones(n)
        self._max_per = np.ones(n)
        self._cur_period = np.zeros(n)
        self._next_update = np.zeros(n)
        self._hibernating = np.zeros(n, dtype=bool)
        self._reports = np.zeros(n, dtype=np.int64)
        self._next_report = np.zeros(n)

        unique_models: List[object] = []
        unique_lux: List[float] = []
        unique_rtot: List[float] = []
        unique_node: List[int] = []
        unique_ideal: List[float] = []
        u_global = np.empty((steps, n), dtype=np.int64)

        for j, m in enumerate(members):
            base, leak_sched, leak_mult = _unwrap_controller(m.controller)
            if not fleet_supported(m.controller, m.converter, m.storage, m.load):
                raise ModelParameterError(
                    f"fleet member {j} is not fleet-supported; use the scalar engine"
                )
            cfg = base.config
            sh = cfg.sample_hold
            self._alpha[j] = cfg.alpha
            self._t_on[j] = cfg.astable.t_on
            self._period[j] = cfg.astable.period
            self._metrology[j] = cfg.metrology_current()
            self._min_vin_cfg[j] = cfg.converter.min_input_voltage
            self._sh_supply[j] = sh.supply
            self._rtot[j] = sh.divider.total_resistance
            tau = sh.settle_time_constant()
            effective = max(0.0, cfg.astable.t_on - sh.switch.spec.turn_on_time)
            self._sf[j] = 1.0 - math.exp(-effective / tau) if tau > 0.0 else 1.0
            self._kick[j] = sh.switch.spec.charge_injection / sh.hold_capacitor.farads
            self._soak[j] = sh.hold_capacitor.dielectric.dielectric_absorption
            self._droop_tau[j] = sh.hold_capacitor.leakage_resistance * sh.hold_capacitor.farads
            bias = sh.output_buffer.bias_current() + sh.switch.spec.off_leakage
            self._droop_bias_c[j] = bias / sh.hold_capacitor.farads
            self._u4_off[j] = sh.output_buffer.spec.input_offset
            self._u4_alive[j] = sh.output_buffer.alive
            u5 = cfg.active._u5
            self._cmp_thresh[j] = cfg.active.threshold
            self._cmp_off[j] = u5.spec.input_offset
            self._cmp_half[j] = u5.spec.hysteresis / 2.0
            self._cmp_alive[j] = u5.alive
            self._cmp_high[j] = u5.output_high
            self._supply_voltage[j] = m.supply_voltage

            self._held[j] = sh.state_dict()["held"]
            self._next_pulse[j] = base._next_pulse
            self._sample_count[j] = base._sample_count

            self._leak_mult[j] = leak_mult
            leak_masks.append(_schedule_mask(leak_sched, self.times))

            conv, brown_sched = _unwrap_converter(m.converter)
            brown_masks.append(_schedule_mask(brown_sched, self.times))
            if conv is not None:
                self._has_conv[j] = True
                self._conv_enabled[j] = conv.enabled
                self._conv_min_vin[j] = conv.min_input_voltage
                self._conv_fixed[j] = conv.losses.fixed_power
                self._conv_prop[j] = conv.losses.proportional_loss
                self._conv_rcond[j] = conv.losses.conduction_resistance

            store, store_sched, store_mode, short_res = _unwrap_storage(m.storage)
            open_masks.append(
                _schedule_mask(store_sched if store_mode == "open" else None, self.times)
            )
            short_masks.append(
                _schedule_mask(store_sched if store_mode == "short" else None, self.times)
            )
            if store_mode == "short":
                self._short_res[j] = short_res
            if store is not None:
                self._has_store[j] = True
                self._cap_c[j] = store.capacitance
                self._cap_rated[j] = store.rated_voltage
                self._cap_esr[j] = store.esr
                self._cap_leak[j] = store.leakage_current
                self._v_store[j] = store.voltage

            if m.load is not None:
                sched = m.load
                self._has_load[j] = True
                self._scheds[j] = sched
                self._sleep_power[j] = sched.node.sleep_power
                self._report_energy[j] = sched.node.energy_per_report()
                self._upd_int[j] = sched.update_interval
                self._v_surv[j] = sched.v_survival
                self._v_comf[j] = sched.v_comfort
                self._min_per[j] = sched.min_period
                self._max_per[j] = sched.max_period
                self._cur_period[j] = sched._current_period
                self._next_update[j] = sched._next_update
                self._hibernating[j] = sched._hibernating
                self._reports[j] = sched._reports_sent
                self._next_report[j] = sched._next_report

            # Per-node unique conditions, in first-encounter (step) order.
            pc = m.precomputed
            lux = np.asarray(pc.lux, dtype=float)
            if not np.isfinite(lux).all():
                raise NumericalGuardError(
                    "precomputed lux trace contains non-finite values", signal="lux"
                )
            offset = len(unique_models)
            seen: dict = {}
            mpp_cache: dict = {}
            for i, model in enumerate(pc.models):
                key = id(model)
                u = seen.get(key)
                if u is None:
                    u = offset + len(seen)
                    seen[key] = u
                    unique_models.append(model)
                    step_lux = float(lux[i])
                    unique_lux.append(step_lux)
                    unique_rtot.append(self._rtot[j])
                    unique_node.append(j)
                    # energy_ideal replay: the scalar engine caches MPP
                    # power on quantised (Iph, T); the first model to
                    # claim a key defines its value for the whole run.
                    iph = model.photocurrent
                    if step_lux <= 0.0 or iph <= 0.0:
                        unique_ideal.append(0.0)
                    else:
                        qkey = getattr(model, "ideal_cache_key", None)
                        if qkey is None:
                            qkey = (
                                round(math.log(iph) * 400.0),
                                round(model.temperature * 2.0),
                            )
                        cached = mpp_cache.get(qkey)
                        if cached is None:
                            cached = model.mpp().power
                            mpp_cache[qkey] = cached
                        unique_ideal.append(cached)
                u_global[i, j] = u

        self._u_global = u_global
        # Partition the unique conditions into single-diode cells and
        # series strings; each family gets its own stacked-parameter
        # block, with index maps from the global condition index.
        n_unique = len(unique_models)
        self._unique_models = unique_models
        is_string = np.array(
            [getattr(model, "cells", None) is not None for model in unique_models],
            dtype=bool,
        )
        self._is_string = is_string
        self._any_string = bool(is_string.any())
        plain_idx = np.nonzero(~is_string)[0]
        string_idx = np.nonzero(is_string)[0]
        self._u_to_plain = np.full(n_unique, -1, dtype=np.int64)
        self._u_to_plain[plain_idx] = np.arange(len(plain_idx))
        self._u_to_string = np.full(n_unique, -1, dtype=np.int64)
        self._u_to_string[string_idx] = np.arange(len(string_idx))
        self._params_all = (
            stack_model_params([unique_models[int(u)] for u in plain_idx])
            if len(plain_idx)
            else None
        )
        self._sp_all = (
            stack_string_params(
                [unique_models[int(u)].cells for u in string_idx],
                [unique_models[int(u)].bypass_drop for u in string_idx],
            )
            if len(string_idx)
            else None
        )
        self._voc_all = np.array([model.voc() for model in unique_models])
        self._lux_all = np.array(unique_lux)
        self._ideal_all = np.array(unique_ideal)

        # Loaded sample points: one vector solve covers every (node,
        # condition) pair for the whole run — this is the fleet
        # counterpart of the per-sample MNA solve.
        t0 = _time.perf_counter()
        rtot_arr = np.array(unique_rtot)
        v_pv_all = np.zeros(n_unique)
        if self._params_all is not None:
            v_pv_all[plain_idx] = batch_loaded_point(
                self._params_all, self._voc_all[plain_idx], rtot_arr[plain_idx]
            )
        if self._sp_all is not None:
            v_pv_all[string_idx] = string_loaded_point(
                self._sp_all, self._voc_all[string_idx], rtot_arr[string_idx]
            )
        TRACER.add("fleet:vector-solve", _time.perf_counter() - t0)
        node_idx = np.array(unique_node, dtype=np.int64)
        ratio = np.empty(n)
        u2_off = np.empty(n)
        u2_alive = np.empty(n, dtype=bool)
        for j, m in enumerate(members):
            base, _, _ = _unwrap_controller(m.controller)
            sh = base.config.sample_hold
            ratio[j] = sh.divider.ratio
            u2_off[j] = sh.input_buffer.spec.input_offset
            u2_alive[j] = sh.input_buffer.alive
        tap = v_pv_all * ratio[node_idx]
        target = np.minimum(
            self._sh_supply[node_idx], np.maximum(0.0, tap + u2_off[node_idx])
        )
        self._target_all = np.where(u2_alive[node_idx], target, 0.0)

        self._leak_mask = np.column_stack(leak_masks)
        self._brown_mask = np.column_stack(brown_masks)
        self._open_mask = np.column_stack(open_masks)
        self._short_mask = np.column_stack(short_masks)
        self._any_leak = bool(self._leak_mask.any())
        self._any_store = bool(self._has_store.any())
        self._any_load = bool(self._has_load.any())

        # --- run state -----------------------------------------------------
        self.time = float(self.times[0]) if steps else 0.0
        self._step_index = 0
        self._duration = np.zeros(n)
        self._e_ideal = np.zeros(n)
        self._e_cell = np.zeros(n)
        self._e_del = np.zeros(n)
        self._e_over = np.zeros(n)
        self._e_load = np.zeros(n)
        self._final_v = np.where(self._has_store, self._v_store, self._supply_voltage)

        h = _OBS.fleet_nodes
        if h is not None:
            h.inc(n)

    # --- S&H helpers -------------------------------------------------------

    def _sh_droop(self, dt: np.ndarray) -> None:
        """Vectorized Capacitor.droop with per-node hold intervals."""
        held = self._held * np.exp(-dt / self._droop_tau)
        held = held - self._droop_bias_c * dt
        self._held = np.maximum(0.0, held)

    def _sh_sample(self, target: np.ndarray, mask: np.ndarray) -> None:
        """Vectorized SampleHoldCircuit.sample toward precomputed targets."""
        previous = self._held
        new_held = previous + (target - previous) * self._sf
        new_held = new_held + self._kick
        new_held = new_held + self._soak * (previous - new_held)
        clamped = np.minimum(self._sh_supply, np.maximum(0.0, new_held))
        self._held = np.where(mask, clamped, previous)

    # --- storage helper ----------------------------------------------------

    def _exchange(
        self,
        power: np.ndarray,
        dt: float,
        apply: np.ndarray,
        open_mask: Optional[np.ndarray],
    ) -> np.ndarray:
        """Vectorized Supercapacitor.exchange; returns accepted power.

        Lanes outside ``apply`` (and open-faulted lanes) keep their
        voltage and report 0 accepted — the StorageFault "open" contract.
        """
        v = self._v_store
        cap = self._cap_c
        stored = 0.5 * cap * v * v
        full = 0.5 * cap * self._cap_rated * self._cap_rated
        absp = np.abs(power)
        with np.errstate(divide="ignore", invalid="ignore"):
            current = absp / v
            loss = np.where(v > 1e-9, np.minimum(current * current * self._cap_esr, absp), 0.0)
            leak = self._cap_leak * v
            charge = power >= 0.0
            stored_delta = np.maximum(0.0, power - loss) - leak
            energy_c = np.maximum(0.0, stored + stored_delta * dt)
            over = energy_c > full
            req_over = power * (full - stored) / (stored_delta * dt)
            req_c = np.where(over, np.where(stored_delta > 0.0, req_over, power), power)
            energy_c = np.where(over, full, energy_c)
            drawn = (-power + loss + leak) * dt
            fits = drawn <= stored
            fraction = np.where(drawn > 0.0, stored / drawn, 0.0)
            energy_d = np.where(fits, stored - drawn, 0.0)
            req_d = np.where(fits, power, power * fraction)
            energy = np.where(charge, energy_c, energy_d)
            requested = np.where(charge, req_c, req_d)
            v_new = np.sqrt(2.0 * energy / cap)
        update = apply if open_mask is None else (apply & ~open_mask)
        self._v_store = np.where(update, v_new, v)
        return np.where(update, requested, 0.0)

    # --- scheduler helper --------------------------------------------------

    def _scheduler_power(self, t: float, storage_v: np.ndarray) -> np.ndarray:
        """Vectorized EnergyAwareScheduler.power across the fleet."""
        update = self._has_load & (t >= self._next_update)
        if update.any():
            idx = np.nonzero(update)[0]
            v = storage_v[idx]
            if np.isnan(v).any():
                raise NumericalGuardError(
                    "storage voltage is NaN; refusing to schedule on it",
                    signal="v_storage",
                )
            surv = self._v_surv[idx]
            comf = self._v_comf[idx]
            hibernate = v < surv
            period = self._min_per[idx].copy()
            mid = ~hibernate & (v < comf)
            if mid.any():
                # math.log/exp on python floats keeps the log-interpolated
                # period bitwise equal to the scalar policy (np.log differs
                # in the last ulp on some hosts); all the placement and
                # bookkeeping around it is vectorized.
                n_clamped = 0
                vals = []
                for vj, sj, cj, lo, hi in zip(
                    v[mid].tolist(), surv[mid].tolist(), comf[mid].tolist(),
                    self._min_per[idx][mid].tolist(),
                    self._max_per[idx][mid].tolist(),
                ):
                    fraction = (vj - sj) / (cj - sj)
                    p = math.exp(math.log(hi) + fraction * (math.log(lo) - math.log(hi)))
                    if p < lo or p > hi:
                        n_clamped += 1
                        p = min(hi, max(lo, p))
                    vals.append(p)
                period[mid] = vals
                clamps = _OBS.scheduler_clamps
                if n_clamped and clamps is not None:
                    clamps.inc(n_clamped)
            awake = ~hibernate
            was_hibernating = self._hibernating[idx]
            self._hibernating[idx] = hibernate
            self._cur_period[idx] = np.where(awake, period, self._cur_period[idx])
            self._next_report[idx] = np.where(
                awake & was_hibernating, t + period, self._next_report[idx]
            )
            self._next_update[idx] = t + self._upd_int[idx]
        power = np.where(self._has_load, self._sleep_power, 0.0)
        report = self._has_load & ~self._hibernating & (t >= self._next_report)
        if report.any():
            self._reports += report
            self._next_report = np.where(report, t + self._cur_period, self._next_report)
            power = power + np.where(report, self._report_energy / self._upd_int, 0.0)
        return power

    # --- harvest hook -------------------------------------------------------

    def _pv_power(
        self, u_sel: np.ndarray, v_sel: np.ndarray, duty_sel: np.ndarray
    ) -> np.ndarray:
        """Harvested power at the selected (condition, voltage) points.

        The engine-tier hook: this base implementation is the exact
        Lambert-W solve; the compiled tier overrides it with a validated
        interpolation-table lookup (:mod:`repro.sim.compiled`).
        """
        if not self._any_string:
            current = batch_current_at(take_params(self._params_all, u_sel), v_sel)
            return np.maximum(0.0, v_sel * current) * duty_sel
        current = np.empty(v_sel.shape[0])
        s_mask = self._is_string[u_sel]
        p_pos = np.nonzero(~s_mask)[0]
        if len(p_pos):
            current[p_pos] = batch_current_at(
                take_params(self._params_all, self._u_to_plain[u_sel[p_pos]]),
                v_sel[p_pos],
            )
        s_pos = np.nonzero(s_mask)[0]
        if len(s_pos):
            current[s_pos] = string_current_at(
                self._sp_all, self._u_to_string[u_sel[s_pos]], v_sel[s_pos]
            )
        return np.maximum(0.0, v_sel * current) * duty_sel

    # --- stepping ----------------------------------------------------------

    def step(self) -> None:
        """Advance the whole fleet one ``dt`` step (mirrors the scalar order)."""
        i = self._step_index
        if i >= self.steps:
            raise ModelParameterError("fleet stepped past its precomputed horizon")
        t = float(self.times[i])
        dt = self.dt
        n = self.n

        # Fault ticks: converter brownout state, storage short-mode bleed.
        browned = self._brown_mask[i]
        open_now: Optional[np.ndarray] = None
        if self._any_store:
            short_now = self._short_mask[i]
            if short_now.any():
                v = self._v_store
                bleeding = short_now & (v > 0.0)
                if bleeding.any():
                    bleed = np.where(bleeding, -(v * v / self._short_res), 0.0)
                    self._exchange(bleed, dt, apply=bleeding, open_mask=None)
            open_now = self._open_mask[i]

        storage_v = np.where(self._has_store, self._v_store, self._supply_voltage)
        supply_v = storage_v

        # --- controller decide (SampleHoldMPPT, vectorized) ---------------
        u_row = self._u_global[i]
        voc = self._voc_all[u_row]
        target = self._target_all[u_row]
        lux = self._lux_all[u_row]

        t_end = t + dt
        sampling_time = np.zeros(n)
        cursor = np.full(n, t)
        while True:
            pending = self._next_pulse < t_end
            if not pending.any():
                break
            pulse_at = np.maximum(self._next_pulse, t)
            self._sh_droop(np.where(pending, np.maximum(0.0, pulse_at - cursor), 0.0))
            self._sh_sample(target, pending)
            self._sample_count += pending
            sampling_time = np.where(pending, sampling_time + self._t_on, sampling_time)
            cursor = np.where(pending, pulse_at, cursor)
            self._next_pulse = np.where(
                pending, self._next_pulse + self._period, self._next_pulse
            )
        self._sh_droop(np.maximum(0.0, t_end - cursor))

        held_raw = np.minimum(self._sh_supply, np.maximum(0.0, self._held + self._u4_off))
        held = np.where(self._u4_alive, held_raw, 0.0)
        duty = np.maximum(0.0, 1.0 - sampling_time / dt)
        overhead_current = self._metrology + np.where(
            sampling_time > 0.0, (voc / self._rtot) * sampling_time / dt, 0.0
        )

        # ACTIVE comparator latch (U5), then the converter-minimum and
        # Voc gates — order is irrelevant to outputs, the latch updates
        # exactly once per step as in the scalar path.
        diff = (held - self._cmp_thresh) + self._cmp_off
        goes_high = diff > self._cmp_half
        stays_high = ~(diff < -self._cmp_half)
        self._cmp_high = self._cmp_alive & np.where(self._cmp_high, stays_high, goes_high)
        v_op = held / self._alpha
        valid = self._cmp_high & (v_op >= self._min_vin_cfg) & (v_op < voc)

        # Hold-leakage fault: extra droop after the platform's own step.
        if self._any_leak:
            leak_now = self._leak_mask[i]
            if leak_now.any():
                self._sh_droop(np.where(leak_now, dt * (self._leak_mult - 1.0), 0.0))

        # --- PV operating point -------------------------------------------
        pv_power = np.zeros(n)
        harvesting = valid & (lux > 0.0) & (v_op > 0.0)
        if harvesting.any():
            idx = np.nonzero(harvesting)[0]
            if TRACER.enabled:
                t0 = _time.perf_counter()
                pv_power[idx] = self._pv_power(u_row[idx], v_op[idx], duty[idx])
                TRACER.add("fleet:vector-solve", _time.perf_counter() - t0)
            else:
                pv_power[idx] = self._pv_power(u_row[idx], v_op[idx], duty[idx])

        # --- converter transfer -------------------------------------------
        delivered = pv_power.copy()
        routed = (pv_power > 0.0) & self._has_conv
        if routed.any():
            running = routed & self._conv_enabled & ~browned & (v_op >= self._conv_min_vin)
            out = np.zeros(n)
            if running.any():
                with np.errstate(divide="ignore", invalid="ignore"):
                    i_in = pv_power / v_op
                    loss = (
                        self._conv_fixed
                        + self._conv_prop * pv_power
                        + i_in * i_in * self._conv_rcond
                    )
                    eta = np.minimum(1.0, np.maximum(0.0, 1.0 - loss / pv_power))
                out = np.where(running, pv_power * eta, 0.0)
            delivered = np.where(routed, out, delivered)

        if (delivered < 0.0).any() or not np.isfinite(delivered).all():
            raise NumericalGuardError(
                f"fleet delivered power went invalid at t={t:.6g} s",
                signal="p_delivered",
                time=t,
            )

        overhead = overhead_current * supply_v
        load_power = (
            self._scheduler_power(t, storage_v) if self._any_load else np.zeros(n)
        )
        ideal = self._ideal_all[u_row]

        # --- storage bookkeeping ------------------------------------------
        if self._any_store:
            accepted = self._exchange(delivered, dt, apply=self._has_store, open_mask=open_now)
            self._exchange(-(overhead + load_power), dt, apply=self._has_store, open_mask=open_now)
            accepted = np.where(self._has_store, accepted, delivered)
        else:
            accepted = delivered

        final_v = np.where(self._has_store, self._v_store, self._supply_voltage)
        if not np.isfinite(final_v).all():
            raise NumericalGuardError(
                f"fleet storage voltage went non-finite at t={t:.6g} s",
                signal="v_storage",
                time=t,
            )

        self._duration += dt
        self._e_ideal += ideal * dt
        self._e_cell += pv_power * dt
        self._e_del += accepted * dt
        self._e_over += overhead * dt
        self._e_load += load_power * dt
        self._final_v = final_v
        self.time = t + dt
        self._step_index = i + 1

        h = _OBS.fleet_steps
        if h is not None:
            h.inc(n)

    def run(self, steps: Optional[int] = None) -> List[HarvestSummary]:
        """Step through ``steps`` (default: the rest of the horizon)."""
        remaining = self.steps - self._step_index if steps is None else int(steps)
        j = _journal.JOURNAL
        if j is not None:
            j.emit(
                _journal.ENGINE_RUN,
                engine=self.engine_name,
                steps=remaining,
                nodes=self.n,
            )
        span = TRACER.span(f"fleet:run[{self.n}]")
        with span:
            for _ in range(remaining):
                self.step()
        return self.summaries()

    # --- results -----------------------------------------------------------

    @property
    def step_index(self) -> int:
        """Steps advanced so far."""
        return self._step_index

    @property
    def storage_voltages(self) -> np.ndarray:
        """Per-node store voltage (supply rail where no store is fitted)."""
        return np.where(self._has_store, self._v_store, self._supply_voltage)

    @property
    def reports_sent(self) -> np.ndarray:
        """Per-node report counters (zeros for nodes without a scheduler)."""
        return self._reports.copy()

    @property
    def hibernating(self) -> np.ndarray:
        """Per-node scheduler hibernation flags."""
        return self._hibernating.copy()

    @property
    def energy_delivered(self) -> np.ndarray:
        """Per-node delivered-energy accumulators, joules."""
        return self._e_del.copy()

    @property
    def energy_load(self) -> np.ndarray:
        """Per-node load-energy accumulators, joules."""
        return self._e_load.copy()

    def summaries(self) -> List[HarvestSummary]:
        """Per-node harvest summaries, in member order."""
        columns = zip(
            self._duration.tolist(),
            self._e_ideal.tolist(),
            self._e_cell.tolist(),
            self._e_del.tolist(),
            self._e_over.tolist(),
            self._e_load.tolist(),
            self._final_v.tolist(),
        )
        return [
            HarvestSummary(
                duration=duration,
                energy_ideal=ideal,
                energy_at_cell=at_cell,
                energy_delivered=delivered,
                energy_overhead=overhead,
                energy_load=load,
                final_storage_voltage=final_v,
            )
            for duration, ideal, at_cell, delivered, overhead, load, final_v in columns
        ]

    # --- checkpoint protocol ------------------------------------------------

    _ARRAY_FIELDS = (
        ("held", "_held", float),
        ("next_pulse", "_next_pulse", float),
        ("sample_count", "_sample_count", int),
        ("comparator_high", "_cmp_high", bool),
        ("storage_voltage", "_v_store", float),
        ("current_period", "_cur_period", float),
        ("next_update", "_next_update", float),
        ("hibernating", "_hibernating", bool),
        ("reports_sent", "_reports", int),
        ("next_report", "_next_report", float),
        ("duration", "_duration", float),
        ("energy_ideal", "_e_ideal", float),
        ("energy_at_cell", "_e_cell", float),
        ("energy_delivered", "_e_del", float),
        ("energy_overhead", "_e_over", float),
        ("energy_load", "_e_load", float),
        ("final_storage_voltage", "_final_v", float),
    )

    def state_dict(self) -> dict:
        """Snapshot the fleet's mutable state (checkpoint protocol)."""
        state = {
            "time": self.time,
            "step_index": self._step_index,
            "n": self.n,
        }
        for key, attr, kind in self._ARRAY_FIELDS:
            state[key] = [kind(x) for x in getattr(self, attr)]
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        for key in ("time", "step_index", "n"):
            if key not in state:
                raise StateFormatError(f"FleetSimulator state missing {key!r}")
        if int(state["n"]) != self.n:
            raise StateFormatError(
                f"FleetSimulator state holds {state['n']} nodes, engine has {self.n}"
            )
        dtypes = {float: float, int: np.int64, bool: bool}
        for key, attr, kind in self._ARRAY_FIELDS:
            if key not in state:
                raise StateFormatError(f"FleetSimulator state missing {key!r}")
            values = state[key]
            if len(values) != self.n:
                raise StateFormatError(
                    f"FleetSimulator state field {key!r} has {len(values)} entries, "
                    f"expected {self.n}"
                )
            setattr(self, attr, np.array(values, dtype=dtypes[kind]))
        self.time = float(state["time"])
        self._step_index = int(state["step_index"])
