"""Compiled engine tier: fused per-step kernels over a validated power LUT.

The scalar engine costs one Python object-soup step per node per ``dt``;
the fleet engine amortizes the population but still walks a Python-level
time loop of many small NumPy ops.  This module is the third tier: the
whole per-step chain — controller decision, converter transfer,
supercapacitor exchange, scheduler bookkeeping — fused into one tight
scalar loop per run, with every transcendental solve on the hot path
replaced by a :class:`~repro.pv.lut.CellPowerLUT` lookup that passed its
pre-run validation gate.

Two kernels:

* :func:`_lane_kernel` advances one *comparison lane* (one technique in
  one scenario) through its whole horizon.  Controllers whose operating
  point does not depend on storage state (ideal oracle, the S&H
  platform, fixed-voltage, periodic FOCV, pilot cell, photodiode
  reference) are compiled to precomputed per-step series; the
  storage-coupled ones (no-MPPT direct, hill climbing, and every
  technique's bootstrap path) run inside the kernel.
* :func:`_fleet_kernel` advances a whole :class:`FleetSimulator`
  population through its horizon — the same arithmetic as
  ``FleetSimulator.step``, node-scalarized and fused.

Both kernels are jitted with Numba when it imports (and
``REPRO_DISABLE_NUMBA`` is unset); otherwise the identical Python
bodies run interpreted.  The fallback is not a different algorithm —
it is the same function object — so results never depend on whether
numba is installed.  The per-lane comparison kernel is written to be
fast *as plain Python* (flat locals, list indexing, no NumPy scalar
boxing), which is what carries the throughput target on hosts without
numba; the fused fleet kernel only engages when jitted (interpreting
it would be slower than the NumPy fleet path it replaces — the
:class:`CompiledFleetSimulator` then falls back to the array path with
the LUT still swapped in for the Lambert-W solve).

Controllers with feedback through storage or probe history (hill
climbing) use LUT probes where the scalar engine used exact solves, so
their trajectory can deviate within the table's error budget; the lane
runner reports every summary under the tier's declared tolerance, and
the photodiode lane falls back to the scalar engine whenever a
bootstrap episode would have shifted its one-time calibration.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelParameterError, NumericalGuardError
from repro.obs import journal as _journal
from repro.obs.metrics import HOOKS as _OBS
from repro.obs.tracing import TRACER
from repro.pv.lut import (
    DEFAULT_GRID_POINTS,
    DEFAULT_REL_BUDGET,
    CellPowerLUT,
    lut_for_models,
)
from repro.pv.batch import stack_model_params
from repro.sim.fleet import FleetMember, FleetSimulator
from repro.sim.quasistatic import HarvestSummary

__all__ = [
    "HAVE_NUMBA",
    "CompiledFleetSimulator",
    "run_comparison_scenario",
    "clear_program_cache",
]


# --------------------------------------------------------------------------
# Numba probe (import-time; REPRO_DISABLE_NUMBA forces the fallback)
# --------------------------------------------------------------------------


def _numba_disabled() -> bool:
    return os.environ.get("REPRO_DISABLE_NUMBA", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


try:
    if _numba_disabled():
        raise ImportError("numba disabled by REPRO_DISABLE_NUMBA")
    from numba import njit as _njit  # type: ignore

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - exercised on numba-free hosts
    HAVE_NUMBA = False

    def _njit(*args, **kwargs):  # type: ignore
        """No-op decorator standing in for numba.njit."""
        if len(args) == 1 and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap


_BOOT_DROP = 0.25
"""Bootstrap diode drop, volts (repro.baselines.bootstrap.BOOTSTRAP_DIODE_DROP)."""

# Lane modes.
_MODE_SERIES = 0  # operating point / overhead precomputed per step
_MODE_DIRECT = 1  # diode-coupled direct connection (storage-coupled)
_MODE_HILL = 2  # perturb & observe (probe-history feedback)

# Overhead encodings for series lanes.
_OH_CURRENT = 1  # oh_row holds amps; overhead = I * supply_v
_OH_POWER = 2  # oh_row holds watts; overhead = (P / max(supply, 1e-9)) * supply_v


# --------------------------------------------------------------------------
# The comparison lane kernel
# --------------------------------------------------------------------------
#
# One call advances one (technique, scenario) lane through `steps` steps.
# The body is the scalar QuasiStaticSimulator.step chain with the exact
# Supercapacitor.exchange / BuckBoostConverter.output_power arithmetic
# inlined, and every P(V) evaluation an inline CellPowerLUT.power.
# It indexes only with `seq[i]`, so the same body runs on NumPy arrays
# (jitted) and plain lists (interpreted fallback).


def _lane_kernel_py(
    steps,
    dt,
    times,
    mode,
    min_supply,
    drop,
    oh_type,
    oh_row,
    pv_row,
    del_row,
    u_row,
    voc_row,
    lit_row,
    lut_flat,
    grid_points,
    gm1,
    kmax,
    uniform,
    nodes_flat,
    has_conv,
    conv_on,
    conv_min_vin,
    conv_fixed,
    conv_prop,
    conv_rcond,
    has_store,
    cap_c,
    cap_rated,
    cap_esr,
    cap_leak,
    v_start,
    supply_voltage,
    h_step,
    h_period,
    h_frac,
    h_vop,
    h_prev,
    h_dir,
    h_next,
):
    e_cell = 0.0
    e_del = 0.0
    e_over = 0.0
    v = v_start
    first_boot = -1

    for i in range(steps):
        lit = lit_row[i]
        if has_store:
            supply = v
        else:
            supply = supply_voltage
        boot = supply < min_supply

        pv = 0.0
        vop = 0.0
        oh_w = 0.0
        if boot:
            if first_boot < 0:
                first_boot = i
            # bootstrap_decision: diode into the store, no overhead.
            if lit:
                vop = supply + _BOOT_DROP
                voc = voc_row[i]
                if 0.0 < vop < voc:
                    b_i = u_row[i] * grid_points
                    if uniform:
                        x = vop / voc
                        uu = 1.0 - math.sqrt(1.0 - x)
                        f = uu * gm1
                        k = int(f)
                        if k > kmax:
                            k = kmax
                        w = f - k
                    else:
                        klo = 0
                        khi = grid_points - 1
                        while khi - klo > 1:
                            kmid = (klo + khi) >> 1
                            if nodes_flat[b_i + kmid] <= vop:
                                klo = kmid
                            else:
                                khi = kmid
                        k = klo
                        n0 = nodes_flat[b_i + k]
                        n1 = nodes_flat[b_i + k + 1]
                        if n1 > n0:
                            w = (vop - n0) / (n1 - n0)
                        else:
                            w = 0.0
                    b = b_i + k
                    p0 = lut_flat[b]
                    pv = p0 + (lut_flat[b + 1] - p0) * w
        elif mode == 0:
            pv = pv_row[i]
            if oh_type == 1:
                oh_w = oh_row[i] * supply
            elif oh_type == 2:
                den = supply
                if den <= 1e-9:
                    den = 1e-9
                oh_w = (oh_row[i] / den) * supply
        elif mode == 1:
            # no-MPPT direct: operate at V_store + diode drop.
            if lit:
                vop = supply + drop
                voc = voc_row[i]
                if 0.0 < vop < voc:
                    b_i = u_row[i] * grid_points
                    if uniform:
                        x = vop / voc
                        uu = 1.0 - math.sqrt(1.0 - x)
                        f = uu * gm1
                        k = int(f)
                        if k > kmax:
                            k = kmax
                        w = f - k
                    else:
                        klo = 0
                        khi = grid_points - 1
                        while khi - klo > 1:
                            kmid = (klo + khi) >> 1
                            if nodes_flat[b_i + kmid] <= vop:
                                klo = kmid
                            else:
                                khi = kmid
                        k = klo
                        n0 = nodes_flat[b_i + k]
                        n1 = nodes_flat[b_i + k + 1]
                        if n1 > n0:
                            w = (vop - n0) / (n1 - n0)
                        else:
                            w = 0.0
                    b = b_i + k
                    p0 = lut_flat[b]
                    pv = p0 + (lut_flat[b + 1] - p0) * w
        else:
            # hill climbing: probe at the held point, perturb, track.
            oh_w = oh_row[i] * supply
            if lit:
                voc = voc_row[i]
                if h_vop <= 0.0 or h_vop >= voc:
                    h_vop = h_frac * voc
                t_now = times[i]
                if t_now >= h_next:
                    probe = 0.0
                    if 0.0 < h_vop < voc:
                        b_i = u_row[i] * grid_points
                        if uniform:
                            x = h_vop / voc
                            uu = 1.0 - math.sqrt(1.0 - x)
                            f = uu * gm1
                            k = int(f)
                            if k > kmax:
                                k = kmax
                            w = f - k
                        else:
                            klo = 0
                            khi = grid_points - 1
                            while khi - klo > 1:
                                kmid = (klo + khi) >> 1
                                if nodes_flat[b_i + kmid] <= h_vop:
                                    klo = kmid
                                else:
                                    khi = kmid
                            k = klo
                            n0 = nodes_flat[b_i + k]
                            n1 = nodes_flat[b_i + k + 1]
                            if n1 > n0:
                                w = (h_vop - n0) / (n1 - n0)
                            else:
                                w = 0.0
                        b = b_i + k
                        p0 = lut_flat[b]
                        probe = p0 + (lut_flat[b + 1] - p0) * w
                    if probe < h_prev:
                        h_dir = -h_dir
                    h_prev = probe
                    nv = h_vop + h_dir * h_step
                    if nv < 0.05:
                        nv = 0.05
                    hi = voc * 0.999
                    if nv > hi:
                        nv = hi
                    h_vop = nv
                    h_next = t_now + h_period
                vop = h_vop
                if 0.0 < vop < voc:
                    b_i = u_row[i] * grid_points
                    if uniform:
                        x = vop / voc
                        uu = 1.0 - math.sqrt(1.0 - x)
                        f = uu * gm1
                        k = int(f)
                        if k > kmax:
                            k = kmax
                        w = f - k
                    else:
                        klo = 0
                        khi = grid_points - 1
                        while khi - klo > 1:
                            kmid = (klo + khi) >> 1
                            if nodes_flat[b_i + kmid] <= vop:
                                klo = kmid
                            else:
                                khi = kmid
                        k = klo
                        n0 = nodes_flat[b_i + k]
                        n1 = nodes_flat[b_i + k + 1]
                        if n1 > n0:
                            w = (vop - n0) / (n1 - n0)
                        else:
                            w = 0.0
                    b = b_i + k
                    p0 = lut_flat[b]
                    pv = p0 + (lut_flat[b + 1] - p0) * w

        # Converter transfer (series lanes precomputed theirs).
        if mode == 0 and not boot:
            dp = del_row[i]
        elif pv > 0.0:
            if has_conv:
                if conv_on and vop >= conv_min_vin:
                    q = pv / vop
                    lossw = conv_fixed + conv_prop * pv + q * q * conv_rcond
                    eta = 1.0 - lossw / pv
                    if eta < 0.0:
                        eta = 0.0
                    elif eta > 1.0:
                        eta = 1.0
                    dp = pv * eta
                else:
                    dp = 0.0
            else:
                dp = pv
        else:
            dp = 0.0

        # Storage bookkeeping: charge the delivered power, then draw the
        # overhead — Supercapacitor.exchange inlined, charge-first so
        # leakage rides on the charge call exactly as the scalar engine.
        if has_store:
            stored = 0.5 * cap_c * v * v
            full_e = 0.5 * cap_c * cap_rated * cap_rated
            if v > 1e-9:
                cur = dp / v
                lossx = cur * cur * cap_esr
                if lossx > dp:
                    lossx = dp
            else:
                lossx = 0.0
            sd = dp - lossx
            if sd < 0.0:
                sd = 0.0
            sd = sd - cap_leak * v
            energy = stored + sd * dt
            if energy < 0.0:
                energy = 0.0
            acc = dp
            if energy > full_e:
                if sd > 0.0:
                    acc = dp * (full_e - stored) / (sd * dt)
                energy = full_e
            v = math.sqrt(2.0 * energy / cap_c)

            stored = 0.5 * cap_c * v * v
            if oh_w <= 0.0:
                energy = stored - cap_leak * v * dt
                if energy < 0.0:
                    energy = 0.0
            else:
                if v > 1e-9:
                    cur = oh_w / v
                    lossx = cur * cur * cap_esr
                    if lossx > oh_w:
                        lossx = oh_w
                else:
                    lossx = 0.0
                drawn = (oh_w + lossx + cap_leak * v) * dt
                if drawn <= stored:
                    energy = stored - drawn
                else:
                    energy = 0.0
            v = math.sqrt(2.0 * energy / cap_c)
        else:
            acc = dp

        e_cell += pv * dt
        e_del += acc * dt
        e_over += oh_w * dt

    if has_store:
        v_final = v
    else:
        v_final = supply_voltage
    return e_cell, e_del, e_over, v_final, first_boot


_lane_kernel = _njit(cache=False)(_lane_kernel_py) if HAVE_NUMBA else _lane_kernel_py


# --------------------------------------------------------------------------
# The fused fleet kernel
# --------------------------------------------------------------------------
#
# FleetSimulator.step, node-scalarized: the same IEEE arithmetic the
# array path evaluates elementwise, with the LUT lookup in place of the
# batch Lambert-W solve.  State arrays are mutated in place so a run
# interrupted at any step boundary resumes bitwise.  Returns
# (error_code, error_time, scheduler_clamps): 0 ok, 1 scheduler NaN,
# 2 invalid delivered power, 3 non-finite storage voltage.


def _fleet_kernel_py(
    i0,
    i1,
    n,
    dt,
    times,
    u_global,
    voc_all,
    lux_all,
    ideal_all,
    target_all,
    lut_flat,
    grid_points,
    gm1,
    kmax,
    uniform,
    nodes_flat,
    alpha,
    t_on,
    period,
    metrology,
    min_vin_cfg,
    sh_supply,
    rtot,
    sf,
    kick,
    soak,
    droop_tau,
    droop_bias_c,
    u4_off,
    u4_alive,
    cmp_thresh,
    cmp_off,
    cmp_half,
    cmp_alive,
    supply_voltage,
    leak_mask,
    brown_mask,
    open_mask,
    short_mask,
    leak_mult,
    short_res,
    has_conv,
    conv_enabled,
    conv_min_vin,
    conv_fixed,
    conv_prop,
    conv_rcond,
    has_store,
    cap_c,
    cap_rated,
    cap_esr,
    cap_leak,
    has_load,
    sleep_power,
    report_energy,
    upd_int,
    v_surv,
    v_comf,
    min_per,
    max_per,
    held_a,
    next_pulse,
    sample_count,
    cmp_high,
    v_store,
    cur_period,
    next_update,
    hibernating,
    reports,
    next_report,
    duration,
    e_ideal,
    e_cell,
    e_del,
    e_over,
    e_load,
    final_v,
):
    clamps = 0
    for i in range(i0, i1):
        t = times[i]
        t_end = t + dt
        for j in range(n):
            browned = brown_mask[i, j]
            v = v_store[j]

            # Storage short-mode bleed (before anything reads the rail).
            if has_store[j] and short_mask[i, j] and v > 0.0:
                p = v * v / short_res[j]
                stored = 0.5 * cap_c[j] * v * v
                if v > 1e-9:
                    cur = p / v
                    lossx = cur * cur * cap_esr[j]
                    if lossx > p:
                        lossx = p
                else:
                    lossx = 0.0
                drawn = (p + lossx + cap_leak[j] * v) * dt
                if drawn <= stored:
                    stored = stored - drawn
                else:
                    stored = 0.0
                v = math.sqrt(2.0 * stored / cap_c[j])
                v_store[j] = v

            if has_store[j]:
                storage_v = v
            else:
                storage_v = supply_voltage[j]
            supply_v = storage_v

            u = u_global[i, j]
            voc = voc_all[u]
            target = target_all[u]
            lux = lux_all[u]

            # --- S&H pulse chain (droop / sample per astable pulse) ---
            held = held_a[j]
            pulse = next_pulse[j]
            sampling = 0.0
            cursor = t
            while pulse < t_end:
                pulse_at = pulse
                if pulse_at < t:
                    pulse_at = t
                d = pulse_at - cursor
                if d < 0.0:
                    d = 0.0
                held = held * math.exp(-d / droop_tau[j]) - droop_bias_c[j] * d
                if held < 0.0:
                    held = 0.0
                new = held + (target - held) * sf[j]
                new = new + kick[j]
                new = new + soak[j] * (held - new)
                if new < 0.0:
                    new = 0.0
                if new > sh_supply[j]:
                    new = sh_supply[j]
                held = new
                sample_count[j] += 1
                sampling += t_on[j]
                cursor = pulse_at
                pulse += period[j]
            d = t_end - cursor
            if d < 0.0:
                d = 0.0
            held = held * math.exp(-d / droop_tau[j]) - droop_bias_c[j] * d
            if held < 0.0:
                held = 0.0
            next_pulse[j] = pulse

            he = held + u4_off[j]
            if he < 0.0:
                he = 0.0
            if he > sh_supply[j]:
                he = sh_supply[j]
            if not u4_alive[j]:
                he = 0.0
            duty = 1.0 - sampling / dt
            if duty < 0.0:
                duty = 0.0
            oh_cur = metrology[j]
            if sampling > 0.0:
                oh_cur = oh_cur + (voc / rtot[j]) * sampling / dt

            diff = (he - cmp_thresh[j]) + cmp_off[j]
            if cmp_high[j]:
                latched = not (diff < -cmp_half[j])
            else:
                latched = diff > cmp_half[j]
            cmp_now = cmp_alive[j] and latched
            cmp_high[j] = cmp_now
            v_op = he / alpha[j]
            valid = cmp_now and (v_op >= min_vin_cfg[j]) and (v_op < voc)

            # Hold-leakage fault: extra droop after the platform's step.
            if leak_mask[i, j]:
                d = dt * (leak_mult[j] - 1.0)
                held = held * math.exp(-d / droop_tau[j]) - droop_bias_c[j] * d
                if held < 0.0:
                    held = 0.0
            held_a[j] = held

            # --- PV power via the LUT ---------------------------------
            pv = 0.0
            if valid and lux > 0.0 and v_op > 0.0:
                b_i = u * grid_points
                if uniform:
                    x = v_op / voc
                    uu = 1.0 - math.sqrt(1.0 - x)
                    f = uu * gm1
                    k = int(f)
                    if k > kmax:
                        k = kmax
                    w = f - k
                else:
                    klo = 0
                    khi = grid_points - 1
                    while khi - klo > 1:
                        kmid = (klo + khi) >> 1
                        if nodes_flat[b_i + kmid] <= v_op:
                            klo = kmid
                        else:
                            khi = kmid
                    k = klo
                    n0 = nodes_flat[b_i + k]
                    n1 = nodes_flat[b_i + k + 1]
                    if n1 > n0:
                        w = (v_op - n0) / (n1 - n0)
                    else:
                        w = 0.0
                b = b_i + k
                p0 = lut_flat[b]
                pv = (p0 + (lut_flat[b + 1] - p0) * w) * duty

            # --- converter transfer -----------------------------------
            delivered = pv
            if pv > 0.0 and has_conv[j]:
                if conv_enabled[j] and (not browned) and v_op >= conv_min_vin[j]:
                    i_in = pv / v_op
                    lossw = (
                        conv_fixed[j]
                        + conv_prop[j] * pv
                        + i_in * i_in * conv_rcond[j]
                    )
                    eta = 1.0 - lossw / pv
                    if eta < 0.0:
                        eta = 0.0
                    elif eta > 1.0:
                        eta = 1.0
                    delivered = pv * eta
                else:
                    delivered = 0.0
            if delivered < 0.0 or not math.isfinite(delivered):
                return 2, t, clamps

            overhead = oh_cur * supply_v

            # --- scheduler load ---------------------------------------
            load_p = 0.0
            if has_load[j]:
                if t >= next_update[j]:
                    if storage_v != storage_v:
                        return 1, t, clamps
                    hib = storage_v < v_surv[j]
                    per = min_per[j]
                    if (not hib) and storage_v < v_comf[j]:
                        fraction = (storage_v - v_surv[j]) / (v_comf[j] - v_surv[j])
                        per = math.exp(
                            math.log(max_per[j])
                            + fraction * (math.log(min_per[j]) - math.log(max_per[j]))
                        )
                        if per < min_per[j] or per > max_per[j]:
                            clamps += 1
                            if per < min_per[j]:
                                per = min_per[j]
                            if per > max_per[j]:
                                per = max_per[j]
                    was_hib = hibernating[j]
                    hibernating[j] = hib
                    if not hib:
                        cur_period[j] = per
                        if was_hib:
                            next_report[j] = t + per
                    next_update[j] = t + upd_int[j]
                load_p = sleep_power[j]
                if (not hibernating[j]) and t >= next_report[j]:
                    reports[j] += 1
                    next_report[j] = t + cur_period[j]
                    load_p = load_p + report_energy[j] / upd_int[j]

            # --- storage exchanges (charge first, then the draw) ------
            acc = delivered
            if has_store[j]:
                if open_mask[i, j]:
                    acc = 0.0
                else:
                    v = v_store[j]
                    stored = 0.5 * cap_c[j] * v * v
                    full_e = 0.5 * cap_c[j] * cap_rated[j] * cap_rated[j]
                    if v > 1e-9:
                        cur = delivered / v
                        lossx = cur * cur * cap_esr[j]
                        if lossx > delivered:
                            lossx = delivered
                    else:
                        lossx = 0.0
                    sd = delivered - lossx
                    if sd < 0.0:
                        sd = 0.0
                    sd = sd - cap_leak[j] * v
                    energy = stored + sd * dt
                    if energy < 0.0:
                        energy = 0.0
                    if energy > full_e:
                        if sd > 0.0:
                            acc = delivered * (full_e - stored) / (sd * dt)
                        energy = full_e
                    v = math.sqrt(2.0 * energy / cap_c[j])

                    q = overhead + load_p
                    stored = 0.5 * cap_c[j] * v * v
                    if q <= 0.0:
                        energy = stored - cap_leak[j] * v * dt
                        if energy < 0.0:
                            energy = 0.0
                    else:
                        if v > 1e-9:
                            cur = q / v
                            lossx = cur * cur * cap_esr[j]
                            if lossx > q:
                                lossx = q
                        else:
                            lossx = 0.0
                        drawn = (q + lossx + cap_leak[j] * v) * dt
                        if drawn <= stored:
                            energy = stored - drawn
                        else:
                            energy = 0.0
                    v = math.sqrt(2.0 * energy / cap_c[j])
                    v_store[j] = v

            if has_store[j]:
                fv = v_store[j]
            else:
                fv = supply_voltage[j]
            if not math.isfinite(fv):
                return 3, t, clamps

            duration[j] += dt
            e_ideal[j] += ideal_all[u] * dt
            e_cell[j] += pv * dt
            e_del[j] += acc * dt
            e_over[j] += overhead * dt
            e_load[j] += load_p * dt
            final_v[j] = fv

    return 0, 0.0, clamps


_fleet_kernel = _njit(cache=False)(_fleet_kernel_py) if HAVE_NUMBA else _fleet_kernel_py


# --------------------------------------------------------------------------
# Comparison lane programs
# --------------------------------------------------------------------------


@dataclass
class _LaneProgram:
    """Kernel-ready description of one technique's lane."""

    mode: int
    oh_type: int = 0
    min_supply: float = 0.0
    drop: float = 0.0
    pv_row: Optional[np.ndarray] = None
    del_row: Optional[np.ndarray] = None
    oh_row: Optional[np.ndarray] = None
    hill: Optional[Tuple[float, ...]] = None
    cal_step: int = -1
    # list twins for the interpreted kernel (built lazily)
    _lists: Optional[tuple] = field(default=None, repr=False)

    def rows_as_lists(self) -> tuple:
        if self._lists is None:
            self._lists = (
                self.pv_row.tolist(),
                self.del_row.tolist(),
                self.oh_row.tolist(),
            )
        return self._lists


def _conv_fingerprint(conv) -> tuple:
    if conv is None:
        return ()
    return (
        bool(conv.enabled),
        float(conv.min_input_voltage),
        float(conv.losses.fixed_power),
        float(conv.losses.proportional_loss),
        float(conv.losses.conduction_resistance),
    )


def _ctl_fingerprint(ctl) -> tuple:
    items = []
    for k, val in sorted(vars(ctl).items()):
        if isinstance(val, (int, float, bool, str)):
            items.append((k, val))
    return (type(ctl).__name__, tuple(items))


class _ScenarioTables:
    """Shared per-scenario precomputation: conditions, LUT, ideal replay."""

    def __init__(
        self,
        cell,
        pc,
        grid_points: Optional[int],
        rel_budget: float,
    ):
        self.cell = cell
        self.pc = pc
        self.dt = float(pc.dt)
        self.times = np.ascontiguousarray(np.asarray(pc.times, dtype=float))
        self.steps = int(self.times.shape[0])
        lux_arr = np.asarray(pc.lux, dtype=float)

        # Unique conditions in first-encounter (step) order — the same
        # dedup the fleet engine performs, so quantised-cache replay of
        # energy_ideal lands on identical values.
        seen: dict = {}
        unique: List[object] = []
        lux_u: List[float] = []
        u_row = np.empty(self.steps, dtype=np.int64)
        for i, model in enumerate(pc.models):
            key = id(model)
            u = seen.get(key)
            if u is None:
                u = len(unique)
                seen[key] = u
                unique.append(model)
                lux_u.append(float(lux_arr[i]))
            u_row[i] = u
        self.models = unique
        self.u_row = u_row
        self.lux_u = np.array(lux_u)
        self.voc_u = np.array([m.voc() for m in unique])
        self.lit_row = lux_arr > 0.0
        self.voc_row = np.ascontiguousarray(self.voc_u[u_row])

        vmpp = np.zeros(len(unique))
        pmpp = np.zeros(len(unique))
        for k, m in enumerate(unique):
            if lux_u[k] > 0.0 and self.voc_u[k] > 0.0:
                r = m.mpp()
                vmpp[k] = r.voltage
                pmpp[k] = r.power
        self.vmpp_u = vmpp
        self.pmpp_u = pmpp

        lut_kwargs = {"rel_budget": rel_budget}
        if grid_points is not None:
            lut_kwargs["grid_points"] = grid_points
        self.lut = lut_for_models(unique, voc=self.voc_u, **lut_kwargs)
        self.params = self.lut.params
        self.lut_report = self.lut.validate()

        # energy_ideal replay: quantised (Iph, T) MPP cache, first claim
        # wins, in step order — bitwise the scalar engine's accumulator.
        mpp_cache: dict = {}
        ideal_u = np.empty(len(unique))
        for k, m in enumerate(unique):
            iph = m.photocurrent
            if lux_u[k] <= 0.0 or iph <= 0.0:
                ideal_u[k] = 0.0
            else:
                qkey = getattr(m, "ideal_cache_key", None)
                if qkey is None:
                    qkey = (round(math.log(iph) * 400.0), round(m.temperature * 2.0))
                cached = mpp_cache.get(qkey)
                if cached is None:
                    cached = m.mpp().power
                    mpp_cache[qkey] = cached
                ideal_u[k] = cached
        ideal_row = np.where(self.lit_row, ideal_u[u_row], 0.0).tolist()
        dt = self.dt
        e_id = 0.0
        dur = 0.0
        for x in ideal_row:
            e_id += x * dt
            dur += dt
        self.e_ideal = e_id
        self.duration = dur

        g = self.lut.grid_points
        self.gm1 = float(g - 1)
        self.kmax = g - 2
        # closed_form tables use the quadratic u-map; knee-aligned
        # (mixed/string) tables make the kernels binary-search their
        # per-row node voltages instead.
        self.uniform = bool(self.lut.closed_form)
        self.nodes_flat = self.lut._nodes_flat

        # List twins for the interpreted kernel.
        self.times_l = self.times.tolist()
        self.u_row_l = u_row.tolist()
        self.voc_row_l = self.voc_row.tolist()
        self.lit_row_l = self.lit_row.tolist()
        self.flat_l = self.lut._flat.tolist()
        self.nodes_l = self.nodes_flat.tolist()

        self._lanes: Dict[tuple, Optional[_LaneProgram]] = {}

    # --- series helpers ----------------------------------------------------

    def _lut_series(self, vop_row: np.ndarray, mask: np.ndarray, duty) -> np.ndarray:
        """LUT power at per-step operating points, times harvest duty."""
        pv = np.zeros(self.steps)
        m = mask & self.lit_row & (vop_row > 0.0)
        if m.any():
            idx = np.nonzero(m)[0]
            pv[idx] = self.lut.power_many(self.u_row[idx], vop_row[idx])
        if np.ndim(duty) == 0:
            if duty != 1.0:
                pv = pv * duty
        else:
            pv = pv * duty
        return pv

    def _delivered_series(self, pv_row: np.ndarray, vop_row: np.ndarray, conv) -> np.ndarray:
        """BuckBoostConverter.output_power, vectorized over the lane."""
        if conv is None:
            return pv_row.copy()
        routed = pv_row > 0.0
        dp = np.where(routed, 0.0, pv_row)
        running = routed & bool(conv.enabled) & (vop_row >= conv.min_input_voltage)
        if running.any():
            with np.errstate(divide="ignore", invalid="ignore"):
                i_in = pv_row / vop_row
                loss = (
                    conv.losses.fixed_power
                    + conv.losses.proportional_loss * pv_row
                    + i_in * i_in * conv.losses.conduction_resistance
                )
                eta = np.minimum(1.0, np.maximum(0.0, 1.0 - loss / pv_row))
            dp = np.where(running, pv_row * eta, dp)
        return dp

    # --- lane builders ------------------------------------------------------

    def lane_for(self, ctl, conv) -> Optional[_LaneProgram]:
        """Build (or reuse) the lane program for a controller instance.

        Returns None for controller types the compiled tier does not
        model — the caller falls back to the scalar engine for them.
        """
        key = (_ctl_fingerprint(ctl), _conv_fingerprint(conv))
        if key in self._lanes:
            return self._lanes[key]
        prog = self._build_lane(ctl, conv)
        self._lanes[key] = prog
        return prog

    def _build_lane(self, ctl, conv) -> Optional[_LaneProgram]:
        name = type(ctl).__name__
        zeros = np.zeros(self.steps)

        if name == "IdealMPPT":
            valid = self.lit_row & (self.pmpp_u[self.u_row] > 0.0)
            vop = np.where(valid, self.vmpp_u[self.u_row], 0.0)
            pv = self._lut_series(vop, valid, 1.0)
            return _LaneProgram(
                mode=_MODE_SERIES,
                oh_type=_OH_CURRENT,
                min_supply=0.0,
                pv_row=pv,
                del_row=self._delivered_series(pv, vop, conv),
                oh_row=zeros,
            )

        if name == "FixedVoltage":
            valid = self.lit_row & (ctl.setpoint < self.voc_row)
            vop = np.where(valid, ctl.setpoint, 0.0)
            pv = self._lut_series(vop, valid, 1.0)
            return _LaneProgram(
                mode=_MODE_SERIES,
                oh_type=_OH_CURRENT,
                min_supply=float(ctl.min_supply),
                pv_row=pv,
                del_row=self._delivered_series(pv, vop, conv),
                oh_row=np.full(self.steps, float(ctl.reference_current)),
            )

        if name == "PeriodicFOCV":
            # The precomputed series assumes the held Voc refreshes every
            # lit step, which holds when dt >= sample_period; finer steps
            # couple the refresh grid to bootstrap history — scalar path.
            if self.dt < ctl.sample_period:
                return None
            valid = self.lit_row & (self.voc_row > 0.0)
            vop = np.where(valid, ctl.k * self.voc_row, 0.0)
            duty = 1.0 - ctl.disconnection_duty
            pv = self._lut_series(vop, valid, duty)
            return _LaneProgram(
                mode=_MODE_SERIES,
                oh_type=_OH_POWER,
                min_supply=float(ctl.min_supply),
                pv_row=pv,
                del_row=self._delivered_series(pv, vop, conv),
                oh_row=np.full(self.steps, float(ctl.overhead_power)),
            )

        if name == "PilotCell":
            valid = self.lit_row & (ctl.k * self.voc_row > 0.0)
            vop = np.where(valid, ctl.k * self.voc_row, 0.0)
            duty = 1.0 - ctl.pilot_area_fraction
            pv = self._lut_series(vop, valid, duty)
            return _LaneProgram(
                mode=_MODE_SERIES,
                oh_type=_OH_POWER,
                min_supply=float(ctl.min_supply),
                pv_row=pv,
                del_row=self._delivered_series(pv, vop, conv),
                oh_row=np.full(self.steps, float(ctl.overhead_power)),
            )

        if name == "PhotodiodeReference":
            oh = np.full(self.steps, float(ctl.overhead_current))
            lit_idx = np.nonzero(self.lit_row)[0]
            if lit_idx.size == 0:
                return _LaneProgram(
                    mode=_MODE_SERIES,
                    oh_type=_OH_CURRENT,
                    min_supply=float(ctl.min_supply),
                    pv_row=zeros,
                    del_row=zeros.copy(),
                    oh_row=oh,
                )
            ts = int(lit_idx[0])
            model_t = self.pc.models[ts]
            lux_t = float(np.asarray(self.pc.lux)[ts])
            scale = ctl.calibration_lux / lux_t
            cal_v = model_t.with_photocurrent(model_t.photocurrent * scale).mpp().voltage
            lux_row = self.lux_u[self.u_row]
            vop = np.zeros(self.steps)
            with np.errstate(divide="ignore", invalid="ignore"):
                decades = np.where(
                    self.lit_row, np.log10(lux_row / ctl.calibration_lux), 0.0
                )
            vop = np.where(self.lit_row, cal_v + ctl.volts_per_decade * decades, 0.0)
            vop = np.minimum(vop, self.voc_row * 0.999)
            valid = self.lit_row & (vop > 0.0)
            vop = np.where(valid, vop, 0.0)
            pv = self._lut_series(vop, valid, 1.0)
            return _LaneProgram(
                mode=_MODE_SERIES,
                oh_type=_OH_CURRENT,
                min_supply=float(ctl.min_supply),
                pv_row=pv,
                del_row=self._delivered_series(pv, vop, conv),
                oh_row=oh,
                cal_step=ts,
            )

        if name == "NoMPPT":
            return _LaneProgram(
                mode=_MODE_DIRECT,
                min_supply=0.0,
                drop=float(ctl.diode_drop),
                pv_row=zeros,
                del_row=zeros,
                oh_row=zeros,
            )

        if name == "HillClimbing":
            return _LaneProgram(
                mode=_MODE_HILL,
                oh_type=_OH_CURRENT,
                min_supply=float(ctl.min_supply),
                pv_row=zeros,
                del_row=zeros,
                oh_row=np.full(self.steps, float(ctl.average_overhead_current())),
                hill=(
                    float(ctl.step_voltage),
                    float(ctl.update_period),
                    float(ctl.initial_fraction),
                    float(ctl._v_op),
                    float(ctl._prev_power),
                    float(ctl._direction),
                    float(ctl._next_update),
                ),
            )

        if name == "SampleHoldMPPT":
            return self._sample_hold_lane(ctl, conv)

        return None

    def _sample_hold_lane(self, ctl, conv) -> Optional[_LaneProgram]:
        """Replay the S&H platform chain into a precomputed series.

        A throwaway one-member :class:`FleetSimulator` performs the same
        constant extraction and loaded-point vector solve the fleet
        engine uses; the pulse/droop/sample/comparator chain — which
        never reads storage state — is then replayed once in Python.
        """
        if not (getattr(ctl, "assume_started", False) and getattr(ctl, "powered", True)):
            return None
        try:
            probe = FleetSimulator([FleetMember(controller=ctl, precomputed=self.pc)])
        except (ModelParameterError, NumericalGuardError):
            return None

        alpha = float(probe._alpha[0])
        t_on = float(probe._t_on[0])
        period = float(probe._period[0])
        metrology = float(probe._metrology[0])
        min_vin = float(probe._min_vin_cfg[0])
        sh_supply = float(probe._sh_supply[0])
        rtot = float(probe._rtot[0])
        sf = float(probe._sf[0])
        kick = float(probe._kick[0])
        soak = float(probe._soak[0])
        tau = float(probe._droop_tau[0])
        bias_c = float(probe._droop_bias_c[0])
        u4_off = float(probe._u4_off[0])
        u4_alive = bool(probe._u4_alive[0])
        cmp_thresh = float(probe._cmp_thresh[0])
        cmp_off = float(probe._cmp_off[0])
        cmp_half = float(probe._cmp_half[0])
        cmp_alive = bool(probe._cmp_alive[0])

        held = float(probe._held[0])
        pulse = float(probe._next_pulse[0])
        cmp_prev = bool(probe._cmp_high[0])
        target_l = probe._target_all[probe._u_global[:, 0]].tolist()

        dt = self.dt
        times_l = self.times_l
        voc_l = self.voc_row_l
        exp = math.exp

        vop_row = np.empty(self.steps)
        duty_row = np.empty(self.steps)
        oh_row = np.empty(self.steps)
        valid_row = np.empty(self.steps, dtype=bool)

        for i in range(self.steps):
            t = times_l[i]
            t_end = t + dt
            sampling = 0.0
            cursor = t
            while pulse < t_end:
                pulse_at = pulse if pulse > t else t
                d = pulse_at - cursor
                if d < 0.0:
                    d = 0.0
                held = held * exp(-d / tau) - bias_c * d
                if held < 0.0:
                    held = 0.0
                new = held + (target_l[i] - held) * sf
                new = new + kick
                new = new + soak * (held - new)
                if new < 0.0:
                    new = 0.0
                if new > sh_supply:
                    new = sh_supply
                held = new
                sampling += t_on
                cursor = pulse_at
                pulse += period
            d = t_end - cursor
            if d < 0.0:
                d = 0.0
            held = held * exp(-d / tau) - bias_c * d
            if held < 0.0:
                held = 0.0

            he = held + u4_off
            if he < 0.0:
                he = 0.0
            if he > sh_supply:
                he = sh_supply
            if not u4_alive:
                he = 0.0
            duty = 1.0 - sampling / dt
            if duty < 0.0:
                duty = 0.0
            oh = metrology
            if sampling > 0.0:
                oh = oh + (voc_l[i] / rtot) * sampling / dt

            diff = (he - cmp_thresh) + cmp_off
            if cmp_prev:
                latched = not (diff < -cmp_half)
            else:
                latched = diff > cmp_half
            cmp_prev = cmp_alive and latched
            v_op = he / alpha
            valid_row[i] = cmp_prev and (v_op >= min_vin) and (v_op < voc_l[i])
            vop_row[i] = v_op
            duty_row[i] = duty
            oh_row[i] = oh

        vop_row = np.where(valid_row, vop_row, 0.0)
        pv = self._lut_series(vop_row, valid_row, duty_row)
        return _LaneProgram(
            mode=_MODE_SERIES,
            oh_type=_OH_CURRENT,
            min_supply=0.0,
            pv_row=pv,
            del_row=self._delivered_series(pv, vop_row, conv),
            oh_row=oh_row,
        )


# --------------------------------------------------------------------------
# Scenario-program cache
# --------------------------------------------------------------------------

_PROGRAM_CACHE: "OrderedDict[tuple, _ScenarioTables]" = OrderedDict()
_PROGRAM_CACHE_MAX = 4

_WARMED_KERNELS: set = set()
"""Kernel functions that have run at least once in this process — with
numba installed, a kernel's first call is the one that pays JIT
compilation, so cold calls get their own trace span."""


def _kernel_is_cold(kernel) -> bool:
    """True exactly once per kernel function per process."""
    key = id(kernel)
    if key in _WARMED_KERNELS:
        return False
    _WARMED_KERNELS.add(key)
    return True


def clear_program_cache() -> None:
    """Drop every cached scenario program (test hook)."""
    _PROGRAM_CACHE.clear()


def _cell_area_cm2(cell) -> float:
    """Active area for thermal modelling — cells and strings alike."""
    params = getattr(cell, "parameters", None)
    if params is not None:
        return float(params.area_cm2)
    return float(cell.area_cm2)


def _cell_fingerprint(cell) -> tuple:
    if getattr(cell, "cells", None) is not None:
        return (
            "string",
            type(cell).__name__,
            int(cell.n_cells),
            cell.bypass_drop,
            tuple(cell.mismatch),
            _cell_fingerprint(cell.cells[0]),
        )
    items = []
    for k, val in sorted(vars(cell.parameters).items()):
        if isinstance(val, (int, float, bool, str)):
            items.append((k, val))
    return tuple(items)


def _tables_for(
    cell,
    scenario_name: str,
    scenario_factory: Callable[[], object],
    duration: float,
    dt: float,
    use_thermal: bool,
    grid_points: Optional[int],
    rel_budget: float,
    shading=None,
    shading_name: Optional[str] = None,
) -> _ScenarioTables:
    """Cached scenario program; the scenario *name* identifies the trace.

    Programs are expensive (condition precompute + table build), and
    benchmark / sweep workloads re-run identical scenarios, so a small
    FIFO keyed on (cell parameters, scenario name, horizon, LUT knobs,
    shadow-map name) amortizes them.  Scenario / shading names are
    assumed to identify their factories — true for the registry
    scenarios and shadow maps every experiment uses.
    """
    key = (
        _cell_fingerprint(cell),
        str(scenario_name),
        float(duration),
        float(dt),
        bool(use_thermal),
        grid_points if grid_points is None else int(grid_points),
        float(rel_budget),
        None if shading is None else (shading_name or repr(shading)),
    )
    tables = _PROGRAM_CACHE.get(key)
    if tables is None:
        h = _OBS.compiled_program_misses
        if h is not None:
            h.inc()
        from repro.pv.thermal import CellThermalModel
        from repro.sim.precompute import precompute_conditions

        with TRACER.span("compiled:program-build"):
            thermal = (
                CellThermalModel(area_cm2=_cell_area_cm2(cell)) if use_thermal else None
            )
            pc = precompute_conditions(
                cell, scenario_factory(), duration, dt, thermal=thermal, shading=shading
            )
            tables = _ScenarioTables(cell, pc, grid_points, rel_budget)
        _PROGRAM_CACHE[key] = tables
        while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_MAX:
            _PROGRAM_CACHE.popitem(last=False)
    else:
        h = _OBS.compiled_program_hits
        if h is not None:
            h.inc()
    return tables


# --------------------------------------------------------------------------
# Comparison lane runner
# --------------------------------------------------------------------------


def _run_lane(
    tables: _ScenarioTables,
    prog: _LaneProgram,
    conv,
    store,
    supply_voltage: float,
) -> Optional[HarvestSummary]:
    if conv is None:
        has_conv = False
        conv_on = False
        cmv = cf = cp = cr = 0.0
    else:
        has_conv = True
        conv_on = bool(conv.enabled)
        cmv = float(conv.min_input_voltage)
        cf = float(conv.losses.fixed_power)
        cp = float(conv.losses.proportional_loss)
        cr = float(conv.losses.conduction_resistance)
    if store is None:
        has_store = False
        cap_c = cap_rated = 1.0
        cap_esr = cap_leak = 0.0
        v0 = 0.0
    else:
        has_store = True
        cap_c = float(store.capacitance)
        cap_rated = float(store.rated_voltage)
        cap_esr = float(store.esr)
        cap_leak = float(store.leakage_current)
        v0 = float(store.voltage)

    hill = prog.hill if prog.hill is not None else (0.0,) * 7
    h_step, h_period, h_frac, h_vop, h_prev, h_dir, h_next = hill

    from contextlib import nullcontext

    compile_span = (
        TRACER.span("compiled:kernel-compile[lane]")
        if _kernel_is_cold(_lane_kernel)
        else nullcontext()
    )

    if HAVE_NUMBA:
        rows = (prog.pv_row, prog.del_row, prog.oh_row)
        times = tables.times
        u_row = tables.u_row
        voc_row = tables.voc_row
        lit_row = tables.lit_row
        flat = tables.lut._flat
        nodes = tables.nodes_flat
    else:
        pv_l, del_l, oh_l = prog.rows_as_lists()
        rows = (np.asarray(pv_l), np.asarray(del_l), np.asarray(oh_l))
        # interpreted path: lists index ~3x faster than ndarray scalars
        rows = (pv_l, del_l, oh_l)
        times = tables.times_l
        u_row = tables.u_row_l
        voc_row = tables.voc_row_l
        lit_row = tables.lit_row_l
        flat = tables.flat_l
        nodes = tables.nodes_l
    pv_row, del_row, oh_row = rows

    with compile_span:
        result = _lane_kernel(
        tables.steps,
        tables.dt,
        times,
        prog.mode,
        prog.min_supply,
        prog.drop,
        prog.oh_type,
        oh_row,
        pv_row,
        del_row,
        u_row,
        voc_row,
        lit_row,
        flat,
        tables.lut.grid_points,
        tables.gm1,
        tables.kmax,
        tables.uniform,
        nodes,
        has_conv,
        conv_on,
        cmv,
        cf,
        cp,
        cr,
        has_store,
        cap_c,
        cap_rated,
        cap_esr,
        cap_leak,
        v0,
        float(supply_voltage),
        h_step,
        h_period,
        h_frac,
        h_vop,
        h_prev,
        h_dir,
        h_next,
    )
    e_cell, e_del, e_over, v_final, first_boot = result

    # Photodiode safety valve: its one-time calibration was precomputed
    # at the first lit step; a bootstrap episode at or before that step
    # would have deferred it in the scalar engine — fall back.
    if prog.cal_step >= 0 and 0 <= first_boot <= prog.cal_step:
        return None

    return HarvestSummary(
        duration=tables.duration,
        energy_ideal=tables.e_ideal,
        energy_at_cell=e_cell,
        energy_delivered=e_del,
        energy_overhead=e_over,
        energy_load=0.0,
        final_storage_voltage=v_final,
    )


def run_comparison_scenario(
    cell,
    scenario_name: str,
    scenario_factory: Callable[[], object],
    lanes: Sequence[Tuple[str, object, object, object]],
    duration: float,
    dt: float,
    use_thermal: bool = True,
    supply_voltage: float = 3.0,
    grid_points: Optional[int] = None,
    rel_budget: Optional[float] = None,
    shading=None,
    shading_name: Optional[str] = None,
):
    """Run comparison lanes on the compiled tier.

    Args:
        cell: the PV cell under test.
        scenario_name: registry name of the scenario (cache identity).
        scenario_factory: zero-arg environment factory for the scenario.
        lanes: ``(technique_name, controller, converter, storage)``
            tuples — the same fresh instances the scalar engine would
            step.
        duration / dt: run horizon, seconds.
        use_thermal: heat the cell from absorbed light.
        supply_voltage: controller rail when no storage is attached.
        grid_points / rel_budget: LUT knobs (None: module defaults —
            string populations pick the denser knee-aligned default).
        shading: optional :class:`~repro.env.shading.ShadowMap` driving
            per-cell factors (string cells only).
        shading_name: registry name of the shadow map (cache identity);
            required for program-cache hits when ``shading`` is set.

    Returns:
        ``(results, precomputed)`` where ``results`` maps each technique
        name to its :class:`HarvestSummary` — or ``None`` for lanes the
        compiled tier cannot run (unsupported controller type, or the
        photodiode calibration valve), which the caller should re-run on
        the scalar engine against the returned precomputed conditions.
    """
    gp = grid_points if grid_points is None else int(grid_points)
    rb = DEFAULT_REL_BUDGET if rel_budget is None else float(rel_budget)
    tables = _tables_for(
        cell,
        scenario_name,
        scenario_factory,
        duration,
        dt,
        use_thermal,
        gp,
        rb,
        shading=shading,
        shading_name=shading_name,
    )
    j = _journal.JOURNAL
    if j is not None:
        j.emit(
            _journal.ENGINE_RUN,
            engine="compiled",
            scenario=str(scenario_name),
            lanes=len(lanes),
            steps=tables.steps,
        )
    results: Dict[str, Optional[HarvestSummary]] = {}
    steps_done = 0
    for name, ctl, conv, store in lanes:
        prog = tables.lane_for(ctl, conv)
        if prog is None:
            results[name] = None
            continue
        summary = _run_lane(tables, prog, conv, store, supply_voltage)
        results[name] = summary
        if summary is not None:
            steps_done += tables.steps
    h = _OBS.fleet_steps
    if h is not None and steps_done:
        h.inc(steps_done)
    return results, tables.pc


# --------------------------------------------------------------------------
# Compiled fleet simulator
# --------------------------------------------------------------------------


class CompiledFleetSimulator(FleetSimulator):
    """Fleet engine with a validated power LUT and a fused run kernel.

    Construction, member support, checkpoint protocol and the per-step
    NumPy path are inherited from :class:`FleetSimulator`; this subclass

    * swaps the per-step Lambert-W batch solve for a
      :class:`~repro.pv.lut.CellPowerLUT` lookup (validated against the
      declared error budget before any stepping), and
    * when Numba is available, advances whole ``run()`` spans through
      :func:`_fleet_kernel` — one fused loop instead of per-step NumPy.

    Args:
        members: as for :class:`FleetSimulator`.
        grid_points / rel_budget: LUT knobs (None: module defaults).
        validate_lut: run the pre-run validation gate (raises
            :class:`~repro.errors.LUTValidationError` on an undersized
            table).  Disabling skips the gate, not the table.
        fused: ``"auto"`` (kernel when jitted, NumPy path otherwise),
            ``"python"`` (force the interpreted kernel — test hook), or
            ``"off"`` (always the NumPy path).
    """

    engine_name = "compiled"

    def __init__(
        self,
        members: Sequence[FleetMember],
        *,
        grid_points: Optional[int] = None,
        rel_budget: Optional[float] = None,
        validate_lut: bool = True,
        fused: str = "auto",
    ):
        super().__init__(members)
        if fused not in ("auto", "python", "off"):
            raise ModelParameterError(
                f"fused must be 'auto', 'python' or 'off', got {fused!r}"
            )
        rb = DEFAULT_REL_BUDGET if rel_budget is None else float(rel_budget)
        lut_kwargs = {"rel_budget": rb}
        if grid_points is not None:
            lut_kwargs["grid_points"] = int(grid_points)
        self.lut = lut_for_models(
            self._unique_models, voc=self._voc_all, **lut_kwargs
        )
        self.lut_report = self.lut.validate() if validate_lut else None
        self._fused = fused

    # --- engine-tier hook ---------------------------------------------------

    def _pv_power(self, u_sel, v_sel, duty_sel):
        """LUT lookup in place of the exact Lambert-W solve."""
        return self.lut.power_many(u_sel, v_sel) * duty_sel

    # --- fused run ----------------------------------------------------------

    def _select_kernel(self):
        if self._fused == "off":
            return None
        if self._fused == "python":
            return _fleet_kernel_py
        return _fleet_kernel if HAVE_NUMBA else None

    def run(self, steps: Optional[int] = None) -> List[HarvestSummary]:
        """Advance ``steps`` (default: the rest of the horizon), fused."""
        remaining = self.steps - self._step_index if steps is None else int(steps)
        kernel = self._select_kernel()
        if kernel is None or remaining <= 0:
            return super().run(steps)
        i0 = self._step_index
        i1 = i0 + remaining
        if i1 > self.steps:
            raise ModelParameterError("fleet stepped past its precomputed horizon")
        j = _journal.JOURNAL
        if j is not None:
            j.emit(
                _journal.ENGINE_RUN,
                engine=self.engine_name,
                steps=remaining,
                nodes=self.n,
            )
        from contextlib import nullcontext

        compile_span = (
            TRACER.span("compiled:kernel-compile[fleet]")
            if _kernel_is_cold(kernel)
            else nullcontext()
        )
        with TRACER.span(f"fleet:run[{self.n}]"), compile_span:
            self._run_kernel(kernel, i0, i1)
        return self.summaries()

    def _run_kernel(self, kernel, i0: int, i1: int) -> None:
        lut = self.lut
        code, err_t, clamps = kernel(
            i0,
            i1,
            self.n,
            self.dt,
            self.times,
            self._u_global,
            self._voc_all,
            self._lux_all,
            self._ideal_all,
            self._target_all,
            lut._flat,
            lut.grid_points,
            float(lut.grid_points - 1),
            lut.grid_points - 2,
            bool(lut.closed_form),
            lut._nodes_flat,
            self._alpha,
            self._t_on,
            self._period,
            self._metrology,
            self._min_vin_cfg,
            self._sh_supply,
            self._rtot,
            self._sf,
            self._kick,
            self._soak,
            self._droop_tau,
            self._droop_bias_c,
            self._u4_off,
            self._u4_alive,
            self._cmp_thresh,
            self._cmp_off,
            self._cmp_half,
            self._cmp_alive,
            self._supply_voltage,
            self._leak_mask,
            self._brown_mask,
            self._open_mask,
            self._short_mask,
            self._leak_mult,
            self._short_res,
            self._has_conv,
            self._conv_enabled,
            self._conv_min_vin,
            self._conv_fixed,
            self._conv_prop,
            self._conv_rcond,
            self._has_store,
            self._cap_c,
            self._cap_rated,
            self._cap_esr,
            self._cap_leak,
            self._has_load,
            self._sleep_power,
            self._report_energy,
            self._upd_int,
            self._v_surv,
            self._v_comf,
            self._min_per,
            self._max_per,
            self._held,
            self._next_pulse,
            self._sample_count,
            self._cmp_high,
            self._v_store,
            self._cur_period,
            self._next_update,
            self._hibernating,
            self._reports,
            self._next_report,
            self._duration,
            self._e_ideal,
            self._e_cell,
            self._e_del,
            self._e_over,
            self._e_load,
            self._final_v,
        )
        if code == 1:
            raise NumericalGuardError(
                "storage voltage is NaN; refusing to schedule on it",
                signal="v_storage",
                time=err_t,
            )
        if code == 2:
            raise NumericalGuardError(
                f"fleet delivered power went invalid at t={err_t:.6g} s",
                signal="p_delivered",
                time=err_t,
            )
        if code == 3:
            raise NumericalGuardError(
                f"fleet storage voltage went non-finite at t={err_t:.6g} s",
                signal="v_storage",
                time=err_t,
            )
        ran = i1 - i0
        self.time = float(self.times[i1 - 1]) + self.dt
        self._step_index = i1
        h = _OBS.fleet_steps
        if h is not None:
            h.inc(self.n * ran)
        if clamps:
            ch = _OBS.scheduler_clamps
            if ch is not None:
                ch.inc(clamps)
