"""Simulation engines and signal recording.

Two engines cover the paper's two observation timescales:

* :class:`~repro.sim.transient.TransientSimulator` — fixed-timestep
  integration at microsecond-to-millisecond resolution, for waveform
  reproductions (the Fig. 4 sampling transient, cold-start ramps).
* :class:`~repro.sim.quasistatic.QuasiStaticSimulator` — one-second-class
  steps over hours, treating each step as an electrical equilibrium and
  integrating energy, for the 24-hour environment runs and the
  state-of-the-art comparison.

Signals are recorded into :class:`~repro.sim.traces.TraceSet` objects
that behave like named time series with numpy views.
"""

from repro.sim.traces import Trace, TraceSet
from repro.sim.events import EventQueue, Event
from repro.sim.transient import TransientSimulator
from repro.sim.quasistatic import QuasiStaticSimulator, StepResult, HarvestSummary

__all__ = [
    "Trace",
    "TraceSet",
    "EventQueue",
    "Event",
    "TransientSimulator",
    "QuasiStaticSimulator",
    "StepResult",
    "HarvestSummary",
]
