"""Simulation engines and signal recording.

Two engines cover the paper's two observation timescales:

* :class:`~repro.sim.transient.TransientSimulator` — fixed-timestep
  integration at microsecond-to-millisecond resolution, for waveform
  reproductions (the Fig. 4 sampling transient, cold-start ramps).
* :class:`~repro.sim.quasistatic.QuasiStaticSimulator` — one-second-class
  steps over hours, treating each step as an electrical equilibrium and
  integrating energy, for the 24-hour environment runs and the
  state-of-the-art comparison.

Signals are recorded into :class:`~repro.sim.traces.TraceSet` objects
that behave like named time series with numpy views.

Performance layers: :mod:`repro.sim.precompute` solves a whole run's
conditions once for sharing across controllers,
:mod:`repro.sim.parallel` fans independent runs over a process pool,
:mod:`repro.sim.fleet` steps whole populations of nodes in lockstep
NumPy, and :mod:`repro.sim.telemetry` keeps the ``BENCH_perf.json``
wall-time ledger.
"""

from repro.sim.traces import Trace, TraceSet
from repro.sim.events import EventQueue, Event
from repro.sim.transient import TransientSimulator
from repro.sim.quasistatic import QuasiStaticSimulator, StepResult, HarvestSummary
from repro.sim.precompute import PrecomputedConditions, precompute_conditions
from repro.sim.parallel import parallel_map, scatter, default_worker_count
from repro.sim.telemetry import PerfSample, measure, record_perf, load_ledger, latest

_FLEET_EXPORTS = ("FleetMember", "FleetSimulator", "fleet_supported")


def __getattr__(name):
    # repro.sim.fleet builds members from the scalar objects, so it
    # imports repro.core.system — which itself imports this package via
    # repro.sim.quasistatic.  Resolve the fleet symbols lazily to keep
    # the import graph acyclic.
    if name in _FLEET_EXPORTS:
        from repro.sim import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Trace",
    "TraceSet",
    "EventQueue",
    "Event",
    "TransientSimulator",
    "QuasiStaticSimulator",
    "StepResult",
    "HarvestSummary",
    "PrecomputedConditions",
    "precompute_conditions",
    "parallel_map",
    "scatter",
    "default_worker_count",
    "FleetMember",
    "FleetSimulator",
    "fleet_supported",
    "PerfSample",
    "measure",
    "record_perf",
    "load_ledger",
    "latest",
]
