"""A small timed-event queue.

Used by the engines for scheduled occurrences that don't align with the
step grid: sampling-pulse edges, environment events (lights off), node
wake-ups.  Events fire in time order; ties break by insertion order so
behaviour is deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class Event:
    """A scheduled occurrence.

    Attributes:
        time: firing time, seconds.
        action: callable invoked as ``action(time)`` when fired.
        label: human-readable tag for debugging.
    """

    time: float
    action: Callable[[float], Any]
    label: str = ""


class EventQueue:
    """Priority queue of :class:`Event` ordered by time then insertion."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def schedule(self, time: float, action: Callable[[float], Any], label: str = "") -> Event:
        """Schedule ``action`` to fire at ``time``; returns the event."""
        event = Event(time=time, action=action, label=label)
        heapq.heappush(self._heap, (time, next(self._counter), event))
        return event

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_time(self) -> Optional[float]:
        """Time of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def fire_due(self, now: float) -> int:
        """Fire every event with ``time <= now``; returns how many fired.

        Actions may schedule further events (including at or before
        ``now``); those fire in the same call, with a guard against
        runaway zero-delay loops.
        """
        fired = 0
        limit = 100_000
        while self._heap and self._heap[0][0] <= now:
            _, _, event = heapq.heappop(self._heap)
            event.action(event.time)
            fired += 1
            if fired > limit:
                raise SimulationError(
                    f"event cascade exceeded {limit} firings at t={now}; "
                    "likely a zero-delay scheduling loop"
                )
        return fired
