"""Performance telemetry: wall-time and throughput per experiment.

The ROADMAP's north star is an engine that runs "as fast as the
hardware allows" — which is only meaningful if every PR can see what
the previous one achieved.  This module appends run records to a JSON
ledger (``BENCH_perf.json`` at the repository root by default) so the
perf trajectory is tracked across PRs:

    with measure("comparison_24h_dt10", steps=27 * 8640) as perf:
        run_comparison(duration=24 * HOURS, dt=10.0)
    record_perf(perf, note="condition-cache + batch MPP")

Ledger shape (one history list per experiment, newest last)::

    {
      "schema": 1,
      "experiments": {
        "comparison_24h_dt10": [
          {"wall_s": 108.8, "steps": 233280, "steps_per_s": 2143,
           "note": "seed", "recorded": "2026-08-06T..."},
          ...
        ]
      }
    }

``steps_per_s`` is the figure to compare across entries; ``wall_s``
alone is machine-dependent but still useful within one machine's
history.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import ModelParameterError, TelemetryPathError

BENCH_FILENAME = "BENCH_perf.json"
_ENV_OVERRIDE = "REPRO_BENCH_PATH"

_MODULE_PATH = Path(__file__).resolve()
"""Anchor for the repo-root walk (separate constant so tests can point it
at a rootless location and assert the installed-copy error)."""


def bench_path() -> Path:
    """Resolve the ledger path.

    ``REPRO_BENCH_PATH`` wins if set; otherwise the repository root is
    located by walking up from this module (the checkout layout puts it
    at ``src/repro/sim/``).

    Raises:
        TelemetryPathError: when no ancestor carries a
            ``pyproject.toml`` — i.e. the package runs from an installed
            copy with no checkout to anchor the ledger.  Silently
            writing to the current working directory (the old fallback)
            scattered ``BENCH_perf.json`` files wherever the process
            happened to start; an explicit override is required instead.
    """
    override = os.environ.get(_ENV_OVERRIDE)
    if override:
        return Path(override)
    for parent in _MODULE_PATH.parents:
        if (parent / "pyproject.toml").exists():
            return parent / BENCH_FILENAME
    raise TelemetryPathError(
        "cannot locate the repository root for the perf ledger: no ancestor "
        f"of {str(_MODULE_PATH)!r} contains pyproject.toml (installed copy?). "
        f"Set {_ENV_OVERRIDE} to an explicit ledger path."
    )


def host_fingerprint() -> dict:
    """Identify the machine a perf entry was recorded on.

    ``steps_per_s`` figures are only comparable within one host; the
    fingerprint lets readers (and the CI regression gate) partition the
    history instead of comparing a laptop against a CI runner.  Kept
    deliberately coarse — interpreter version, NumPy version, core
    count — so it is stable across runs on the same machine.
    """
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


@dataclass
class PerfSample:
    """One measured run of one experiment.

    Attributes:
        experiment: ledger key, e.g. ``"comparison_24h_dt10"``.
        steps: simulated quasi-static steps covered by the measurement.
        wall_s: elapsed wall time, seconds (filled by :func:`measure`).
    """

    experiment: str
    steps: int
    wall_s: float = 0.0
    _t0: float = field(default=0.0, repr=False)

    @property
    def steps_per_s(self) -> float:
        """Throughput; 0 when nothing was measured."""
        return self.steps / self.wall_s if self.wall_s > 0.0 else 0.0


@contextmanager
def measure(experiment: str, steps: int) -> Iterator[PerfSample]:
    """Time a block; the yielded sample's ``wall_s`` is set on exit."""
    if steps < 0:
        raise ModelParameterError(f"steps must be >= 0, got {steps!r}")
    sample = PerfSample(experiment=experiment, steps=steps)
    t0 = time.perf_counter()
    try:
        yield sample
    finally:
        sample.wall_s = time.perf_counter() - t0


def load_ledger(path: Optional[Path] = None) -> dict:
    """Read the ledger (an empty skeleton if absent or unreadable)."""
    path = path if path is not None else bench_path()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if isinstance(data, dict) and isinstance(data.get("experiments"), dict):
            return data
    except (OSError, ValueError):
        pass
    return {"schema": 1, "experiments": {}}


def record_perf(
    sample: PerfSample,
    note: str = "",
    path: Optional[Path] = None,
    keep_last: int = 50,
    counters: Optional[dict] = None,
) -> dict:
    """Append ``sample`` to the ledger and write it back.

    Args:
        sample: a measured :class:`PerfSample`.
        note: free-form context ("seed", "precompute+batch", ...).
        path: ledger location (default: :func:`bench_path`).
        keep_last: history bound per experiment.
        counters: optional ``{instrument: value}`` observability
            counters recorded alongside the throughput figure (see
            :func:`repro.obs.export.counters_dict`) — cache hit rates
            and solver call counts explain *why* ``steps_per_s`` moved.

    The read-modify-write cycle holds an advisory lock and the rewrite
    is atomic (write-temp, fsync, rename), so concurrent recorders —
    the parallel experiment runner, two CI jobs on one runner — cannot
    interleave into a corrupt or half-written ledger, and readers never
    observe a torn file.

    Returns:
        The entry that was appended.
    """
    from repro.ckpt.atomic import locked_update_json

    path = path if path is not None else bench_path()
    entry = {
        "wall_s": round(sample.wall_s, 4),
        "steps": sample.steps,
        "steps_per_s": round(sample.steps_per_s, 1),
        "note": note,
        "recorded": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": host_fingerprint(),
    }
    if counters:
        entry["counters"] = {str(k): v for k, v in sorted(counters.items())}

    def append(data: dict) -> dict:
        if not (isinstance(data, dict) and isinstance(data.get("experiments"), dict)):
            data = {"schema": 1, "experiments": {}}
        history = data["experiments"].setdefault(sample.experiment, [])
        history.append(entry)
        del history[:-keep_last]
        return data

    locked_update_json(path, append, default=lambda: {"schema": 1, "experiments": {}})
    return entry


def latest(experiment: str, path: Optional[Path] = None) -> Optional[dict]:
    """The newest ledger entry for ``experiment``, or None."""
    history = load_ledger(path)["experiments"].get(experiment) or []
    return history[-1] if history else None


def latest_comparable(
    experiment: str,
    path: Optional[Path] = None,
    host: Optional[dict] = None,
) -> Optional[dict]:
    """The newest entry for ``experiment`` recorded on this host.

    Entries written before host fingerprints existed carry no ``host``
    key; they stay readable but are never *comparable* — throughput on
    an unknown machine says nothing about throughput here.

    Args:
        experiment: ledger key.
        path: ledger location (default: :func:`bench_path`).
        host: fingerprint to match (default: :func:`host_fingerprint`).
    """
    host = host if host is not None else host_fingerprint()
    history = load_ledger(path)["experiments"].get(experiment) or []
    for entry in reversed(history):
        if isinstance(entry, dict) and entry.get("host") == host:
            return entry
    return None


def check_throughput_regression(
    sample: PerfSample,
    floor_fraction: float = 0.5,
    path: Optional[Path] = None,
    host: Optional[dict] = None,
) -> Optional[str]:
    """Compare ``sample`` against the last same-host ledger entry.

    Returns a human-readable failure message when ``sample``'s
    throughput fell below ``floor_fraction`` of the newest comparable
    entry (same experiment key, same host fingerprint), and ``None``
    when the sample is fine or no comparable entry exists — a fresh
    machine or a pre-fingerprint ledger must not fail the gate.

    Call this *before* :func:`record_perf` so a regressed run does not
    lower the bar for the next one.
    """
    if not 0.0 < floor_fraction <= 1.0:
        raise ModelParameterError(
            f"floor_fraction must be in (0, 1], got {floor_fraction!r}"
        )
    baseline = latest_comparable(sample.experiment, path=path, host=host)
    if baseline is None:
        return None
    reference = float(baseline.get("steps_per_s") or 0.0)
    if reference <= 0.0:
        return None
    floor = reference * floor_fraction
    if sample.steps_per_s < floor:
        return (
            f"throughput regression in {sample.experiment!r}: "
            f"{sample.steps_per_s:.1f} steps/s is below "
            f"{floor:.1f} ({floor_fraction:.0%} of the last recorded "
            f"{reference:.1f} on this host, noted {baseline.get('note', '')!r})"
        )
    return None


__all__ = [
    "PerfSample",
    "measure",
    "record_perf",
    "load_ledger",
    "latest",
    "latest_comparable",
    "check_throughput_regression",
    "host_fingerprint",
    "bench_path",
    "BENCH_FILENAME",
]
